"""Mixed-precision benchmark: float32 plans vs the float64 baseline.

Measures the four acceptance surfaces of the precision axis:

* **compiled forward** — fp32 vs fp64 plans on GEMM-bound batches of
  the Table IV MLP shapes (one weight cast at compile time, zero casts
  on the hot path), plus the non-negotiable control: the fp64 default
  path stays bitwise-identical to plans compiled before the dtype
  parameterization existed;
* **fleet slab** — stacked K-member forwards with a narrowed slab at
  K in {4, 8, 16}: the bandwidth-bound cross-model GEMMs are where
  halving the slab pays most;
* **governed deployment** — the three MLP apps served end to end with
  ``precision="auto"`` under a :class:`~repro.qos.PrecisionPolicy`:
  the QoI delta vs the fp64 deployment must stay inside the same
  25%-of-pure budget the QoS benchmark enforces;
* **shm transport** — per-message dtype negotiation on the
  process-backend slab ring: float32 requests ship half the bytes.

Results land in ``BENCH_precision.json`` (schema ``bench_precision/v1``).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_precision.py
    PYTHONPATH=src python benchmarks/bench_precision.py --quick

``--quick`` shrinks every dimension for CI smoke runs and asserts the
two headline properties inline: fp64 outputs bitwise-unchanged, and
fp32 forward speedup geomean >= 1.3x on the GEMM-bound shapes.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.apps.harness import harness_for
from repro.nn import (Trainer, compile_fleet_inference, compile_inference,
                      save_model)
from repro.qos import PrecisionPolicy, QoSController
from repro.search.builders import build_minibude_mlp, build_mlp2

SCHEMA = "bench_precision/v1"

#: Table IV MLP-family shapes (labels mirror benchmarks/conftest.py),
#: served at GEMM-bound batch sizes — wide-enough matmuls that memory
#: bandwidth, not Python dispatch, dominates; that is where narrowing
#: to float32 halves the traffic.
TABLE4_MLP_SHAPES = [
    ("minibude-s", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 128, "feature_multiplier": 0.8}),
    ("minibude-m", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 256, "feature_multiplier": 0.8}),
    ("binomial-s", "binomial",
     {"hidden1_features": 48, "hidden2_features": 24}),
    ("binomial-m", "binomial",
     {"hidden1_features": 160, "hidden2_features": 96}),
    ("bonds-s", "bonds",
     {"hidden1_features": 48, "hidden2_features": 24}),
    ("bonds-m", "bonds",
     {"hidden1_features": 160, "hidden2_features": 96}),
]

_IN_FEATURES = {"minibude": 6, "binomial": 5, "bonds": 5}
_OUT_FEATURES = {"minibude": 1, "binomial": 1, "bonds": 2}

APPS = ("binomial", "bonds", "minibude")
HARNESS_PARAMS = {
    "binomial": dict(n_train=2048, n_test=768, n_steps=64),
    "bonds": dict(n_train=2048, n_test=768),
    "minibude": dict(n_train=2048, n_test=768),
}
QUICK_PARAMS = {
    "binomial": dict(n_train=256, n_test=128, n_steps=16),
    "bonds": dict(n_train=256, n_test=128),
    "minibude": dict(n_train=256, n_test=128),
}
ARCHS = {
    "binomial": {"hidden1_features": 48, "hidden2_features": 24},
    "bonds": {"hidden1_features": 48, "hidden2_features": 24},
    "minibude": {"num_hidden_layers": 2, "hidden1_size": 64,
                 "feature_multiplier": 0.6},
}
TRAIN_PARAMS = {
    "binomial": dict(lr=3e-3, batch_size=128, patience=15),
    "bonds": dict(lr=3e-3, batch_size=128, patience=15),
    "minibude": dict(lr=2e-3, batch_size=128, patience=20),
}


def build_shape(benchmark: str, arch: dict, seed: int = 0):
    if benchmark == "minibude":
        return build_minibude_mlp(arch, seed=seed)
    return build_mlp2(arch, _IN_FEATURES[benchmark],
                      _OUT_FEATURES[benchmark], seed=seed)


def _time_loop(fn, repeats: int, warmup: int = 3, chunks: int = 5) -> float:
    """Seconds per call: best-of-``chunks`` mean (robust to load spikes)."""
    for _ in range(warmup):
        fn()
    per_chunk = max(1, repeats // chunks)
    best = float("inf")
    for _ in range(chunks):
        start = time.perf_counter()
        for _ in range(per_chunk):
            fn()
        best = min(best, (time.perf_counter() - start) / per_chunk)
    return best


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


# ----------------------------------------------------------------------
# fp32 vs fp64 compiled forward
# ----------------------------------------------------------------------

def bench_forward(batch: int = 4096, repeats: int = 200,
                  seed: int = 0) -> list[dict]:
    rows = []
    rng = np.random.default_rng(seed)
    for label, benchmark, arch in TABLE4_MLP_SHAPES:
        model = build_shape(benchmark, arch, seed=seed)
        model.eval()
        x = rng.normal(size=(batch, _IN_FEATURES[benchmark]))
        p64 = compile_inference(model)
        p32 = compile_inference(model, dtype=np.float32)
        # The control: an explicitly-float64 plan is the same plan the
        # pre-dtype compiler produced — outputs bitwise-equal to the
        # default compile, same fingerprint.
        explicit64 = compile_inference(model, dtype=np.float64)
        y64, y32 = p64(x), p32(x)
        bitwise = bool(np.array_equal(y64, explicit64(x))) and \
            p64.fingerprint == explicit64.fingerprint
        rel = float(np.abs(y32 - y64).max() /
                    (np.abs(y64).max() + 1e-12))
        t64 = _time_loop(lambda: p64(x), repeats)
        t32 = _time_loop(lambda: p32(x), repeats)
        rows.append({
            "shape": label,
            "benchmark": benchmark,
            "arch": arch,
            "n_params": int(model.num_parameters()),
            "batch": batch,
            "f64_us": t64 * 1e6,
            "f32_us": t32 * 1e6,
            "speedup": t64 / t32,
            "max_rel_diff": rel,
            "fp64_bitwise_identical": bitwise,
        })
    return rows


# ----------------------------------------------------------------------
# Fleet slab narrowing at K in {4, 8, 16}
# ----------------------------------------------------------------------

def bench_fleet(batch: int = 1024, repeats: int = 100, seed: int = 0,
                fleet_sizes=(4, 8, 16)) -> list[dict]:
    rows = []
    rng = np.random.default_rng(seed + 1)
    label, benchmark, arch = TABLE4_MLP_SHAPES[1]     # minibude-m
    x = rng.normal(size=(batch, _IN_FEATURES[benchmark]))
    for k in fleet_sizes:
        models = [build_shape(benchmark, arch, seed=s) for s in range(k)]
        f64 = compile_fleet_inference(models)
        f32 = compile_fleet_inference(models, dtype=np.float32)
        y64, y32 = f64(x), f32(x)
        rel = float(np.abs(y32 - y64).max() /
                    (np.abs(y64).max() + 1e-12))
        t64 = _time_loop(lambda: f64(x), repeats)
        t32 = _time_loop(lambda: f32(x), repeats)
        rows.append({
            "shape": label,
            "k": k,
            "batch": batch,
            "slab_mb_f64": f64.slab.nbytes / 1e6,
            "slab_mb_f32": f32.slab.nbytes / 1e6,
            "f64_us": t64 * 1e6,
            "f32_us": t32 * 1e6,
            "speedup": t64 / t32,
            "max_rel_diff": rel,
        })
    return rows


# ----------------------------------------------------------------------
# Governed end-to-end deployment on the three MLP apps
# ----------------------------------------------------------------------

def bench_governed(workdir: Path, *, quick: bool, epochs: int,
                   budget_fraction: float = 0.25, chunk: int = 16,
                   seed: int = 0) -> list[dict]:
    rows = []
    for name in APPS:
        params = (QUICK_PARAMS if quick else HARNESS_PARAMS)[name]
        harness = harness_for(name, Path(workdir) / name, seed=seed,
                              deploy_chunk=chunk, **params)
        harness.collect()
        (xt, yt), (xv, yv) = harness.training_arrays()
        build = harness.make_builder(xt, yt)
        model = build(ARCHS[name], seed=0)
        Trainer(model, max_epochs=epochs, seed=0,
                **TRAIN_PARAMS[name]).fit(xt, yt, xv, yv)

        base = harness.evaluate(model, repeats=1)      # fp64 deployment
        region = harness.deploy_region
        pol = PrecisionPolicy(sample_rate=0.1, seed=7)
        ctrl = QoSController(shadow_rate=0.0, seed=7,
                             precision_policy=pol)
        region.config.precision = "auto"
        try:
            governed = harness.deploy_with_qos(model, ctrl)
        finally:
            region.config.precision = None
        snap = pol.snapshot()["regions"].get(region.name, {})
        # The same cap the QoS benchmark enforces on its policies: the
        # governed deployment's QoI may move at most 25% of the pure
        # deployment's error.
        budget = budget_fraction * base.qoi_error
        delta = governed.qoi_error - base.qoi_error
        rows.append({
            "benchmark": name,
            "metric": harness.info.metric,
            "qoi_f64": base.qoi_error,
            "qoi_f32_governed": governed.qoi_error,
            "qoi_delta": delta,
            "qoi_budget": budget,
            "within_budget": bool(abs(delta) <= budget),
            "speedup_f64": base.speedup,
            "speedup_f32_governed": governed.speedup,
            "divergence_ewma": snap.get("ewma"),
            "divergence_samples": snap.get("samples", 0),
            "demotions": snap.get("demotions", 0),
        })
    return rows


# ----------------------------------------------------------------------
# shm transport savings
# ----------------------------------------------------------------------

def bench_shm(workdir: Path, batch: int = 512, calls: int = 8,
              seed: int = 0) -> dict:
    import multiprocessing as mp
    from repro.serving.shm import RemoteEngineClient, WorkerHandle
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    label, benchmark, arch = TABLE4_MLP_SHAPES[0]
    model = build_shape(benchmark, arch, seed=seed)
    model.eval()
    path = workdir / "shm.rnm"
    save_model(model, path)
    x = np.random.default_rng(seed + 2).normal(
        size=(batch, _IN_FEATURES[benchmark]))
    handle = WorkerHandle(0, mp.get_context("fork"))
    try:
        client = RemoteEngineClient(handle)
        for _ in range(calls):
            client.infer(path, x)
        bytes_f64 = client.bytes_shipped
        for _ in range(calls):
            out32, _ = client.infer(path, x, dtype=np.float32)
        bytes_f32 = client.bytes_shipped - bytes_f64
        client.close()
    finally:
        handle.close()
    return {
        "shape": label,
        "batch": batch,
        "calls": calls,
        "bytes_f64": bytes_f64,
        "bytes_f32": bytes_f32,
        "transfer_savings": bytes_f64 / max(bytes_f32, 1),
        "out_dtype": str(out32.dtype),
    }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------

def run_benchmark(workdir, *, quick: bool = False, batch: int = 4096,
                  repeats: int = 200, epochs: int = 150,
                  seed: int = 0) -> dict:
    workdir = Path(workdir)
    forward = bench_forward(batch=batch, repeats=repeats, seed=seed)
    fleet = bench_fleet(batch=max(batch // 4, 64),
                        repeats=max(repeats // 2, 10), seed=seed)
    governed = bench_governed(workdir, quick=quick, epochs=epochs,
                              seed=seed)
    shm = bench_shm(workdir, batch=min(batch, 512), seed=seed)
    speedups = [r["speedup"] for r in forward]
    return {
        "schema": SCHEMA,
        "config": {"quick": quick, "batch": batch, "repeats": repeats,
                   "epochs": epochs, "seed": seed},
        "forward": forward,
        "fleet": fleet,
        "governed": governed,
        "shm": shm,
        "summary": {
            "f32_speedup_geomean": _geomean(speedups),
            "f32_speedup_best": max(speedups),
            "f32_max_rel_diff": max(r["max_rel_diff"] for r in forward),
            "fp64_bitwise_identical": all(r["fp64_bitwise_identical"]
                                          for r in forward),
            "fleet_f32_speedup_geomean": _geomean(
                [r["speedup"] for r in fleet]),
            "governed_within_budget": all(r["within_budget"]
                                          for r in governed),
            "shm_transfer_savings": shm["transfer_savings"],
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_precision.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir for harness data/models "
                             "(default: temp dir)")
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--repeats", type=int, default=200)
    parser.add_argument("--epochs", type=int, default=150)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing; asserts the "
                             "headline acceptance properties inline")
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 1024)
        args.repeats = min(args.repeats, 30)
        args.epochs = min(args.epochs, 25)

    kwargs = dict(quick=args.quick, batch=args.batch,
                  repeats=args.repeats, epochs=args.epochs)
    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, **kwargs)
    else:
        results = run_benchmark(args.workdir, **kwargs)

    s = results["summary"]
    if args.quick:
        # Smoke contract: the default path is untouched and narrowing
        # pays even at smoke sizes.
        assert s["fp64_bitwise_identical"], \
            "float64 plans changed under the dtype parameterization"
        assert s["f32_speedup_geomean"] >= 1.3, \
            f"fp32 geomean {s['f32_speedup_geomean']:.2f}x < 1.3x"

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"{'shape':14s} {'f64 us':>9s} {'f32 us':>9s} {'speedup':>8s} "
          f"{'rel diff':>9s}")
    for r in results["forward"]:
        print(f"{r['shape']:14s} {r['f64_us']:9.1f} {r['f32_us']:9.1f} "
              f"{r['speedup']:7.2f}x {r['max_rel_diff']:9.1e}")
    for r in results["fleet"]:
        print(f"fleet K={r['k']:<3d} slab {r['slab_mb_f64']:.2f}->"
              f"{r['slab_mb_f32']:.2f} MB {r['speedup']:.2f}x")
    for r in results["governed"]:
        print(f"{r['benchmark']:10s} qoi {r['qoi_f64']:.4g} -> "
              f"{r['qoi_f32_governed']:.4g} (delta {r['qoi_delta']:+.2e},"
              f" budget {r['qoi_budget']:.2e}, "
              f"{'ok' if r['within_budget'] else 'BREACH'})")
    print(f"shm transfer savings {s['shm_transfer_savings']:.2f}x; "
          f"fp32 forward geomean {s['f32_speedup_geomean']:.2f}x "
          f"(best {s['f32_speedup_best']:.2f}x); fp64 bitwise "
          f"{'unchanged' if s['fp64_bitwise_identical'] else 'CHANGED'}")
    return results


if __name__ == "__main__":
    main()
