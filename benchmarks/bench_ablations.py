"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify why the implementation is built the
way it is:

* **Zero-copy tensor wrapping** (Fig. 4) vs a naive per-entry gather
  loop: the strided-view bridge is the reason layout transformation
  stays a small fraction of inference time (Fig. 6).
* **Descriptor caching** in the region runtime: iterative applications
  (MiniWeather) re-enter the same region thousands of times; caching
  concretized maps removes symbolic resolution from the hot path.
* **Dense-op device model sensitivity**: how the Fig. 5 speedup story
  depends on the simulated accelerator's dense-vs-scattered advantage.
"""

import numpy as np
import pytest

from repro.bridge import SweepRange, TensorFunctor, concretize

STENCIL = ("#pragma approx tensor functor(ifn: [i, j, 0:5] = "
           "(([i-1, j], [i+1, j], [i, j-1:j+2])))")


def naive_gather(arr: np.ndarray) -> np.ndarray:
    """The loop a developer writes without the data bridge."""
    n, m = arr.shape
    out = np.empty((n - 2, m - 2, 5))
    for i in range(1, n - 1):
        for j in range(1, m - 1):
            out[i - 1, j - 1, 0] = arr[i - 1, j]
            out[i - 1, j - 1, 1] = arr[i + 1, j]
            out[i - 1, j - 1, 2] = arr[i, j - 1]
            out[i - 1, j - 1, 3] = arr[i, j]
            out[i - 1, j - 1, 4] = arr[i, j + 1]
    return out


@pytest.fixture(scope="module")
def grid():
    return np.random.default_rng(0).normal(size=(128, 128))


def test_bridge_matches_naive_gather(grid):
    f = TensorFunctor.parse(STENCIL)
    cm = concretize(f, grid, [SweepRange(1, 127), SweepRange(1, 127)])
    np.testing.assert_allclose(cm.gather(), naive_gather(grid))


@pytest.mark.benchmark(group="ablation-gather")
def bench_bridge_gather(benchmark, grid):
    f = TensorFunctor.parse(STENCIL)
    cm = concretize(f, grid, [SweepRange(1, 127), SweepRange(1, 127)])
    out = benchmark(cm.gather)
    assert out.shape == (126, 126, 5)


@pytest.mark.benchmark(group="ablation-gather")
def bench_naive_gather(benchmark, grid):
    out = benchmark(naive_gather, grid)
    assert out.shape == (126, 126, 5)


# ----------------------------------------------------------------------
# Descriptor cache
# ----------------------------------------------------------------------

def _make_region(tmp_path):
    from repro.api import approx_ml
    from repro.nn import Linear, Sequential, save_model
    model_path = tmp_path / "m.rnm"
    save_model(Sequential(Linear(5, 1)), model_path)

    @approx_ml(f"""
#pragma approx tensor functor(fi: [i, 0:5] = ([i, 0:5]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) model("{model_path}")
""")
    def region(x, y, N):
        y[:N] = x[:N].sum(axis=1)

    return region


@pytest.mark.benchmark(group="ablation-cache")
def bench_region_invocation_cached(benchmark, tmp_path):
    region = _make_region(tmp_path)
    x = np.random.default_rng(0).normal(size=(64, 5))
    y = np.zeros(64)
    region(x, y, 64)           # warm the descriptor cache
    benchmark(region, x, y, 64)


@pytest.mark.benchmark(group="ablation-cache")
def bench_region_invocation_cold(benchmark, tmp_path):
    region = _make_region(tmp_path)
    x = np.random.default_rng(0).normal(size=(64, 5))
    y = np.zeros(64)

    def cold_call():
        region._map_cache.clear()
        region(x, y, 64)

    benchmark(cold_call)


def test_cache_speeds_up_repeat_invocations(tmp_path):
    import time
    region = _make_region(tmp_path)
    x = np.random.default_rng(0).normal(size=(64, 5))
    y = np.zeros(64)
    region(x, y, 64)

    start = time.perf_counter()
    for _ in range(50):
        region(x, y, 64)
    warm = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(50):
        region._map_cache.clear()
        region(x, y, 64)
    cold = time.perf_counter() - start
    print(f"\n50 invocations: warm {warm * 1e3:.1f}ms vs cold "
          f"{cold * 1e3:.1f}ms ({cold / warm:.2f}x)")
    assert warm < cold


# ----------------------------------------------------------------------
# Device dense-op model sensitivity
# ----------------------------------------------------------------------

def test_dense_speedup_sensitivity(tmp_path):
    """The qualitative Fig. 5 story (surrogate wins) must not hinge on
    an aggressive dense-op factor: binomial already wins at 1x (no
    dense advantage), and the factor only scales the margin."""
    from repro.apps.harness import BinomialHarness
    from repro.device import Device
    from repro.nn import Trainer
    from repro.runtime import InferenceEngine

    h = BinomialHarness(tmp_path / "base", n_train=1024, n_test=256,
                        n_steps=64)
    h.collect()
    (xt, yt), (xv, yv) = h.training_arrays()
    build = h.make_builder(xt, yt)
    model = build({"hidden1_features": 64, "hidden2_features": 32})
    Trainer(model, lr=3e-3, batch_size=128, max_epochs=40,
            patience=12).fit(xt, yt, xv, yv)

    rows = []
    for factor in (1.0, 4.0, 8.0, 16.0):
        h.device.dense_speedup = factor
        metrics = h.evaluate(model, repeats=2)
        rows.append({"dense_speedup": factor, "speedup": metrics.speedup})
    print()
    for row in rows:
        print(f"  dense_speedup={row['dense_speedup']:>4}: "
              f"end-to-end {row['speedup']:.1f}x")
    assert rows[0]["speedup"] > 1.0          # wins even with no advantage
    assert rows[-1]["speedup"] > rows[0]["speedup"]
