"""Observation 1 extension — ML surrogates vs classic HPAC techniques.

The paper's Observation 1 compares the surrogate against ParticleFilter's
own *algorithmic* approximation.  HPAC (which HPAC-ML extends) also
offers generic techniques — loop perforation and memoization — so this
bench completes the comparison triangle on two benchmarks:

* ParticleFilter: perforating the particle population (fewer particles)
  vs the CNN surrogate — both against ground truth.
* Binomial Options: perforating the CRR lattice (fewer time steps) and
  input-memoizing the pricing region vs the MLP surrogate.

Expected shape (the paper's thesis): the learned surrogate reaches a
better accuracy/speedup operating point than the generic techniques.
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.apps.binomial.kernel import price_american
from repro.apps.particlefilter.kernel import particle_filter_track
from repro.approx import InputMemo, iteration_mask
from repro.nn import rmse


@pytest.fixture(scope="module")
def pf_rows(store):
    bundle = store.bundle("particlefilter")
    h = bundle.harness
    frames = h.test_video.frames
    truth = h.test_video.truth
    rows = []

    base_start = time.perf_counter()
    base_est = particle_filter_track(frames, 512, seed=1)
    base_time = time.perf_counter() - base_start

    # Perforation: run the filter with a perforated particle population.
    for rate in (0.5, 0.75, 0.9):
        n_kept = int(iteration_mask(512, "rand", rate,
                                    np.random.default_rng(0)).sum())
        start = time.perf_counter()
        est = particle_filter_track(frames, max(8, n_kept), seed=1)
        elapsed = time.perf_counter() - start
        rows.append({"technique": f"perfo(rand:{rate})",
                     "rmse_vs_truth": rmse(est, truth),
                     "speedup": base_time / elapsed})

    best = min(bundle.models, key=lambda m: m.val_loss)
    metrics = h.evaluate(best.model, repeats=2)
    rows.append({"technique": "ml surrogate (CNN)",
                 "rmse_vs_truth": metrics.qoi_error,
                 "speedup": metrics.speedup})
    rows.insert(0, {"technique": "particle filter (baseline)",
                    "rmse_vs_truth": rmse(base_est, truth), "speedup": 1.0})
    return rows


def test_obs1_particlefilter_triangle(pf_rows):
    print()
    print(render_table(pf_rows, title="Observation 1+: ParticleFilter — "
                                      "perforation vs surrogate"))
    surrogate = next(r for r in pf_rows if "surrogate" in r["technique"])
    heaviest_perfo = next(r for r in pf_rows if "0.9" in r["technique"])
    # Aggressive perforation degrades accuracy well past the surrogate.
    assert surrogate["rmse_vs_truth"] < heaviest_perfo["rmse_vs_truth"]
    # The surrogate's speedup dwarfs what particle-dropping can buy.
    assert surrogate["speedup"] > heaviest_perfo["speedup"]


@pytest.fixture(scope="module")
def binomial_rows(store):
    bundle = store.bundle("binomial")
    h = bundle.harness
    opts = h.test_opts
    rows = []

    base_start = time.perf_counter()
    exact = price_american(opts, n_steps=96)
    base_time = time.perf_counter() - base_start

    # Perforation of the lattice: fewer binomial time steps.
    for rate in (0.5, 0.75):
        steps = max(4, int(round(96 * (1 - rate))))
        start = time.perf_counter()
        approx = price_american(opts, n_steps=steps)
        elapsed = time.perf_counter() - start
        rows.append({"technique": f"perfo lattice ({steps} steps)",
                     "rmse": rmse(approx, exact),
                     "speedup": base_time / elapsed})

    # Input memoization over a clustered portfolio: many positions in
    # the same 32 listed contracts (sub-tolerance jitter) — the access
    # pattern memoization targets.
    rng = np.random.default_rng(7)
    from repro.apps.binomial.kernel import generate_options
    series = generate_options(32, seed=11)
    picks = rng.integers(0, len(series), size=len(opts))
    clustered = series[picks] + rng.normal(scale=1e-4,
                                           size=(len(opts), 5))
    clustered_exact = price_american(clustered, n_steps=96)
    # Fair baseline: the same per-option region without the cache.
    start = time.perf_counter()
    for opt in clustered:
        price_american(opt[None], n_steps=96)
    loop_base = time.perf_counter() - start
    memo = InputMemo(tolerance=0.01)
    start = time.perf_counter()
    memo_prices = np.array([
        memo(lambda row: price_american(row[None], n_steps=96)[0], opt)
        for opt in clustered])
    elapsed = time.perf_counter() - start
    rows.append({"technique": f"memo(in:0.01) hit_rate="
                              f"{memo.hit_rate:.2f}",
                 "rmse": rmse(memo_prices, clustered_exact),
                 "speedup": loop_base / elapsed})

    best = min(bundle.models, key=lambda m: m.val_loss)
    metrics = h.evaluate(best.model, repeats=2)
    rows.append({"technique": "ml surrogate (MLP)",
                 "rmse": metrics.qoi_error, "speedup": metrics.speedup})
    return rows


def test_obs1_binomial_triangle(binomial_rows):
    print()
    print(render_table(binomial_rows,
                       title="Observation 1+: Binomial Options — classic "
                             "techniques vs surrogate"))
    surrogate = next(r for r in binomial_rows if "surrogate" in r["technique"])
    # The surrogate's speedup beats every classic technique measured.
    others = [r for r in binomial_rows if "surrogate" not in r["technique"]]
    assert surrogate["speedup"] > max(r["speedup"] for r in others)
    # And its error stays within the useful band (paper cutoff < 10).
    assert surrogate["rmse"] < 10.0
