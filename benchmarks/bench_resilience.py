"""Resilience benchmark: availability and recovery under injected faults.

Runs the scripted fault suite from the resilience subsystem
(:mod:`repro.resilience`) against live serving components and measures
the three headline properties of the self-healing stack:

* **availability** — the fraction of invocations served (finite
  outputs, no exception escaping to the application) while faults are
  firing.  The circuit breaker plus accurate-path fallback must keep
  this at 100%.
* **QoI error held** — the relative L2 error of everything served
  during a fault burst stays bounded by the surrogate's own fault-free
  error (fallbacks serve the *accurate* kernel, which can only help).
* **time to recovery** — how long each component stays degraded after
  the fault clears: breaker re-close latency after a NaN burst,
  retrain wall time after repeated trainer crashes, and swap retry
  latency after a corrupted hot-swap candidate is rolled back.

Scenarios:

* **nan_burst** — a guarded infer region whose surrogate emits NaN for
  a scripted window; the breaker demotes it to the accurate path and
  probes it back to health after the burst.
* **trainer_crashes** — a ``RetrainWorker`` whose trainer crashes three
  times before succeeding; failures are contained per-spec (serving
  continues throughout) and the fourth attempt retrains and hot-swaps.
* **corrupt_swap** — a hot-swap candidate truncated in flight; the
  checksum verifier rejects it, the deployed model keeps serving
  untouched, and a clean retry lands the swap.
* **determinism** — the same seed replays a bit-identical fault
  schedule (the property every test above leans on).

Results land in ``BENCH_resilience.json`` (schema
``bench_resilience/v1``).  Quick mode additionally asserts the
acceptance floor ``availability >= 0.99``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.resilience import (HOT_SWAP, SURROGATE, TRAINER, CircuitBreaker,
                              FaultInjector)
from repro.runtime import DataCollector, EventLog, InferenceEngine
from repro.serving import HotSwapError, RetrainWorker, hot_swap_model

SCHEMA = "bench_resilience/v1"


def _relative(pred: np.ndarray, ref: np.ndarray) -> float:
    pred = np.asarray(pred, dtype=np.float64).ravel()
    ref = np.asarray(ref, dtype=np.float64).ravel()
    return float(np.linalg.norm(pred - ref) /
                 (np.linalg.norm(ref) + 1e-12))


def _linear_model(weight: float) -> Sequential:
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    return model


def _infer_region(workdir: Path, name: str, *, weight: float,
                  scale: float = 1.0):
    """2->1 infer-mode region: surrogate predicts ``weight * row_sum``,
    the accurate kernel computes ``scale * row_sum``."""
    save_model(_linear_model(weight), workdir / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) \\
    db("{workdir}/{name}.rh5") model("{workdir}/{name}.rnm")
"""
    log = EventLog()

    @approx_ml(src, name=name, event_log=log)
    def region(x, y, N):
        y[:N] = x[:N].sum(axis=1) * scale

    return region, log


# ----------------------------------------------------------------------
# Scenario: surrogate NaN burst under a circuit breaker
# ----------------------------------------------------------------------

def scenario_nan_burst(workdir: Path, *, invocations: int,
                       seed: int) -> dict:
    # A near-perfect surrogate (1% off the kernel) so "QoI error held"
    # is a real statement: fallbacks serve the exact kernel, so the
    # under-burst error can only be <= the fault-free surrogate error.
    region, _ = _infer_region(workdir / "burst", "burst", weight=1.01)
    breaker = CircuitBreaker(failure_threshold=2, quarantine_threshold=6,
                             recovery_successes=2, probe_interval=4,
                             cooldown=8, name="burst")
    region.config.breaker = breaker

    # The window indexes surrogate *forwards*, not invocations: once the
    # breaker opens, only probe forwards advance the counter, so a burst
    # of 6 faulted forwards exercises the full demote/quarantine/probe/
    # recover cycle within the invocation budget.
    burst_start = invocations // 4
    burst_stop = burst_start + 6
    injector = FaultInjector(seed=seed)
    injector.script(SURROGATE, "nan", start=burst_start, stop=burst_stop)

    rng = np.random.default_rng(seed)
    chunk = 8
    served = 0
    failures = 0
    states = []
    outputs = []
    refs = []
    t0 = time.perf_counter()
    with injector:
        for _ in range(invocations):
            x = rng.random((chunk, 2)) + 0.5
            y = np.full(chunk, np.nan)
            try:
                region(x, y, chunk)
            except Exception:
                failures += 1
            else:
                if np.all(np.isfinite(y)):
                    served += 1
                else:
                    failures += 1
            states.append(breaker.state)
            outputs.append(y.copy())
            refs.append(x.sum(axis=1))
    wall = time.perf_counter() - t0

    unhealthy = [i for i, s in enumerate(states)
                 if s != CircuitBreaker.HEALTHY]
    degraded_span = (unhealthy[-1] + 1 - unhealthy[0]) if unhealthy else 0
    # Fault-free reference error of this surrogate: weight 1.01 vs 1.0.
    snap = breaker.snapshot()
    return {
        "invocations": invocations,
        "burst_window": [burst_start, burst_stop],
        "availability": served / invocations,
        "unserved": failures,
        "qoi_relative_error": _relative(np.concatenate(outputs),
                                        np.concatenate(refs)),
        "fault_free_relative_error": 0.01,
        "faults_fired": len(injector.fired),
        "fallbacks": snap["fallbacks"],
        "breaker_transitions": [list(t) for t in breaker.transitions],
        "degraded_span_invocations": degraded_span,
        "recovered": states[-1] == CircuitBreaker.HEALTHY,
        "seconds": wall,
    }


# ----------------------------------------------------------------------
# Scenario: trainer crashes x3, recovery on the fourth attempt
# ----------------------------------------------------------------------

def scenario_trainer_crashes(workdir: Path, *, rows: int, epochs: int,
                             seed: int) -> dict:
    workdir = workdir / "trainer"
    workdir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed)
    x = rng.random((rows, 2))
    y = (2.0 * x[:, 0] + 3.0 * x[:, 1]).reshape(-1, 1)
    save_model(_linear_model(0.0), workdir / "w.rnm")

    engine = InferenceEngine()
    worker = RetrainWorker(seed=seed)
    spec = worker.watch(
        "w", workdir / "w.rh5", workdir / "w.rnm",
        build=lambda xt, yt: Sequential(
            Linear(2, 1, rng=np.random.default_rng(1))),
        trainer_kwargs=dict(lr=0.1, batch_size=32, max_epochs=epochs,
                            patience=max(epochs // 2, 10)),
        min_new_rows=16, engines=[engine])
    coll = DataCollector(workdir / "w.rh5")
    coll.record("w", x, y, 0.01)
    coll.close()

    injector = FaultInjector(seed=seed)
    injector.script(TRAINER, "raise", at=[0, 1, 2])   # crash x3, then ok

    probe = x[:16]
    serving_ok = 0
    polls = 0
    events = []
    t0 = time.perf_counter()
    with injector:
        while not events and polls < 8:
            events = worker.poll()
            polls += 1
            # Serving rides through every failed retrain attempt: the
            # deployed (stale) model keeps answering.
            out = engine.infer(workdir / "w.rnm", probe)
            if np.all(np.isfinite(out)):
                serving_ok += 1
    recovery_seconds = time.perf_counter() - t0

    pred = engine.infer(workdir / "w.rnm", x).ravel()
    return {
        "rows": rows,
        "crashes_injected": 3,
        "polls_to_recovery": polls,
        "recovered": len(events) == 1,
        "availability": serving_ok / polls,
        "errors_recorded": len(worker.errors),
        "consecutive_failures_after": spec.consecutive_failures,
        "recovery_seconds": recovery_seconds,
        "post_retrain_relative_error": _relative(pred, y),
        "val_loss": events[0].val_loss if events else None,
    }


# ----------------------------------------------------------------------
# Scenario: corrupt candidate at hot-swap time -> rollback -> retry
# ----------------------------------------------------------------------

def scenario_corrupt_swap(workdir: Path, *, seed: int) -> dict:
    workdir = workdir / "swap"
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "m.rnm"
    save_model(_linear_model(1.0), path)
    engine = InferenceEngine()
    x = np.ones((4, 2))
    np.testing.assert_allclose(engine.infer(path, x).ravel(), 2.0)

    injector = FaultInjector(seed=seed)
    injector.script(HOT_SWAP, "truncate", at=[0], keep=0.5)

    rolled_back = False
    served_during = 0
    attempts = 4
    with injector:
        for _ in range(attempts):
            try:
                hot_swap_model(_linear_model(10.0), path, engines=[engine],
                               verify_inputs=x)
            except HotSwapError:
                rolled_back = True
            out = engine.infer(path, x).ravel()
            if np.all(np.isfinite(out)):
                served_during += 1

    # After the faulted attempt the retry landed: new weights serve.
    t0 = time.perf_counter()
    final = engine.infer(path, x).ravel()
    swap_landed = bool(np.allclose(final, 20.0))
    return {
        "attempts": attempts,
        "rolled_back": rolled_back,
        "availability": served_during / attempts,
        "no_tmp_litter": not path.with_name(path.name + ".swap").exists(),
        "swap_landed": swap_landed,
        "retry_seconds": time.perf_counter() - t0,
    }


# ----------------------------------------------------------------------
# Scenario: seeded schedules replay bit-identically
# ----------------------------------------------------------------------

def scenario_determinism(*, seed: int) -> dict:
    def drive():
        injector = FaultInjector(seed=seed)
        injector.script(SURROGATE, "nan", probability=0.25)
        injector.script(TRAINER, "raise", at=[1, 3], )
        injector.script(HOT_SWAP, "corrupt", every=5)
        from repro.resilience import faults as faults_mod
        with injector:
            for _ in range(64):
                faults_mod.fire(SURROGATE)
            for _ in range(6):
                faults_mod.fire(TRAINER)
            for _ in range(15):
                faults_mod.fire(HOT_SWAP)
        return injector.schedule()

    first, second = drive(), drive()
    return {
        "schedule_length": len(first),
        "schedules_identical": first == second,
        "first_entries": [list(e) for e in first[:5]],
    }


# ----------------------------------------------------------------------

def run_benchmark(workdir, *, quick: bool = False) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    invocations = 120 if quick else 400
    rows = 64 if quick else 256
    epochs = 30 if quick else 80
    seed = 0

    nan_burst = scenario_nan_burst(workdir, invocations=invocations,
                                   seed=seed)
    trainer = scenario_trainer_crashes(workdir, rows=rows, epochs=epochs,
                                       seed=seed)
    swap = scenario_corrupt_swap(workdir, seed=seed)
    determinism = scenario_determinism(seed=seed)

    availability = min(nan_burst["availability"], trainer["availability"],
                       swap["availability"])
    results = {
        "schema": SCHEMA,
        "config": {"quick": quick, "invocations": invocations,
                   "rows": rows, "epochs": epochs, "seed": seed},
        "nan_burst": nan_burst,
        "trainer_crashes": trainer,
        "corrupt_swap": swap,
        "determinism": determinism,
        "summary": {
            "availability": availability,
            "availability_floor_met": bool(availability >= 0.99),
            "qoi_error_held": bool(
                nan_burst["qoi_relative_error"]
                <= nan_burst["fault_free_relative_error"] + 1e-9),
            "breaker_recovered": nan_burst["recovered"],
            "trainer_recovered": trainer["recovered"],
            "swap_rolled_back_and_landed": bool(
                swap["rolled_back"] and swap["swap_landed"]),
            "schedules_identical": determinism["schedules_identical"],
        },
    }
    if quick:
        # The acceptance floor the CI lane enforces.
        assert availability >= 0.99, (
            f"availability {availability:.4f} below the 0.99 floor")
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_resilience.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, quick=args.quick)
    else:
        results = run_benchmark(args.workdir, quick=args.quick)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    burst = results["nan_burst"]
    print(f"nan_burst: availability {burst['availability']:.4f}, QoI "
          f"error {burst['qoi_relative_error']:.4g} (fault-free "
          f"{burst['fault_free_relative_error']:.4g}), degraded for "
          f"{burst['degraded_span_invocations']} invocations, "
          f"recovered={burst['recovered']}")
    trn = results["trainer_crashes"]
    print(f"trainer_crashes: {trn['crashes_injected']} crashes, recovered "
          f"on poll {trn['polls_to_recovery']} in "
          f"{trn['recovery_seconds']:.2f} s, serving availability "
          f"{trn['availability']:.4f}, post-retrain error "
          f"{trn['post_retrain_relative_error']:.3g}")
    swap = results["corrupt_swap"]
    print(f"corrupt_swap: rolled_back={swap['rolled_back']}, availability "
          f"{swap['availability']:.4f}, retry landed={swap['swap_landed']}")
    summary = results["summary"]
    print(f"summary: availability {summary['availability']:.4f} "
          f"(floor met: {summary['availability_floor_met']}), "
          f"schedules identical: {summary['schedules_identical']}")
    return results


if __name__ == "__main__":
    main()
