"""Fleet GEMM benchmark: stacked cross-model forwards + vectorized NAS.

Measures the fleet execution subsystem across two scenarios:

* **forward** — K same-architecture mlp2 surrogates (Table IV shapes)
  answered by one stacked ``(K, B, in) @ (K, in, out)`` fleet forward
  versus K sequential compiled forwards.  The stacked outputs must be
  **bitwise** equal to each member's own plan (asserted, not just
  recorded); the headline acceptance number is the K=8 throughput
  ratio on the small-surrogate shape, where per-call Python dispatch
  dominates and batching pays the most.
* **nas** — ``NestedSearch(population=8)`` versus the exact sequential
  search (``population=1``) on a fixed-seed Table IV mlp2 slice: the
  inner BO loop trains rounds of eight hyperparameter candidates in
  lockstep through one :class:`~repro.nn.FleetTrainer`.  Records
  end-to-end wall clock, the speedup, and whether both modes selected
  the same best architecture.

Results land in ``BENCH_fleet.json`` (schema ``bench_fleet/v1``).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.nn import compile_fleet_inference, compile_inference
from repro.search.builders import build_mlp2
from repro.search.nested import NestedSearch
from repro.search.space import Integer, Space

SCHEMA = "bench_fleet/v1"

#: Table IV mlp2 instances: a serving-sized surrogate (the regime the
#: fleet lane targets — many tenants answering small chunked calls),
#: the best architecture the NAS slice below selects, and the largest
#: best-found Table IV shape (GEMM-bound; batching gains less there,
#: recorded for honesty).
FORWARD_SHAPES = {
    "mlp2_16x8": (16, 8),
    "mlp2_57x37": (57, 37),
    "mlp2_418x333": (418, 333),
}
#: Per-call row counts: serving invocations arrive in small chunks
#: (the multi-tenant case the fleet amortizes), up to batched waves.
FORWARD_BATCHES = (4, 16, 64)
#: The acceptance cell: serving-sized surrogate, chunked invocations.
HEADLINE = ("mlp2_16x8", 4)
FLEET_SIZES = (2, 4, 8, 16)


def _best_of(fn, passes: int) -> float:
    """Min wall time across ``passes`` runs of ``fn`` (noise floor)."""
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Forward throughput: fleet vs sequential compiled plans
# ----------------------------------------------------------------------

def bench_forward(*, quick: bool) -> dict:
    repeats = 50 if quick else 300
    passes = 3
    in_features = 6
    rng = np.random.default_rng(0)
    shapes = {}
    for label, (h1, h2) in FORWARD_SHAPES.items():
        cfg = {"hidden1_features": h1, "hidden2_features": h2}
        rows = {}
        for batch in FORWARD_BATCHES:
            x = rng.normal(size=(batch, in_features))
            for k in FLEET_SIZES:
                models = [build_mlp2(cfg, in_features, 1, seed=s)
                          for s in range(k)]
                singles = [compile_inference(m) for m in models]
                fleet = compile_fleet_inference(models)

                stacked = fleet(x)                   # warm + parity
                worst = 0.0
                for m, plan in enumerate(singles):
                    worst = max(worst, float(np.abs(stacked[m]
                                                    - plan(x)).max()))
                assert worst == 0.0, (f"fleet forward not bitwise at "
                                      f"{label} B={batch} K={k}: {worst}")

                def run_sequential():
                    for _ in range(repeats):
                        for plan in singles:
                            plan(x)

                def run_fleet():
                    for _ in range(repeats):
                        fleet(x)

                seq_s = _best_of(run_sequential, passes)
                fleet_s = _best_of(run_fleet, passes)
                rows[f"b{batch}_k{k}"] = {
                    "batch": batch,
                    "k": k,
                    "sequential_seconds": seq_s,
                    "fleet_seconds": fleet_s,
                    "speedup": seq_s / fleet_s,
                    "rows_per_second_sequential":
                        batch * k * repeats / seq_s,
                    "rows_per_second_fleet":
                        batch * k * repeats / fleet_s,
                    "max_abs_diff": worst,
                }
        shapes[label] = rows
    head_shape, head_batch = HEADLINE
    return {
        "batches": list(FORWARD_BATCHES),
        "repeats": repeats,
        "timing_passes": passes,
        "fleet_sizes": list(FLEET_SIZES),
        "shapes": shapes,
        "headline": {"shape": head_shape, "batch": head_batch, "k": 8},
        "headline_speedup_k8":
            shapes[head_shape][f"b{head_batch}_k8"]["speedup"],
    }


# ----------------------------------------------------------------------
# NAS: population-mode inner loop vs exact sequential search
# ----------------------------------------------------------------------

def _nas_slice(quick: bool):
    """Fixed-seed Table IV mlp2 slice: 1-D sin(6x) regression over the
    small-surrogate width range, where candidate training is dominated
    by per-op Python overhead the fleet amortizes."""
    rng = np.random.default_rng(7)
    n = 300 if quick else 600
    x = rng.uniform(-2.0, 2.0, size=(n, 1))
    y = np.sin(6.0 * x) + 0.01 * rng.normal(size=x.shape)
    split = int(n * 0.8)
    space = Space([Integer("hidden1_features", 5, 64),
                   Integer("hidden2_features", 0, 64)])

    def build(arch, dropout=0.0, seed=0):
        return build_mlp2(arch, 1, 1, dropout=dropout, seed=seed)

    return space, build, x[:split], y[:split], x[split:], y[split:]


def bench_nas(*, quick: bool) -> dict:
    space, build, xt, yt, xv, yv = _nas_slice(quick)
    n_inner = 8 if quick else 16
    max_epochs = 12 if quick else 24
    n_outer = 2 if quick else 4

    runs = {}
    for label, population in (("sequential", 1), ("population8", 8)):
        search = NestedSearch(space, build, xt, yt, xv, yv,
                              n_inner=n_inner, max_epochs=max_epochs,
                              seed=3, population=population)
        start = time.perf_counter()
        result = search.run(n_outer=n_outer, n_init=n_outer)
        seconds = time.perf_counter() - start
        best = result.best_by_error()
        runs[label] = {
            "population": population,
            "seconds": seconds,
            "trials": len(result.trials),
            "best_arch": best.arch,
            "best_val_error": best.val_error,
            "compiled_fraction": result.compiled_fraction(),
            "max_fleet_size": max(t.fleet_size for t in result.trials),
        }
    seq, pop = runs["sequential"], runs["population8"]
    return {
        "n_inner": n_inner,
        "n_outer": n_outer,
        "max_epochs": max_epochs,
        "runs": runs,
        "speedup": seq["seconds"] / pop["seconds"],
        "same_best_arch": seq["best_arch"] == pop["best_arch"],
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def run_benchmark(*, quick: bool) -> dict:
    forward = bench_forward(quick=quick)
    nas = bench_nas(quick=quick)
    return {
        "schema": SCHEMA,
        "config": {"quick": quick},
        "forward": forward,
        "nas": nas,
        "summary": {
            "forward_speedup_k8": forward["headline_speedup_k8"],
            "forward_bitwise": True,           # asserted in bench_forward
            "nas_speedup": nas["speedup"],
            "nas_same_best_arch": nas["same_best_arch"],
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    results = run_benchmark(quick=args.quick)
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    for label, rows in results["forward"]["shapes"].items():
        rates = " | ".join(f"{cell} {row['speedup']:.2f}x"
                           for cell, row in rows.items())
        print(f"forward[{label}]: {rates}")
    print(f"forward headline (serving-sized, K=8): "
          f"{results['forward']['headline_speedup_k8']:.2f}x")
    nas = results["nas"]
    seq, pop = nas["runs"]["sequential"], nas["runs"]["population8"]
    print(f"nas: sequential {seq['seconds']:.2f} s, population=8 "
          f"{pop['seconds']:.2f} s ({nas['speedup']:.2f}x), best arch "
          f"{seq['best_arch']} vs {pop['best_arch']} "
          f"(same={nas['same_best_arch']}), max fleet size "
          f"{pop['max_fleet_size']})")
    return results


if __name__ == "__main__":
    main()
