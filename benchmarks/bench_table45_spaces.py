"""Tables IV & V — the NAS and hyperparameter search spaces.

Validates the spaces match the paper's bounds, that sampled
architectures are buildable, and times the BO machinery (GP fit +
acquisition proposal) that drives the §V-C search.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.nn import Tensor
from repro.search import (BayesianOptimizer, GaussianProcess, Space,
                          arch_space_for, builder_for, hyperparameter_space)

BUILD_KWARGS = {
    "minibude": {},
    "binomial": {},
    "bonds": {},
    "miniweather": {"nz": 16, "nx": 32},
    "particlefilter": {"height": 32, "width": 32},
}

SAMPLE_INPUT = {
    "minibude": (2, 6),
    "binomial": (2, 5),
    "bonds": (2, 5),
    "miniweather": (1, 4, 16, 32),
    "particlefilter": (1, 1, 32, 32),
}


def test_table4_spaces_render():
    rows = []
    for name in BUILD_KWARGS:
        space = arch_space_for(name)
        for p in space.params:
            bounds = getattr(p, "values", None) or (p.lo, p.hi)
            rows.append({"benchmark": name, "parameter": p.name,
                         "range": str(bounds)[:42]})
    print()
    print(render_table(rows, title="Table IV: architecture search spaces"))
    assert len(rows) >= 14


def test_table5_space_render():
    rows = [{"parameter": p.name,
             "range": f"[{p.lo}, {p.hi}]",
             "scale": "log" if getattr(p, "log", False) else "linear"}
            for p in hyperparameter_space().params]
    print()
    print(render_table(rows, title="Table V: hyperparameter space"))
    assert len(rows) == 4


@pytest.mark.parametrize("name", list(BUILD_KWARGS))
def test_sampled_architectures_are_buildable(name):
    """Every (or near-every) sampled Table IV point builds and runs."""
    space = arch_space_for(name)
    build = builder_for(name)
    rng = np.random.default_rng(42)
    x = np.zeros(SAMPLE_INPUT[name])
    built = 0
    for _ in range(12):
        cfg = space.sample(rng)
        try:
            model = build(cfg, **BUILD_KWARGS[name])
        except ValueError:
            continue   # infeasible corner (e.g. conv collapses the frame)
        out = model(Tensor(x))
        assert np.all(np.isfinite(out.numpy()))
        built += 1
    assert built >= 8


@pytest.mark.benchmark(group="table45-bo")
def bench_gp_fit_predict(benchmark, rng):
    x = rng.random((40, 4))
    y = np.sin(x).sum(axis=1)

    def fit_predict():
        gp = GaussianProcess().fit(x, y)
        return gp.predict(rng.random((128, 4)))

    mean, std = benchmark(fit_predict)
    assert mean.shape == (128,)


@pytest.mark.benchmark(group="table45-bo")
def bench_bo_iteration(benchmark):
    space = arch_space_for("binomial")

    def run_short_bo():
        bo = BayesianOptimizer(space, n_init=4, seed=0)
        return bo.minimize(
            lambda c: abs(c["hidden1_features"] - 200) / 512,
            n_iterations=10)

    result = benchmark(run_short_bo)
    assert result.best_value < 0.4
