"""Microbenchmark: compiled training fast path vs the autodiff graph.

Measures the PR-4 perf story end to end:

* **epoch time** — ``Trainer._epoch`` through the graph path (autodiff
  ``Tensor`` minibatches + Python-loop Adam) vs the compiled plan
  (fused forward/backward + vectorized optimizer), over the Table IV
  MLP deployment shapes wrapped harness-style
  (Standardize/Destandardize) at Table V batch sizes 32-128 — the half
  of the batch range where the BO inner loop's Python overhead
  dominates; larger batches converge toward the BLAS floor both paths
  share and are reported as informational ``wide`` rows outside the
  headline geomean;
* **parity** — per-shape gradient parity (<= 1e-10) on a training
  batch and fixed-seed ``Trainer.fit`` equivalence (identical loss
  histories and early-stopping epoch counts);
* **retrain/hot-swap** — end-to-end ``RetrainWorker.retrain_now`` wall
  time (DB load -> train -> serialize -> atomic swap) with the
  compiled trainer vs the graph trainer, the drift-recovery latency
  the serving layer pays in-process.

Results land in ``BENCH_training.json`` (schema
``bench_training_fastpath/v1``).  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_training_fastpath.py
    PYTHONPATH=src python benchmarks/bench_training_fastpath.py --quick
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.nn import (GRU, Conv1d, Destandardize, Flatten, Linear, ReLU,
                      Sequential, Standardize, Tensor, Trainer,
                      compile_training, mse_loss)
from repro.search.builders import build_minibude_mlp, build_mlp2

SCHEMA = "bench_training_fastpath/v1"

#: Table IV MLP deployment shapes (same labels as BENCH_inference).
TRAIN_SHAPES = [
    ("minibude-xs", "minibude",
     {"num_hidden_layers": 2, "hidden1_size": 64, "feature_multiplier": 0.6}),
    ("minibude-s", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 128, "feature_multiplier": 0.8}),
    ("binomial-xs", "binomial",
     {"hidden1_features": 12, "hidden2_features": 0}),
    ("binomial-s", "binomial",
     {"hidden1_features": 48, "hidden2_features": 24}),
    ("bonds-s", "bonds",
     {"hidden1_features": 48, "hidden2_features": 24}),
]
#: Informational rows: wide shape / large batch, GEMM-bound on both
#: paths — excluded from the headline geomean.
WIDE_SHAPES = [
    ("binomial-m", "binomial",
     {"hidden1_features": 160, "hidden2_features": 96}),
]

#: Sequence/conv shapes: the GRU + Conv1d lowerings the plan-IR registry
#: added — these previously fell back to the pure-Python graph for
#: training.  Informational rows (outside the MLP headline geomean);
#: the acceptance bit is >= 2x on at least one recurrent shape and no
#: silent fallback.
SEQ_SHAPES = [
    ("gru-s", "gru",
     {"hidden_size": 16, "seq_len": 8, "features": 6}),
    ("gru-m", "gru",
     {"hidden_size": 32, "seq_len": 16, "features": 6}),
    ("conv1d-s", "conv1d",
     {"channels": 8, "kernel": 3, "length": 32, "in_channels": 4}),
]

#: Table V batch sizes covered by the headline geomean.
BATCH_SIZES = (32, 64, 128)
WIDE_BATCH_SIZES = (128, 256)
SEQ_BATCH_SIZES = (64,)

_IN_FEATURES = {"minibude": 6, "binomial": 5, "bonds": 5}
_OUT_FEATURES = {"minibude": 1, "binomial": 1, "bonds": 2}


def build_shape(benchmark: str, arch: dict, seed: int = 0):
    """Harness-style surrogate: Standardize -> Table IV core -> Destandardize
    (what ``RetrainWorker`` and the BO inner loop actually train)."""
    rng = np.random.default_rng(seed)
    if benchmark == "gru":
        fin, hs = arch["features"], arch["hidden_size"]
        return Sequential(Standardize(np.zeros(fin), np.ones(fin)),
                          GRU(fin, hs, rng=rng), Linear(hs, 1, rng=rng),
                          Destandardize(np.zeros(1), np.ones(1)))
    if benchmark == "conv1d":
        cin, c, k = arch["in_channels"], arch["channels"], arch["kernel"]
        out_l = arch["length"] - k + 1
        return Sequential(Conv1d(cin, c, k, rng=rng), ReLU(), Flatten(),
                          Linear(c * out_l, 1, rng=rng))
    fin, fout = _IN_FEATURES[benchmark], _OUT_FEATURES[benchmark]
    if benchmark == "minibude":
        core = build_minibude_mlp(arch, in_features=fin, out_features=fout,
                                  seed=seed)
    else:
        core = build_mlp2(arch, fin, fout, seed=seed)
    return Sequential(Standardize(np.zeros(fin), np.ones(fin)), *core,
                      Destandardize(np.zeros(fout), np.ones(fout)))


def _train_data(benchmark: str, n_rows: int, seed: int = 0, arch=None):
    rng = np.random.default_rng(seed)
    if benchmark == "gru":
        x = rng.normal(size=(n_rows, arch["seq_len"], arch["features"]))
        return x, rng.normal(size=(n_rows, 1))
    if benchmark == "conv1d":
        x = rng.normal(size=(n_rows, arch["in_channels"], arch["length"]))
        return x, rng.normal(size=(n_rows, 1))
    x = rng.normal(size=(n_rows, _IN_FEATURES[benchmark]))
    y = rng.normal(size=(n_rows, _OUT_FEATURES[benchmark]))
    return x, y


def _epoch_seconds(model, x, y, batch_size, compiled, repeats):
    trainer = Trainer(model, lr=3e-3, batch_size=batch_size, seed=0,
                      compiled=compiled)
    trainer._epoch(x, y)                  # warm-up (plan compile, buffers)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer._epoch(x, y)
        best = min(best, time.perf_counter() - start)
    return best, trainer.compiled_active, trainer.compile_fallback


def _grad_parity(benchmark, arch, batch_size, seed=0) -> float:
    """Max abs gradient difference, graph vs compiled, on one batch."""
    x, y = _train_data(benchmark, batch_size, seed=7, arch=arch)
    graph = build_shape(benchmark, arch, seed=seed)
    graph.train()
    loss = mse_loss(graph(Tensor(x)), Tensor(y))
    loss.backward()
    plan = compile_training(build_shape(benchmark, arch, seed=seed),
                            mse_loss)
    plan.train_batch(x, y)
    worst = 0.0
    for p, view in zip(graph.parameters(), plan.grad_views):
        worst = max(worst, float(np.abs(p.grad - view).max()))
    return worst


def bench_epochs(n_rows: int, repeats: int, shapes, batch_sizes,
                 headline: bool, category: str = "mlp") -> list[dict]:
    rows = []
    for label, benchmark, arch in shapes:
        x, y = _train_data(benchmark, n_rows, arch=arch)
        for bs in batch_sizes:
            graph_s, _, _ = _epoch_seconds(build_shape(benchmark, arch),
                                           x, y, bs, False, repeats)
            compiled_s, active, fallback = _epoch_seconds(
                build_shape(benchmark, arch), x, y, bs, True, repeats)
            if not active:
                # A shape in this grid silently training on the graph
                # would report a fake 1.0x "speedup" — fail loudly.
                raise RuntimeError(f"{label} fell back to the graph "
                                   f"path: {fallback}")
            rows.append({
                "shape": label,
                "benchmark": benchmark,
                "arch": arch,
                "batch_size": bs,
                "rows": n_rows,
                "graph_ms": graph_s * 1e3,
                "compiled_ms": compiled_s * 1e3,
                "speedup": graph_s / compiled_s,
                "grad_parity_max_abs": _grad_parity(benchmark, arch, bs),
                "headline": headline,
                "category": category,
                "compiled_active": active,
            })
    return rows


def bench_fit_equivalence(n_rows: int, shapes, max_epochs: int = 8) -> list[dict]:
    """Fixed-seed Trainer.fit on both paths: histories must coincide."""
    rows = []
    for label, benchmark, arch in shapes:
        x, y = _train_data(benchmark, n_rows, arch=arch)
        xv, yv = _train_data(benchmark, max(n_rows // 4, 16), seed=5,
                             arch=arch)
        results = []
        for compiled in (False, True):
            model = build_shape(benchmark, arch, seed=3)
            trainer = Trainer(model, lr=3e-3, weight_decay=1e-3,
                              batch_size=64, max_epochs=max_epochs,
                              patience=3, seed=1, compiled=compiled)
            results.append((trainer.fit(x, y, xv, yv), trainer))
        (rg, _), (rc, tc) = results
        max_val = max((abs(a["val"] - b["val"])
                       for a, b in zip(rg.history, rc.history)),
                      default=0.0)
        rows.append({
            "shape": label,
            "compiled_active": tc.compiled_active,
            "epochs_graph": rg.epochs_run,
            "epochs_compiled": rc.epochs_run,
            "epochs_match": rg.epochs_run == rc.epochs_run,
            "max_val_loss_diff": max_val,
        })
    return rows


def bench_retrain_hot_swap(workdir: Path, *, quick: bool,
                           epochs: int) -> dict:
    """End-to-end retrain->hot-swap wall time, compiled vs graph trainer."""
    from repro.apps.harness import harness_for
    from repro.serving import RetrainWorker

    params = dict(n_train=512, n_test=128, n_steps=16) if quick \
        else dict(n_train=2048, n_test=512, n_steps=64)
    harness = harness_for("binomial", workdir / "retrain", seed=0, **params)
    harness.collect()
    (xt, yt), _ = harness.training_arrays()
    arch = {"hidden1_features": 48, "hidden2_features": 24}

    def build(x, y):
        return harness.make_builder(x, y)(arch, seed=11)

    out = {}
    for mode, compiled in (("graph", False), ("compiled", True)):
        worker = RetrainWorker(seed=1)
        worker.watch("binomial", harness.db_path,
                     workdir / f"retrain-{mode}.rnm", build=build,
                     trainer_kwargs=dict(lr=3e-3, batch_size=128,
                                         max_epochs=epochs,
                                         patience=epochs,
                                         compiled=compiled))
        event = worker.retrain_now("binomial")
        out[mode] = {"seconds": event.seconds, "rows": event.rows,
                     "val_loss": event.val_loss}
    out["speedup"] = out["graph"]["seconds"] / out["compiled"]["seconds"]
    out["epochs"] = epochs
    # The two trainers follow identical trajectories, so the retrained
    # surrogates must agree (swap quality is unchanged, only faster).
    out["val_loss_diff"] = abs(out["graph"]["val_loss"]
                               - out["compiled"]["val_loss"])
    return out


def run_benchmark(workdir, *, quick: bool = False, n_rows: int = 2048,
                  repeats: int = 5, retrain_epochs: int = 30) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    shapes = TRAIN_SHAPES[:3] if quick else TRAIN_SHAPES
    batch_sizes = BATCH_SIZES[:2] if quick else BATCH_SIZES
    epochs_rows = bench_epochs(n_rows, repeats, shapes, batch_sizes,
                               headline=True)
    if not quick:
        epochs_rows += bench_epochs(n_rows, repeats, WIDE_SHAPES,
                                    WIDE_BATCH_SIZES, headline=False,
                                    category="wide")
    # Every GRU/Conv1d shape always runs (quick included) so the CI
    # smoke lane catches a silent graph fallback for sequence shapes.
    epochs_rows += bench_epochs(max(n_rows // 2, 256), repeats, SEQ_SHAPES,
                                SEQ_BATCH_SIZES, headline=False,
                                category="sequence")
    equivalence = bench_fit_equivalence(min(n_rows, 512), shapes)
    retrain = bench_retrain_hot_swap(workdir, quick=quick,
                                     epochs=retrain_epochs)

    headline = [r["speedup"] for r in epochs_rows if r["headline"]]
    geomean = math.exp(sum(math.log(s) for s in headline) / len(headline))
    seq_rows = [r for r in epochs_rows if r["category"] == "sequence"]
    recurrent = [r["speedup"] for r in seq_rows if r["benchmark"] == "gru"]
    summary = {
        "epoch_speedup_geomean": geomean,
        "epoch_speedup_best": max(headline),
        "epoch_speedup_worst": min(headline),
        "grad_parity_max_abs": max(r["grad_parity_max_abs"]
                                   for r in epochs_rows),
        "all_compiled_active": all(r["compiled_active"]
                                   for r in equivalence),
        "early_stop_epochs_match": all(r["epochs_match"]
                                       for r in equivalence),
        "max_val_loss_diff": max(r["max_val_loss_diff"]
                                 for r in equivalence),
        "retrain_hot_swap_speedup": retrain["speedup"],
        "sequence_compiled_active": all(r["compiled_active"]
                                        for r in seq_rows),
        "recurrent_epoch_speedup_best": max(recurrent),
        "sequence_epoch_speedup_geomean": math.exp(
            sum(math.log(r["speedup"]) for r in seq_rows) / len(seq_rows)),
    }
    return {
        "schema": SCHEMA,
        "config": {"quick": quick, "n_rows": n_rows, "repeats": repeats,
                   "retrain_epochs": retrain_epochs,
                   "batch_sizes": list(batch_sizes)},
        "epochs": epochs_rows,
        "fit_equivalence": equivalence,
        "retrain_hot_swap": retrain,
        "summary": summary,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_training.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--rows", type=int, default=2048,
                        help="training rows per epoch measurement")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--retrain-epochs", type=int, default=30)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    kwargs = dict(quick=args.quick, repeats=args.repeats,
                  n_rows=512 if args.quick else args.rows,
                  retrain_epochs=4 if args.quick else args.retrain_epochs)
    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, **kwargs)
    else:
        results = run_benchmark(args.workdir, **kwargs)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    for row in results["epochs"]:
        flag = "" if row["headline"] else f"  [{row['category']}]"
        print(f"epoch {row['shape']:>12} bs={row['batch_size']:<4} "
              f"graph {row['graph_ms']:7.2f} ms  compiled "
              f"{row['compiled_ms']:7.2f} ms  {row['speedup']:4.2f}x{flag}")
    s = results["summary"]
    print(f"geomean epoch speedup (headline): "
          f"{s['epoch_speedup_geomean']:.2f}x "
          f"(best {s['epoch_speedup_best']:.2f}x, worst "
          f"{s['epoch_speedup_worst']:.2f}x)")
    print(f"sequence lowerings: geomean "
          f"{s['sequence_epoch_speedup_geomean']:.2f}x, recurrent best "
          f"{s['recurrent_epoch_speedup_best']:.2f}x, compiled active: "
          f"{s['sequence_compiled_active']}")
    print(f"grad parity max abs: {s['grad_parity_max_abs']:.3g} | "
          f"early-stop epochs match: {s['early_stop_epochs_match']} | "
          f"max val-loss diff: {s['max_val_loss_diff']:.3g}")
    r = results["retrain_hot_swap"]
    print(f"retrain->hot-swap: graph {r['graph']['seconds']:.3f} s, "
          f"compiled {r['compiled']['seconds']:.3f} s "
          f"({r['speedup']:.2f}x, val-loss diff {r['val_loss_diff']:.3g})")
    return results


if __name__ == "__main__":
    main()
