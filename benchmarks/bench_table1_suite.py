"""Table I — the benchmark suite: accurate kernels and their QoI metrics.

Regenerates the Table I rows (description, QoI, metric) and times each
benchmark's accurate path, establishing the baseline the speedups of
Figs. 5-9 are measured against.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.apps import (REGISTRY, binomial, bonds, minibude, miniweather,
                        particlefilter)


def test_table1_rows():
    rows = [{
        "benchmark": info.name,
        "qoi": info.qoi[:48],
        "metric": info.metric.upper(),
        "surrogate": info.surrogate_family.upper(),
    } for info in REGISTRY.values()]
    print()
    print(render_table(rows, title="Table I: benchmark suite"))
    assert len(rows) == 5


@pytest.mark.benchmark(group="table1-accurate-path")
def bench_minibude_accurate(benchmark):
    wl = minibude.generate_workload(n_poses=1024, seed=0)
    energies = benchmark(minibude.run_accurate, wl)
    assert energies.shape == (1024,)


@pytest.mark.benchmark(group="table1-accurate-path")
def bench_binomial_accurate(benchmark):
    wl = binomial.generate_workload(n_options=2048, seed=0, n_steps=96)
    prices = benchmark(binomial.run_accurate, wl)
    assert np.all(prices >= 0)


@pytest.mark.benchmark(group="table1-accurate-path")
def bench_bonds_accurate(benchmark):
    wl = bonds.generate_workload(n_bonds=4096, seed=0)
    accrued = benchmark(bonds.run_accurate, wl)
    assert np.all(accrued >= 0)


@pytest.mark.benchmark(group="table1-accurate-path")
def bench_miniweather_accurate(benchmark):
    wl = miniweather.generate_workload(nx=32, nz=16, n_steps=20)
    q = benchmark(miniweather.run_accurate, wl)
    assert np.all(np.isfinite(q))


@pytest.mark.benchmark(group="table1-accurate-path")
def bench_particlefilter_accurate(benchmark):
    wl = particlefilter.generate_workload(n_frames=48, height=32, width=32,
                                          seed=0)
    est = benchmark(particlefilter.run_accurate, wl)
    assert est.shape == (48, 2)
