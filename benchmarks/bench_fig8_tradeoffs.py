"""Fig. 8 — speedup vs accuracy across model sizes (MiniBUDE, Binomial
Options, Bonds).

Paper shapes:
* 8a MiniBUDE — larger models are slower but more accurate
  (25.5x @ 2.71% MAPE for the largest vs 35x @ 6.82% for the fastest);
* 8b Binomial Options — same monotone trade-off, wider speedup range
  (83.59x @ RMSE 0.114 smallest vs 19.36x @ RMSE 0.0111 largest);
* 8c Bonds — the trend can invert: the fastest model was also the most
  accurate (overfitting of larger models).  We don't assert inversion —
  it depends on the training-data draw — only that Bonds' trade-off
  need not be monotone while speedup stays >1.
"""

import pytest

from repro.analysis import render_table
from repro.search import pareto_front_mask
import numpy as np


@pytest.fixture(scope="module", params=["minibude", "binomial", "bonds"])
def fig8_rows(request, store):
    name = request.param
    bundle = store.bundle(name)
    min_params = min(m.n_params for m in bundle.models)
    rows = []
    for tm in bundle.models:
        metrics = bundle.harness.evaluate(tm.model, repeats=3)
        rows.append({"benchmark": name, "model": tm.label,
                     "n_params": tm.n_params,
                     "rel_size": tm.n_params / min_params,
                     "speedup": metrics.speedup,
                     "error": metrics.qoi_error})
    return name, rows


def test_fig8_scatter(fig8_rows):
    name, rows = fig8_rows
    print()
    print(render_table(rows, title=f"Fig. 8 ({name}): speedup vs error"))
    assert all(r["speedup"] > 1.0 for r in rows)


def test_fig8_size_speed_tradeoff(fig8_rows):
    """Across every app: the smallest model runs fastest (the x-axis
    ordering of Fig. 8's color gradient)."""
    name, rows = fig8_rows
    ordered = sorted(rows, key=lambda r: r["n_params"])
    assert ordered[0]["speedup"] == max(r["speedup"] for r in rows), \
        f"{name}: smallest model is not the fastest"


def test_fig8_accuracy_gains_from_capacity(fig8_rows):
    """MiniBUDE/Binomial shape: some larger model beats the smallest
    model's error (capacity buys accuracy).  Bonds may invert (paper
    Observation 3) so it is exempt from this assertion."""
    name, rows = fig8_rows
    if name == "bonds":
        pytest.skip("Bonds: paper Observation 3 — trend may invert")
    ordered = sorted(rows, key=lambda r: r["n_params"])
    assert min(r["error"] for r in ordered[1:]) <= ordered[0]["error"] * 1.2


def test_fig8_pareto_front_nontrivial(store):
    """The model family spans a real trade-off: >=2 Pareto points for at
    least one MLP benchmark (otherwise Fig. 8 would be a single dot)."""
    fronts = {}
    for name in ("minibude", "binomial", "bonds"):
        bundle = store.bundle(name)
        objs = []
        for tm in bundle.models:
            metrics = bundle.harness.evaluate(tm.model, repeats=2)
            objs.append((1.0 / metrics.speedup, metrics.qoi_error))
        fronts[name] = int(pareto_front_mask(np.array(objs)).sum())
    print(f"\nPareto front sizes: {fronts}")
    assert max(fronts.values()) >= 2
