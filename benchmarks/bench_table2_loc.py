"""Table II — source-code impact of HPAC-ML annotations.

Regenerates the Table II rows: total app LoC, annotation LoC, and
directive counts.  The paper reports 3-4 directives and <=9 LoC per
benchmark; the shape to hold is "a handful of directives, a few lines,
well under 2% of the application".
"""

import pytest

from repro.analysis import render_table, table2_rows
from repro.directives import parse_program
from repro.apps import minibude


def test_table2_rows():
    rows = table2_rows()
    print()
    print(render_table(rows, title="Table II: application source impact"))
    for row in rows:
        # Paper shape: 3-4 directives per app (ours: +1 where the deploy
        # region splits model/db clauses), small LoC footprint.
        assert 3 <= row["directives"] <= 6
        assert row["hpacml_loc"] <= 10
        # "average LoC increase of less than 2%" — ours is single-digit %
        assert row["hpacml_loc"] / row["total_loc"] < 0.06


def test_miniweather_uses_fewest_directives():
    rows = {r["benchmark"]: r for r in table2_rows()}
    # MiniWeather's inout clause re-uses one functor (paper Table II:
    # it has the fewest directives of the suite).
    assert rows["miniweather"]["directives"] == \
        min(r["directives"] for r in rows.values())


@pytest.mark.benchmark(group="table2-frontend")
def bench_annotation_parse(benchmark):
    """Compiler-frontend cost of one full region annotation."""
    src = minibude.DIRECTIVES.format(mode="predicated", db="d", model="m")
    nodes = benchmark(parse_program, src)
    assert len(nodes) == 5
