"""Fig. 6 — proportion of inference-mode time per runtime operation.

Breaks each benchmark's surrogate path into the three Fig. 6 bars:
mapping memory to tensors, the inference engine, and mapping tensors
back.  Paper shape: the inference engine dominates; the data bridge
adds a small fraction (0.01%-8% relative to the engine on A100-scale
models — larger here because our models are laptop-scale, but still a
minority share).
"""

import pytest

from repro.analysis import render_table
from repro.runtime import Phase

APPS = ("minibude", "binomial", "bonds", "miniweather", "particlefilter")


@pytest.fixture(scope="module")
def breakdown_rows(store):
    rows = []
    for name in APPS:
        bundle = store.bundle(name)
        # The paper breaks down the fastest model's run; at our batch
        # sizes the very smallest models spend too little in the engine
        # to be representative, so we use the best-validation model (the
        # one Fig. 5 deploys).
        chosen = min(bundle.models, key=lambda m: m.val_loss)
        bundle.harness.install_model(chosen.model)
        before = len(bundle.harness.events.records)
        bundle.harness.run_surrogate()
        recs = bundle.harness.events.records[before:]
        to_t = sum(r.times.get(Phase.TO_TENSOR, 0.0) for r in recs)
        inf = sum(r.times.get(Phase.INFERENCE, 0.0) for r in recs)
        from_t = sum(r.times.get(Phase.FROM_TENSOR, 0.0) for r in recs)
        total = to_t + inf + from_t
        rows.append({"benchmark": name,
                     "to_tensor": to_t / total,
                     "inference": inf / total,
                     "from_tensor": from_t / total,
                     "bridge_vs_engine": (to_t + from_t) / inf})
    return rows


def test_fig6_proportions(breakdown_rows):
    print()
    print(render_table(breakdown_rows,
                       title="Fig. 6: proportion of inference-mode time"))
    for row in breakdown_rows:
        total = row["to_tensor"] + row["inference"] + row["from_tensor"]
        assert total == pytest.approx(1.0, abs=1e-9)
        # Shape: the inference engine is the dominant component.
        assert row["inference"] > 0.5, row
        assert row["inference"] > row["to_tensor"]
        assert row["inference"] > row["from_tensor"]


def test_fig6_bridge_overhead_minority(breakdown_rows):
    """Layout transformations add 'negligible overhead' (paper abstract);
    at our model scale: well under the engine's own cost."""
    for row in breakdown_rows:
        assert row["bridge_vs_engine"] < 1.0, row


@pytest.mark.benchmark(group="fig6-bridge")
def bench_to_tensor_gather(benchmark, store):
    """The data-bridge gather (to-tensor) step in isolation."""
    import numpy as np
    from repro.bridge import SweepRange, TensorFunctor, concretize
    f = TensorFunctor.parse(
        "#pragma approx tensor functor(ifn: [i, j, 0:5] = "
        "(([i-1, j], [i+1, j], [i, j-1:j+2])))")
    arr = np.random.default_rng(0).normal(size=(256, 256))
    cm = concretize(f, arr, [SweepRange(1, 255), SweepRange(1, 255)])
    out = benchmark(cm.gather, True)
    assert out.shape == (254 * 254, 5)
