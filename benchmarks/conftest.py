"""Shared state for the experiment benches.

Training models is the expensive step, so a session-scoped store
collects data and trains the per-benchmark model families exactly once;
every bench (Table III, Figs. 5-9) reuses them.  Run with ``-s`` to see
the regenerated tables/series; EXPERIMENTS.md records reference output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.apps.harness import AppHarness, harness_for
from repro.nn import Trainer

#: Benchmark-scale harness parameters (scaled from the paper's A100
#: datasets to laptop scale; DESIGN.md §2 records the substitution).
HARNESS_PARAMS = {
    "minibude": dict(n_train=4096, n_test=768),
    "binomial": dict(n_train=3072, n_test=768, n_steps=96),
    "bonds": dict(n_train=3072, n_test=768),
    "particlefilter": dict(n_train_frames=768, n_test_frames=64,
                           frame_size=32, n_particles=512),
    "miniweather": dict(nx=32, nz=16, train_steps=150, test_steps=30),
}

#: Size-graded architecture families per benchmark — the population
#: whose speedup/error scatter reproduces Figs. 7/8.
MODEL_FAMILIES = {
    "minibude": [
        ("xs", {"num_hidden_layers": 2, "hidden1_size": 64,
                "feature_multiplier": 0.6}),
        ("s", {"num_hidden_layers": 3, "hidden1_size": 128,
               "feature_multiplier": 0.8}),
        ("m", {"num_hidden_layers": 3, "hidden1_size": 256,
               "feature_multiplier": 0.8}),
        ("l", {"num_hidden_layers": 4, "hidden1_size": 512,
               "feature_multiplier": 0.8}),
    ],
    "binomial": [
        ("xs", {"hidden1_features": 12, "hidden2_features": 0}),
        ("s", {"hidden1_features": 48, "hidden2_features": 24}),
        ("m", {"hidden1_features": 160, "hidden2_features": 96}),
        ("l", {"hidden1_features": 448, "hidden2_features": 320}),
    ],
    "bonds": [
        ("xs", {"hidden1_features": 12, "hidden2_features": 0}),
        ("s", {"hidden1_features": 48, "hidden2_features": 24}),
        ("m", {"hidden1_features": 160, "hidden2_features": 96}),
        ("l", {"hidden1_features": 448, "hidden2_features": 320}),
    ],
    "particlefilter": [
        ("xs", {"conv_kernel": 8, "conv_stride": 6, "maxpool_kernel": 2,
                "fc2_size": 0}),
        ("s", {"conv_kernel": 6, "conv_stride": 4, "maxpool_kernel": 2,
               "fc2_size": 16}),
        ("m", {"conv_kernel": 4, "conv_stride": 2, "maxpool_kernel": 2,
               "fc2_size": 64}),
        ("l", {"conv_kernel": 3, "conv_stride": 2, "maxpool_kernel": 2,
               "fc2_size": 128}),
    ],
    "miniweather": [
        ("s", {"conv1_kernel": 3, "conv1_channels": 4, "conv2_kernel": 0}),
        ("m", {"conv1_kernel": 5, "conv1_channels": 8, "conv2_kernel": 3}),
        ("l", {"conv1_kernel": 7, "conv1_channels": 8, "conv2_kernel": 5}),
    ],
}

TRAIN_PARAMS = {
    "minibude": dict(lr=2e-3, batch_size=128, max_epochs=90, patience=25),
    "binomial": dict(lr=3e-3, batch_size=128, max_epochs=60, patience=15),
    "bonds": dict(lr=3e-3, batch_size=128, max_epochs=60, patience=15),
    "particlefilter": dict(lr=2e-3, batch_size=64, max_epochs=60,
                           patience=20),
    "miniweather": dict(lr=2e-3, batch_size=16, max_epochs=40, patience=12),
}


@dataclass
class TrainedModel:
    label: str
    arch: dict
    model: object
    val_loss: float
    n_params: int


@dataclass
class BenchmarkBundle:
    harness: AppHarness
    models: list = field(default_factory=list)   # [TrainedModel]
    splits: tuple = ()

    def by_label(self, label: str) -> TrainedModel:
        return next(m for m in self.models if m.label == label)


class SessionStore:
    def __init__(self, root):
        self.root = root
        self._bundles: dict[str, BenchmarkBundle] = {}

    def bundle(self, name: str) -> BenchmarkBundle:
        if name in self._bundles:
            return self._bundles[name]
        harness = harness_for(name, self.root / name, seed=0,
                              **HARNESS_PARAMS[name])
        harness.collect()
        (xt, yt), (xv, yv) = harness.training_arrays()
        build = harness.make_builder(xt, yt)
        models = []
        for label, arch in MODEL_FAMILIES[name]:
            model = build(arch, seed=0)
            trainer = Trainer(model, seed=0, **TRAIN_PARAMS[name])
            result = trainer.fit(xt, yt, xv, yv)
            models.append(TrainedModel(label=label, arch=arch, model=model,
                                       val_loss=result.best_val_loss,
                                       n_params=model.num_parameters()))
        bundle = BenchmarkBundle(harness=harness, models=models,
                                 splits=((xt, yt), (xv, yv)))
        self._bundles[name] = bundle
        return bundle


def pytest_addoption(parser):
    parser.addoption(
        "--fig5-autobatch", action="store_true", default=False,
        help="also run the Fig. 5 auto-batched deploy-loop variant "
             "(chunked invocations coalesced by BatchedInferenceEngine)")


@pytest.fixture(scope="session")
def store(tmp_path_factory) -> SessionStore:
    return SessionStore(tmp_path_factory.mktemp("bench_store"))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
