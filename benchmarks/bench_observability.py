"""Observability benchmark: instrumentation overhead and hooks.

The observability layer (:mod:`repro.obs`) is **default-on**: metrics
and traces derive lazily from the EventLog ring at snapshot / read
time, so the per-invocation residue is just the enabled gate, the
stream hook, and one post-hoc span per batch flush.  That is only
acceptable if the cost is invisible next to the work being measured,
so this benchmark times the batched invocation path end-to-end with
instrumentation enabled vs. disabled (``obs.set_enabled``) and reports
the relative overhead.  The acceptance bound is **<= 3%**; quick mode
asserts it (the CI lane's floor).

Scenarios:

* **overhead** — an auto-batched region driven for ``invocations``
  calls of ``rows`` rows each; interleaved obs-on / obs-off legs.
  Two views are reported: the end-to-end wall-clock delta of
  min-of-repeats legs (honest but noisy on shared machines — leg
  times swing far more than 3% under CPU contention), and the
  **instrumented** overhead — the instrumentation's own seconds,
  accumulated by timing wrappers at the obs boundary
  (``EventLog.finish``, ``Tracer.record_span``), relative to the
  obs-off per-invocation wall time.  The instrumented view is what
  quick mode asserts against the bound: it measures the marginal cost
  directly instead of differencing two noisy totals.
* **stream_overhead** — the same loop with a
  :class:`~repro.obs.DecisionStream` attached, reported relative to
  the obs-on leg (stream recording is opt-in, so it carries no bound).
* **hot_path_costs** — microbenchmarked ns/op for the two per-
  invocation primitives: a cached-handle histogram observe and a
  tracer invocation fold.
* **profile_hook** — exercises ``InferenceEngine.profile`` and checks
  the per-plan-step timings cover the forward.
* **stream_determinism** — records the same seeded workload twice and
  compares the two stream files byte-for-byte (the reproducible-
  replay contract).

Results land in ``BENCH_observability.json`` (schema
``bench_observability/v1``).  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --quick
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.runtime import EventLog, InferenceEngine

SCHEMA = "bench_observability/v1"

#: Overhead bound asserted in quick mode (the CI floor).
OVERHEAD_BOUND = 0.03


def _make_region(workdir: Path, name: str, *, weight: float = 1.5,
                 stream=None):
    """A 2->1 auto-batched infer region with its own EventLog."""
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, workdir / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("{workdir}/{name}.rh5") model("{workdir}/{name}.rnm")
"""
    log = EventLog(stream=stream)

    @approx_ml(src, name=name, event_log=log, auto_batch=True)
    def region(x, y, N, use_model=False):
        y[:N] = x[:N].sum(axis=1) * weight

    return region, log


def _drive(region, x, y, rows: int, invocations: int) -> float:
    """One timed leg: ``invocations`` region calls plus the final flush."""
    start = time.perf_counter()
    for _ in range(invocations):
        region(x, y, rows, use_model=True)
    region.flush()
    return time.perf_counter() - start


def _timed(fn, acc: list):
    """Wrap ``fn``; accumulate [seconds, calls] into ``acc``."""
    def wrapped(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            acc[0] += time.perf_counter() - start
            acc[1] += 1
    return wrapped


def scenario_overhead(workdir: Path, *, rows: int, invocations: int,
                      repeats: int, seed: int) -> dict:
    region, log = _make_region(workdir, "overhead")
    rng = np.random.default_rng(seed)
    x = rng.random((rows, 2))
    y = np.empty(rows)

    _drive(region, x, y, rows, invocations)        # warmup: compile, caches

    # Timing wrappers at the obs boundary.  The wrapper's own clock
    # reads are charged to the instrumentation (conservative), and the
    # finish wrapper runs in BOTH legs so its cost cancels out of the
    # marginal difference.
    tracer = obs.tracer()
    real_finish = log.finish
    real_span = tracer.record_span

    # Per-leg accumulators; the reported cost is the MIN over legs of
    # each leg's average — scheduler spikes inflate a leg's average,
    # never deflate it, so min-over-legs converges on the true cost.
    on, off = [], []                               # (wall, finish_avg)
    span_avgs = []                                 # per on-leg span s/inv
    try:
        for rep in range(repeats):   # interleave + alternate order: cancel
            legs = [(True, on), (False, off)]      # drift and order bias
            for enabled, times in (legs if rep % 2 == 0 else
                                   reversed(legs)):
                obs.set_enabled(enabled)
                facc, sacc = [0.0, 0], [0.0, 0]
                log.finish = _timed(real_finish, facc)
                tracer.record_span = _timed(real_span, sacc)
                wall = _drive(region, x, y, rows, invocations)
                times.append((wall, facc[0] / facc[1]))
                if enabled:
                    span_avgs.append(sacc[0] / invocations)
    finally:
        obs.set_enabled(True)
        log.finish = real_finish
        tracer.record_span = real_span

    t_on = min(w for w, _ in on)
    t_off = min(w for w, _ in off)
    wall_fraction = t_on / t_off - 1.0
    per_inv_off = t_off / invocations

    finish_us_on = min(f for _, f in on)
    finish_us_off = min(f for _, f in off)
    span_per_inv = min(span_avgs)
    obs_seconds_per_inv = finish_us_on - finish_us_off + span_per_inv
    overhead = obs_seconds_per_inv / per_inv_off
    return {
        "rows": rows, "invocations": invocations, "repeats": repeats,
        "seconds_obs_on": t_on,
        "seconds_obs_off": t_off,
        "per_invocation_us_obs_off": per_inv_off * 1e6,
        "wall_fraction": wall_fraction,
        "finish_us_enabled": finish_us_on * 1e6,
        "finish_us_disabled": finish_us_off * 1e6,
        "batch_span_us_per_invocation": span_per_inv * 1e6,
        "obs_us_per_invocation": obs_seconds_per_inv * 1e6,
        "overhead_fraction": overhead,
        "bound": OVERHEAD_BOUND,
        "within_bound": bool(overhead <= OVERHEAD_BOUND),
    }


def scenario_stream_overhead(workdir: Path, *, rows: int, invocations: int,
                             repeats: int, seed: int,
                             baseline_seconds: float) -> dict:
    stream = obs.DecisionStream(workdir / "overhead_stream.rh5")
    region, _ = _make_region(workdir, "streamed", stream=stream)
    rng = np.random.default_rng(seed)
    x = rng.random((rows, 2))
    y = np.empty(rows)

    _drive(region, x, y, rows, invocations)
    times = [_drive(region, x, y, rows, invocations)
             for _ in range(repeats)]
    stream.close()
    t_stream = min(times)
    return {
        "seconds": t_stream,
        "vs_obs_on_fraction": t_stream / baseline_seconds - 1.0,
        "records": invocations * (repeats + 1),
    }


def scenario_hot_path_costs(*, ops: int) -> dict:
    registry = obs.MetricsRegistry()
    hist = registry.histogram("bench_latency", region="r", path="infer")
    start = time.perf_counter()
    for _ in range(ops):
        hist.observe(1e-4)
    observe_ns = (time.perf_counter() - start) / ops * 1e9

    tracer = obs.Tracer()
    phases = (("to_tensor", 1e-5), ("inference", 2e-5))
    start = time.perf_counter()
    for _ in range(ops):
        tracer.record_invocation("r", "infer", 3e-5, phases)
    fold_ns = (time.perf_counter() - start) / ops * 1e9
    return {"ops": ops, "histogram_observe_ns": observe_ns,
            "trace_fold_ns": fold_ns}


def scenario_profile_hook(workdir: Path, *, rows: int) -> dict:
    model = Sequential(Linear(2, 8, rng=np.random.default_rng(0)),
                       Linear(8, 1, rng=np.random.default_rng(1)))
    path = workdir / "profiled.rnm"
    save_model(model, path)
    engine = InferenceEngine()
    engine.warmup(path)
    prof = engine.profile(path, np.random.default_rng(0).random((rows, 2)))
    step_sum = sum(s["seconds"] for s in prof["steps"])
    return {
        "compiled": prof["compiled"],
        "steps": [{"step": s["step"], "seconds": s["seconds"]}
                  for s in prof["steps"]],
        "total_seconds": prof["total_seconds"],
        "steps_cover_total": bool(step_sum <= prof["total_seconds"] + 1e-9),
    }


def _record_once(workdir: Path, path_name: str, *, rows: int,
                 invocations: int, seed: int) -> Path:
    stream_path = workdir / path_name
    stream = obs.DecisionStream(stream_path)
    # Same region name both times: the name is part of the stream
    # layout, so replays must agree on it to compare byte-for-byte.
    region, _ = _make_region(workdir / path_name.split(".")[0], "det",
                             stream=stream)
    rng = np.random.default_rng(seed)
    y = np.empty(rows)
    for _ in range(invocations):
        region(rng.random((rows, 2)), y, rows, use_model=True)
    region.flush()
    stream.close()
    return stream_path


def scenario_stream_determinism(workdir: Path, *, rows: int,
                                invocations: int, seed: int) -> dict:
    a = _record_once(workdir, "det_a.rh5", rows=rows,
                     invocations=invocations, seed=seed)
    b = _record_once(workdir, "det_b.rh5", rows=rows,
                     invocations=invocations, seed=seed)
    identical = a.read_bytes() == b.read_bytes()
    replay = obs.read_stream(a)
    n_records = sum(len(rows_) for rows_ in replay.values())
    return {"invocations": invocations,
            "records_replayed": n_records,
            "bit_identical": bool(identical)}


def run_benchmark(workdir, *, quick: bool = False) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rows = 64
    invocations = 1000 if quick else 3000
    repeats = 3 if quick else 5
    ops = 20_000 if quick else 100_000
    seed = 0

    overhead = scenario_overhead(workdir, rows=rows,
                                 invocations=invocations,
                                 repeats=repeats, seed=seed)
    stream = scenario_stream_overhead(
        workdir, rows=rows, invocations=invocations, repeats=repeats,
        seed=seed, baseline_seconds=overhead["seconds_obs_on"])
    costs = scenario_hot_path_costs(ops=ops)
    profile = scenario_profile_hook(workdir, rows=rows)
    determinism = scenario_stream_determinism(
        workdir, rows=rows, invocations=32 if quick else 128, seed=seed)

    results = {
        "schema": SCHEMA,
        "config": {"quick": quick, "rows": rows,
                   "invocations": invocations, "repeats": repeats,
                   "seed": seed},
        "overhead": overhead,
        "stream_overhead": stream,
        "hot_path_costs": costs,
        "profile_hook": profile,
        "stream_determinism": determinism,
        "summary": {
            "overhead_fraction": overhead["overhead_fraction"],
            "within_bound": overhead["within_bound"],
            "stream_bit_identical": determinism["bit_identical"],
            "profile_compiled": profile["compiled"],
        },
    }
    if quick:
        # The acceptance bound the CI lane enforces.
        assert overhead["within_bound"], (
            f"default-on observability overhead "
            f"{overhead['overhead_fraction']:.2%} exceeds "
            f"{OVERHEAD_BOUND:.0%}")
        assert determinism["bit_identical"], \
            "seeded stream recording is not bit-identical"
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_observability.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, quick=args.quick)
    else:
        results = run_benchmark(args.workdir, quick=args.quick)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    ov = results["overhead"]
    print(f"overhead: {ov['obs_us_per_invocation']:.2f} us obs per "
          f"{ov['per_invocation_us_obs_off']:.1f} us invocation -> "
          f"{ov['overhead_fraction']:+.2%} (bound {ov['bound']:.0%}, "
          f"within: {ov['within_bound']}); wall delta "
          f"{ov['wall_fraction']:+.2%} "
          f"({ov['seconds_obs_on']:.4f}s vs {ov['seconds_obs_off']:.4f}s)")
    st = results["stream_overhead"]
    print(f"stream: {st['vs_obs_on_fraction']:+.2%} vs obs-on "
          f"({st['records']} records)")
    hp = results["hot_path_costs"]
    print(f"hot path: histogram observe {hp['histogram_observe_ns']:.0f} "
          f"ns/op, trace fold {hp['trace_fold_ns']:.0f} ns/op")
    det = results["stream_determinism"]
    print(f"determinism: {det['records_replayed']} records replayed, "
          f"bit identical: {det['bit_identical']}")
    return results


if __name__ == "__main__":
    main()
