"""Microbenchmark: compiled inference fast path + invocation batching.

Establishes the perf baseline trajectory for the fast-path work:

* **single-call forward** — graph path (autodiff ``Tensor`` forward
  under ``no_grad``, per-call ``eval()``, exactly what the seed engine
  executed) vs the compiled plan, at batch 1, over the Table IV MLP
  shapes of the three MLP benchmarks (MiniBUDE / Binomial / Bonds);
* **invocation throughput** — per-invocation engine round trips vs the
  :class:`~repro.runtime.BatchedInferenceEngine` coalescing the same
  invocations into ``(B, *features)`` forwards.

Results land in ``BENCH_inference.json`` (schema
``bench_inference_fastpath/v1``).  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_inference_fastpath.py
    PYTHONPATH=src python benchmarks/bench_inference_fastpath.py --quick

Speedups are Python-overhead bound: small/medium Table IV shapes see
the largest wins (the graph path costs ~10 us of Tensor machinery per
layer); very wide layers converge toward the GEMM's memory-bandwidth
floor, which both paths share.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.nn import Tensor, no_grad, compile_inference, save_model
from repro.runtime import BatchedInferenceEngine, InferenceEngine
from repro.search.builders import build_minibude_mlp, build_mlp2

SCHEMA = "bench_inference_fastpath/v1"

#: Table IV MLP-family shapes (the sizes the NAS spaces deploy; the
#: labels mirror benchmarks/conftest.py MODEL_FAMILIES).
TABLE4_MLP_SHAPES = [
    ("minibude-xs", "minibude",
     {"num_hidden_layers": 2, "hidden1_size": 64, "feature_multiplier": 0.6}),
    ("minibude-s", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 128, "feature_multiplier": 0.8}),
    ("minibude-m", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 256, "feature_multiplier": 0.8}),
    ("binomial-xs", "binomial",
     {"hidden1_features": 12, "hidden2_features": 0}),
    ("binomial-s", "binomial",
     {"hidden1_features": 48, "hidden2_features": 24}),
    ("binomial-m", "binomial",
     {"hidden1_features": 160, "hidden2_features": 96}),
    ("bonds-s", "bonds",
     {"hidden1_features": 48, "hidden2_features": 24}),
    ("bonds-m", "bonds",
     {"hidden1_features": 160, "hidden2_features": 96}),
]

_IN_FEATURES = {"minibude": 6, "binomial": 5, "bonds": 5}
_OUT_FEATURES = {"minibude": 1, "binomial": 1, "bonds": 2}


def build_shape(benchmark: str, arch: dict, seed: int = 0):
    if benchmark == "minibude":
        return build_minibude_mlp(arch, seed=seed)
    return build_mlp2(arch, _IN_FEATURES[benchmark],
                      _OUT_FEATURES[benchmark], seed=seed)


def _time_loop(fn, repeats: int, warmup: int = 5, chunks: int = 5) -> float:
    """Seconds per call: best-of-``chunks`` mean (robust to load spikes)."""
    for _ in range(warmup):
        fn()
    per_chunk = max(1, repeats // chunks)
    best = float("inf")
    for _ in range(chunks):
        start = time.perf_counter()
        for _ in range(per_chunk):
            fn()
        best = min(best, (time.perf_counter() - start) / per_chunk)
    return best


def bench_single_call(repeats: int = 3000, seed: int = 0) -> list[dict]:
    """Graph vs compiled forward at batch 1 on the Table IV MLP shapes."""
    rows = []
    rng = np.random.default_rng(seed)
    for label, benchmark, arch in TABLE4_MLP_SHAPES:
        model = build_shape(benchmark, arch, seed=seed)
        model.eval()
        x1 = rng.normal(size=(1, _IN_FEATURES[benchmark]))
        plan = compile_inference(model)

        with no_grad():
            ref = model(Tensor(x1)).numpy()
        err = float(np.abs(plan(x1) - ref).max())

        def graph_call():
            model.eval()             # the seed engine re-evals per call
            with no_grad():
                return model(Tensor(x1)).numpy()

        graph_s = _time_loop(graph_call, repeats)
        compiled_s = _time_loop(lambda: plan(x1), repeats)
        rows.append({
            "shape": label,
            "benchmark": benchmark,
            "arch": arch,
            "n_params": int(model.num_parameters()),
            "graph_us": graph_s * 1e6,
            "compiled_us": compiled_s * 1e6,
            "speedup": graph_s / compiled_s,
            "max_abs_diff": err,
        })
    return rows


def bench_batched_throughput(workdir, n_rows: int = 512,
                             batch_rows: int = 64, repeats: int = 3,
                             seed: int = 0) -> list[dict]:
    """Per-invocation engine calls vs batched submission, rows/second."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rows = []
    rng = np.random.default_rng(seed + 1)
    for label, benchmark, arch in [TABLE4_MLP_SHAPES[1], TABLE4_MLP_SHAPES[4]]:
        model = build_shape(benchmark, arch, seed=seed)
        model.eval()
        path = workdir / f"{label}.rnm"
        save_model(model, path)
        inputs = rng.normal(size=(n_rows, _IN_FEATURES[benchmark]))

        unbatched = InferenceEngine()
        unbatched.warmup(path)
        batched = BatchedInferenceEngine(max_batch_rows=batch_rows)
        batched.warmup(path)

        def run_unbatched():
            for i in range(n_rows):
                unbatched.infer(path, inputs[i:i + 1])

        def run_batched():
            for i in range(n_rows):
                batched.submit(path, inputs[i:i + 1])
            batched.flush()

        t_un = min(_time_loop(run_unbatched, 1, warmup=1)
                   for _ in range(repeats))
        t_b = min(_time_loop(run_batched, 1, warmup=1)
                  for _ in range(repeats))
        rows.append({
            "shape": label,
            "benchmark": benchmark,
            "rows": n_rows,
            "batch_rows": batch_rows,
            "rows_per_s_unbatched": n_rows / t_un,
            "rows_per_s_batched": n_rows / t_b,
            "throughput_gain": t_un / t_b,
        })
    return rows


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def run_benchmark(workdir, repeats: int = 3000, n_rows: int = 512,
                  batch_rows: int = 64, seed: int = 0) -> dict:
    single = bench_single_call(repeats=repeats, seed=seed)
    batched = bench_batched_throughput(workdir, n_rows=n_rows,
                                       batch_rows=batch_rows, seed=seed)
    speedups = [r["speedup"] for r in single]
    # Deployment-typical sizes: the xs/s entries, matching the Pareto
    # models the Fig. 5 selection deploys at laptop scale.  The wider
    # m shapes converge toward the shared GEMM bandwidth floor.
    small = [r["speedup"] for r in single
             if r["shape"].endswith(("-xs", "-s"))]
    return {
        "schema": SCHEMA,
        "config": {"repeats": repeats, "n_rows": n_rows,
                   "batch_rows": batch_rows, "seed": seed},
        "single_call": single,
        "batched": batched,
        "summary": {
            "single_call_speedup_geomean": _geomean(speedups),
            "single_call_speedup_geomean_deployed": _geomean(small),
            "single_call_speedup_best": max(speedups),
            "single_call_max_abs_diff": max(r["max_abs_diff"] for r in single),
            "batched_throughput_gain_geomean": _geomean(
                [r["throughput_gain"] for r in batched]),
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_inference.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir for serialized models "
                             "(default: temp dir)")
    parser.add_argument("--repeats", type=int, default=3000)
    parser.add_argument("--rows", type=int, default=512)
    parser.add_argument("--batch-rows", type=int, default=64)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    if args.quick:
        args.repeats = min(args.repeats, 50)
        args.rows = min(args.rows, 32)
        args.batch_rows = min(args.batch_rows, 8)

    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, repeats=args.repeats,
                                    n_rows=args.rows,
                                    batch_rows=args.batch_rows)
    else:
        results = run_benchmark(args.workdir, repeats=args.repeats,
                                n_rows=args.rows,
                                batch_rows=args.batch_rows)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"{'shape':14s} {'graph us':>9s} {'compiled us':>12s} "
          f"{'speedup':>8s}")
    for r in results["single_call"]:
        print(f"{r['shape']:14s} {r['graph_us']:9.1f} "
              f"{r['compiled_us']:12.1f} {r['speedup']:7.1f}x")
    for r in results["batched"]:
        print(f"{r['shape']:14s} batched {r['rows_per_s_batched']:,.0f} "
              f"rows/s vs {r['rows_per_s_unbatched']:,.0f} "
              f"({r['throughput_gain']:.1f}x)")
    s = results["summary"]
    print(f"single-call speedup geomean {s['single_call_speedup_geomean']:.2f}x"
          f" (deployed-size {s['single_call_speedup_geomean_deployed']:.2f}x,"
          f" best {s['single_call_speedup_best']:.2f}x); batched gain geomean "
          f"{s['batched_throughput_gain_geomean']:.2f}x")
    return results


if __name__ == "__main__":
    main()
