"""Serving-layer benchmark: latency, throughput, arbitration, retrain.

Measures the multi-region serving subsystem (:mod:`repro.serving`)
across four scenarios:

* **latency** — a single trained region served QoS-off through a
  serial-backend ``RegionServer`` versus direct region invocation: the
  server wrapper must stay within a few percent of the PR-2 baseline
  (which *is* the direct call).
* **throughput** — three trained regions served interleaved through
  one server, serial versus thread-pool backend (per-region affinity);
  rows/second for each.
* **backend_scaling** — synthetic Table IV ``binomial-s`` replicas at
  fleet sizes 1/2/4, served through serial, thread, and process
  (4-worker slab-ring) backends; wall-clock rows/second per cell (the
  modeled-concurrency acceptance numbers for the process backend live
  in ``BENCH_multiproc.json``).
* **arbitration** — a trained surrogate and an *untrained* one under a
  single ``QoSArbiter`` global error budget: the untrained region must
  be forced onto the accurate path while the trained one keeps its
  inference share, and both regions' deployed QoI errors (relative L2
  vs the accurate kernel) must respect the global budget.
* **retrain** — two trained regions under the arbiter plus a
  drift-burst policy; one region's workload drifts, bursts refresh its
  training DB, a ``RetrainWorker`` retrains in the background and
  hot-swaps the model file under the live server; post-swap both
  regions' deployed errors must again respect the budget — without a
  server restart.  Also times retrain->hot-swap wall clock on the
  refreshed DB with the compiled trainer vs the graph trainer (the
  drift-recovery latency the in-process worker pays).

Results land in ``BENCH_serving.json`` (schema ``bench_serving/v1``).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_multiproc import _serve_pass, make_io, make_mlp_region  # noqa: E402

from repro.apps import binomial as binomial_app     # noqa: E402
from repro.apps.harness import harness_for          # noqa: E402
from repro.nn import Trainer                        # noqa: E402
from repro.obs.registry import MetricsRegistry      # noqa: E402
from repro.qos import DriftBurstPolicy              # noqa: E402
from repro.serving import (ProcessPoolBackend, QoSArbiter,  # noqa: E402
                           RegionServer, RetrainWorker, SerialBackend,
                           ThreadPoolBackend)

SCHEMA = "bench_serving/v1"

HARNESS_PARAMS = {
    "binomial": dict(n_train=2048, n_test=768, n_steps=64),
    "bonds": dict(n_train=2048, n_test=768),
    "minibude": dict(n_train=2048, n_test=768),
}
QUICK_PARAMS = {
    "binomial": dict(n_train=512, n_test=128, n_steps=16),
    "bonds": dict(n_train=512, n_test=128),
    "minibude": dict(n_train=512, n_test=128),
}

ARCHS = {
    "binomial": {"hidden1_features": 48, "hidden2_features": 24},
    "bonds": {"hidden1_features": 48, "hidden2_features": 24},
    "minibude": {"num_hidden_layers": 2, "hidden1_size": 64,
                 "feature_multiplier": 0.6},
}

TRAIN_PARAMS = {
    "binomial": dict(lr=3e-3, batch_size=128, patience=15),
    "bonds": dict(lr=3e-3, batch_size=128, patience=15),
    "minibude": dict(lr=2e-3, batch_size=128, patience=20),
}
#: Quick mode trades epochs for a hotter schedule so the "strong"
#: models are still strong enough for the arbiter to admit them.
QUICK_TRAIN_PARAMS = {name: dict(lr=6e-3, batch_size=64, patience=20)
                      for name in TRAIN_PARAMS}


def _relative(pred: np.ndarray, ref: np.ndarray) -> float:
    pred = np.asarray(pred, dtype=np.float64).ravel()
    ref = np.asarray(ref, dtype=np.float64).ravel()
    return float(np.linalg.norm(pred - ref) /
                 (np.linalg.norm(ref) + 1e-12))


def _make_harness(name, workdir, *, quick, chunk, server=None, seed=0):
    params = (QUICK_PARAMS if quick else HARNESS_PARAMS)[name]
    return harness_for(name, Path(workdir) / name, seed=seed,
                       deploy_chunk=chunk, server=server, **params)


def _train(harness, *, epochs, quick=False, seed=0):
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)
    model = build(ARCHS[harness.name], seed=seed)
    params = (QUICK_TRAIN_PARAMS if quick else TRAIN_PARAMS)[harness.name]
    Trainer(model, max_epochs=epochs, seed=seed, **params).fit(xt, yt,
                                                              xv, yv)
    harness.install_model(model)
    return model


# ----------------------------------------------------------------------
# Scenario: single-region QoS-off latency (server vs direct call)
# ----------------------------------------------------------------------

def scenario_latency(workdir, *, quick, chunk, epochs, repeats=7) -> dict:
    harness = _make_harness("binomial", workdir / "latency", quick=quick,
                            chunk=chunk)
    _train(harness, epochs=epochs, quick=quick)
    region = harness.deploy_region
    server = harness.server
    opts = harness.test_opts
    n = len(opts)

    def loop_direct():
        prices = np.empty(n)
        for start in range(0, n, chunk):
            block = np.ascontiguousarray(opts[start:start + chunk])
            b = len(block)
            region(block, prices[start:start + b], b, use_model=True)
        region.flush()

    def loop_server():
        prices = np.empty(n)
        for start in range(0, n, chunk):
            block = np.ascontiguousarray(opts[start:start + chunk])
            b = len(block)
            server.invoke("binomial", block, prices[start:start + b], b,
                          use_model=True)
        server.flush("binomial")

    loop_direct(), loop_server()          # warm both paths
    direct_times, server_times = [], []
    for i in range(repeats):
        # Alternate A/B order so cache-warmth effects do not
        # systematically favor whichever loop runs second.
        pair = ((loop_direct, direct_times), (loop_server, server_times))
        for loop, times in (pair if i % 2 == 0 else pair[::-1]):
            t0 = time.perf_counter()
            loop()
            times.append(time.perf_counter() - t0)
    direct_s = min(direct_times)
    server_s = min(server_times)
    invocations = -(-n // chunk)
    return {
        "invocations": invocations,
        "rows": n,
        "direct_seconds": direct_s,
        "server_seconds": server_s,
        "ratio": server_s / direct_s,
        "server_overhead_us_per_invocation":
            (server_s - direct_s) / invocations * 1e6,
    }


# ----------------------------------------------------------------------
# Scenario: multi-region throughput, serial vs thread backend
# ----------------------------------------------------------------------

def scenario_throughput(workdir, *, quick, chunk, epochs,
                        repeats=3) -> dict:
    names = ("binomial", "bonds") if quick \
        else ("binomial", "bonds", "minibude")
    server = RegionServer()
    harnesses = {}
    for name in names:
        harness = _make_harness(name, workdir / "throughput", quick=quick,
                                chunk=chunk, server=server)
        _train(harness, epochs=epochs, quick=quick)
        harnesses[name] = harness

    streams = {
        "binomial": lambda h: (h.test_opts, (np.empty(len(h.test_opts)),)),
        "bonds": lambda h: (h.test_bonds, (np.empty(len(h.test_bonds)),
                                           np.empty(len(h.test_bonds)))),
        "minibude": lambda h: (h.test_poses,
                               (np.empty(len(h.test_poses)),)),
    }

    def serve_all():
        futures = []
        buffers = {n: streams[n](harnesses[n]) for n in names}
        total_rows = 0
        # Round-robin across regions so backends see interleaved
        # traffic (the worst case for a single queue, the natural one
        # for per-region affinity).
        max_len = max(len(rows) for rows, _ in buffers.values())
        for start in range(0, max_len, chunk):
            for name in names:
                rows, outs = buffers[name]
                if start >= len(rows):
                    continue
                block = np.ascontiguousarray(rows[start:start + chunk])
                b = len(block)
                views = [o[start:start + b] for o in outs]
                result = server.invoke(name, block, *views, b,
                                       use_model=True)
                if result is not None and hasattr(result, "result"):
                    futures.append(result)
                total_rows += b
        server.drain()
        for future in futures:
            future.result()
        return total_rows

    out = {"regions": list(names), "backends": {}}
    for backend_name, backend in (("serial", None),
                                  ("thread", ThreadPoolBackend())):
        if backend is not None:
            server.backend = backend      # swap while idle
        serve_all()                       # warm
        times = []
        rows = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            rows = serve_all()
            times.append(time.perf_counter() - t0)
        best = min(times)
        out["backends"][backend_name] = {
            "seconds": best,
            "rows": rows,
            "rows_per_second": rows / best,
        }
        if backend is not None:
            backend.close()
    serial = out["backends"]["serial"]["rows_per_second"]
    thread = out["backends"]["thread"]["rows_per_second"]
    out["thread_vs_serial"] = thread / serial
    return out


# ----------------------------------------------------------------------
# Scenario: backend scaling sweep (1/2/4 regions x serial/thread/process)
# ----------------------------------------------------------------------

def scenario_backend_scaling(workdir, *, quick, workers=4,
                             repeats=2) -> dict:
    """Aggregate rows/s as the fleet grows, per execution backend.

    Synthetic ``binomial-s`` replicas (Table IV shape, ``ml(infer)``
    only — no harness training) served round-robin; the thread backend
    shows per-region affinity under the GIL, the process backend the
    slab-ring pool.  Wall-clock numbers — on a single-core box the
    process backend pays IPC without gaining overlap, which is exactly
    what the sweep should show there (``BENCH_multiproc.json`` carries
    the modeled-concurrency acceptance figures).
    """
    arch = {"hidden1_features": 48, "hidden2_features": 24}
    rows = 32 if quick else 128
    invocations = 4 if quick else 24
    out = {"shape": "binomial-s", "workers": workers,
           "rows_per_invocation": rows,
           "invocations_per_region": invocations, "fleets": {}}
    for fleet in (1, 2, 4):
        names, regions = [], []
        x, _ = make_io("binomial", rows, seed=3)
        for r in range(fleet):
            name = f"scale{fleet}-r{r}"
            region, _ = make_mlp_region(Path(workdir) / "scaling",
                                        "binomial", arch, name=name, seed=r)
            regions.append(region)
            names.append(name)
        ys = [make_io("binomial", rows)[1] for _ in range(fleet)]
        server = RegionServer()
        for region in regions:
            server.register(region)
        per_backend = {}
        for kind in ("serial", "thread", "process"):
            backend = None
            if kind == "thread":
                backend = ThreadPoolBackend()
            elif kind == "process":
                backend = ProcessPoolBackend(workers=workers,
                                             request_timeout=120.0,
                                             registry=MetricsRegistry())
            if backend is not None:
                server.backend = backend      # swap while idle
            _serve_pass(server, names, x, ys, 1, rows)        # warm
            best, total = float("inf"), 0
            for _ in range(repeats):
                t0 = time.perf_counter()
                total = _serve_pass(server, names, x, ys, invocations,
                                    rows)
                best = min(best, time.perf_counter() - t0)
            entry = {"seconds": best, "rows": total,
                     "rows_per_second": total / best}
            if kind == "process":
                entry["pickle_fallbacks"] = sum(
                    backend.client_for(n).pickle_fallbacks for n in names)
            if backend is not None:
                backend.close()               # process: restores engines
            per_backend[kind] = entry
        server.backend = SerialBackend()      # live backend for close()
        server.close()
        out["fleets"][str(fleet)] = per_backend
    at4 = out["fleets"]["4"]
    out["thread_vs_serial_at_4"] = (at4["thread"]["rows_per_second"]
                                    / at4["serial"]["rows_per_second"])
    out["process_vs_serial_at_4"] = (at4["process"]["rows_per_second"]
                                     / at4["serial"]["rows_per_second"])
    return out


# ----------------------------------------------------------------------
# Scenario: cross-region budget arbitration
# ----------------------------------------------------------------------

def scenario_arbitration(workdir, *, quick, chunk, epochs) -> dict:
    server = RegionServer()
    strong_h = _make_harness("binomial", workdir / "arbitration",
                             quick=quick, chunk=chunk, server=server)
    _train(strong_h, epochs=epochs, quick=quick)
    weak_h = _make_harness("bonds", workdir / "arbitration", quick=quick,
                           chunk=chunk, server=server)
    weak_h.collect()
    (xt, yt), _ = weak_h.training_arrays()
    # Untrained weights: the worst-case stand-in for a fully drifted
    # surrogate (PR-2's weak-model protocol).
    weak_model = weak_h.make_builder(xt, yt)(ARCHS["bonds"], seed=3)
    weak_h.install_model(weak_model)

    # References + pure-infer errors, measured before QoS attaches.
    strong_acc = strong_h.run_accurate()
    weak_acc = weak_h.run_accurate()
    strong_pure = _relative(strong_h.run_surrogate(), strong_acc)
    weak_pure = _relative(weak_h.run_surrogate(), weak_acc)

    # The budget must sit between the trained model's error and the
    # untrained one's: comfortably above the former (it keeps its infer
    # share), far below the latter (it gets forced accurate).
    budget = float(min(max(4.0 * strong_pure, 0.05), weak_pure / 3.0))
    # Pessimistic charging (P95 sketch, not the EWMA mean): the
    # untrained model's per-chunk errors vary widely, and admissions
    # priced at a transiently low mean would blow the L2 compliance.
    arbiter = QoSArbiter(budget, shadow_rate=0.25, seed=7, warmup=2,
                         rebalance_every=16, pessimistic=True)
    server.attach_qos(arbiter)
    strong_dep = _relative(strong_h.run_surrogate(), strong_acc)
    weak_dep = _relative(weak_h.run_surrogate(), weak_acc)
    server.detach_qos()

    snap = arbiter.snapshot()
    arb = snap["arbitration"]
    strong_ledger = arb["regions"]["binomial"]
    weak_ledger = arb["regions"]["bonds"]
    return {
        "budget": budget,
        "strong": {
            "benchmark": "binomial",
            "pure_relative_error": strong_pure,
            "deployed_relative_error": strong_dep,
            "under_budget": bool(strong_dep <= budget),
            "inferred": strong_ledger["inferred"],
            "denied": strong_ledger["denied"],
            "infer_share": strong_ledger["inferred"]
            / max(strong_ledger["decisions"], 1),
        },
        "weak": {
            "benchmark": "bonds",
            "pure_relative_error": weak_pure,
            "deployed_relative_error": weak_dep,
            "under_budget": bool(weak_dep <= budget),
            "inferred": weak_ledger["inferred"],
            "denied": weak_ledger["denied"],
            "forced_accurate": bool(
                weak_ledger["denied"] > weak_ledger["inferred"]),
        },
        "global_mean_charge": arb["global_mean_charge"],
        "rollup": snap["rollup"],
        "compliant": bool(strong_dep <= budget and weak_dep <= budget),
    }


# ----------------------------------------------------------------------
# Scenario: drift -> burst -> background retrain -> hot swap
# ----------------------------------------------------------------------

def scenario_retrain(workdir, *, quick, chunk, epochs,
                     drift_factor=1.8) -> dict:
    server = RegionServer()
    bin_h = _make_harness("binomial", workdir / "retrain", quick=quick,
                          chunk=chunk, server=server)
    _train(bin_h, epochs=epochs, quick=quick)
    bonds_h = _make_harness("bonds", workdir / "retrain", quick=quick,
                            chunk=chunk, server=server)
    _train(bonds_h, epochs=epochs, quick=quick)

    bonds_acc = bonds_h.run_accurate()
    base_pure = _relative(bin_h.run_surrogate(), bin_h.run_accurate())

    # Accurate reference for the *drifted* binomial workload, computed
    # directly from the kernel (the server never sees this run).
    drifted = bin_h.test_opts.copy()
    drifted[:, 0] *= drift_factor
    drifted_acc = binomial_app.kernel.price_american(
        drifted, n_steps=bin_h.n_steps)

    budget = float(max(4.0 * base_pure, 0.06))
    arbiter = QoSArbiter(
        budget, shadow_rate=0.3, seed=7, warmup=2, rebalance_every=16,
        pessimistic=True,
        policies=[DriftBurstPolicy(burst=24, threshold=0.05, delta=0.005,
                                   burn_in=2)])
    server.attach_qos(arbiter)

    worker = RetrainWorker(seed=1)
    retrain_epochs = 8 if quick else 30

    def build(xt, yt):
        return bin_h.make_builder(xt, yt)(ARCHS["binomial"], seed=11)

    worker.watch("binomial", bin_h.db_path, bin_h.model_path, build=build,
                 trainer_kwargs=dict(max_epochs=retrain_epochs,
                                     **TRAIN_PARAMS["binomial"]),
                 min_new_rows=32, engines=[bin_h.engine], qos=arbiter)
    worker.start(interval=0.05)

    def serve_binomial(rows):
        prices = np.empty(len(rows))
        for start in range(0, len(rows), chunk):
            block = np.ascontiguousarray(rows[start:start + chunk])
            b = len(block)
            server.invoke("binomial", block, prices[start:start + b], b,
                          use_model=True)
        server.flush("binomial")
        return prices

    # In-distribution phase first: the drift detector needs a baseline
    # error level to register the shift against, and the arbiter's
    # ledger learns that this region is cheap.
    serve_binomial(bin_h.test_opts)

    # Drift hits: shadow errors climb, Page-Hinkley fires, collect
    # bursts append drifted rows to the DB while serving continues.
    serve_binomial(drifted)
    pre_stats = arbiter.stats_for("binomial")
    pre_error = float(pre_stats.mean) if pre_stats.count else None

    # The background worker retrains on the refreshed DB and hot-swaps;
    # stop() runs a final poll, so a refresh that landed after the last
    # tick is still honored.
    deadline = time.time() + 60.0
    while not worker.events and time.time() < deadline:
        time.sleep(0.05)
    worker.stop()
    hot_swapped = len(worker.events) > 0

    # Post-swap serving: same server object, never restarted.
    post_prices = serve_binomial(drifted)
    post_dep = _relative(post_prices, drifted_acc)
    post_stats = arbiter.stats_for("binomial")
    post_error = float(post_stats.mean) if post_stats.count else None
    bonds_dep = _relative(bonds_h.run_surrogate(), bonds_acc)
    server.detach_qos()

    # Compiled-vs-graph trainer on the very DB the drift bursts
    # refreshed: the retrain->hot-swap wall time (DB load -> train ->
    # serialize -> atomic swap) is the drift-recovery latency the live
    # server pays; scratch model paths keep the served file untouched.
    trainer_comparison = {}
    for mode, compiled in (("graph", False), ("compiled", True)):
        probe = RetrainWorker(seed=1)
        probe.watch("binomial", bin_h.db_path,
                    Path(workdir) / f"retrain-compare-{mode}.rnm",
                    build=build,
                    trainer_kwargs=dict(max_epochs=retrain_epochs,
                                        compiled=compiled,
                                        **TRAIN_PARAMS["binomial"]))
        event = probe.retrain_now("binomial")
        trainer_comparison[mode] = {"seconds": event.seconds,
                                    "rows": event.rows,
                                    "val_loss": event.val_loss}
    trainer_comparison["speedup"] = (
        trainer_comparison["graph"]["seconds"]
        / trainer_comparison["compiled"]["seconds"])
    trainer_comparison["val_loss_diff"] = abs(
        trainer_comparison["graph"]["val_loss"]
        - trainer_comparison["compiled"]["val_loss"])

    return {
        "trainer_comparison": trainer_comparison,
        "budget": budget,
        "drift_factor": drift_factor,
        "base_pure_relative_error": base_pure,
        "pre_retrain_shadow_ewma": pre_error,
        "post_retrain_shadow_ewma": post_error,
        "hot_swapped": hot_swapped,
        "server_restarted": False,
        "retrains": [e.as_dict() for e in worker.events],
        "drift_bursts": arbiter.snapshot()["policy"]["members"][0]["drifts"],
        "binomial_deployed_relative_error": post_dep,
        "bonds_deployed_relative_error": bonds_dep,
        "both_under_budget": bool(post_dep <= budget
                                  and bonds_dep <= budget),
    }


# ----------------------------------------------------------------------

def run_benchmark(workdir, *, quick: bool = False, chunk: int = 16,
                  epochs: int = 40) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    latency = scenario_latency(workdir, quick=quick, chunk=chunk,
                               epochs=epochs)
    throughput = scenario_throughput(workdir, quick=quick, chunk=chunk,
                                     epochs=epochs)
    scaling = scenario_backend_scaling(workdir, quick=quick)
    arbitration = scenario_arbitration(workdir, quick=quick, chunk=chunk,
                                       epochs=epochs)
    retrain = scenario_retrain(workdir, quick=quick, chunk=chunk,
                               epochs=epochs)
    return {
        "schema": SCHEMA,
        "config": {"quick": quick, "chunk": chunk, "epochs": epochs},
        "latency": latency,
        "throughput": throughput,
        "backend_scaling": scaling,
        "arbitration": arbitration,
        "retrain": retrain,
        "summary": {
            "latency_ratio": latency["ratio"],
            "latency_within_5pct": bool(latency["ratio"] <= 1.05),
            "thread_vs_serial_throughput": throughput["thread_vs_serial"],
            "process_vs_serial_at_4": scaling["process_vs_serial_at_4"],
            "arbitration_compliant": arbitration["compliant"],
            "retrain_hot_swapped": retrain["hot_swapped"],
            "retrain_both_under_budget": retrain["both_under_budget"],
            "retrain_trainer_speedup":
                retrain["trainer_comparison"]["speedup"],
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--chunk", type=int, default=16,
                        help="serving invocation chunk (rows)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    kwargs = dict(quick=args.quick, chunk=args.chunk,
                  epochs=min(args.epochs, 30) if args.quick else args.epochs)
    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, **kwargs)
    else:
        results = run_benchmark(args.workdir, **kwargs)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    lat = results["latency"]
    print(f"latency: server/direct ratio {lat['ratio']:.3f} "
          f"({lat['server_overhead_us_per_invocation']:+.1f} us/invocation)")
    thr = results["throughput"]
    for backend, row in thr["backends"].items():
        print(f"throughput[{backend}]: {row['rows_per_second']:,.0f} rows/s")
    scaling = results["backend_scaling"]
    for fleet, row in scaling["fleets"].items():
        rates = " | ".join(f"{kind} {entry['rows_per_second']:,.0f}"
                           for kind, entry in row.items())
        print(f"scaling[{fleet} region(s)]: {rates} rows/s")
    print(f"scaling at 4 regions: thread "
          f"{scaling['thread_vs_serial_at_4']:.2f}x, process "
          f"{scaling['process_vs_serial_at_4']:.2f}x vs serial")
    arb = results["arbitration"]
    print(f"arbitration: budget {arb['budget']:.3g} | strong deployed "
          f"{arb['strong']['deployed_relative_error']:.3g} "
          f"(infer share {arb['strong']['infer_share']:.2f}) | weak "
          f"deployed {arb['weak']['deployed_relative_error']:.3g} "
          f"(pure {arb['weak']['pure_relative_error']:.3g}) | "
          f"compliant={arb['compliant']}")
    ret = results["retrain"]
    print(f"retrain: bursts {ret['drift_bursts']}, hot_swapped="
          f"{ret['hot_swapped']}, shadow ewma "
          f"{ret['pre_retrain_shadow_ewma']} -> "
          f"{ret['post_retrain_shadow_ewma']}, both regions under budget "
          f"{ret['budget']:.3g}: {ret['both_under_budget']}")
    cmp_ = ret["trainer_comparison"]
    print(f"retrain wall time: graph {cmp_['graph']['seconds']:.3f} s, "
          f"compiled {cmp_['compiled']['seconds']:.3f} s "
          f"({cmp_['speedup']:.2f}x, val-loss diff "
          f"{cmp_['val_loss_diff']:.3g})")
    return results


if __name__ == "__main__":
    main()
