"""Fig. 5 — end-to-end application speedup and error, best models.

Deploys the lowest-validation-error model of each benchmark family and
reports end-to-end speedup plus QoI error, the two panels of Fig. 5.
Paper shape: every application speeds up (up to 83.6x, geometric mean
13x on A100s); errors stay small relative to each QoI's scale.
"""

import numpy as np
import pytest

from repro.analysis import geometric_mean, render_table
from repro.apps.harness import harness_for

APPS = ("minibude", "binomial", "bonds", "miniweather", "particlefilter")

#: Apps whose deploy loop is chunkable (invocations independent of each
#: other's outputs) — the auto-batch variant below runs these.
AUTOBATCH_APPS = ("minibude", "binomial", "bonds")


@pytest.fixture(scope="module")
def fig5_rows(store):
    rows = []
    for name in APPS:
        bundle = store.bundle(name)
        best = min(bundle.models, key=lambda m: m.val_loss)
        metrics = bundle.harness.evaluate(best.model, repeats=3)
        rows.append({"benchmark": name, "model": best.label,
                     "n_params": best.n_params,
                     "speedup": metrics.speedup,
                     "error": metrics.qoi_error,
                     "metric": bundle.harness.info.metric.upper()})
    return rows


def test_fig5_speedup_and_error(fig5_rows):
    print()
    print(render_table(fig5_rows,
                       title="Fig. 5: end-to-end speedup & QoI error "
                             "(best-validation models)"))
    speedups = [r["speedup"] for r in fig5_rows]
    # Shape: every app accelerates end-to-end under surrogate inference.
    assert all(s > 1.0 for s in speedups)
    gm = geometric_mean(speedups)
    print(f"geometric-mean speedup: {gm:.2f}x")
    assert gm > 1.5
    # The batch-parallel financial apps show the largest factors, as in
    # the paper where Binomial Options peaks at 83.6x.
    by_name = {r["benchmark"]: r["speedup"] for r in fig5_rows}
    assert by_name["binomial"] > by_name["miniweather"]


def test_fig5_errors_within_qoi_scale(fig5_rows, store):
    """Errors are small on each benchmark's own QoI scale (paper: BO
    finds several models under its error<10 cutoff; our laptop-scale
    training gets MiniBUDE to ~11% MAPE vs the paper's 2.7-6.8%)."""
    for row in fig5_rows:
        limit = 15.0 if row["metric"] == "MAPE" else 10.0
        assert row["error"] < limit, row


def test_fig5_autobatch_variant(store, request):
    """Fig. 5 variant: deploy loops chunked into small invocations, with
    and without `RegionConfig(auto_batch=...)` coalescing them.

    Enable with ``--fig5-autobatch``.  Shape: the batched engine
    recovers most of the chunking overhead (one forward per
    ``max_batch_rows`` instead of one per chunk), so the auto-batched
    chunked loop lands near — and far above the unbatched chunked
    loop's — end-to-end speedup.
    """
    if not request.config.getoption("--fig5-autobatch"):
        pytest.skip("run with --fig5-autobatch to enable this variant")
    chunk = 8
    rows = []
    for name in AUTOBATCH_APPS:
        bundle = store.bundle(name)
        best = min(bundle.models, key=lambda m: m.val_loss)
        variants = {}
        for label, auto_batch in (("chunked", False), ("autobatch", True)):
            harness = harness_for(name, store.root / f"{name}_{label}",
                                  seed=0, deploy_chunk=chunk,
                                  auto_batch=auto_batch, batch_rows=64)
            metrics = harness.evaluate(best.model, repeats=3)
            variants[label] = metrics
        gain = variants["autobatch"].surrogate_time and \
            variants["chunked"].surrogate_time / \
            variants["autobatch"].surrogate_time
        rows.append({"benchmark": name, "chunk": chunk,
                     "speedup_chunked": variants["chunked"].speedup,
                     "speedup_autobatch": variants["autobatch"].speedup,
                     "autobatch_gain": gain,
                     "error_autobatch": variants["autobatch"].qoi_error})
    print()
    print(render_table(rows, title="Fig. 5 variant: chunked deploy loops, "
                                   "auto-batched vs per-chunk inference"))
    for row in rows:
        # The auto-batched loop must still accelerate end-to-end...
        assert row["speedup_autobatch"] > 1.0, row
        # ...without regressing badly vs per-chunk inference (sub-ms
        # surrogate windows jitter, so this is a guardrail, not a
        # greater-than-one claim — the recorded gain is the result).
        assert row["autobatch_gain"] > 0.75, row
        # QoI error must be unaffected by deferring the scatter-back.
        assert row["error_autobatch"] < 15.0, row


@pytest.mark.benchmark(group="fig5-inference-path")
def bench_binomial_surrogate_invocation(benchmark, store):
    bundle = store.bundle("binomial")
    best = min(bundle.models, key=lambda m: m.val_loss)
    bundle.harness.install_model(best.model)
    qoi = benchmark(bundle.harness.run_surrogate)
    assert np.all(np.isfinite(qoi))


@pytest.mark.benchmark(group="fig5-accurate-path")
def bench_binomial_accurate_invocation(benchmark, store):
    bundle = store.bundle("binomial")
    qoi = benchmark(bundle.harness.run_accurate)
    assert np.all(np.isfinite(qoi))
