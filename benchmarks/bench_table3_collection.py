"""Table III — data-collection overhead and database size.

For each benchmark: runtime of the plain accurate path vs. the same
path with HPAC-ML data collection enabled, plus the size of the
produced database.  Paper shape: overhead factors between ~1.0x and
~45x (worst for the cheap iterative MiniWeather timestep), amortized
over the model-search campaign.
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.apps.harness import harness_for
from repro.runtime import Phase

from conftest import HARNESS_PARAMS


def _measure(name, tmp_path):
    h = harness_for(name, tmp_path / name, seed=0, **HARNESS_PARAMS[name])
    # Plain accurate runtime on the test workload.
    t0 = time.perf_counter()
    h.run_accurate()
    plain = time.perf_counter() - t0
    # Collection runtime over the training workload, normalized per
    # region invocation so the two are comparable.
    before = len(h.events.records)
    t0 = time.perf_counter()
    h.collect()
    collect_wall = time.perf_counter() - t0
    recs = h.events.records[before:]
    accurate_in_collect = sum(r.times.get(Phase.ACCURATE, 0.0) for r in recs)
    overhead = collect_wall / max(accurate_in_collect, 1e-12)
    db_mb = h.db_path.stat().st_size / 1e6
    return {"benchmark": name, "plain_s": plain,
            "with_collection_s": collect_wall,
            "overhead_x": overhead, "db_MB": db_mb}


def test_table3_collection_overhead(tmp_path):
    rows = [_measure(name, tmp_path)
            for name in ("minibude", "binomial", "bonds", "miniweather",
                         "particlefilter")]
    print()
    print(render_table(rows, title="Table III: data collection overhead"))
    for row in rows:
        assert row["overhead_x"] >= 0.95      # collection never speeds up
        # Paper's worst factor is 44.6x (MiniWeather); our pure-Python
        # datastore pushes the cheap-kernel extremes further out.
        assert row["overhead_x"] < 5000.0
        assert row["db_MB"] > 0.01            # something was written


@pytest.mark.benchmark(group="table3-collection")
def bench_collection_invocation(benchmark, tmp_path):
    """Cost of one collect-mode region invocation (binomial)."""
    h = harness_for("binomial", tmp_path, seed=0, n_train=512, n_test=128,
                    n_steps=48)
    block = np.ascontiguousarray(h.train_opts[:256])
    out = np.empty(256)

    def invoke():
        h.collect_region(block, out, 256, use_model=False)

    benchmark(invoke)
    h.collect_region.flush()
    assert h.db_path.exists()
