"""Fig. 9 — MiniWeather: auto-regressive error propagation & interleaving.

Panels reproduced (timestep indices scaled to our workload: the paper
trains on the first 1000 steps and tests to 1200; we train on the first
``train_steps`` and test a proportional window):

* 9b/9e — pure surrogate stepping: per-timestep RMSE grows steadily;
  after ~10 auto-regressive steps the error distribution shifts right
  by roughly an order of magnitude (paper: 80th-percentile relative
  error 0.09 -> 1.25).
* 9c/9d — interleaving Original:Surrogate cycles (1:1, 2:1, 3:3)
  trades speedup for error: more accurate steps, less error, less
  speedup.
* 9f — CDF of relative error at the first surrogate step vs 10 steps
  later.
"""

import numpy as np
import pytest

from repro.analysis import cdf_quantile, relative_error, render_series, \
    render_table
from repro.runtime import Phase

CONFIGS = [("0:1", 0, 1), ("1:1", 1, 1), ("2:1", 2, 1), ("3:3", 3, 3)]


@pytest.fixture(scope="module")
def mw(store):
    bundle = store.bundle("miniweather")
    best = min(bundle.models, key=lambda m: m.val_loss)
    bundle.harness.install_model(best.model)
    return bundle.harness


def test_fig9e_per_timestep_rmse(mw):
    steps = mw.test_steps
    series = {}
    for label, n_acc, n_sur in CONFIGS:
        cycle = n_acc + n_sur
        errors = mw.trajectory_errors(
            lambda i, n_acc=n_acc, cycle=cycle: (i % cycle) >= n_acc, steps)
        series[label] = errors
    print()
    for label, errors in series.items():
        print(render_series(f"Fig. 9e RMSE (orig:surr {label})",
                            list(range(1, steps + 1)), errors.tolist(),
                            "step", "rmse"))
    # Pure surrogate error grows and dominates every interleaving.
    pure = series["0:1"]
    assert pure[-1] > pure[0]
    for label in ("1:1", "2:1", "3:3"):
        assert series[label][-1] < pure[-1], label
    # More accurate steps per cycle -> less error (2:1 beats 1:1).
    assert series["2:1"][-1] <= series["1:1"][-1] * 1.25


def test_fig9d_rmse_vs_speedup(mw):
    def best_window(fn, repeats=3):
        """Min-of-N window time (robust to background load), plus the
        final state of the last run."""
        times, final = [], None
        for _ in range(repeats):
            final = fn()
            times.append(mw.window_seconds())   # excludes shared warm-up
        return min(times), final

    t_acc, reference = best_window(mw.run_accurate)
    rows = []
    for label, n_acc, n_sur in CONFIGS:
        fn = (lambda n_acc=n_acc, n_sur=n_sur:
              mw.run_interleaved(n_acc, n_sur)) if n_acc else mw.run_surrogate
        t_total, final = best_window(fn)
        rmse = float(np.sqrt(np.mean((final - reference) ** 2)))
        rows.append({"config": label, "rmse": rmse,
                     "speedup": t_acc / max(t_total, 1e-12)})
    print()
    print(render_table(rows, title="Fig. 9d: RMSE vs speedup at final "
                                   "test step"))
    by = {r["config"]: r for r in rows}
    # Shape: pure surrogate is fastest and least accurate; interleaving
    # lowers both error and speedup ("at the expense of performance
    # improvement", §VI Obs. 4 — the paper's Fig. 9d axis spans 0..2 and
    # interleaved configs can drop below 1x).
    assert by["0:1"]["speedup"] > 1.0
    assert by["0:1"]["speedup"] >= by["1:1"]["speedup"] * 0.9
    assert by["1:1"]["rmse"] <= by["0:1"]["rmse"]
    assert by["2:1"]["rmse"] <= by["0:1"]["rmse"]


def test_fig9f_relative_error_cdf_shift(mw):
    """Error distribution shifts right by ~an order of magnitude after
    10 auto-regressive surrogate steps."""
    u_acc = mw._fresh_u()
    for _ in range(mw.train_steps):
        mw.timestep(u_acc, use_model=False)
    u_sur = u_acc.copy()

    mw.timestep(u_acc, use_model=False)
    mw.timestep(u_sur, use_model=True)
    rel_1 = relative_error(u_sur, u_acc, eps=1e-3)

    for _ in range(9):
        mw.timestep(u_acc, use_model=False)
        mw.timestep(u_sur, use_model=True)
    rel_10 = relative_error(u_sur, u_acc, eps=1e-3)

    p80_1, p80_10 = cdf_quantile(rel_1, 0.8), cdf_quantile(rel_10, 0.8)
    p90_1, p90_10 = cdf_quantile(rel_1, 0.9), cdf_quantile(rel_10, 0.9)
    print(f"\nFig. 9f: rel-err p80 {p80_1:.4g} -> {p80_10:.4g}, "
          f"p90 {p90_1:.4g} -> {p90_10:.4g}")
    assert p80_10 > p80_1 * 2.0     # paper: ~14x shift at p80
    assert p90_10 > p90_1


@pytest.mark.benchmark(group="fig9-step")
def bench_accurate_timestep(benchmark, mw):
    u = mw._fresh_u()
    benchmark(mw.timestep, u, False)


@pytest.mark.benchmark(group="fig9-step")
def bench_surrogate_timestep(benchmark, mw):
    u = mw._fresh_u()
    benchmark(mw.timestep, u, True)
