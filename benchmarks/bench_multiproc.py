"""Multiprocess serving benchmark: slab-ring throughput + IPC overhead.

Measures the :class:`~repro.serving.ProcessPoolBackend` (PR 8) against
the serial baseline on the Table IV MLP shapes:

* **throughput** — four replicas of one app shape served round-robin
  through a ``RegionServer``, ``SerialBackend`` versus
  ``ProcessPoolBackend(workers=4)`` (one region per worker).  Reported
  both ways:

  - *measured*: wall-clock seconds for the same invocation stream;
  - *modeled*: the critical path under perfect overlap,
    ``max(parent CPU seconds, slowest worker's busy CPU seconds)``.
    Parent CPU is ``time.process_time()`` across the serving loop
    (gather/scatter + IPC in the affinity threads); worker busy CPU is
    accounted per forward inside each worker and summed per worker via
    the slab clients.

  On a box with at least ``workers + 1`` cores the measured number is
  authoritative; on a 1-core container (the CI image) the four workers
  time-slice one CPU, so wall clock cannot show the overlap and the
  modeled number is the honest concurrency figure — the same
  simulation methodology the repo's ``Device.dense_speedup`` uses.
  ``summary.mode`` records which basis the 2x target was judged on,
  and ``cores`` is always recorded.

  The hot path must stay zero-copy: the run fails if any invocation
  fell back to pickling an array (``pickle_fallbacks`` must be 0).

* **ipc** — per-invocation transport overhead for one worker:
  round-trip wall minus in-worker forward wall, slab transport versus
  the pickle baseline (``transport="pickle"`` ships arrays through the
  pipe), plus the in-process engine call as a floor.

Results land in ``BENCH_multiproc.json`` (schema ``bench_multiproc/v1``).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_multiproc.py
    PYTHONPATH=src python benchmarks/bench_multiproc.py --quick
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_inference_fastpath import (_IN_FEATURES, _OUT_FEATURES,
                                      build_shape)  # noqa: E402

from repro.api import approx_ml                     # noqa: E402
from repro.nn import save_model                     # noqa: E402
from repro.obs.registry import MetricsRegistry      # noqa: E402
from repro.runtime import InferenceEngine           # noqa: E402
from repro.serving import (ProcessPoolBackend, RegionServer,  # noqa: E402
                           RemoteEngineClient, WorkerHandle)

SCHEMA = "bench_multiproc/v1"

#: Table IV MLP apps exercised by the throughput scenario (>= 2 apps,
#: per the PR-8 acceptance bar); labels mirror bench_inference_fastpath.
APPS = [
    ("binomial-m", "binomial",
     {"hidden1_features": 160, "hidden2_features": 96}),
    ("bonds-m", "bonds",
     {"hidden1_features": 160, "hidden2_features": 96}),
    ("minibude-s", "minibude",
     {"num_hidden_layers": 3, "hidden1_size": 128,
      "feature_multiplier": 0.8}),
]


def make_mlp_region(workdir, benchmark: str, arch: dict, *, name: str,
                    seed: int = 0, auto_batch: bool = False):
    """A served region wrapping one Table IV MLP shape on ``ml(infer)``.

    The model is built with the same builders the NAS spaces deploy,
    saved under ``workdir``, and the region's maps move ``(N, F)``
    inputs / ``(N,)`` or ``(N, K)`` outputs — so every invocation is
    one engine forward of ``N`` rows.  Returns ``(region, n_params)``.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    model = build_shape(benchmark, arch, seed=seed)
    path = workdir / f"{name}.rnm"
    save_model(model, path)
    n_in = _IN_FEATURES[benchmark]
    n_out = _OUT_FEATURES[benchmark]
    fo = ("fo: [i, 0:1] = ([i])" if n_out == 1
          else f"fo: [i, 0:{n_out}] = ([i, 0:{n_out}])")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:{n_in}] = ([i, 0:{n_in}]))
#pragma approx tensor functor({fo})
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) model("{path}")
"""

    @approx_ml(src, name=name, auto_batch=auto_batch)
    def region(x, y, N):
        y[...] = 0.0          # accurate body unused: ml(infer) always infers

    return region, int(model.num_parameters())


def make_io(benchmark: str, rows: int, seed: int = 0):
    """One ``(rows, F)`` input block and a matching output buffer."""
    rng = np.random.default_rng(seed)
    x = np.ascontiguousarray(rng.normal(size=(rows, _IN_FEATURES[benchmark])))
    n_out = _OUT_FEATURES[benchmark]
    y = np.zeros(rows) if n_out == 1 else np.zeros((rows, n_out))
    return x, y


# ----------------------------------------------------------------------
# Scenario: aggregate invocation throughput, serial vs 4-worker pool
# ----------------------------------------------------------------------

def _serve_pass(server, names, x, ys, invocations, rows) -> int:
    futures = []
    for _ in range(invocations):
        for name, y in zip(names, ys):
            result = server.invoke(name, x, y, rows)
            if result is not None and hasattr(result, "result"):
                futures.append(result)
    server.drain()
    for future in futures:
        future.result()
    return invocations * len(names) * rows


def _timed_pass(server, names, x, ys, invocations, rows, repeats,
                busy_probe=None):
    """Best-of-``repeats`` (by wall): (wall_s, parent_cpu_s, busy_by_worker)."""
    best = None
    for _ in range(repeats):
        busy0 = busy_probe() if busy_probe is not None else {}
        cpu0 = time.process_time()
        t0 = time.perf_counter()
        _serve_pass(server, names, x, ys, invocations, rows)
        wall = time.perf_counter() - t0
        cpu = time.process_time() - cpu0
        busy = {}
        if busy_probe is not None:
            busy1 = busy_probe()
            busy = {k: busy1[k] - busy0.get(k, 0.0) for k in busy1}
        if best is None or wall < best[0]:
            best = (wall, cpu, busy)
    return best


def scenario_throughput(workdir, *, quick, workers=4, replicas=4) -> dict:
    rows = 32 if quick else 256
    invocations = 4 if quick else 30
    repeats = 1 if quick else 3
    total_rows = replicas * invocations * rows
    cores = os.cpu_count() or 1
    # Wall clock can only exhibit the overlap when the workers and the
    # serving parent all have their own core; otherwise judge on the
    # modeled critical path (see module docstring).
    mode = "measured" if cores > workers else "modeled"

    out = {"workers": workers, "replicas": replicas,
           "rows_per_invocation": rows, "invocations_per_region": invocations,
           "repeats": repeats, "cores": cores, "mode": mode,
           "target": 2.0, "apps": {}}
    for label, benchmark, arch in APPS:
        regions, n_params = [], 0
        names, ys, ys_serial = [], [], []
        x, _ = make_io(benchmark, rows, seed=17)
        for r in range(replicas):
            name = f"{label}-r{r}"
            region, n_params = make_mlp_region(
                workdir / "throughput", benchmark, arch, name=name, seed=r)
            regions.append(region)
            names.append(name)
            ys.append(make_io(benchmark, rows)[1])

        # Serial baseline: every forward runs inline in the parent.
        server = RegionServer()
        for region in regions:
            server.register(region)
        _serve_pass(server, names, x, ys, 1, rows)            # warm plans
        serial_wall, serial_cpu, _ = _timed_pass(
            server, names, x, ys, invocations, rows, repeats)
        ys_serial = [y.copy() for y in ys]

        # Process pool: one region replica per worker, slab transport.
        backend = ProcessPoolBackend(workers=workers, request_timeout=120.0,
                                     registry=MetricsRegistry())
        pserver = RegionServer(backend=backend)
        for region in regions:
            pserver.register(region)

        def busy_probe():
            per_worker = {}
            for name in names:
                widx = backend.worker_for(name)
                client = backend.client_for(name)
                per_worker[widx] = (per_worker.get(widx, 0.0)
                                    + client.busy_seconds)
            return per_worker

        _serve_pass(pserver, names, x, ys, 1, rows)           # warm workers
        proc_wall, proc_cpu, busy = _timed_pass(
            pserver, names, x, ys, invocations, rows, repeats,
            busy_probe=busy_probe)
        max_busy = max(busy.values()) if busy else 0.0
        modeled = max(proc_cpu, max_busy)
        fallbacks = sum(backend.client_for(n).pickle_fallbacks
                        for n in names)
        diff = max(float(np.abs(yp - ysr).max())
                   for yp, ysr in zip(ys, ys_serial))
        pserver.close()                  # restores engines, closes regions
        if fallbacks:
            raise RuntimeError(
                f"{label}: {fallbacks} hot-path forwards pickled arrays — "
                f"the slab ring must carry every tensor")

        speedup_measured = serial_wall / proc_wall
        speedup_modeled = serial_wall / modeled if modeled > 0 else 0.0
        achieved = (speedup_measured if mode == "measured"
                    else speedup_modeled)
        out["apps"][label] = {
            "benchmark": benchmark,
            "arch": arch,
            "n_params": n_params,
            "serial": {
                "seconds": serial_wall,
                "cpu_seconds": serial_cpu,
                "rows": total_rows,
                "rows_per_second": total_rows / serial_wall,
            },
            "process": {
                "seconds": proc_wall,
                "parent_cpu_seconds": proc_cpu,
                "worker_busy_seconds": {str(k): v
                                        for k, v in sorted(busy.items())},
                "max_worker_busy_seconds": max_busy,
                "modeled_seconds": modeled,
                "rows": total_rows,
                "rows_per_second_measured": total_rows / proc_wall,
                "rows_per_second_modeled":
                    total_rows / modeled if modeled > 0 else 0.0,
                "pickle_fallbacks": fallbacks,
            },
            "speedup_measured": speedup_measured,
            "speedup_modeled": speedup_modeled,
            "speedup_achieved": achieved,
            "target_met": bool(achieved >= 2.0),
            "max_abs_diff": diff,
            "outputs_match": bool(diff <= 1e-9),
            "zero_copy": fallbacks == 0,
        }
    apps = out["apps"].values()
    out["apps_meeting_target"] = sum(a["target_met"] for a in apps)
    out["all_outputs_match"] = all(a["outputs_match"] for a in apps)
    out["all_zero_copy"] = all(a["zero_copy"] for a in apps)
    return out


# ----------------------------------------------------------------------
# Scenario: per-invocation IPC overhead, slab vs pickle transport
# ----------------------------------------------------------------------

def scenario_ipc(workdir, *, quick) -> dict:
    rows = 32 if quick else 256
    repeats = 20 if quick else 300
    label, benchmark, arch = APPS[0]
    model = build_shape(benchmark, arch, seed=0)
    path = Path(workdir) / "ipc" / f"{label}.rnm"
    path.parent.mkdir(parents=True, exist_ok=True)
    save_model(model, path)
    x, _ = make_io(benchmark, rows, seed=5)

    out = {"shape": label, "rows": rows, "repeats": repeats,
           "payload_bytes_in": int(x.nbytes),
           "payload_bytes_out": rows * _OUT_FEATURES[benchmark] * 8,
           "transports": {}}

    # In-process floor: the engine call the worker itself runs.
    engine = InferenceEngine()
    engine.infer(path, x)                            # warm the plan
    forward_wall = 0.0
    t0 = time.perf_counter()
    for _ in range(repeats):
        engine.infer(path, x)
        forward_wall += engine.last_timing.get("forward_wall", 0.0)
    wall = time.perf_counter() - t0
    out["transports"]["inproc"] = {
        "roundtrip_us": wall / repeats * 1e6,
        "forward_us": forward_wall / repeats * 1e6,
        "overhead_us": (wall - forward_wall) / repeats * 1e6,
    }

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else methods[0])
    for transport in ("shm", "pickle"):
        handle = WorkerHandle(1000 if transport == "shm" else 1001, ctx,
                              request_timeout=120.0)
        client = RemoteEngineClient(handle, transport=transport,
                                    timeout=120.0)
        try:
            client.infer(path, x)                    # warm worker plan
            forward_wall = 0.0
            t0 = time.perf_counter()
            for _ in range(repeats):
                _, timing = client.infer(path, x)
                forward_wall += timing.get("forward_wall", 0.0)
            wall = time.perf_counter() - t0
            out["transports"][transport] = {
                "roundtrip_us": wall / repeats * 1e6,
                "forward_us": forward_wall / repeats * 1e6,
                "overhead_us": (wall - forward_wall) / repeats * 1e6,
                "pickle_fallbacks": client.pickle_fallbacks,
            }
        finally:
            client.close()
            handle.close()
    shm_over = out["transports"]["shm"]["overhead_us"]
    pickle_over = out["transports"]["pickle"]["overhead_us"]
    out["pickle_vs_shm_overhead"] = (pickle_over / shm_over
                                     if shm_over > 0 else 0.0)
    return out


# ----------------------------------------------------------------------

def run_benchmark(workdir, *, quick: bool = False, workers: int = 4) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    throughput = scenario_throughput(workdir, quick=quick, workers=workers)
    ipc = scenario_ipc(workdir, quick=quick)
    return {
        "schema": SCHEMA,
        "config": {"quick": quick, "workers": workers,
                   "cores": throughput["cores"],
                   "start_method": mp.get_start_method(allow_none=True)
                   or ("fork" if "fork" in mp.get_all_start_methods()
                       else mp.get_all_start_methods()[0])},
        "throughput": throughput,
        "ipc": ipc,
        "summary": {
            "mode": throughput["mode"],
            "cores": throughput["cores"],
            "apps_meeting_target": throughput["apps_meeting_target"],
            "apps_total": len(throughput["apps"]),
            "all_zero_copy": throughput["all_zero_copy"],
            "all_outputs_match": throughput["all_outputs_match"],
            "best_speedup_measured": max(
                a["speedup_measured"] for a in throughput["apps"].values()),
            "best_speedup_modeled": max(
                a["speedup_modeled"] for a in throughput["apps"].values()),
            "ipc_overhead_us_shm":
                ipc["transports"]["shm"]["overhead_us"],
            "ipc_overhead_us_pickle":
                ipc["transports"]["pickle"]["overhead_us"],
            "pickle_vs_shm_overhead": ipc["pickle_vs_shm_overhead"],
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_multiproc.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    kwargs = dict(quick=args.quick, workers=args.workers)
    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, **kwargs)
    else:
        results = run_benchmark(args.workdir, **kwargs)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    thr = results["throughput"]
    print(f"throughput mode={thr['mode']} (cores={thr['cores']}, "
          f"workers={thr['workers']})")
    for label, app in thr["apps"].items():
        print(f"  {label}: serial "
              f"{app['serial']['rows_per_second']:,.0f} rows/s | process "
              f"measured {app['speedup_measured']:.2f}x, modeled "
              f"{app['speedup_modeled']:.2f}x | zero_copy="
              f"{app['zero_copy']} diff={app['max_abs_diff']:.2e}")
    ipc = results["ipc"]
    for transport, row in ipc["transports"].items():
        print(f"ipc[{transport}]: roundtrip {row['roundtrip_us']:.1f} us "
              f"(overhead {row['overhead_us']:.1f} us)")
    print(f"ipc overhead pickle/shm: {ipc['pickle_vs_shm_overhead']:.2f}x")
    summ = results["summary"]
    print(f"summary: {summ['apps_meeting_target']}/{summ['apps_total']} "
          f"apps >= 2x ({summ['mode']})")
    return results


if __name__ == "__main__":
    main()
