"""Fig. 7 — ParticleFilter: surrogates vs the algorithmic approximation.

The paper's Observation 1: CNN surrogates simultaneously beat the
particle filter's own RMSE (an algorithmic approximation, ~0.5 vs
ground truth) and accelerate the application ~9x end-to-end.  This
bench deploys the CNN family, measures RMSE against ground truth and
end-to-end speedup, and draws the Fig. 7 scatter as a table with the
algorithmic filter's RMSE as the reference line.
"""

import numpy as np
import pytest

from repro.analysis import render_table


@pytest.fixture(scope="module")
def fig7_data(store):
    bundle = store.bundle("particlefilter")
    alg_rmse = bundle.harness.accurate_vs_truth_rmse()
    min_params = min(m.n_params for m in bundle.models)
    rows = []
    for tm in bundle.models:
        metrics = bundle.harness.evaluate(tm.model, repeats=3)
        rows.append({"model": tm.label,
                     "rel_size": tm.n_params / min_params,
                     "rmse_vs_truth": metrics.qoi_error,
                     "speedup": metrics.speedup})
    return rows, alg_rmse


def test_fig7_scatter(fig7_data):
    rows, alg_rmse = fig7_data
    print()
    print(render_table(rows, title="Fig. 7: ParticleFilter surrogates"))
    print(f"algorithmic particle filter RMSE (black line): {alg_rmse:.3f}")
    # Shape: surrogates accelerate the application...
    assert all(r["speedup"] > 1.0 for r in rows)
    # ...and the best surrogate's accuracy reaches the algorithmic
    # approximation's regime (paper: beats it, 0.12 vs 0.5).
    best = min(r["rmse_vs_truth"] for r in rows)
    assert best < 2.5 * alg_rmse


def test_fig7_surrogate_can_beat_algorithm(fig7_data):
    rows, alg_rmse = fig7_data
    best = min(r["rmse_vs_truth"] for r in rows)
    fastest = max(r["speedup"] for r in rows)
    print(f"\nbest surrogate RMSE {best:.3f} vs algorithm {alg_rmse:.3f}; "
          f"max speedup {fastest:.2f}x")
    # Observation 1's headline — an ML model can outperform the custom
    # algorithmic approximation in accuracy while running faster.
    assert best < alg_rmse * 1.25


@pytest.mark.benchmark(group="fig7-pf")
def bench_particle_filter_kernel(benchmark, store):
    bundle = store.bundle("particlefilter")
    frames = bundle.harness.test_video.frames
    from repro.apps.particlefilter.kernel import particle_filter_track
    est = benchmark(particle_filter_track, frames, 512)
    assert est.shape == (len(frames), 2)


@pytest.mark.benchmark(group="fig7-pf")
def bench_cnn_surrogate(benchmark, store):
    bundle = store.bundle("particlefilter")
    best = min(bundle.models, key=lambda m: m.val_loss)
    frames = bundle.harness.test_video.frames
    x = frames[:, None, :, :]
    from repro.nn import Tensor, no_grad

    def infer():
        with no_grad():
            return best.model(Tensor(x)).numpy()

    out = benchmark(infer)
    assert out.shape == (len(frames), 2)
