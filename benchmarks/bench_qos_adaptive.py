"""Adaptive QoS benchmark: speedup / QoI error / validation overhead.

Measures the online QoS subsystem (:mod:`repro.qos`) across three MLP
benchmarks:

* **shadow sweep** — a well-trained surrogate deployed under
  monitor-only controllers at several shadow rates: how much end-to-end
  speedup survives, and what fraction of serving time goes to
  validation (the cost of knowing your error online);
* **policy runs** — a *broken* surrogate (untrained weights: the
  worst-case stand-in for a model drifted fully off-distribution)
  deployed under a threshold-with-hysteresis policy and an error-budget
  policy at shadow rate 0.1: pure ``infer`` blows the QoI budget, the
  policies must cap the deployed error below it.

Results land in ``BENCH_qos.json`` (schema ``bench_qos_adaptive/v1``).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_qos_adaptive.py
    PYTHONPATH=src python benchmarks/bench_qos_adaptive.py --quick
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path

from repro.apps.harness import harness_for
from repro.nn import Trainer
from repro.qos import ErrorBudgetPolicy, QoSController, ThresholdPolicy

SCHEMA = "bench_qos_adaptive/v1"

APPS = ("binomial", "bonds", "minibude")

#: Laptop-scale harness sizes (full vs --quick).
HARNESS_PARAMS = {
    "binomial": dict(n_train=2048, n_test=768, n_steps=64),
    "bonds": dict(n_train=2048, n_test=768),
    "minibude": dict(n_train=2048, n_test=768),
}
QUICK_PARAMS = {
    "binomial": dict(n_train=256, n_test=128, n_steps=16),
    "bonds": dict(n_train=256, n_test=128),
    "minibude": dict(n_train=256, n_test=128),
}

#: One deployment-size architecture per app (Table IV s-sizes).
ARCHS = {
    "binomial": {"hidden1_features": 48, "hidden2_features": 24},
    "bonds": {"hidden1_features": 48, "hidden2_features": 24},
    "minibude": {"num_hidden_layers": 2, "hidden1_size": 64,
                 "feature_multiplier": 0.6},
}

TRAIN_PARAMS = {
    "binomial": dict(lr=3e-3, batch_size=128, patience=15),
    "bonds": dict(lr=3e-3, batch_size=128, patience=15),
    "minibude": dict(lr=2e-3, batch_size=128, patience=20),
}

#: Per-QoI-metric policy parameters: the shadow validator charges
#: invocations in units aligned with the app's own QoI metric (MAPE
#: apps are judged per-row relative, so relative-L2 would under-charge
#: small-denominator rows).
POLICY_PARAMS = {
    "rmse": dict(metric="relative", thr_high=0.1, thr_low=0.04,
                 eb_budget=0.02),
    "mape": dict(metric="mape", thr_high=10.0, thr_low=4.0, eb_budget=2.0),
}


def _qos_row(metrics) -> dict:
    return {
        "speedup": metrics.speedup,
        "error": metrics.qoi_error,
        "validation_overhead": metrics.validation_overhead,
        "shadows": metrics.shadow_invocations,
        "path_counts": metrics.path_counts,
    }


def run_app(name: str, workdir: Path, *, quick: bool, shadow_rates,
            budget_fraction: float, chunk: int, epochs: int,
            seed: int = 0) -> dict:
    params = (QUICK_PARAMS if quick else HARNESS_PARAMS)[name]
    harness = harness_for(name, workdir / name, seed=seed,
                          deploy_chunk=chunk, **params)
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)

    strong = build(ARCHS[name], seed=0)
    Trainer(strong, max_epochs=epochs, seed=0,
            **TRAIN_PARAMS[name]).fit(xt, yt, xv, yv)
    # Untrained weights: a surrogate that is wrong everywhere — the
    # limit case of a deployment drifted fully off its training set.
    weak = build(ARCHS[name], seed=3)

    base = harness.evaluate(strong, repeats=1)
    row = {
        "benchmark": name,
        "metric": harness.info.metric,
        "accurate_time": base.accurate_time,
        "pure_infer": {"speedup": base.speedup, "error": base.qoi_error},
        "shadow_sweep": [],
    }
    for rate in shadow_rates:
        ctrl = QoSController(shadow_rate=rate, seed=7)
        metrics = harness.deploy_with_qos(strong, ctrl)
        row["shadow_sweep"].append({"rate": rate, **_qos_row(metrics)})

    weak_pure = harness.evaluate(weak, repeats=1)
    qoi_budget = budget_fraction * weak_pure.qoi_error
    pp = POLICY_PARAMS[harness.info.metric]
    thr_policy = ThresholdPolicy(high=pp["thr_high"], low=pp["thr_low"],
                                 probe_interval=8, warmup=1)
    thr_ctrl = QoSController(policy=thr_policy, shadow_rate=0.1, seed=7,
                             metric=pp["metric"])
    thr = harness.deploy_with_qos(weak, thr_ctrl)
    eb_policy = ErrorBudgetPolicy(budget=pp["eb_budget"], headroom=0.9,
                                  warmup=2)
    eb_ctrl = QoSController(policy=eb_policy, shadow_rate=0.1, seed=7,
                            metric=pp["metric"])
    eb = harness.deploy_with_qos(weak, eb_ctrl)
    row["weak_model"] = {
        "pure_error": weak_pure.qoi_error,
        "pure_speedup": weak_pure.speedup,
        "qoi_budget": qoi_budget,
        "pure_exceeds_budget": bool(weak_pure.qoi_error > qoi_budget),
        "threshold": {**_qos_row(thr), "trips": thr_policy.trips,
                      "capped": bool(thr.qoi_error < qoi_budget)},
        "error_budget": {**_qos_row(eb),
                         "capped": bool(eb.qoi_error < qoi_budget)},
    }
    return row


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def run_benchmark(workdir, *, quick: bool = False,
                  shadow_rates=(0.05, 0.1, 0.25),
                  budget_fraction: float = 0.25, chunk: int = 16,
                  epochs: int = 40, seed: int = 0) -> dict:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    apps = [run_app(name, workdir, quick=quick, shadow_rates=shadow_rates,
                    budget_fraction=budget_fraction, chunk=chunk,
                    epochs=epochs, seed=seed)
            for name in APPS]
    mid_rate = shadow_rates[len(shadow_rates) // 2]
    overheads = []
    for row in apps:
        for entry in row["shadow_sweep"]:
            if entry["rate"] == mid_rate:
                overheads.append(entry["validation_overhead"])
    return {
        "schema": SCHEMA,
        "config": {"apps": list(APPS), "quick": quick,
                   "shadow_rates": list(shadow_rates),
                   "budget_fraction": budget_fraction, "chunk": chunk,
                   "epochs": epochs, "seed": seed},
        "apps": apps,
        "summary": {
            "pure_speedup_geomean": _geomean(
                [r["pure_infer"]["speedup"] for r in apps]),
            "monitored_speedup_geomean": _geomean(
                [e["speedup"] for r in apps for e in r["shadow_sweep"]
                 if e["rate"] == mid_rate]),
            "validation_overhead_mean": (sum(overheads) / len(overheads)
                                         if overheads else 0.0),
            "reference_shadow_rate": mid_rate,
            "threshold_capped_apps": [
                r["benchmark"] for r in apps
                if r["weak_model"]["pure_exceeds_budget"]
                and r["weak_model"]["threshold"]["capped"]],
            "error_budget_capped_apps": [
                r["benchmark"] for r in apps
                if r["weak_model"]["pure_exceeds_budget"]
                and r["weak_model"]["error_budget"]["capped"]],
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_qos.json",
                        help="output JSON path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: temp dir)")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--chunk", type=int, default=16,
                        help="deploy-loop invocation chunk (rows)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)

    kwargs = dict(quick=args.quick, chunk=args.chunk,
                  epochs=min(args.epochs, 4) if args.quick else args.epochs)
    if args.quick:
        kwargs["shadow_rates"] = (0.1, 0.25)

    if args.workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            results = run_benchmark(tmp, **kwargs)
    else:
        results = run_benchmark(args.workdir, **kwargs)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    for row in results["apps"]:
        pure = row["pure_infer"]
        print(f"{row['benchmark']:14s} pure infer {pure['speedup']:5.1f}x "
              f"err {pure['error']:.3g}")
        for entry in row["shadow_sweep"]:
            print(f"{'':14s} shadow {entry['rate']:.2f}: "
                  f"{entry['speedup']:5.1f}x err {entry['error']:.3g} "
                  f"overhead {entry['validation_overhead'] * 100:5.1f}% "
                  f"({entry['shadows']} shadows)")
        weak = row["weak_model"]
        print(f"{'':14s} weak model: pure err {weak['pure_error']:.3g} "
              f"budget {weak['qoi_budget']:.3g} | threshold err "
              f"{weak['threshold']['error']:.3g} "
              f"(capped={weak['threshold']['capped']}) | error-budget err "
              f"{weak['error_budget']['error']:.3g} "
              f"(capped={weak['error_budget']['capped']})")
    s = results["summary"]
    print(f"geomean speedup: pure {s['pure_speedup_geomean']:.2f}x, "
          f"monitored@{s['reference_shadow_rate']} "
          f"{s['monitored_speedup_geomean']:.2f}x; validation overhead "
          f"{s['validation_overhead_mean'] * 100:.1f}%; threshold capped: "
          f"{s['threshold_capped_apps']}; budget capped: "
          f"{s['error_budget_capped_apps']}")
    return results


if __name__ == "__main__":
    main()
