"""Setuptools shim.

The sandboxed environment has no ``wheel`` package, so PEP-517 editable
installs (which build a wheel) fail; this shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
older pips) fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
