"""Tier-1 smoke run of the resilience benchmark.

Runs ``benchmarks/bench_resilience.py`` at tiny sizes and validates
the ``BENCH_resilience.json`` schema plus the acceptance properties:
100% of invocations served under the scripted fault suite, QoI error
held through the NaN burst, every component recovered, the corrupt
hot-swap rolled back, and the fault schedule replays bit-identically.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_resilience.py"

pytestmark = pytest.mark.resilience


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_resilience", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_resilience_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_resilience.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_resilience/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    burst = on_disk["nan_burst"]
    assert burst["availability"] == 1.0
    assert burst["unserved"] == 0
    assert burst["faults_fired"] > 0 and burst["fallbacks"] > 0
    assert burst["qoi_relative_error"] <= \
        burst["fault_free_relative_error"] + 1e-9
    assert burst["recovered"], "breaker must re-close after the burst"
    assert 0 < burst["degraded_span_invocations"] < burst["invocations"]

    trainer = on_disk["trainer_crashes"]
    assert trainer["recovered"]
    assert trainer["polls_to_recovery"] == 4             # 3 crashes + 1 ok
    assert trainer["availability"] == 1.0
    assert trainer["consecutive_failures_after"] == 0
    assert trainer["errors_recorded"] >= 3

    swap = on_disk["corrupt_swap"]
    assert swap["rolled_back"]
    assert swap["availability"] == 1.0
    assert swap["no_tmp_litter"]
    assert swap["swap_landed"]

    determinism = on_disk["determinism"]
    assert determinism["schedules_identical"]
    assert determinism["schedule_length"] > 0

    summary = on_disk["summary"]
    assert summary["availability"] >= 0.99
    assert summary["availability_floor_met"]
    assert summary["qoi_error_held"]
    assert summary["swap_rolled_back_and_landed"]
