"""Compiled training fast path: gradient parity, fallback, equivalence.

The acceptance contract of the fused plan (``repro.nn.compile_train``):

* per-layer and full-model gradient parity with the autodiff graph at
  <= 1e-10 (in practice the element-wise ops are mirrored exactly and
  parity is a few ULP);
* ``Trainer.fit`` under fixed seeds produces identical loss histories
  and early-stopping epoch counts on both paths, including Dropout
  (same RNG draws), BatchNorm1d (running-stat updates), weight decay,
  momentum and gradient clipping;
* clean fallback to the graph path for unsupported layers (GRU),
  losses, optimizers and dtypes.
"""

import functools

import numpy as np
import pytest

from repro.nn import (GRU, Adam, BatchNorm1d, Destandardize, Dropout,
                      LeakyReLU, Linear, ReLU, SGD, Sequential, Sigmoid,
                      Standardize, Tanh, Tensor, Trainer,
                      UnsupportedLayerError, compile_training, huber_loss,
                      l1_loss, mape_loss, mse_loss)
from repro.nn.optim import Optimizer

pytestmark = pytest.mark.compile

PARITY = 1e-10


def graph_gradients(model, loss_fn, x, y):
    """Reference gradients through the autodiff graph (train mode)."""
    model.train()
    model.zero_grad()
    loss = loss_fn(model(Tensor(x)), Tensor(y))
    loss.backward()
    return loss.item(), [p.grad.copy() for p in model.parameters()]


def assert_plan_parity(build, loss_fn=mse_loss, n=32, in_features=5,
                       out_shape=(1,), seed=0):
    """Build the model twice with identical seeds; compare both paths."""
    rng = np.random.default_rng(99)
    x = rng.normal(size=(n, in_features))
    y = rng.normal(size=(n,) + out_shape)
    ref_loss, ref_grads = graph_gradients(build(seed), loss_fn, x, y)
    plan = compile_training(build(seed), loss_fn)
    got_loss = plan.train_batch(x, y)
    assert got_loss == pytest.approx(ref_loss, abs=PARITY)
    assert len(ref_grads) == len(plan.grad_views)
    for ref, got in zip(ref_grads, plan.grad_views):
        assert np.abs(ref - got).max() <= PARITY
    return plan


# ----------------------------------------------------------------------
# Per-layer gradient parity
# ----------------------------------------------------------------------

@pytest.mark.parametrize("act", [ReLU, Tanh, Sigmoid,
                                 lambda: LeakyReLU(0.02)])
def test_linear_activation_parity(act):
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 16, rng=r), act(),
                          Linear(16, 3, rng=r))
    assert_plan_parity(build, out_shape=(3,))


def test_linear_without_bias_parity():
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 8, bias=False, rng=r), ReLU(),
                          Linear(8, 1, rng=r))
    assert_plan_parity(build)


def test_standalone_activation_parity():
    # Activation not preceded by a Linear exercises the unfused step.
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Tanh(), Linear(5, 8, rng=r), ReLU(),
                          Linear(8, 1, rng=r))
    assert_plan_parity(build)


def test_dropout_mask_parity():
    # Both paths must consume the same per-layer RNG stream.
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 32, rng=r), ReLU(),
                          Dropout(0.4, rng=np.random.default_rng(seed + 1)),
                          Linear(32, 1, rng=r))
    assert_plan_parity(build)


def test_dropout_mask_reuse_across_batches():
    # The cached mask buffer must be refilled from the RNG every batch,
    # not reused: two compiled batches == two graph batches.
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(4, 16, rng=r), ReLU(),
                          Dropout(0.5, rng=np.random.default_rng(seed + 1)),
                          Linear(16, 1, rng=r))
    rng = np.random.default_rng(5)
    x1, x2 = rng.normal(size=(16, 4)), rng.normal(size=(16, 4))
    y1, y2 = rng.normal(size=(16, 1)), rng.normal(size=(16, 1))

    graph = build(0)
    _, _ = graph_gradients(graph, mse_loss, x1, y1)
    ref_loss, ref_grads = graph_gradients(graph, mse_loss, x2, y2)

    plan = compile_training(build(0), mse_loss)
    plan.train_batch(x1, y1)
    got_loss = plan.train_batch(x2, y2)
    assert got_loss == pytest.approx(ref_loss, abs=PARITY)
    for ref, got in zip(ref_grads, plan.grad_views):
        assert np.abs(ref - got).max() <= PARITY


def test_dropout_p_zero_is_skipped():
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 8, rng=r),
                          Dropout(0.0, rng=np.random.default_rng(1)),
                          Linear(8, 1, rng=r))
    plan = assert_plan_parity(build)
    assert not any("Dropout" in s and "cached" in s for s in plan.summary)


def test_batchnorm_parity_and_running_stats():
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 12, rng=r), BatchNorm1d(12), ReLU(),
                          Linear(12, 1, rng=r))
    rng = np.random.default_rng(7)
    x = rng.normal(size=(24, 5))
    y = rng.normal(size=(24, 1))

    graph = build(3)
    ref_loss, ref_grads = graph_gradients(graph, mse_loss, x, y)
    compiled = build(3)
    plan = compile_training(compiled, mse_loss)
    got_loss = plan.train_batch(x, y)
    assert got_loss == pytest.approx(ref_loss, abs=PARITY)
    for ref, got in zip(ref_grads, plan.grad_views):
        assert np.abs(ref - got).max() <= PARITY
    # Train-mode forward must update the running statistics too.
    bn_g, bn_c = graph.layers[1], compiled.layers[1]
    assert np.abs(bn_g.running_mean - bn_c.running_mean).max() <= PARITY
    assert np.abs(bn_g.running_var - bn_c.running_var).max() <= PARITY


def test_standardize_destandardize_parity():
    mean_in, std_in = np.arange(5.0), np.arange(1.0, 6.0)
    mean_out, std_out = np.array([2.0]), np.array([3.0])

    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Standardize(mean_in, std_in),
                          Linear(5, 8, rng=r), ReLU(),
                          Linear(8, 1, rng=r),
                          Destandardize(mean_out, std_out))
    assert_plan_parity(build)


@pytest.mark.parametrize("loss_fn", [mse_loss, l1_loss, huber_loss,
                                     mape_loss,
                                     functools.partial(huber_loss,
                                                       delta=0.3)])
def test_loss_lowerings_parity(loss_fn):
    def build(seed):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 16, rng=r), Tanh(),
                          Linear(16, 2, rng=r))
    assert_plan_parity(build, loss_fn=loss_fn, out_shape=(2,))


def test_full_table_iv_mlp_parity():
    """Table IV/V-sized MLPs, harness-wrapped, with dropout."""
    from repro.search.builders import build_minibude_mlp, build_mlp2

    def build_bude(seed):
        core = build_minibude_mlp({"num_hidden_layers": 3,
                                   "hidden1_size": 128,
                                   "feature_multiplier": 0.8},
                                  dropout=0.2, seed=seed)
        return Sequential(Standardize(np.zeros(6), np.ones(6)), *core)
    assert_plan_parity(build_bude, in_features=6, n=64)

    def build_bonds(seed):
        return build_mlp2({"hidden1_features": 48, "hidden2_features": 24},
                          5, 2, dropout=0.1, seed=seed)
    assert_plan_parity(build_bonds, out_shape=(2,), n=64)


# ----------------------------------------------------------------------
# Fused optimizer parity
# ----------------------------------------------------------------------

def _step_pair(opt_factory, steps=3):
    rng = np.random.default_rng(11)
    x = rng.normal(size=(32, 5))
    y = rng.normal(size=(32, 1))

    def build(seed=4):
        r = np.random.default_rng(seed)
        return Sequential(Linear(5, 16, rng=r), ReLU(),
                          Linear(16, 1, rng=r))

    graph = build()
    gopt = opt_factory(graph.parameters())
    for _ in range(steps):
        gopt.zero_grad()
        loss = mse_loss(graph(Tensor(x)), Tensor(y))
        loss.backward()
        gopt.step()

    compiled = build()
    copt = opt_factory(compiled.parameters())
    plan = compile_training(compiled, mse_loss)
    fused = plan.bind_optimizer(copt)
    for _ in range(steps):
        plan.train_batch(x, y)
        fused.step()
    return graph, compiled


@pytest.mark.parametrize("factory", [
    lambda ps: Adam(ps, lr=3e-3),
    lambda ps: Adam(ps, lr=3e-3, weight_decay=1e-2),
    lambda ps: SGD(ps, lr=1e-2),
    lambda ps: SGD(ps, lr=1e-2, momentum=0.9, weight_decay=1e-3),
])
def test_fused_optimizer_matches_graph(factory):
    graph, compiled = _step_pair(factory)
    for pg, pc in zip(graph.parameters(), compiled.parameters()):
        assert np.abs(pg.data - pc.data).max() <= PARITY


def test_bind_rejects_foreign_and_stateful_optimizers():
    r = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=r), ReLU(), Linear(8, 1, rng=r))
    plan = compile_training(model, mse_loss)

    class Custom(Optimizer):
        def step(self):
            pass

    with pytest.raises(UnsupportedLayerError):
        plan.bind_optimizer(Custom(model.parameters(), lr=1e-3))
    other = Sequential(Linear(4, 1, rng=r))
    with pytest.raises(UnsupportedLayerError):
        plan.bind_optimizer(Adam(other.parameters(), lr=1e-3))
    stepped = Adam(model.parameters(), lr=1e-3)
    stepped._m[0] += 1.0  # pre-existing moment state
    with pytest.raises(UnsupportedLayerError):
        plan.bind_optimizer(stepped)


# ----------------------------------------------------------------------
# Fallback
# ----------------------------------------------------------------------

def test_gru_now_compiles_for_training():
    # PR-4 latched GRU models to the graph path; the plan-IR registry
    # lowers them (BPTT), so sequence surrogates train compiled.
    r = np.random.default_rng(0)
    model = Sequential(GRU(4, 8, rng=r), Linear(8, 1, rng=r))
    plan = compile_training(model, mse_loss)
    assert any("GRU" in s for s in plan.summary)

    rng = np.random.default_rng(1)
    x = rng.normal(size=(24, 6, 4))
    y = rng.normal(size=(24, 1))
    trainer = Trainer(model, batch_size=8, max_epochs=2, compiled=True)
    result = trainer.fit(x, y, x[:8], y[:8])
    assert trainer.compiled_active
    assert np.isfinite(result.best_val_loss)


def test_unsupported_layer_raises_and_trainer_falls_back():
    # LayerNorm gained a training lowering, so the canonical
    # unsupported layer is now a custom one with no registry entry.
    from repro.nn.layers import Module

    class Opaque(Module):
        def forward(self, x):
            return x * 1.0

    r = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=r), Opaque(),
                       Linear(8, 1, rng=r))
    with pytest.raises(UnsupportedLayerError):
        compile_training(model, mse_loss)

    rng = np.random.default_rng(1)
    x = rng.normal(size=(24, 4))
    y = rng.normal(size=(24, 1))
    trainer = Trainer(model, batch_size=8, max_epochs=2, compiled=True)
    result = trainer.fit(x, y, x[:8], y[:8])
    assert not trainer.compiled_active
    assert "Opaque" in trainer.compile_fallback
    assert np.isfinite(result.best_val_loss)


def test_layernorm_trains_on_compiled_path():
    """LayerNorm now lowers for training (registry entry, not a
    fallback): parity with the graph and an active compiled Trainer."""
    from repro.nn import LayerNorm

    def build():
        r = np.random.default_rng(0)
        return Sequential(Linear(4, 8, rng=r), LayerNorm(8), Tanh(),
                          Linear(8, 1, rng=r))

    rng = np.random.default_rng(1)
    x = rng.normal(size=(24, 4))
    y = rng.normal(size=(24, 1))

    graph = build()
    graph.train()
    loss = mse_loss(graph(Tensor(x)), Tensor(y))
    loss.backward()
    ref_grads = [p.grad.copy() for p in graph.parameters()]

    compiled = build()
    plan = compile_training(compiled, mse_loss)
    got_loss = plan.train_batch(x, y)
    assert got_loss == pytest.approx(loss.item(), abs=PARITY)
    for ref, got in zip(ref_grads, plan.grad_views):
        assert np.abs(ref - got).max() <= PARITY

    trainer = Trainer(build(), batch_size=8, max_epochs=2, compiled=True)
    result = trainer.fit(x, y, x[:8], y[:8])
    assert trainer.compiled_active
    assert np.isfinite(result.best_val_loss)


def test_unknown_loss_falls_back():
    r = np.random.default_rng(0)
    model = Sequential(Linear(5, 8, rng=r), ReLU(), Linear(8, 1, rng=r))

    def custom_loss(pred, target):
        return mse_loss(pred, target)

    with pytest.raises(UnsupportedLayerError):
        compile_training(model, custom_loss)
    rng = np.random.default_rng(1)
    x, y = rng.normal(size=(32, 5)), rng.normal(size=(32, 1))
    trainer = Trainer(model, batch_size=16, max_epochs=2,
                      loss_fn=custom_loss, compiled=True)
    trainer.fit(x, y, x[:8], y[:8])
    assert not trainer.compiled_active


def test_non_float64_data_falls_back():
    r = np.random.default_rng(0)
    model = Sequential(Linear(5, 8, rng=r), ReLU(), Linear(8, 1, rng=r))
    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 5)).astype(np.float32)
    y = rng.normal(size=(32, 1)).astype(np.float32)
    trainer = Trainer(model, batch_size=16, max_epochs=2, compiled=True)
    trainer.fit(x, y, x[:8], y[:8])
    assert not trainer.compiled_active
    assert "float64" in trainer.compile_fallback


def test_plan_goes_stale_on_state_dict_load():
    r = np.random.default_rng(0)
    model = Sequential(Linear(5, 8, rng=r), ReLU(), Linear(8, 1, rng=r))
    plan = compile_training(model, mse_loss)
    assert not plan.stale()
    model.load_state_dict(model.state_dict())
    assert plan.stale()


# ----------------------------------------------------------------------
# End-to-end Trainer equivalence
# ----------------------------------------------------------------------

def _fit_pair(build, trainer_kwargs, n=256, in_features=5, out=1, seed=42):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, in_features))
    y = rng.normal(size=(n, out))
    xv = rng.normal(size=(n // 4, in_features))
    yv = rng.normal(size=(n // 4, out))
    results = []
    for compiled in (False, True):
        model = build()
        trainer = Trainer(model, compiled=compiled, **trainer_kwargs)
        results.append((trainer.fit(x, y, xv, yv), model, trainer))
    return results


def test_fit_histories_identical_under_fixed_seeds():
    def build():
        r = np.random.default_rng(8)
        return Sequential(Linear(5, 32, rng=r), ReLU(),
                          Dropout(0.2, rng=np.random.default_rng(9)),
                          Linear(32, 16, rng=r), Tanh(),
                          Linear(16, 1, rng=r))
    (rg, mg, tg), (rc, mc, tc) = _fit_pair(
        build, dict(lr=3e-3, weight_decay=1e-3, batch_size=32,
                    max_epochs=15, patience=4, seed=3))
    assert tc.compiled_active and not tg.compiled_active
    # Identical early stopping and per-epoch losses, not just "close".
    assert rc.epochs_run == rg.epochs_run
    assert len(rc.history) == len(rg.history)
    for hg, hc in zip(rg.history, rc.history):
        assert hc["train"] == pytest.approx(hg["train"], abs=PARITY)
        assert hc["val"] == pytest.approx(hg["val"], abs=PARITY)
    for pg, pc in zip(mg.parameters(), mc.parameters()):
        assert np.abs(pg.data - pc.data).max() <= PARITY


def test_fit_equivalence_with_grad_clip_and_scheduler():
    from repro.nn import StepLR

    def build():
        r = np.random.default_rng(2)
        return Sequential(Linear(5, 16, rng=r), ReLU(),
                          Linear(16, 1, rng=r))

    def run(compiled):
        rng = np.random.default_rng(6)
        x, y = rng.normal(size=(128, 5)), rng.normal(size=(128, 1))
        model = build()
        opt = Adam(model.parameters(), lr=5e-3)
        trainer = Trainer(model, optimizer=opt, batch_size=32,
                          max_epochs=10, patience=10, seed=1,
                          grad_clip=0.5, compiled=compiled,
                          scheduler=StepLR(opt, step_size=3, gamma=0.5))
        return trainer.fit(x, y, x[:32], y[:32]), model, trainer

    (rg, mg, _), (rc, mc, tc) = run(False), run(True)
    assert tc.compiled_active
    assert rc.epochs_run == rg.epochs_run
    for hg, hc in zip(rg.history, rc.history):
        assert hc["val"] == pytest.approx(hg["val"], abs=PARITY)
    for pg, pc in zip(mg.parameters(), mc.parameters()):
        assert np.abs(pg.data - pc.data).max() <= PARITY


def test_refit_after_restore_recompiles():
    # fit() restores the best state_dict at the end (rebinding parameter
    # arrays); a second fit must notice staleness and recompile rather
    # than training through dead views.
    def build():
        r = np.random.default_rng(4)
        return Sequential(Linear(5, 8, rng=r), ReLU(), Linear(8, 1, rng=r))
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(64, 5)), rng.normal(size=(64, 1))
    model = build()
    trainer = Trainer(model, batch_size=16, max_epochs=3, compiled=True)
    trainer.fit(x, y, x[:16], y[:16])
    first_plan = trainer._plan
    trainer.fit(x, y, x[:16], y[:16])
    assert trainer.compiled_active
    assert trainer._plan is not first_plan


def test_variable_batch_sizes_share_plan():
    # The dataset tail yields a short final minibatch; scratch is keyed
    # by batch size so both sizes run through one plan.
    def build():
        r = np.random.default_rng(3)
        return Sequential(Linear(5, 8, rng=r), ReLU(), Linear(8, 1, rng=r))
    (rg, _, _), (rc, _, tc) = _fit_pair(
        build, dict(lr=1e-3, batch_size=48, max_epochs=4, patience=4,
                    seed=0), n=200)
    assert tc.compiled_active
    for hg, hc in zip(rg.history, rc.history):
        assert hc["train"] == pytest.approx(hg["train"], abs=PARITY)
