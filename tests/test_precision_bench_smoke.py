"""Tier-1 smoke run of the mixed-precision benchmark.

Runs ``benchmarks/bench_precision.py`` at tiny sizes and validates the
``BENCH_precision.json`` schema plus the headline acceptance
properties: the float64 default path is bitwise-unchanged by the dtype
parameterization, narrowed forwards pay at smoke sizes (geomean >=
1.3x — the bench asserts this itself in ``--quick``), every governed
app deployment stays inside the 25%-of-pure QoI budget, and the shm
transport ships exactly half the bytes for float32 requests.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.precision

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_precision.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_precision", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_precision_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_precision.json"
    results = bench.main(["--quick", "--out", str(out)])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_precision/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    summary = on_disk["summary"]
    # The non-negotiable control: dtype parameterization left the
    # float64 default path bitwise-identical.
    assert summary["fp64_bitwise_identical"] is True
    assert summary["f32_speedup_geomean"] >= 1.3

    for row in on_disk["forward"]:
        assert row["fp64_bitwise_identical"] is True
        assert row["speedup"] > 0
        assert row["max_rel_diff"] < 1e-5
    assert [r["k"] for r in on_disk["fleet"]] == [4, 8, 16]
    for row in on_disk["fleet"]:
        assert row["slab_mb_f32"] == pytest.approx(
            row["slab_mb_f64"] / 2)
        assert row["max_rel_diff"] < 1e-5

    governed = on_disk["governed"]
    assert {r["benchmark"] for r in governed} == \
        {"binomial", "bonds", "minibude"}
    for row in governed:
        assert row["within_budget"] is True
        assert row["divergence_samples"] >= 1

    assert summary["shm_transfer_savings"] == pytest.approx(2.0)
