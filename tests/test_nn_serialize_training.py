"""Model serialization roundtrips and Trainer behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn import (ModelFormatError, Tensor, Trainer, load_model,
                      model_from_spec, save_model, spec_from_model,
                      train_val_split, iterate_minibatches, normalize_stats)
from repro.nn.serialize import load_meta


def roundtrip(model, tmp_path, x):
    path = tmp_path / "m.rnm"
    save_model(model, path, meta={"who": "test"})
    loaded = load_model(path)
    model.eval()
    np.testing.assert_allclose(loaded(x).numpy(), model(x).numpy(),
                               atol=1e-12)
    return loaded, path


def test_mlp_roundtrip(tmp_path):
    model = nn.Sequential(
        nn.Standardize(np.zeros(5), np.ones(5)),
        nn.Linear(5, 16), nn.ReLU(), nn.Dropout(0.3),
        nn.Linear(16, 8), nn.Tanh(), nn.Linear(8, 2),
        nn.Destandardize(np.array([1.0, 2.0]), np.array([3.0, 4.0])))
    x = np.random.default_rng(0).normal(size=(6, 5))
    loaded, path = roundtrip(model, tmp_path, x)
    assert load_meta(path) == {"who": "test"}
    # Loaded model is in eval mode: dropout must be inert.
    np.testing.assert_allclose(loaded(x).numpy(), loaded(x).numpy())


def test_cnn_roundtrip(tmp_path):
    model = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1), nn.ReLU(),
        nn.MaxPool2d(2), nn.Flatten(), nn.Linear(4 * 4 * 4, 3))
    x = np.random.default_rng(1).normal(size=(2, 2, 8, 8))
    roundtrip(model, tmp_path, x)


def test_croppad_sigmoid_roundtrip(tmp_path):
    model = nn.Sequential(nn.Conv2d(1, 2, 2), nn.Sigmoid(),
                          nn.CropPad2d(6, 6), nn.LeakyReLU(0.2))
    x = np.random.default_rng(2).normal(size=(1, 1, 6, 6))
    roundtrip(model, tmp_path, x)


def test_spec_rejects_non_sequential():
    with pytest.raises(ModelFormatError):
        spec_from_model(nn.Linear(2, 2))


def test_spec_roundtrip_structure():
    model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Identity())
    spec = spec_from_model(model)
    rebuilt = model_from_spec(spec)
    assert [type(l).__name__ for l in rebuilt] == \
        [type(l).__name__ for l in model]


def test_model_from_spec_unknown_type():
    with pytest.raises(ModelFormatError):
        model_from_spec([{"type": "Quantum"}])


def test_load_bad_magic(tmp_path):
    path = tmp_path / "bad.rnm"
    path.write_bytes(b"XXXX" + b"\0" * 32)
    with pytest.raises(ModelFormatError):
        load_model(path)


def test_load_truncated(tmp_path):
    model = nn.Sequential(nn.Linear(4, 4))
    path = tmp_path / "trunc.rnm"
    save_model(model, path)
    blob = path.read_bytes()
    path.write_bytes(blob[:len(blob) - 16])
    with pytest.raises(ModelFormatError):
        load_model(path)


# ----------------------------------------------------------------------
# Training utilities
# ----------------------------------------------------------------------

def test_train_val_split_partitions():
    x = np.arange(100).reshape(50, 2).astype(float)
    y = np.arange(50).astype(float)
    (xt, yt), (xv, yv) = train_val_split(x, y, 0.2,
                                         np.random.default_rng(0))
    assert len(xv) == 10 and len(xt) == 40
    # Every sample appears exactly once across the two splits.
    all_y = np.sort(np.concatenate([yt, yv]))
    np.testing.assert_allclose(all_y, np.arange(50))


def test_train_val_split_validation():
    with pytest.raises(ValueError):
        train_val_split(np.zeros((5, 1)), np.zeros(4))
    with pytest.raises(ValueError):
        train_val_split(np.zeros((5, 1)), np.zeros(5), val_fraction=0.0)


def test_iterate_minibatches_covers_dataset():
    x = np.arange(23).astype(float)
    y = x * 2
    seen = []
    for xb, yb in iterate_minibatches(x, y, 5, np.random.default_rng(1)):
        assert len(xb) <= 5
        np.testing.assert_allclose(yb, xb * 2)
        seen.extend(xb.tolist())
    assert sorted(seen) == x.tolist()


def test_normalizer_roundtrip():
    rng = np.random.default_rng(2)
    x = rng.normal(loc=3, scale=7, size=(100, 4))
    norm = normalize_stats(x)
    z = norm.transform(x)
    assert abs(z.mean()) < 1e-10
    np.testing.assert_allclose(norm.inverse(z), x, atol=1e-10)


def test_trainer_learns_linear_map():
    rng = np.random.default_rng(3)
    w_true = np.array([[2.0, -1.0, 0.5]])
    x = rng.normal(size=(300, 3))
    y = x @ w_true.T
    model = nn.Sequential(nn.Linear(3, 1, rng=rng))
    trainer = Trainer(model, lr=5e-2, batch_size=32, max_epochs=60,
                      patience=60)
    result = trainer.fit(x[:240], y[:240], x[240:], y[240:])
    assert result.best_val_loss < 1e-3
    assert result.epochs_run <= 60
    np.testing.assert_allclose(model[0].weight.data, w_true, atol=0.05)


def test_trainer_early_stops_and_restores_best():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(60, 2))
    y = rng.normal(size=(60, 1))   # pure noise: no signal to learn
    model = nn.Sequential(nn.Linear(2, 32, rng=rng), nn.ReLU(),
                          nn.Linear(32, 1, rng=rng))
    trainer = Trainer(model, lr=1e-2, batch_size=16, max_epochs=100,
                      patience=5)
    result = trainer.fit(x[:48], y[:48], x[48:], y[48:])
    assert result.epochs_run < 100          # early stopping kicked in
    # Restored weights achieve exactly the best recorded loss.
    assert trainer.evaluate(x[48:], y[48:]) == \
        pytest.approx(result.best_val_loss, rel=1e-9)


def test_trainer_validation_rmse():
    model = nn.Sequential(nn.Linear(2, 1))
    x = np.zeros((4, 2))
    y = np.zeros((4, 1))
    trainer = Trainer(model)
    bias = model[0].bias.data.copy()
    assert trainer.validation_rmse(x, y) == pytest.approx(
        float(np.sqrt(np.mean(bias ** 2))), rel=1e-9)
