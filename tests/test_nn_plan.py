"""Unified plan IR: GRU/conv training lowerings, fingerprints, warm restarts.

The acceptance contract of the plan-IR refactor:

* both compilers run through one lowering registry, and the newly
  registered training lowerings — GRU (full-window BPTT) and Conv1d
  (plus the Conv2d/MaxPool2d/CropPad2d steps the CNN apps need) —
  match the autodiff graph at <= 1e-10, including BPTT over >= 3
  timesteps;
* plans carry structural fingerprints: equal for same-structure
  rebuilds, different across architectures/losses/modes;
* fused-optimizer moments survive a same-fingerprint recompile (warm
  restarts) — in the Trainer, across ``RetrainWorker`` hot-swap
  retrains, and via ``FusedAdam``/``FusedSGD`` ``state_dict()``;
* the Trainer's compile-failure latch is keyed on the fingerprint, so
  a swapped-in supported model re-attempts compilation.
"""

import numpy as np
import pytest

from repro.nn import (GRU, Adam, AvgPool2d, Conv1d, Conv2d, CropPad2d,
                      Destandardize, Flatten, LayerNorm, Linear, MaxPool1d,
                      MaxPool2d, ReLU, SGD, Sequential, Standardize, Tensor,
                      Trainer, UnsupportedLayerError, compile_inference,
                      compile_training, mse_loss, structural_fingerprint,
                      training_fingerprint)

pytestmark = pytest.mark.compile

PARITY = 1e-10


def graph_gradients(model, loss_fn, x, y):
    model.train()
    model.zero_grad()
    loss = loss_fn(model(Tensor(x)), Tensor(y))
    loss.backward()
    return loss.item(), [p.grad.copy() for p in model.parameters()]


def assert_parity(build, x, y, loss_fn=mse_loss):
    ref_loss, ref_grads = graph_gradients(build(), loss_fn, x, y)
    plan = compile_training(build(), loss_fn)
    got_loss = plan.train_batch(x, y)
    assert got_loss == pytest.approx(ref_loss, abs=PARITY)
    assert len(ref_grads) == len(plan.grad_views)
    for ref, got in zip(ref_grads, plan.grad_views):
        assert np.abs(ref - got).max() <= PARITY
    return plan


# ----------------------------------------------------------------------
# GRU training lowering (BPTT)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seq_len", [3, 7])
def test_gru_final_state_bptt_parity(seq_len):
    def build():
        r = np.random.default_rng(3)
        return Sequential(Standardize(np.zeros(4), np.ones(4)),
                          GRU(4, 8, rng=r), Linear(8, 2, rng=r),
                          Destandardize(np.zeros(2), np.ones(2)))
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, seq_len, 4))
    y = rng.normal(size=(16, 2))
    plan = assert_parity(build, x, y)
    assert any("BPTT" in s for s in plan.summary)


def test_gru_return_sequence_bptt_parity():
    def build():
        r = np.random.default_rng(4)
        return Sequential(GRU(3, 6, return_sequence=True, rng=r),
                          Flatten(), Linear(5 * 6, 2, rng=r))
    rng = np.random.default_rng(1)
    assert_parity(build, rng.normal(size=(8, 5, 3)),
                  rng.normal(size=(8, 2)))


def test_gru_multi_batch_training_matches_graph():
    """Fused Adam over several BPTT batches tracks the graph trainer."""
    def build():
        r = np.random.default_rng(5)
        return Sequential(GRU(3, 5, rng=r), Linear(5, 1, rng=r))
    rng = np.random.default_rng(2)
    x = rng.normal(size=(24, 4, 3))
    y = rng.normal(size=(24, 1))

    graph = build()
    gopt = Adam(graph.parameters(), lr=3e-3)
    for _ in range(4):
        gopt.zero_grad()
        loss = mse_loss(graph(Tensor(x)), Tensor(y))
        loss.backward()
        gopt.step()

    compiled = build()
    plan = compile_training(compiled, mse_loss)
    fused = plan.bind_optimizer(Adam(compiled.parameters(), lr=3e-3))
    for _ in range(4):
        plan.train_batch(x, y)
        fused.step()
    for pg, pc in zip(graph.parameters(), compiled.parameters()):
        assert np.abs(pg.data - pc.data).max() <= PARITY


def test_runtime_fallback_preserves_fixed_seed_equivalence():
    # The aborted compiled attempt consumes shuffle + Dropout RNG draws
    # before a step rejects at run time; the graph retry must restore
    # those states, or fixed-seed runs diverge between compiled=True
    # (with fallback) and compiled=False.  The 3-D affine rejection
    # that used to exercise this seam is gone (batched affine steps),
    # so a test-local layer whose step fails at forward time stands in.
    from repro.nn import Dropout, Module, PlanStep, register_lowering

    class Brittle(Module):
        def forward(self, x):
            return x * 1.0

    class BrittleStep(PlanStep):
        def forward(self, x, n):
            if self.training:
                raise UnsupportedLayerError("Brittle: rejects at run time")
            return x

    @register_lowering(Brittle)
    def _lower_brittle(layer, ctx):
        ctx.emit(BrittleStep(ctx.training), "Brittle: runtime-fails")

    def build():
        r = np.random.default_rng(2)
        return Sequential(GRU(3, 4, return_sequence=True, rng=r),
                          Dropout(0.3, rng=np.random.default_rng(5)),
                          Brittle(), Linear(4, 1, rng=r))
    rng = np.random.default_rng(1)
    x = rng.normal(size=(24, 5, 3))
    y = rng.normal(size=(24, 5, 1))
    results = []
    for compiled in (False, True):
        trainer = Trainer(build(), batch_size=8, max_epochs=3,
                          patience=3, seed=7, compiled=compiled)
        results.append(trainer.fit(x, y, x[:8], y[:8]))
        assert not trainer.compiled_active
    graph, fell_back = results
    for hg, hf in zip(graph.history, fell_back.history):
        assert hf["train"] == pytest.approx(hg["train"], abs=PARITY)
        assert hf["val"] == pytest.approx(hg["val"], abs=PARITY)


def test_gru_sequence_into_affine_trains_compiled():
    # GRU(return_sequence) feeding a Linear directly produces 3-D
    # activations; the batched affine step now trains them on the
    # compiled path — no runtime rejection, no fallback latch.
    def build():
        r = np.random.default_rng(0)
        return Sequential(GRU(3, 4, return_sequence=True, rng=r),
                          Linear(4, 1, rng=r))
    rng = np.random.default_rng(1)
    x = rng.normal(size=(16, 5, 3))
    y = rng.normal(size=(16, 5, 1))
    assert_parity(build, x, y)
    trainer = Trainer(build(), batch_size=8, max_epochs=2, compiled=True)
    result = trainer.fit(x, y, x[:4], y[:4])
    assert trainer.compiled_active
    assert trainer.compile_fallback is None
    assert np.isfinite(result.best_val_loss)


# ----------------------------------------------------------------------
# Conv lowerings
# ----------------------------------------------------------------------

def test_conv1d_training_parity():
    def build():
        r = np.random.default_rng(6)
        return Sequential(Conv1d(2, 4, 3, rng=r), ReLU(), Flatten(),
                          Linear(4 * 14, 1, rng=r))
    rng = np.random.default_rng(3)
    assert_parity(build, rng.normal(size=(6, 2, 16)),
                  rng.normal(size=(6, 1)))


def test_conv1d_stride_no_bias_parity():
    def build():
        r = np.random.default_rng(7)
        return Sequential(Conv1d(3, 5, 4, stride=2, bias=False, rng=r),
                          ReLU(), Flatten(),
                          Linear(5 * 7, 2, rng=r))
    rng = np.random.default_rng(4)
    assert_parity(build, rng.normal(size=(5, 3, 16)),
                  rng.normal(size=(5, 2)))


def test_conv2d_miniweather_style_parity():
    """Grid-to-grid CNN (padded convs + CropPad2d), loss on 4-D output."""
    def build():
        r = np.random.default_rng(8)
        return Sequential(Conv2d(4, 6, 3, padding=1, rng=r), ReLU(),
                          Conv2d(6, 4, 1, rng=r), CropPad2d(8, 8))
    rng = np.random.default_rng(5)
    assert_parity(build, rng.normal(size=(4, 4, 8, 8)),
                  rng.normal(size=(4, 4, 8, 8)))


def test_conv2d_particlefilter_style_parity():
    """Strided conv + max-pool + FC head (the PF regressor family)."""
    def build():
        r = np.random.default_rng(9)
        return Sequential(Conv2d(1, 8, 3, stride=2, rng=r), ReLU(),
                          MaxPool2d(2), Flatten(),
                          Linear(8 * 3 * 3, 2, rng=r))
    rng = np.random.default_rng(6)
    assert_parity(build, rng.normal(size=(5, 1, 14, 14)),
                  rng.normal(size=(5, 2)))


@pytest.mark.parametrize("kernel,stride", [(2, None), (3, 2)])
def test_maxpool1d_training_parity(kernel, stride):
    """Scatter adjoint: upstream grads land on the argmax positions."""
    def build():
        r = np.random.default_rng(11)
        pooled = (8 - kernel) // (stride or kernel) + 1  # conv out L = 8
        return Sequential(Conv1d(2, 4, 3, rng=r), ReLU(),
                          MaxPool1d(kernel, stride), Flatten(),
                          Linear(4 * pooled, 2, rng=r))
    rng = np.random.default_rng(8)
    assert_parity(build, rng.normal(size=(6, 2, 10)),
                  rng.normal(size=(6, 2)))


@pytest.mark.parametrize("kernel,stride", [(2, None), (3, 2)])
def test_avgpool2d_training_parity(kernel, stride):
    """Average adjoint: upstream grads spread evenly over each window."""
    def build():
        r = np.random.default_rng(12)
        pooled = (6 - kernel) // (stride or kernel) + 1
        return Sequential(Conv2d(1, 3, 3, rng=r), ReLU(),
                          AvgPool2d(kernel, stride), Flatten(),
                          Linear(3 * pooled * pooled, 2, rng=r))
    rng = np.random.default_rng(9)
    assert_parity(build, rng.normal(size=(5, 1, 8, 8)),
                  rng.normal(size=(5, 2)))


def test_croppad_pad_direction_parity():
    # Crop in one dim and pad in the other in a single CropPad2d.
    def build():
        r = np.random.default_rng(10)
        return Sequential(Conv2d(2, 3, 3, rng=r), CropPad2d(4, 8))
    rng = np.random.default_rng(7)
    assert_parity(build, rng.normal(size=(3, 2, 8, 8)),
                  rng.normal(size=(3, 3, 4, 8)))


def test_app_builders_compile_for_training():
    """The MiniWeather/ParticleFilter Table IV builders — previously
    graph-only for training — lower end to end."""
    from repro.search.builders import (build_miniweather_cnn,
                                       build_particlefilter_cnn)
    rng = np.random.default_rng(8)
    mw = build_miniweather_cnn({"conv1_kernel": 3, "conv1_channels": 6,
                                "conv2_kernel": 2}, nz=8, nx=8, seed=0)
    assert_parity(lambda: build_miniweather_cnn(
        {"conv1_kernel": 3, "conv1_channels": 6, "conv2_kernel": 2},
        nz=8, nx=8, seed=0),
        rng.normal(size=(2, 4, 8, 8)), rng.normal(size=(2, 4, 8, 8)))
    assert mw is not None
    assert_parity(lambda: build_particlefilter_cnn(
        {"conv_kernel": 4, "conv_stride": 2, "maxpool_kernel": 2,
         "fc2_size": 16}, height=16, width=16, seed=0),
        rng.normal(size=(3, 1, 16, 16)), rng.normal(size=(3, 2)))


# ----------------------------------------------------------------------
# Structural fingerprints
# ----------------------------------------------------------------------

def _mlp(seed=0, hidden=8):
    r = np.random.default_rng(seed)
    return Sequential(Linear(5, hidden, rng=r), ReLU(),
                      Linear(hidden, 1, rng=r))


def test_fingerprint_stable_across_same_structure():
    # Different weights, same structure: equal fingerprints.
    assert structural_fingerprint(_mlp(0)) == structural_fingerprint(_mlp(9))


def test_fingerprint_differs_across_structures_and_modes():
    fp = structural_fingerprint(_mlp())
    assert fp != structural_fingerprint(_mlp(hidden=16))
    assert training_fingerprint(_mlp()) != structural_fingerprint(_mlp())
    from repro.nn import l1_loss
    assert training_fingerprint(_mlp(), mse_loss) != \
        training_fingerprint(_mlp(), l1_loss)


def test_fingerprint_survives_state_dict_load():
    model = _mlp()
    fp = training_fingerprint(model)
    model.load_state_dict(model.state_dict())
    assert training_fingerprint(model) == fp
    plan = compile_training(model, mse_loss)
    assert plan.fingerprint == fp


def test_inference_plan_scratch_adoption():
    model = _mlp()
    x = np.random.default_rng(0).normal(size=(4, 5))
    old = compile_inference(model)
    old(x)
    model.load_state_dict({k: v * 1.5 for k, v in
                           model.state_dict().items()})
    assert old.stale()
    new = compile_inference(model)
    assert new.fingerprint == old.fingerprint
    assert new.adopt_scratch(old)
    np.testing.assert_allclose(np.array(new(x)),
                               model.forward_compiled(x), rtol=1e-12)


def test_engine_plan_cache_adopts_scratch_on_same_model_rebind():
    from repro.runtime import InferenceEngine
    engine = InferenceEngine()
    model = _mlp()
    x = np.random.default_rng(1).normal(size=(3, 5))
    first = engine.infer_with_model(model, x)
    plan_a = engine.plan_for(model)
    model.load_state_dict({k: v * 2.0 for k, v in
                           model.state_dict().items()})
    second = engine.infer_with_model(model, x)
    plan_b = engine.plan_for(model)
    assert plan_b is not plan_a
    assert plan_b.fingerprint == plan_a.fingerprint
    assert np.abs(second - first).max() > 0     # new weights served
    model.eval()
    from repro.nn import no_grad
    with no_grad():
        ref = model(Tensor(x)).numpy()
    np.testing.assert_allclose(second, ref, rtol=1e-12)


def test_engine_adopts_scratch_across_real_hot_swap(tmp_path):
    """The actual RetrainWorker flow — invalidate + warmup loads a NEW
    model object — must still find the retired plan's warm scratch."""
    from repro.nn import save_model
    from repro.runtime import InferenceEngine
    from repro.serving import hot_swap_model

    path = tmp_path / "swap.rnm"
    save_model(_mlp(), path)
    engine = InferenceEngine()
    x = np.random.default_rng(2).normal(size=(4, 5))
    first = engine.infer(path, x)               # warm scratch at batch 4
    # Swap in a retrained same-architecture model; the engine drops and
    # reloads the model, so the plan cache entry's weakref dies.
    hot_swap_model(_mlp(seed=9), path, engines=(engine,))
    new_plan = engine.plan_for(engine.cache.get(path))
    keys = set()
    for step in new_plan._steps:
        keys.update(step._bufs.keys())
    assert 4 in keys, "retired plan's scratch was not adopted"
    second = engine.infer(path, x)
    assert np.abs(second - first).max() > 0     # new weights served
    np.testing.assert_allclose(
        second, engine.cache.get(path).forward_compiled(x), rtol=1e-12)


# ----------------------------------------------------------------------
# Warm restarts: moments survive recompiles
# ----------------------------------------------------------------------

def test_fused_adam_state_dict_roundtrip():
    model = _mlp()
    plan = compile_training(model, mse_loss)
    fused = plan.bind_optimizer(Adam(model.parameters(), lr=1e-3))
    rng = np.random.default_rng(0)
    for _ in range(3):
        plan.train_batch(rng.normal(size=(8, 5)), rng.normal(size=(8, 1)))
        fused.step()
    state = fused.state_dict()
    assert state["t"] == 3 and state["m"].any()

    other = _mlp(seed=5)
    plan2 = compile_training(other, mse_loss)
    fused2 = plan2.bind_optimizer(Adam(other.parameters(), lr=1e-3))
    fused2.load_state_dict(state)
    assert fused2.t == 3
    np.testing.assert_array_equal(fused2.m, state["m"])
    np.testing.assert_array_equal(fused2.v, state["v"])

    small = Sequential(Linear(2, 1))
    plan3 = compile_training(small, mse_loss)
    fused3 = plan3.bind_optimizer(Adam(small.parameters(), lr=1e-3))
    with pytest.raises(ValueError):
        fused3.load_state_dict(state)


def test_fused_sgd_state_dict_roundtrip():
    model = _mlp()
    plan = compile_training(model, mse_loss)
    fused = plan.bind_optimizer(SGD(model.parameters(), lr=1e-2,
                                    momentum=0.9))
    rng = np.random.default_rng(0)
    plan.train_batch(rng.normal(size=(8, 5)), rng.normal(size=(8, 1)))
    fused.step()
    state = fused.state_dict()
    assert state["vel"].any()
    fused.load_state_dict({"vel": np.zeros_like(state["vel"])})
    assert not fused.vel.any()


def test_trainer_moments_survive_recompile():
    """load_state_dict makes the plan stale; the recompiled plan's
    fused optimizer must carry the moments instead of resetting."""
    model = _mlp()
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(64, 5)), rng.normal(size=(64, 1))
    trainer = Trainer(model, batch_size=16, max_epochs=3, compiled=True)
    trainer.fit(x, y, x[:16], y[:16])
    old_fused = trainer._fused
    old_state = old_fused.state_dict()
    assert old_state["m"].any()

    model.load_state_dict(model.state_dict())   # stale, same structure
    assert trainer._plan.stale()
    assert trainer._ensure_compiled(x, y)
    assert trainer._fused is not old_fused
    assert trainer._fused.t == old_state["t"]
    np.testing.assert_array_equal(trainer._fused.m, old_state["m"])
    np.testing.assert_array_equal(trainer._fused.v, old_state["v"])


def test_trainer_warm_start_applies_across_instances():
    model = _mlp()
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(64, 5)), rng.normal(size=(64, 1))
    first = Trainer(model, batch_size=16, max_epochs=3, compiled=True)
    first.fit(x, y, x[:16], y[:16])
    state = first.optimizer_state()
    assert state is not None and state["state"]["m"].any()

    fresh = _mlp(seed=7)                      # same structure, new weights
    second = Trainer(fresh, batch_size=16, max_epochs=1, compiled=True,
                     warm_start=state)
    assert second._ensure_compiled(x, y)
    assert second._fused.t == state["state"]["t"]
    np.testing.assert_array_equal(second._fused.m, state["state"]["m"])

    # A different architecture must ignore the foreign state.
    other = _mlp(seed=1, hidden=16)
    third = Trainer(other, batch_size=16, max_epochs=1, compiled=True,
                    warm_start=state)
    assert third._ensure_compiled(x, y)
    assert third._fused.t == 0
    assert not third._fused.m.any()


def test_warm_start_incompatible_state_degrades_to_cold():
    # Same fingerprint and optimizer kind, but the donor carried
    # momentum velocity and the recipient runs momentum=0: the load is
    # rejected and training starts cold instead of crashing fit().
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(32, 5)), rng.normal(size=(32, 1))
    donor_model = _mlp()
    donor = Trainer(donor_model, batch_size=16, max_epochs=2,
                    compiled=True,
                    optimizer=SGD(donor_model.parameters(), lr=1e-2,
                                  momentum=0.9))
    donor.fit(x, y, x[:8], y[:8])
    state = donor.optimizer_state()
    assert state["kind"] == "FusedSGD" and state["state"]["vel"].any()

    cold_model = _mlp(seed=3)
    cold = Trainer(cold_model, batch_size=16, max_epochs=1, compiled=True,
                   optimizer=SGD(cold_model.parameters(), lr=1e-2),
                   warm_start=state)
    result = cold.fit(x, y, x[:8], y[:8])
    assert cold.compiled_active
    assert np.isfinite(result.best_val_loss)


def test_retrain_worker_warm_start_carries_moments(tmp_path):
    from repro.nn import load_model, save_model
    from repro.runtime import DataCollector
    from repro.serving import RetrainWorker

    rng = np.random.default_rng(0)
    db = tmp_path / "warm.rh5"
    collector = DataCollector(db)
    x = rng.random((96, 2))
    y = x.sum(axis=1, keepdims=True)
    for xi, yi in zip(x, y):
        collector.record("warm", (xi,), (yi,), 0.0)
    collector.close()

    def build(xt, yt):
        return Sequential(Linear(2, 1, rng=np.random.default_rng(1)))

    model_path = tmp_path / "warm.rnm"
    save_model(build(None, None), model_path)
    worker = RetrainWorker(seed=0)
    spec = worker.watch("warm", db, model_path, build=build,
                        trainer_kwargs=dict(lr=0.05, batch_size=32,
                                            max_epochs=4, patience=4),
                        warm_start=True)
    event1 = worker.retrain_now("warm")
    assert event1.compiled
    state1 = spec.opt_state
    assert state1 is not None and state1["state"]["m"].any()
    event2 = worker.retrain_now("warm")
    assert event2.compiled
    # Second retrain produced fresh state, continuing from the first.
    assert spec.opt_state is not state1
    assert spec.opt_state["state"]["t"] > state1["state"]["t"]
    assert load_model(model_path) is not None


def test_retrain_worker_require_compiled_raises(tmp_path):
    from repro.nn import save_model
    from repro.runtime import DataCollector
    from repro.serving import RetrainWorker

    rng = np.random.default_rng(0)
    db = tmp_path / "strict.rh5"
    collector = DataCollector(db)
    for xi in rng.random((48, 2)):
        collector.record("strict", (xi,), (xi.sum(keepdims=True),), 0.0)
    collector.close()

    def build(xt, yt):
        r = np.random.default_rng(1)
        return Sequential(Linear(2, 4, rng=r), LayerNorm(4),
                          Linear(4, 1, rng=r))

    # An unrecognized loss fn has no training lowering, so the trainer
    # falls back to the graph path (the model itself must stay
    # serializable for the swap, hence the loss is the trigger).
    def custom_loss(pred, target):
        return mse_loss(pred, target)

    model_path = tmp_path / "strict.rnm"
    save_model(build(None, None), model_path)
    worker = RetrainWorker(seed=0)
    worker.watch("strict", db, model_path, build=build,
                 trainer_kwargs=dict(max_epochs=1, patience=1,
                                     loss_fn=custom_loss),
                 require_compiled=True)
    with pytest.raises(RuntimeError, match="graph path"):
        worker.retrain_now("strict")
    assert worker.errors and "strict" in worker.errors[0]
    # The retrain itself still completed (event recorded, model swapped).
    assert worker.events and not worker.events[0].compiled


# ----------------------------------------------------------------------
# Compile-failure latch keyed on fingerprint
# ----------------------------------------------------------------------

def test_compile_latch_rekeys_on_model_swap():
    from repro.nn import Module

    class Opaque(Module):                  # no lowering registered
        def forward(self, x):
            return x * 1.0

    unsupported = Sequential(Linear(5, 4), Opaque(), Linear(4, 1))
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(32, 5)), rng.normal(size=(32, 1))
    trainer = Trainer(unsupported, batch_size=16, max_epochs=1,
                      compiled=True)
    assert not trainer._ensure_compiled(x, y)
    assert trainer._failed_fingerprint is not None
    # Latched: the same structure does not recompile...
    assert not trainer._ensure_compiled(x, y)
    # ...but a swapped-in supported model re-attempts immediately,
    # without waiting for the next fit() to clear a per-fit latch.
    supported = _mlp()
    trainer.model = supported
    trainer.optimizer = Adam(supported.parameters(), lr=1e-3)
    assert trainer._ensure_compiled(x, y)
    assert trainer.compiled_active
    assert trainer._failed_fingerprint is None


def test_fit_rejects_model_swap_without_optimizer_swap():
    # Gradients would flow into the new model while the optimizer steps
    # the old one — a silent no-op fit.  Must raise instead.
    a, b = _mlp(0), _mlp(1)
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(32, 5)), rng.normal(size=(32, 1))
    trainer = Trainer(a, batch_size=16, max_epochs=1, compiled=True)
    trainer.fit(x, y, x[:8], y[:8])
    trainer.model = b                        # optimizer still holds a's params
    with pytest.raises(ValueError, match="optimizer"):
        trainer.fit(x, y, x[:8], y[:8])


def test_trainer_recompiles_when_model_object_replaced():
    # Replacing trainer.model with a same-structure model must not keep
    # training the old model through the cached plan.
    a, b = _mlp(0), _mlp(1)
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=(32, 5)), rng.normal(size=(32, 1))
    trainer = Trainer(a, batch_size=16, max_epochs=1, compiled=True)
    assert trainer._ensure_compiled(x, y)
    plan_a = trainer._plan
    trainer.model = b
    trainer.optimizer = Adam(b.parameters(), lr=1e-3)
    assert trainer._ensure_compiled(x, y)
    assert trainer._plan is not plan_a
    assert all(p is q for p, q in zip(trainer._plan.params, b.parameters()))
