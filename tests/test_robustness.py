"""Failure injection and robustness across the stack."""

import numpy as np
import pytest

from repro.api import approx_ml
from repro.bridge import BridgeError, SweepRange, TensorFunctor, concretize
from repro.h5 import File, FormatError
from repro.nn import (Linear, Sequential, Tensor, Trainer, load_model,
                      save_model)
from repro.nn.serialize import ModelFormatError
from repro.runtime import DataCollector, load_training_data
from repro.search import BayesianOptimizer, GaussianProcess, Space, Continuous

# ----------------------------------------------------------------------
# Corrupted persistence
# ----------------------------------------------------------------------

def test_corrupt_db_header_rejected(tmp_path):
    db = tmp_path / "c.rh5"
    coll = DataCollector(db)
    coll.record("r", np.ones((2, 2)), np.ones((2, 1)), 0.1)
    coll.close()
    blob = bytearray(db.read_bytes())
    blob[5] ^= 0xFF                      # flip a header-length byte
    db.write_bytes(bytes(blob))
    with pytest.raises(Exception):       # FormatError or JSON decode
        load_training_data(db, "r")


def test_corrupt_model_payload_rejected(tmp_path):
    """A torn write (file cut mid-payload) is detected at load time.

    ``save_model`` itself can no longer produce this state — it writes
    to a temp file and ``os.replace``\\ s it into place — so a truncated
    file on disk means external corruption, and the loader refuses it."""
    path = tmp_path / "m.rnm"
    save_model(Sequential(Linear(4, 4)), path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(ModelFormatError):
        load_model(path)


def test_save_model_atomic_and_checksum_catches_bitrot(tmp_path):
    """Crash-safe persistence: no temp-file residue after a save, and a
    single flipped payload bit trips the checksum footer on load."""
    path = tmp_path / "m.rnm"
    save_model(Sequential(Linear(4, 4)), path)
    assert not path.with_name(path.name + ".tmp").exists()
    load_model(path)                      # pristine file round-trips

    blob = bytearray(path.read_bytes())
    blob[-40] ^= 0x01                     # one bit, inside the payload
    path.write_bytes(bytes(blob))
    with pytest.raises(ModelFormatError, match="checksum"):
        load_model(path)


def test_db_with_wrong_region_name(tmp_path):
    db = tmp_path / "n.rh5"
    coll = DataCollector(db)
    coll.record("actual", np.ones((1, 2)), np.ones((1, 1)), 0.1)
    coll.close()
    with pytest.raises(KeyError):
        load_training_data(db, "imaginary")


# ----------------------------------------------------------------------
# NaN / non-finite propagation
# ----------------------------------------------------------------------

def test_region_propagates_nan_inputs_transparently(tmp_path):
    """The runtime is a transport layer: NaNs flow through, the QoI
    check downstream is the application's job (paper: quality metrics
    are evaluated on the final QoI)."""
    model_path = tmp_path / "m.rnm"
    save_model(Sequential(Linear(2, 1)), model_path)

    @approx_ml(f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) model("{model_path}")
""")
    def region(x, y, N):
        y[:N] = 0.0

    x = np.ones((4, 2))
    x[1, 0] = np.nan
    y = np.zeros(4)
    region(x, y, 4)
    assert np.isnan(y[1])
    assert np.isfinite(y[[0, 2, 3]]).all()


def test_trainer_survives_nan_loss():
    """A diverging candidate must not crash the search loop."""
    x = np.full((32, 2), 1e150)          # overflow territory
    y = np.full((32, 1), 1e150)
    model = Sequential(Linear(2, 1))
    trainer = Trainer(model, lr=1e-1, batch_size=16, max_epochs=3,
                      patience=3)
    result = trainer.fit(x, y, x, y)
    assert result.epochs_run >= 1        # completed without raising


def test_bo_survives_always_failing_objective():
    space = Space([Continuous("x", 0.0, 1.0)])

    def objective(cfg):
        return float("inf")

    result = BayesianOptimizer(space, n_init=2, seed=0).minimize(
        objective, n_iterations=6)
    assert len(result.trials) == 6


def test_gp_handles_duplicate_points():
    x = np.zeros((6, 2))                 # all identical inputs
    y = np.arange(6.0)
    gp = GaussianProcess().fit(x, y)
    mean, std = gp.predict(np.zeros((1, 2)))
    assert np.isfinite(mean).all() and np.isfinite(std).all()


# ----------------------------------------------------------------------
# Bridge misuse
# ----------------------------------------------------------------------

def test_gather_after_source_mutation_is_consistent():
    f = TensorFunctor.parse(
        "#pragma approx tensor functor(f: [i, 0:1] = ([i]))")
    arr = np.arange(6.0)
    cm = concretize(f, arr, [SweepRange(0, 6)])
    first = cm.gather().copy()
    arr += 10.0
    second = cm.gather()
    np.testing.assert_allclose(second - first, np.full((6, 1), 10.0))


def test_scatter_into_readonly_array():
    f = TensorFunctor.parse(
        "#pragma approx tensor functor(f: [i, 0:1] = ([i]))")
    arr = np.zeros(4)
    arr.flags.writeable = False
    cm = concretize(f, arr, [SweepRange(0, 4)], writable=True)
    with pytest.raises((BridgeError, ValueError, TypeError)):
        cm.scatter(np.ones((4, 1)))


def test_zero_size_batch_rejected():
    f = TensorFunctor.parse(
        "#pragma approx tensor functor(f: [i, 0:1] = ([i]))")
    with pytest.raises(BridgeError):
        concretize(f, np.zeros(4), [SweepRange(2, 2)])


# ----------------------------------------------------------------------
# Datastore concurrency-ish behaviour (interleaved handles)
# ----------------------------------------------------------------------

def test_reopen_after_close_sees_data(tmp_path):
    path = tmp_path / "r.rh5"
    with File(path, "w") as f:
        f.create_dataset("x", np.ones(3))
    with File(path, "a") as f:
        f.create_dataset("y", np.zeros(2))
    with File(path, "r") as f:
        assert "x" in f and "y" in f


def test_read_mode_never_writes(tmp_path):
    path = tmp_path / "ro.rh5"
    with File(path, "w") as f:
        f.create_dataset("x", np.ones(3))
    size = path.stat().st_size
    with File(path, "r") as f:
        f.create_dataset("z", np.ones(10))   # in-memory only
    assert path.stat().st_size == size       # file untouched
