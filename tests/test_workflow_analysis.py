"""Workflow executor and analysis utilities."""

import time

import numpy as np
import pytest

from repro.analysis import (annotation_loc, cdf_quantile, count_directives,
                            error_cdf, geometric_mean, relative_error,
                            render_kv, render_series, render_table,
                            summarize_errors, table2_rows)
from repro.workflow import (TaskFuture, WorkflowError, WorkflowExecutor,
                            task)

# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

def test_executor_runs_tasks():
    with WorkflowExecutor() as ex:
        f = ex.submit(lambda a, b: a + b, 2, 3)
        assert f.result() == 5
        assert ex.completed == 1


def test_executor_future_dependencies():
    with WorkflowExecutor() as ex:
        a = ex.submit(lambda: 10)
        b = ex.submit(lambda x: x * 2, a)       # future as argument
        c = ex.submit(lambda xs: sum(xs), [a, b])
        assert c.result() == 30


def test_executor_kwarg_and_dict_futures():
    with WorkflowExecutor() as ex:
        a = ex.submit(lambda: 7)
        b = ex.submit(lambda cfg: cfg["x"] + 1, cfg={"x": a})
        assert b.result() == 8


def test_executor_map():
    with WorkflowExecutor() as ex:
        futures = ex.map(lambda v: v * v, [1, 2, 3], name="sq")
        assert ex.wait_all(futures) == [1, 4, 9]
        assert futures[1].name == "sq[1]"


def test_executor_error_wrapping():
    with WorkflowExecutor() as ex:
        f = ex.submit(lambda: 1 / 0, name="boom")
        with pytest.raises(WorkflowError) as err:
            f.result()
        assert err.value.task_name == "boom"
        assert isinstance(err.value.cause, ZeroDivisionError)


def test_executor_error_propagates_through_deps():
    with WorkflowExecutor() as ex:
        bad = ex.submit(lambda: 1 / 0, name="src")
        downstream = ex.submit(lambda x: x + 1, bad, name="sink")
        with pytest.raises(WorkflowError):
            downstream.result()


def test_executor_parallelism():
    with WorkflowExecutor(max_workers=4) as ex:
        start = time.perf_counter()
        futures = [ex.submit(time.sleep, 0.05) for _ in range(4)]
        ex.wait_all(futures)
        elapsed = time.perf_counter() - start
    assert elapsed < 0.15   # ran concurrently, not 0.2s serially


def test_task_decorator():
    @task
    def double(x):
        return 2 * x

    with WorkflowExecutor() as ex:
        assert double(21, _executor=ex).result() == 42
    with pytest.raises(WorkflowError):
        double(1)   # no executor bound


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_relative_error():
    rel = relative_error(np.array([1.1, 2.0]), np.array([1.0, 2.0]))
    np.testing.assert_allclose(rel, [0.1, 0.0], atol=1e-12)
    with pytest.raises(ValueError):
        relative_error(np.zeros(2), np.zeros(3))


def test_error_cdf_monotone():
    errs = np.random.default_rng(0).exponential(size=1000)
    values, fractions = error_cdf(errs)
    assert np.all(np.diff(values) >= 0)
    assert np.all(np.diff(fractions) >= 0)
    assert fractions[-1] == pytest.approx(1.0)


def test_cdf_quantile_paper_style():
    errs = np.linspace(0, 1, 101)   # uniform 0..1
    assert cdf_quantile(errs, 0.8) == pytest.approx(0.8, abs=0.02)
    with pytest.raises(ValueError):
        cdf_quantile(errs, 1.5)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([10.0, 10.0, 10.0]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_summarize_errors_keys():
    s = summarize_errors(np.ones((4, 4)), np.ones((4, 4)) * 1.1)
    assert set(s) == {"rmse", "max_abs", "rel_p50", "rel_p80", "rel_p90"}
    assert s["rel_p50"] <= s["rel_p80"] <= s["rel_p90"]


# ----------------------------------------------------------------------
# LoC accounting (Table II)
# ----------------------------------------------------------------------

def test_count_directives():
    src = ('#pragma approx tensor functor(f: [i] = ([i]))\n'
           '#pragma approx tensor map(to: f(x[0:N]))\n'
           '#pragma approx ml(collect) in(x) db("d")')
    assert count_directives(src) == 3
    assert annotation_loc(src) == 3


def test_annotation_loc_counts_continuations():
    src = ('#pragma approx tensor functor(f: \\\n'
           '    [i, 0:5] = ([i, 0:5]))\n')
    assert count_directives(src) == 1
    assert annotation_loc(src) == 2


def test_table2_rows_structure():
    rows = table2_rows()
    assert len(rows) == 5
    for row in rows:
        assert row["directives"] >= 3
        assert 0 < row["hpacml_loc"] <= 10
        assert row["hpacml_loc"] < row["total_loc"] * 0.10  # small footprint


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------

def test_render_table():
    text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}],
                        title="T")
    assert "T" in text and "a" in text
    assert "10" in text and "0.25" in text


def test_render_table_empty():
    assert "(no rows)" in render_table([], title="x")


def test_render_series_and_kv():
    s = render_series("fig", [1, 2], [0.5, 0.25], "step", "rmse")
    assert "fig" in s and "0.25" in s
    kv = render_kv("stats", {"speedup": 9.5, "n": 3})
    assert "speedup" in kv and "9.5" in kv
