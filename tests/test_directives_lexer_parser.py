"""Lexer and parser over the full Fig. 3 grammar, including errors."""

import pytest

from repro.directives import (FunctorDecl, LexError, MLDirective, ParseError,
                              TensorMapDirective, parse_directive,
                              parse_program, tokenize)


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

def test_tokenize_kinds():
    toks = tokenize('functor(ab_1: [i-1, 0:5] = "x y")')
    kinds = [t.kind for t in toks]
    assert kinds == ["IDENT", "LPAREN", "IDENT", "COLON", "LBRACKET",
                     "IDENT", "MINUS", "INT", "COMMA", "INT", "COLON",
                     "INT", "RBRACKET", "EQUALS", "STRING", "RPAREN", "EOF"]
    assert toks[14].text == "x y"


def test_tokenize_line_continuation():
    toks = tokenize("a \\\n b")
    assert [t.text for t in toks[:2]] == ["a", "b"]
    assert toks[1].loc.line == 2


def test_tokenize_positions():
    toks = tokenize("ab + cd")
    src = "ab + cd"
    assert src[toks[0].pos:toks[0].pos + 2] == "ab"
    assert src[toks[2].pos:toks[2].pos + 2] == "cd"


def test_tokenize_unterminated_string():
    with pytest.raises(LexError):
        tokenize('db("unterminated')


def test_tokenize_rejects_unknown_char():
    with pytest.raises(LexError):
        tokenize("a @ b")


# ----------------------------------------------------------------------
# Functor parsing
# ----------------------------------------------------------------------

def test_parse_simple_functor():
    node = parse_directive(
        "#pragma approx tensor functor(f: [i, 0:3] = ([i, 0:3]))")
    assert isinstance(node, FunctorDecl)
    assert node.name == "f"
    assert node.lhs.ndim == 2
    assert len(node.rhs) == 1


def test_parse_functor_without_pragma_prefix():
    node = parse_directive("approx tensor functor(f: [i] = ([i]))")
    assert isinstance(node, FunctorDecl)


def test_parse_functor_multiple_rhs_and_arithmetic():
    node = parse_directive(
        "#pragma approx tensor functor(st: [i, j, 0:5] = "
        "([i-1, j], [i+1, j], [i, j-1:j+2]))")
    assert len(node.rhs) == 3
    assert str(node.rhs[2].slices[1]) == "(j - 1):(j + 2)"


def test_parse_functor_doubled_parens():
    node = parse_directive(
        "#pragma approx tensor functor(st: [i, 0:2] = (([i], [i+1])))")
    assert len(node.rhs) == 2


def test_parse_functor_with_step():
    node = parse_directive(
        "#pragma approx tensor functor(f: [i, 0:4] = ([i, 0:8:2]))")
    sl = node.rhs[0].slices[1]
    assert str(sl.step) == "2"


def test_parse_functor_errors():
    with pytest.raises(ParseError):
        parse_directive("#pragma approx tensor functor(f [i] = ([i]))")
    with pytest.raises(ParseError):
        parse_directive("#pragma approx tensor functor(f: [i] = [i])")
    with pytest.raises(ParseError):
        parse_directive("#pragma approx tensor blah(f: [i] = ([i]))")


# ----------------------------------------------------------------------
# Map parsing
# ----------------------------------------------------------------------

def test_parse_map_to():
    node = parse_directive(
        "#pragma approx tensor map(to: f(t[1:N-1, 1:M-1]))")
    assert isinstance(node, TensorMapDirective)
    assert node.direction == "to"
    assert node.functor == "f"
    assert node.targets[0].array == "t"
    assert node.targets[0].spec.ndim == 2


def test_parse_map_from_multiple_targets():
    node = parse_directive(
        "#pragma approx tensor map(from: g(a[0:N], b[0:N]))")
    assert node.direction == "from"
    assert [t.array for t in node.targets] == ["a", "b"]


def test_parse_map_bad_direction():
    with pytest.raises(ParseError):
        parse_directive("#pragma approx tensor map(into: f(t[0:N]))")


# ----------------------------------------------------------------------
# ml parsing
# ----------------------------------------------------------------------

def test_parse_ml_full():
    node = parse_directive(
        '#pragma approx ml(predicated:use_model) in(t) out(tnew) '
        'db("/d.h5") model("/m.pt")')
    assert isinstance(node, MLDirective)
    assert node.mode == "predicated"
    assert node.condition == "use_model"
    assert node.in_arrays == ("t",)
    assert node.out_arrays == ("tnew",)
    assert node.db_path == "/d.h5"
    assert node.model_path == "/m.pt"


def test_parse_ml_condition_with_operators():
    node = parse_directive(
        '#pragma approx ml(predicated: step % 10 == 0) in(a) out(b) '
        'db("d") model("m")')
    assert node.condition == "step % 10 == 0"


def test_parse_ml_if_clause():
    node = parse_directive(
        '#pragma approx ml(collect) inout(u) db("d") if(i < 100)')
    assert node.if_condition == "i < 100"
    assert node.inout_arrays == ("u",)


def test_parse_ml_database_alias():
    node = parse_directive('#pragma approx ml(collect) in(a) database("x")')
    assert node.db_path == "x"


def test_parse_ml_modes():
    for mode in ("infer", "collect"):
        node = parse_directive(
            f'#pragma approx ml({mode}) in(a) model("m") db("d")')
        assert node.mode == mode
    with pytest.raises(ParseError):
        parse_directive("#pragma approx ml(train) in(a)")


def test_parse_ml_unknown_clause():
    with pytest.raises(ParseError):
        parse_directive('#pragma approx ml(infer) weights("w")')


def test_parse_ml_empty_condition():
    with pytest.raises(ParseError):
        parse_directive("#pragma approx ml(predicated:) in(a)")


def test_parse_trailing_garbage():
    with pytest.raises(ParseError):
        parse_directive("#pragma approx tensor functor(f: [i] = ([i])) junk")


# ----------------------------------------------------------------------
# Program (multi-directive annotation) parsing
# ----------------------------------------------------------------------

def test_parse_program_splits_pragmas():
    src = """
#pragma approx tensor functor(fi: [i, 0:5] = ([i, 0:5]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) model("m")
"""
    nodes = parse_program(src)
    assert len(nodes) == 5
    assert isinstance(nodes[0], FunctorDecl)
    assert isinstance(nodes[4], MLDirective)


def test_parse_program_with_continuations():
    src = ('#pragma approx tensor functor(fi: \\\n'
           '    [i, 0:5] = ([i, 0:5]))\n'
           '#pragma approx tensor map(to: fi(x[0:N]))')
    nodes = parse_program(src)
    assert len(nodes) == 2
