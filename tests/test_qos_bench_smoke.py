"""Tier-1 smoke run of the adaptive-QoS benchmark.

Runs ``benchmarks/bench_qos_adaptive.py`` at tiny sizes and validates
the ``BENCH_qos.json`` schema plus the headline acceptance property:
with a threshold policy at shadow rate 0.1, the deployed QoI error is
capped below the configured budget on apps where pure ``infer``
exceeds it.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_qos_adaptive.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_qos_adaptive", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_qos_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_qos.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_qos_adaptive/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean

    config = on_disk["config"]
    assert config["apps"] == list(bench.APPS)
    assert config["budget_fraction"] > 0
    assert all(0 < r <= 1 for r in config["shadow_rates"])

    apps = on_disk["apps"]
    assert len(apps) == len(bench.APPS)
    for row in apps:
        assert row["benchmark"] in bench.APPS
        assert row["metric"] in ("rmse", "mape")
        assert row["accurate_time"] > 0
        assert row["pure_infer"]["speedup"] > 0
        assert len(row["shadow_sweep"]) == len(config["shadow_rates"])
        for entry in row["shadow_sweep"]:
            assert set(entry) >= {"rate", "speedup", "error",
                                  "validation_overhead", "shadows",
                                  "path_counts"}
            assert entry["speedup"] > 0
            assert 0 <= entry["validation_overhead"] <= 1
            assert entry["shadows"] >= 0
        weak = row["weak_model"]
        assert weak["qoi_budget"] > 0
        for policy_key in ("threshold", "error_budget"):
            assert weak[policy_key]["error"] >= 0
            assert isinstance(weak[policy_key]["capped"], bool)

    summary = on_disk["summary"]
    assert summary["pure_speedup_geomean"] > 0
    assert 0 <= summary["validation_overhead_mean"] <= 1

    # The acceptance property: wherever the broken surrogate's pure
    # inference blows the budget, the threshold policy caps the error
    # under it — on at least one app, and in practice on all of them.
    exceeding = [r["benchmark"] for r in apps
                 if r["weak_model"]["pure_exceeds_budget"]]
    assert exceeding, "untrained surrogates must exceed the budget"
    assert summary["threshold_capped_apps"], \
        "threshold policy must cap QoI error below budget somewhere"
    for row in apps:
        weak = row["weak_model"]
        if weak["pure_exceeds_budget"]:
            assert weak["threshold"]["error"] < weak["pure_error"]
