"""Runtime: events, path decisions, collection, inference engine."""

import numpy as np
import pytest

from repro.directives import parse_directive
from repro.nn import Linear, Sequential, save_model
from repro.runtime import (ApproxRegion, DataCollector, EventLog,
                           ExecutionPath, InferenceEngine, ModelCache, Phase,
                           decide_path, eval_condition, load_training_data)

# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------

def test_event_log_breakdown_fractions():
    log = EventLog()
    rec = log.new_record("infer")
    rec.add(Phase.TO_TENSOR, 1.0)
    rec.add(Phase.INFERENCE, 8.0)
    rec.add(Phase.FROM_TENSOR, 1.0)
    rec2 = log.new_record("collect")       # must not count toward breakdown
    rec2.add(Phase.ACCURATE, 100.0)
    br = log.breakdown()
    assert br["to_tensor"] == pytest.approx(0.1)
    assert br["inference"] == pytest.approx(0.8)
    assert br["from_tensor"] == pytest.approx(0.1)
    assert log.bridge_overhead() == pytest.approx(0.25)


def test_event_log_counts_and_totals():
    log = EventLog()
    log.new_record("infer").add(Phase.INFERENCE, 2.0)
    log.new_record("accurate").add(Phase.ACCURATE, 3.0)
    assert log.count() == 2
    assert log.count("infer") == 1
    assert log.total() == pytest.approx(5.0)
    assert log.total(Phase.ACCURATE) == pytest.approx(3.0)
    log.reset()
    assert log.count() == 0


def test_event_log_timed_contextmanager():
    log = EventLog()
    rec = log.new_record("infer")
    with log.timed(rec, Phase.INFERENCE):
        sum(range(1000))
    assert rec.times[Phase.INFERENCE] > 0


def test_breakdown_empty_is_zero():
    assert sum(EventLog().breakdown().values()) == 0.0


# ----------------------------------------------------------------------
# decide_path / eval_condition
# ----------------------------------------------------------------------

def ml(src: str):
    return parse_directive(f"#pragma approx {src}")


def test_decide_path_matrix():
    assert decide_path(ml('ml(infer) in(a) model("m")'), {}) == \
        ExecutionPath.INFER
    assert decide_path(ml('ml(collect) in(a) db("d")'), {}) == \
        ExecutionPath.COLLECT
    pred = ml('ml(predicated:flag) in(a) db("d") model("m")')
    assert decide_path(pred, {"flag": True}) == ExecutionPath.INFER
    assert decide_path(pred, {"flag": False}) == ExecutionPath.COLLECT


def test_decide_path_infer_condition():
    node = ml('ml(infer:flag) in(a) model("m")')
    assert decide_path(node, {"flag": True}) == ExecutionPath.INFER
    assert decide_path(node, {"flag": False}) == ExecutionPath.ACCURATE


def test_decide_path_if_clause_gates_everything():
    node = ml('ml(predicated:flag) in(a) db("d") model("m") if(step < 5)')
    assert decide_path(node, {"flag": True, "step": 3}) == \
        ExecutionPath.INFER
    assert decide_path(node, {"flag": True, "step": 7}) == \
        ExecutionPath.ACCURATE
    assert decide_path(node, {"flag": False, "step": 3}) == \
        ExecutionPath.COLLECT


def test_eval_condition_expressions():
    assert eval_condition("step % 3 == 0", {"step": 9})
    assert not eval_condition("x > y", {"x": 1, "y": 2})
    with pytest.raises(RuntimeError):
        eval_condition("undefined_name", {})


def test_eval_condition_no_builtins():
    with pytest.raises(RuntimeError):
        eval_condition("open('/etc/passwd')", {})


# ----------------------------------------------------------------------
# DataCollector
# ----------------------------------------------------------------------

def test_collector_appends_and_loads(tmp_path):
    db = tmp_path / "c.rh5"
    coll = DataCollector(db)
    coll.record("r", np.ones((3, 2)), np.zeros((3, 1)), 0.5)
    coll.record("r", np.full((2, 2), 2.0), np.ones((2, 1)), 0.25)
    coll.close()
    x, y, t = load_training_data(db, "r")
    assert x.shape == (5, 2)
    assert y.shape == (5, 1)
    np.testing.assert_allclose(t, [0.5] * 3 + [0.25] * 2)


def test_collector_batch_mismatch(tmp_path):
    coll = DataCollector(tmp_path / "m.rh5")
    with pytest.raises(ValueError):
        coll.record("r", np.ones((3, 2)), np.zeros((2, 1)), 0.1)


def test_collector_multiple_regions(tmp_path):
    db = tmp_path / "multi.rh5"
    coll = DataCollector(db)
    coll.record("alpha", np.ones((1, 2)), np.ones((1, 1)), 0.0)
    coll.record("beta", np.ones((1, 4)), np.ones((1, 2)), 0.0)
    coll.close()
    xa, _, _ = load_training_data(db, "alpha")
    xb, _, _ = load_training_data(db, "beta")
    assert xa.shape == (1, 2) and xb.shape == (1, 4)


def test_collector_bytes_written(tmp_path):
    coll = DataCollector(tmp_path / "b.rh5")
    coll.record("r", np.zeros((100, 10)), np.zeros((100, 2)), 0.0)
    assert coll.bytes_written > 100 * 10 * 8


def test_collector_rejects_mismatch_against_existing_db(tmp_path):
    """Shape conflicts with a pre-existing database fail at record()."""
    db = tmp_path / "pre.rh5"
    first = DataCollector(db)
    first.record("r", np.ones((2, 4)), np.ones((2, 1)), 0.1)
    first.close()
    second = DataCollector(db)
    with pytest.raises(ValueError):
        second.record("r", np.ones((2, 3)), np.ones((2, 1)), 0.1)
    # A matching shape still appends fine.
    second.record("r", np.full((1, 4), 2.0), np.ones((1, 1)), 0.2)
    second.close()
    x, _, _ = load_training_data(db, "r")
    assert x.shape == (3, 4)


def test_collector_buffers_until_flush(tmp_path):
    """record() is append-cheap: database work happens at flush time."""
    db = tmp_path / "buf.rh5"
    coll = DataCollector(db)
    src = np.ones((2, 3))
    coll.record("r", src, np.zeros((2, 1)), 0.1)
    src[:] = 99.0                        # caller reuses its buffer
    coll.record("r", np.full((2, 3), 2.0), np.ones((2, 1)), 0.2)
    assert not db.exists()               # nothing persisted yet
    coll.flush()
    assert db.exists()
    coll.record("r", np.full((1, 3), 3.0), np.ones((1, 1)), 0.3)
    coll.close()                         # close flushes the tail
    x, y, t = load_training_data(db, "r")
    np.testing.assert_allclose(x[:2], 1.0)   # snapshot, not the mutation
    np.testing.assert_allclose(x[2:4], 2.0)
    np.testing.assert_allclose(x[4:], 3.0)
    np.testing.assert_allclose(t, [0.1, 0.1, 0.2, 0.2, 0.3])


# ----------------------------------------------------------------------
# InferenceEngine / ModelCache
# ----------------------------------------------------------------------

def test_model_cache_loads_once(tmp_path):
    path = tmp_path / "m.rnm"
    save_model(Sequential(Linear(2, 1)), path)
    cache = ModelCache()
    m1 = cache.get(path)
    m2 = cache.get(path)
    assert m1 is m2
    assert len(cache) == 1
    cache.clear()
    assert cache.get(path) is not m1


def test_engine_roundtrip(tmp_path):
    model = Sequential(Linear(3, 2))
    path = tmp_path / "e.rnm"
    save_model(model, path)
    engine = InferenceEngine()
    x = np.random.default_rng(0).normal(size=(5, 3))
    out = engine.infer(path, x)
    model.eval()
    np.testing.assert_allclose(out, model(x).numpy(), atol=1e-12)
    assert engine.device.bytes_to_device > 0
    assert engine.device.bytes_to_host > 0


# ----------------------------------------------------------------------
# ApproxRegion construction errors
# ----------------------------------------------------------------------

GOOD = """
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:flag) in(x) out(y) db("d.rh5") model("m.rnm")
"""


def test_region_requires_ml_directive():
    with pytest.raises(ValueError):
        ApproxRegion(lambda x, y, N, flag=False: None,
                     "#pragma approx tensor functor(f: [i] = ([i]))")


def test_region_requires_maps():
    src = ('#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))\n'
           '#pragma approx tensor map(to: fi(x[0:N]))\n'
           '#pragma approx ml(collect) in(x) db("d")')
    with pytest.raises(ValueError):
        ApproxRegion(lambda x, N: None, src)


def test_region_map_must_match_inout_lists():
    src = GOOD.replace("in(x) out(y)", "in(x) out(x)")
    with pytest.raises(ValueError):
        ApproxRegion(lambda x, y, N, flag=False: None, src)


def test_region_missing_array_argument():
    region = ApproxRegion(lambda x, y, N, flag=False: None, GOOD)
    from repro.bridge import BridgeError
    with pytest.raises(TypeError):
        region(np.zeros((3, 2)), flag=False)   # y, N missing


def test_region_non_array_argument():
    region = ApproxRegion(lambda x, y, N, flag=False: None, GOOD)
    from repro.bridge import BridgeError
    with pytest.raises(BridgeError):
        region("not an array", np.zeros(3), 3, flag=False)


def test_region_infer_without_model(tmp_path):
    src = GOOD.replace('model("m.rnm")', f'model("{tmp_path}/absent.rnm")')
    region = ApproxRegion(lambda x, y, N, flag=False: None, src)
    with pytest.raises(FileNotFoundError):
        region(np.zeros((3, 2)), np.zeros(3), 3, flag=True)
