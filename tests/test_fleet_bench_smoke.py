"""Tier-1 smoke run of the fleet GEMM benchmark.

Runs ``benchmarks/bench_fleet.py`` at tiny sizes and validates the
``BENCH_fleet.json`` schema plus the headline acceptance properties:
stacked fleet forwards are bitwise-equal to per-member compiled
forwards in every measured cell, the serving-sized K=8 cell batches
faster than sequential dispatch, and the population-mode NAS run beats
the sequential search while selecting the same best architecture.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.fleet

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_fleet.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_fleet", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fleet_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_fleet.json"
    results = bench.main(["--quick", "--out", str(out)])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_fleet/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    forward = on_disk["forward"]
    assert forward["fleet_sizes"] == [2, 4, 8, 16]
    for rows in forward["shapes"].values():
        for cell in rows.values():
            assert cell["speedup"] > 0
            assert cell["rows_per_second_fleet"] > 0
            # The non-negotiable property: stacked rows are bitwise
            # each member's own compiled forward, in every cell.
            assert cell["max_abs_diff"] == 0.0
    # Serving-sized surrogate, chunked calls, K=8: batching must beat
    # sequential dispatch with real margin (full mode records >= 3x;
    # the smoke bound leaves room for CI-runner noise).
    assert forward["headline_speedup_k8"] >= 2.0

    nas = on_disk["nas"]
    runs = nas["runs"]
    assert runs["sequential"]["population"] == 1
    assert runs["population8"]["population"] == 8
    assert runs["population8"]["max_fleet_size"] == 8
    for run in runs.values():
        assert run["trials"] > 0
        assert run["compiled_fraction"] == 1.0
    assert nas["speedup"] > 1.0
    assert nas["same_best_arch"]

    summary = on_disk["summary"]
    assert summary["forward_bitwise"] is True
    assert summary["forward_speedup_k8"] == forward["headline_speedup_k8"]
    assert summary["nas_same_best_arch"] is True
