"""Tier-1 smoke run of the multiprocess serving benchmark.

Runs ``benchmarks/bench_multiproc.py`` at tiny sizes and validates the
``BENCH_multiproc.json`` schema plus the structural acceptance
properties: every app's process outputs match the serial baseline
bitwise, the slab hot path never pickled an array, and both speedup
bases (measured wall and modeled concurrency) are reported alongside
the core count and judging mode — the quantitative >= 2x bar is judged
on the committed full-mode run, not the smoke sizes.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.serving

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_multiproc.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_multiproc", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_multiproc_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_multiproc.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_multiproc/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True
    assert on_disk["config"]["workers"] == 4

    thr = on_disk["throughput"]
    assert thr["mode"] in ("measured", "modeled")
    assert thr["cores"] >= 1
    assert len(thr["apps"]) >= 2, "acceptance needs >= 2 Table IV apps"
    for app in thr["apps"].values():
        assert app["serial"]["rows_per_second"] > 0
        proc = app["process"]
        assert proc["rows_per_second_measured"] > 0
        assert proc["rows_per_second_modeled"] > 0
        assert proc["modeled_seconds"] == pytest.approx(
            max(proc["parent_cpu_seconds"],
                proc["max_worker_busy_seconds"]))
        assert len(proc["worker_busy_seconds"]) >= 1
        # Correctness and the zero-copy hot path hold at any size.
        assert app["outputs_match"], app["max_abs_diff"]
        assert app["zero_copy"]
        assert proc["pickle_fallbacks"] == 0
        assert app["speedup_measured"] > 0
        assert app["speedup_modeled"] > 0
    assert thr["all_outputs_match"]
    assert thr["all_zero_copy"]

    ipc = on_disk["ipc"]
    assert set(ipc["transports"]) == {"inproc", "shm", "pickle"}
    for row in ipc["transports"].values():
        assert row["roundtrip_us"] > 0
    assert ipc["transports"]["shm"]["pickle_fallbacks"] == 0
    assert ipc["pickle_vs_shm_overhead"] > 0

    summary = on_disk["summary"]
    assert summary["mode"] == thr["mode"]
    assert summary["all_zero_copy"]
    assert summary["all_outputs_match"]
    assert summary["apps_total"] == len(thr["apps"])
