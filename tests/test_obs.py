"""Observability layer: registry, tracing, streams, lazy folding.

The cross-region aggregation test under concurrent ThreadPoolBackend
traffic is the subsystem's acceptance story: totals computed from a
concurrent run must equal a serial run record-for-record — the ring,
the collector counters, and the folded histograms may lose nothing.
Everything here carries the ``obs`` marker so CI can run it as a
dedicated lane.
"""

import gc
import math

import numpy as np
import pytest

from repro import obs
from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.runtime import EventLog, Phase
from repro.serving import RegionServer, ThreadPoolBackend

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test sees an empty default registry/tracer, enabled."""
    obs.reset()
    obs.set_enabled(True)
    yield
    obs.reset()
    obs.set_enabled(True)


def linear_region(tmp_path, name, *, weight=1.0, stream=None,
                  auto_batch=False):
    """The test-suite 2->1 region idiom, with a fresh EventLog."""
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, tmp_path / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""
    log = EventLog(stream=stream)

    @approx_ml(src, name=name, event_log=log, auto_batch=auto_batch)
    def region(x, y, N, use_model=False):
        y[:N] = x[:N].sum(axis=1) * weight

    return region, log


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_counter_gauge_basics_and_handle_stability():
    reg = obs.MetricsRegistry()
    c = reg.counter("requests", region="a")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert reg.counter("requests", region="a") is c      # stable handle
    assert reg.counter("requests", region="b") is not c  # labels split

    g = reg.gauge("breaker_state", region="a")
    assert g.value is None
    g.set("open")
    assert g.value == "open"
    g.set(1.0)
    g.add(2.0)
    assert g.value == 3.0


def test_histogram_quantiles_and_sample():
    reg = obs.MetricsRegistry()
    hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0), region="r")
    for v in (0.5, 1.5, 1.5, 3.0, 7.0):
        hist.observe(v)
    assert hist.count == 5
    assert hist.sum == pytest.approx(13.5)
    assert hist.min == 0.5 and hist.max == 7.0
    # p50 rank lands in the (1, 2] bucket; interpolation stays inside.
    assert 1.0 <= hist.quantile(0.5) <= 2.0
    assert hist.quantile(1.0) == 7.0
    sample = hist.sample()
    assert sample["count"] == 5
    assert sample["buckets"]["1.0"] == 1
    assert sample["buckets"]["2.0"] == 2
    assert sample["buckets"]["+inf"] == 0
    assert 1.0 <= sample["p50"] <= 2.0

    empty = reg.histogram("lat2")
    assert math.isnan(empty.quantile(0.5))
    assert empty.sample()["min"] is None
    with pytest.raises(ValueError):
        empty.quantile(1.5)
    with pytest.raises(ValueError):
        reg.histogram("bad", buckets=(2.0, 1.0))


def test_rollup_sums_counters_and_merges_histograms():
    reg = obs.MetricsRegistry()
    reg.counter("decisions", region="a", path="infer").inc(3)
    reg.counter("decisions", region="b", path="infer").inc(4)
    reg.counter("decisions", region="a", path="accurate").inc(10)
    assert reg.rollup("decisions")["value"] == 17
    assert reg.rollup("decisions", path="infer")["value"] == 7
    assert reg.rollup("decisions", region="a")["samples"] == 2
    assert reg.rollup("missing") == {"name": "missing", "samples": 0}

    for region, values in (("a", (0.5, 1.5)), ("b", (3.0, 7.0))):
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0),
                          region=region)
        for v in values:
            h.observe(v)
    merged = reg.rollup("lat")
    assert merged["count"] == 4
    assert merged["min"] == 0.5 and merged["max"] == 7.0
    assert merged["sum"] == pytest.approx(12.0)

    with pytest.raises(ValueError):
        obs.merge_histograms([
            reg.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0),
                          region="a").sample(),
            reg.histogram("other", buckets=(1.0, 2.0)).sample(),
        ])


def test_registry_export_is_json_clean(tmp_path):
    import json
    reg = obs.MetricsRegistry()
    reg.counter("n", region="a").inc()
    reg.histogram("lat", region="a").observe(1e-3)
    out = tmp_path / "metrics.json"
    reg.export(out)
    on_disk = json.loads(out.read_text())
    assert on_disk == json.loads(json.dumps(reg.snapshot()))
    assert {s["type"] for ss in on_disk["metrics"].values() for s in ss} \
        == {"counter", "histogram"}


def test_dropped_collector_leaves_snapshot():
    reg = obs.MetricsRegistry()

    class Source:
        def collect(self):
            return [{"type": "counter", "name": "x", "labels": {},
                     "value": 1}]

    source = Source()
    reg.register_collector(source)
    assert reg.snapshot()["metrics"]["x"][0]["value"] == 1
    del source
    gc.collect()
    assert "x" not in reg.snapshot()["metrics"]


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

def test_span_nesting_and_error_annotation():
    tracer = obs.Tracer()
    with tracer.span("retrain", region="r"):
        with tracer.span("fit"):
            pass
        tracer.record_span("swap", 0.25, model="m.rnm")
    trace = tracer.last()
    assert trace["kind"] == "span" and trace["name"] == "retrain"
    children = [c["name"] for c in trace["root"]["children"]]
    assert children == ["fit", "swap"]
    assert tracer.seen == 1                 # children are not roots

    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert tracer.last()["root"]["attrs"]["error"] == "RuntimeError"


def test_ring_bounds_and_seen_totals():
    tracer = obs.Tracer(capacity=4)
    for i in range(10):
        tracer.record_invocation("r", "infer", 1e-5,
                                 (("to_tensor", 1e-6),))
    assert len(tracer) == 4
    assert tracer.seen == 10
    snap = tracer.snapshot()
    assert snap["buffered"] == 4 and snap["seen"] == 10
    ids = [t["trace_id"] for t in snap["traces"]]
    assert ids == [7, 8, 9, 10]             # most recent, monotone

    tracer.record_span("flush", 1e-4)       # no live parent: ring root
    assert tracer.last()["name"] == "flush"

    with pytest.raises(ValueError):
        obs.Tracer(capacity=0)


def test_event_log_is_a_trace_source():
    log = EventLog()
    for i in range(3):
        rec = log.new_record("infer", region="src")
        rec.add(Phase.TO_TENSOR, 1e-6)
        rec.add(Phase.INFERENCE, 2e-6)
        rec.note("policy", "within_budget")
        log.finish(rec)
    unfinished = log.new_record("infer", region="src")   # never finished

    traces = obs.tracer().traces(region="src")
    assert [t["trace_id"] for t in traces] == [1, 2, 3]  # skips in-flight
    root = traces[-1]["root"]
    names = [c["name"] for c in root["children"]]
    assert names == ["to_tensor", "inference", "policy"]
    assert traces[-1]["seconds"] == pytest.approx(3e-6)
    assert obs.tracer().traces(region="elsewhere") == []
    assert unfinished in log.records


def test_disabling_obs_stops_spans():
    tracer = obs.tracer()
    obs.set_enabled(False)
    tracer.record_span("hidden", 1.0)
    with tracer.span("also_hidden"):
        pass
    assert tracer.snapshot()["seen"] == 0


# ----------------------------------------------------------------------
# EventLog ring + lazy folding
# ----------------------------------------------------------------------

def test_bounded_ring_keeps_exact_totals():
    log = EventLog(capacity=8)
    for i in range(30):
        rec = log.new_record("infer" if i % 3 else "accurate", region="r")
        rec.add(Phase.INFERENCE, 0.5)
        rec.add(Phase.TO_TENSOR, 0.25)
        log.finish(rec)
    assert log.seen == 30
    assert log.dropped > 0
    assert len(log.records) <= log.capacity
    # Aggregates stay exact across eviction.
    assert log.count() == 30
    assert log.count("infer") == 20
    assert log.total() == pytest.approx(30 * 0.75)
    assert log.total(Phase.INFERENCE) == pytest.approx(15.0)
    window = log.seen
    rec = log.new_record("infer", region="r")
    rec.add(Phase.INFERENCE, 1.0)
    log.finish(rec)
    assert log.records_since(window) == [rec]

    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_snapshot_folds_each_record_exactly_once():
    log = EventLog(capacity=4)
    for i in range(10):
        rec = log.new_record("infer", region="fold")
        rec.add(Phase.INFERENCE, 1e-4)
        log.finish(rec)

    def hist_sample():
        samples = obs.snapshot()["metrics"]["metrics"]
        return [s for s in samples["region_invocation_seconds"]
                if s["labels"]["region"] == "fold"][0]

    first = hist_sample()
    # Every record observed once — including the ones evicted before
    # the first scrape — and a second scrape does not re-fold.
    assert first["count"] == 10
    assert first["sum"] == pytest.approx(10 * 1e-4)
    assert hist_sample() == first

    counters = obs.snapshot()["metrics"]["metrics"]["region_invocations"]
    assert [c["value"] for c in counters
            if c["labels"]["region"] == "fold"] == [10]


def test_finish_is_idempotent_for_stream_records(tmp_path):
    stream = obs.DecisionStream(tmp_path / "s.rh5")
    log = EventLog(stream=stream)
    rec = log.new_record("infer", region="r")
    rec.add(Phase.INFERENCE, 1e-5)
    rec.note("policy", "within_budget")
    log.finish(rec)
    log.finish(rec)                          # double finish: one record
    obs.set_enabled(False)
    disabled = log.new_record("infer", region="r")
    log.finish(disabled)                     # gated off: no stream row
    obs.set_enabled(True)
    stream.close()
    replay = obs.read_stream(tmp_path / "s.rh5")
    assert len(replay["r"]) == 1
    assert replay["r"][0]["reason"] == "within_budget"


# ----------------------------------------------------------------------
# Decision streams
# ----------------------------------------------------------------------

def test_stream_round_trip_decodes_none_and_values(tmp_path):
    path = tmp_path / "stream.rh5"
    with obs.DecisionStream(path) as stream:
        stream.record("a", digest=7, path="infer", reason="within_budget",
                      breaker="healthy", shadow_error=0.25, spend=0.1)
        stream.record("a", digest=8, path="accurate")
        stream.record("b", digest=9, path="infer", reason="forced")
    replay = obs.read_stream(path)
    assert set(replay) == {"a", "b"}
    first, second = replay["a"]
    assert first == {"seq": 0, "digest": 7, "path": "infer",
                     "reason": "within_budget", "breaker": "healthy",
                     "precision": None, "shadow_error": 0.25, "spend": 0.1}
    assert second["reason"] is None and second["shadow_error"] is None
    assert replay["b"][0]["reason"] == "forced"

    with pytest.raises(RuntimeError):
        stream.record("a")                   # closed stream refuses

    not_a_stream = tmp_path / "other.rh5"
    from repro.h5 import File
    with File(not_a_stream, "w") as fh:
        fh.attrs["schema"] = "something-else"
    with pytest.raises(ValueError):
        obs.read_stream(not_a_stream)


def test_input_digest_is_stable_and_shape_sensitive():
    x = np.arange(6.0)
    assert obs.input_digest(x) == obs.input_digest(x.copy())
    assert obs.input_digest(x) != obs.input_digest(x.reshape(2, 3))
    assert obs.input_digest(x) != obs.input_digest(x + 1)
    assert 0 <= obs.input_digest(x) < 2 ** 63


def test_fixed_seed_recording_replays_bit_identically(tmp_path):
    def record(path):
        rng = np.random.default_rng(3)
        with obs.DecisionStream(path, flush_every=4) as stream:
            for i in range(10):
                stream.record(
                    "r", digest=obs.input_digest(rng.random(4)),
                    path="infer" if i % 2 else "accurate",
                    reason="within_budget", shadow_error=i / 10)
        return path

    a = record(tmp_path / "a.rh5")
    b = record(tmp_path / "b.rh5")
    assert a.read_bytes() == b.read_bytes()
    assert obs.read_stream(a) == obs.read_stream(b)


# ----------------------------------------------------------------------
# Cross-region aggregation under concurrent traffic (acceptance)
# ----------------------------------------------------------------------

@pytest.mark.serving
def test_concurrent_traffic_loses_no_updates(tmp_path):
    blocks, rows, regions = 24, 8, ("a", "b")

    def drive(backend):
        server = RegionServer(backend=backend)
        logs = {}
        for name in regions:
            region, logs[name] = linear_region(tmp_path / "conc", name,
                                               auto_batch=True)
            server.register(region)
        rng = np.random.default_rng(0)
        buffers = {name: np.empty(rows) for name in regions}
        for _ in range(blocks):
            block = rng.random((rows, 2))
            for name in regions:
                server.invoke(name, block, buffers[name], rows,
                              use_model=True)
        server.drain()
        rollup = obs.metrics().rollup("region_invocations")
        per_region = {
            name: obs.metrics().rollup("region_invocations",
                                       region=name)["value"]
            for name in regions}
        latency = obs.metrics().rollup("region_invocation_seconds")
        server.close()
        obs.reset()
        return logs, rollup, per_region, latency

    obs.reset()
    logs, rollup, per_region, latency = drive(ThreadPoolBackend())
    serial = drive(None)

    # No lost updates: every ring is exact, and the registry roll-up
    # over the concurrent run equals the serial run's totals.
    assert all(log.seen == blocks for log in logs.values())
    assert rollup["value"] == blocks * len(regions) == serial[1]["value"]
    assert per_region == serial[2] == {name: blocks for name in regions}
    assert latency["count"] == serial[3]["count"] == blocks * len(regions)
    assert latency["min"] > 0


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------

def test_engine_profile_reports_per_step_timings(tmp_path):
    from repro.runtime import InferenceEngine
    model = Sequential(Linear(2, 8, rng=np.random.default_rng(0)),
                       Linear(8, 1, rng=np.random.default_rng(1)))
    path = tmp_path / "m.rnm"
    save_model(model, path)
    engine = InferenceEngine()
    x = np.random.default_rng(0).random((16, 2))
    prof = engine.profile(path, x)
    assert prof["compiled"]
    assert len(prof["steps"]) >= 2
    assert sum(s["seconds"] for s in prof["steps"]) \
        <= prof["total_seconds"] + 1e-9
    np.testing.assert_allclose(prof["outputs"], engine.infer(path, x),
                               rtol=1e-6)
