"""Search stack: spaces, GP, acquisition, BO, Pareto, builders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.search import (BayesianOptimizer, Choice, Continuous,
                          GaussianProcess, Integer, Space, arch_space_for,
                          builder_for, chebyshev_scalarize,
                          expected_improvement, hyperparameter_space,
                          hypervolume_2d, lower_confidence_bound,
                          pareto_front_mask)

# ----------------------------------------------------------------------
# Spaces
# ----------------------------------------------------------------------

def test_continuous_unit_roundtrip():
    p = Continuous("x", 2.0, 10.0)
    assert p.from_unit(p.to_unit(6.0)) == pytest.approx(6.0)
    assert p.from_unit(0.0) == 2.0 and p.from_unit(1.0) == 10.0


def test_continuous_log_scale():
    p = Continuous("lr", 1e-4, 1e-2, log=True)
    assert p.from_unit(0.5) == pytest.approx(1e-3)
    assert p.to_unit(1e-3) == pytest.approx(0.5)


def test_continuous_validation():
    with pytest.raises(ValueError):
        Continuous("x", 5.0, 1.0)
    with pytest.raises(ValueError):
        Continuous("x", -1.0, 1.0, log=True)


def test_integer_snapping():
    p = Integer("n", 2, 12)
    assert p.from_unit(0.0) == 2 and p.from_unit(1.0) == 12
    assert isinstance(p.from_unit(0.5), int)


def test_choice_roundtrip():
    p = Choice("size", (64, 128, 256))
    assert p.from_unit(p.to_unit(128)) == 128
    assert p.from_unit(0.0) == 64 and p.from_unit(1.0) == 256


def test_space_sample_and_encode():
    space = Space([Continuous("a", 0.0, 1.0), Integer("b", 1, 5),
                   Choice("c", ("x", "y"))])
    rng = np.random.default_rng(0)
    for _ in range(20):
        cfg = space.sample(rng)
        u = space.to_unit(cfg)
        assert u.shape == (3,)
        assert np.all((u >= 0) & (u <= 1))
        back = space.from_unit(u)
        assert back["b"] == cfg["b"] and back["c"] == cfg["c"]


def test_space_validate():
    space = Space([Integer("n", 1, 3)])
    with pytest.raises(KeyError):
        space.validate({})
    with pytest.raises(ValueError):
        space.from_unit(np.zeros(2))


def test_table4_spaces_match_paper():
    mb = arch_space_for("minibude")
    assert {p.name for p in mb.params} == \
        {"num_hidden_layers", "hidden1_size", "feature_multiplier"}
    hidden1 = next(p for p in mb.params if p.name == "hidden1_size")
    assert hidden1.values[0] == 64 and hidden1.values[-1] == 4096

    for name in ("binomial", "bonds"):
        sp = arch_space_for(name)
        h1 = next(p for p in sp.params if p.name == "hidden1_features")
        assert (h1.lo, h1.hi) == (5, 512)

    pf = arch_space_for("particlefilter")
    ck = next(p for p in pf.params if p.name == "conv_kernel")
    assert (ck.lo, ck.hi) == (2, 14)

    with pytest.raises(KeyError):
        arch_space_for("unknown")


def test_table5_hyperparameter_space():
    hp = hyperparameter_space()
    names = {p.name for p in hp.params}
    assert names == {"learning_rate", "weight_decay", "dropout",
                     "batch_size"}
    bs = next(p for p in hp.params if p.name == "batch_size")
    assert (bs.lo, bs.hi) == (32, 512)


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_space_from_unit_in_bounds_property(u1, u2):
    space = Space([Continuous("lr", 1e-4, 1e-2, log=True),
                   Integer("n", 2, 12)])
    cfg = space.from_unit(np.array([u1, u2]))
    assert 1e-4 <= cfg["lr"] <= 1e-2 * (1 + 1e-9)
    assert 2 <= cfg["n"] <= 12


# ----------------------------------------------------------------------
# GP
# ----------------------------------------------------------------------

def test_gp_interpolates_noiselessly():
    rng = np.random.default_rng(0)
    x = rng.random((20, 2))
    y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
    gp = GaussianProcess().fit(x, y)
    mean, std = gp.predict(x)
    np.testing.assert_allclose(mean, y, atol=0.05)
    assert np.all(std < 0.3)


def test_gp_uncertainty_grows_away_from_data():
    x = np.array([[0.1], [0.2], [0.3]])
    y = np.array([1.0, 2.0, 3.0])
    gp = GaussianProcess(optimize_hypers=False).fit(x, y)
    _, std_near = gp.predict(np.array([[0.2]]))
    _, std_far = gp.predict(np.array([[0.9]]))
    assert std_far[0] > std_near[0]


def test_gp_predict_before_fit():
    with pytest.raises(RuntimeError):
        GaussianProcess().predict(np.zeros((1, 2)))


def test_gp_input_validation():
    with pytest.raises(ValueError):
        GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))


# ----------------------------------------------------------------------
# Acquisition
# ----------------------------------------------------------------------

def test_expected_improvement_prefers_low_mean_high_std():
    mean = np.array([1.0, 0.5, 1.0])
    std = np.array([0.1, 0.1, 1.0])
    ei = expected_improvement(mean, std, best=1.0)
    assert ei[1] > ei[0]    # lower mean wins
    assert ei[2] > ei[0]    # higher uncertainty wins


def test_ei_zero_when_hopeless():
    ei = expected_improvement(np.array([10.0]), np.array([1e-9]), best=0.0)
    assert ei[0] == pytest.approx(0.0, abs=1e-6)


def test_lcb():
    util = lower_confidence_bound(np.array([1.0, 1.0]),
                                  np.array([0.0, 1.0]), kappa=2.0)
    assert util[1] > util[0]


# ----------------------------------------------------------------------
# BayesianOptimizer
# ----------------------------------------------------------------------

def test_bo_beats_random_on_quadratic():
    space = Space([Continuous("x", -5.0, 5.0), Continuous("y", -5.0, 5.0)])

    def objective(cfg):
        return (cfg["x"] - 1.0) ** 2 + (cfg["y"] + 2.0) ** 2

    bo = BayesianOptimizer(space, n_init=6, seed=0)
    result = bo.minimize(objective, n_iterations=35)
    assert result.best_value < 0.5
    assert abs(result.best_config["x"] - 1.0) < 1.0


def test_bo_early_stopping():
    space = Space([Continuous("x", 0.0, 1.0)])
    calls = []

    def objective(cfg):
        calls.append(cfg)
        return 1.0   # flat: nothing ever improves after the first

    bo = BayesianOptimizer(space, n_init=2, stale_limit=4, seed=1)
    bo.minimize(objective, n_iterations=50)
    assert len(calls) <= 2 + 4 + 1


def test_bo_handles_nan_objective():
    space = Space([Continuous("x", 0.0, 1.0)])

    def objective(cfg):
        return float("nan") if cfg["x"] > 0.5 else cfg["x"]

    result = BayesianOptimizer(space, n_init=4, seed=2).minimize(
        objective, n_iterations=12)
    assert np.isfinite(result.best_value)


def test_bo_extra_payload():
    space = Space([Continuous("x", 0.0, 1.0)])
    result = BayesianOptimizer(space, seed=3).minimize(
        lambda c: (c["x"], {"tag": round(c["x"], 2)}), n_iterations=4)
    assert all("tag" in t.extra for t in result.trials)


# ----------------------------------------------------------------------
# Pareto utilities
# ----------------------------------------------------------------------

def test_pareto_front_mask_basic():
    obj = np.array([[1.0, 5.0], [2.0, 2.0], [5.0, 1.0],
                    [3.0, 3.0], [2.0, 2.0]])
    mask = pareto_front_mask(obj)
    assert mask.tolist() == [True, True, True, False, True]


def test_pareto_single_point():
    assert pareto_front_mask(np.array([[1.0, 1.0]])).tolist() == [True]


def test_chebyshev_scalarize_ranks():
    obj = np.array([[0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
    s = chebyshev_scalarize(obj, np.array([0.5, 0.5]))
    assert s[2] > s[0] and s[2] > s[1]   # dominated point scores worst


def test_hypervolume_2d():
    obj = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
    hv = hypervolume_2d(obj, reference=(4.0, 4.0))
    # Staircase area: (4-1)(4-3) + (4-2)(3-2) + (4-3)(2-1) = 3+2+1.
    assert hv == pytest.approx(6.0)
    assert hypervolume_2d(np.array([[9.0, 9.0]]), (4.0, 4.0)) == 0.0
    with pytest.raises(ValueError):
        hypervolume_2d(np.zeros((2, 3)), (1, 1))


@given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_pareto_front_is_mutually_nondominated(points):
    obj = np.array(points)
    front = obj[pareto_front_mask(obj)]
    for a in front:
        for b in front:
            strictly_better = np.all(b <= a) and np.any(b < a)
            assert not strictly_better


# ----------------------------------------------------------------------
# Builders sample the whole Table IV space without crashing
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bench,kwargs,in_shape", [
    ("minibude", {}, (3, 6)),
    ("binomial", {}, (3, 5)),
    ("bonds", {}, (3, 5)),
    ("miniweather", {"nz": 16, "nx": 32}, (2, 4, 16, 32)),
])
def test_builders_over_space_samples(bench, kwargs, in_shape):
    space = arch_space_for(bench)
    build = builder_for(bench)
    rng = np.random.default_rng(0)
    for _ in range(8):
        cfg = space.sample(rng)
        model = build(cfg, dropout=0.2, **kwargs)
        out = model(Tensor(np.random.default_rng(1).normal(size=in_shape)))
        assert len(out.shape) >= 2 and out.shape[0] == in_shape[0]
        if bench == "miniweather":
            assert out.shape == in_shape   # grid-to-grid preserves shape


def test_particlefilter_builder_valid_and_invalid():
    build = builder_for("particlefilter")
    model = build({"conv_kernel": 6, "conv_stride": 3, "maxpool_kernel": 2,
                   "fc2_size": 16}, height=32, width=32)
    out = model(Tensor(np.zeros((2, 1, 32, 32))))
    assert out.shape == (2, 2)
    with pytest.raises(ValueError):
        build({"conv_kernel": 14, "conv_stride": 14, "maxpool_kernel": 1,
               "fc2_size": 0}, height=8, width=8)


def test_minibude_builder_depth_and_decay():
    build = builder_for("minibude")
    model = build({"num_hidden_layers": 4, "hidden1_size": 64,
                   "feature_multiplier": 0.5})
    from repro.nn import Linear
    widths = [l.out_features for l in model if isinstance(l, Linear)]
    assert widths == [64, 32, 16, 8, 1]


def test_mlp2_builder_drops_second_layer():
    build = builder_for("binomial")
    from repro.nn import Linear
    one = build({"hidden1_features": 32, "hidden2_features": 0})
    two = build({"hidden1_features": 32, "hidden2_features": 16})
    assert sum(isinstance(l, Linear) for l in one) == 2
    assert sum(isinstance(l, Linear) for l in two) == 3
