"""Serving layer: RegionServer, backends, arbiter, retrain/hot-swap.

The two-region arbitration test is the subsystem's acceptance story:
one untrained surrogate must be forced onto the accurate path while a
trained one keeps its inference share, with the *global* error budget
respected end-to-end.  Thread-pool tests carry the ``serving`` marker
so CI can run them as a dedicated lane on both Python versions.
"""

import threading

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.qos import BudgetArbitrationPolicy, QoSController, RegionErrorStats
from repro.runtime import EventLog, ExecutionPath, Phase
from repro.serving import (QoSArbiter, RegionServer, RetrainWorker,
                           ThreadPoolBackend, db_row_count, hot_swap_model)


def linear_region(tmp_path, name, *, weight=1.0, scale=1.0, mode="infer",
                  auto_batch=False, calls=None, engine=None, qos=None):
    """A 2->1 region: accurate kernel computes ``scale * row_sum``, the
    saved model predicts ``weight * row_sum``.  ``calls`` (a list, when
    given) records each accurate-kernel invocation's row count."""
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, tmp_path / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml({mode}:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""
    log = EventLog()

    @approx_ml(src, name=name, event_log=log, engine=engine, qos=qos,
               auto_batch=auto_batch)
    def region(x, y, N, use_model=False):
        if calls is not None:
            calls.append(N)
        y[:N] = x[:N].sum(axis=1) * scale

    return region, log


# ----------------------------------------------------------------------
# RegionServer basics
# ----------------------------------------------------------------------

def test_serial_server_matches_direct_invocation(tmp_path):
    region_a, _ = linear_region(tmp_path, "a", weight=1.0)
    region_b, _ = linear_region(tmp_path, "b", weight=2.0)
    server = RegionServer()
    assert server.register(region_a) == "a"
    server.register(region_b, name="b")
    assert set(server.names) == {"a", "b"}

    x = np.arange(8.0).reshape(4, 2)
    y_served = np.empty(4)
    y_direct = np.empty(4)
    server.invoke("a", x, y_served, 4, use_model=True)
    region_a(x, y_direct, 4, use_model=True)
    np.testing.assert_allclose(y_served, y_direct)

    y_b = np.empty(4)
    server.invoke("b", x, y_b, 4, use_model=True)
    np.testing.assert_allclose(y_b, 2.0 * x.sum(axis=1))
    assert server.served("a").invocations == 1
    snap = server.snapshot()
    assert snap["backend"] == "SerialBackend"
    assert snap["regions"]["b"]["invocations"] == 1


def test_register_duplicate_name_raises(tmp_path):
    region, _ = linear_region(tmp_path, "dup")
    server = RegionServer()
    server.register(region)
    with pytest.raises(ValueError, match="already registered"):
        server.register(region)


def test_attach_restore_qos_roundtrip(tmp_path):
    region, _ = linear_region(tmp_path, "r")
    server = RegionServer()
    server.register(region)
    ctrl = QoSController(shadow_rate=0.0)
    prev = server.attach_qos(ctrl)
    assert region.config.qos is ctrl and server.qos is ctrl
    server.restore_qos(prev)
    assert region.config.qos is None
    # Server-level controller is inherited by later registrations.
    server.attach_qos(ctrl)
    late, _ = linear_region(tmp_path, "late")
    server.register(late)
    assert late.config.qos is ctrl
    server.detach_qos()
    assert late.config.qos is None and server.qos is None


# ----------------------------------------------------------------------
# Thread-pool backend (the `serving` CI lane)
# ----------------------------------------------------------------------

@pytest.mark.serving
def test_thread_backend_serves_two_regions_concurrently(tmp_path):
    region_a, _ = linear_region(tmp_path, "a", weight=1.0, auto_batch=True)
    region_b, _ = linear_region(tmp_path, "b", weight=3.0, auto_batch=True)
    server = RegionServer(backend=ThreadPoolBackend())
    server.register(region_a)
    server.register(region_b)

    rng = np.random.default_rng(0)
    x = rng.random((64, 2))
    y_a = np.empty(64)
    y_b = np.empty(64)
    futures = []
    for start in range(0, 64, 8):
        block = np.ascontiguousarray(x[start:start + 8])
        futures.append(server.invoke("a", block, y_a[start:start + 8], 8,
                                     use_model=True))
        futures.append(server.invoke("b", block, y_b[start:start + 8], 8,
                                     use_model=True))
    server.drain()
    for future in futures:
        assert future.exception() is None
    np.testing.assert_allclose(y_a, x.sum(axis=1), rtol=1e-10)
    np.testing.assert_allclose(y_b, 3.0 * x.sum(axis=1), rtol=1e-10)
    server.close()


@pytest.mark.serving
def test_thread_backend_preserves_per_region_order(tmp_path):
    order = []

    src = """
#pragma approx tensor functor(fi: [i, 0:1] = ([i]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("unused.rh5") model("unused.rnm")
"""

    @approx_ml(src, name="seq", event_log=EventLog())
    def region(x, y, N, tag=0, use_model=False):
        order.append(tag)
        y[:N] = x[:N]

    server = RegionServer(backend=ThreadPoolBackend())
    server.register(region)
    x = np.zeros(1)
    y = np.zeros(1)
    futures = [server.invoke("seq", x, y, 1, tag=i) for i in range(32)]
    server.drain()
    for future in futures:
        assert future.exception() is None
    assert order == list(range(32))     # affinity thread: FIFO per region
    server.close()


@pytest.mark.serving
def test_harness_run_propagates_worker_thread_failures(tmp_path):
    from repro.apps.harness import BinomialHarness
    server = RegionServer(backend=ThreadPoolBackend())
    harness = BinomialHarness(tmp_path, n_train=32, n_test=16, n_steps=4,
                              deploy_chunk=8, server=server)
    # No model installed: the worker-thread inference fails, and the
    # harness must re-raise instead of returning garbage buffers.
    with pytest.raises(Exception):
        harness.run_surrogate()
    server.close()


@pytest.mark.serving
def test_region_flush_is_idempotent_and_thread_safe(tmp_path):
    region, _ = linear_region(tmp_path, "flushy", auto_batch=True)
    engine = region.engine
    x = np.arange(64.0).reshape(32, 2)
    y = np.empty(32)
    for start in range(0, 32, 4):
        region(x[start:start + 4], y[start:start + 4], 4, use_model=True)
    assert engine.pending_rows == 32      # max_batch_rows default: queued

    threads = [threading.Thread(target=region.flush) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    np.testing.assert_allclose(y, x.sum(axis=1))
    assert engine.rows_flushed == 32      # exactly one flush won
    assert engine.batches_flushed == 1
    region.flush()                        # idempotent afterwards
    assert engine.batches_flushed == 1
    region.close()
    region.close()                        # close is idempotent too


# ----------------------------------------------------------------------
# Shadow-validation row sub-sampling
# ----------------------------------------------------------------------

def test_shadow_rows_runs_accurate_kernel_on_subset(tmp_path):
    calls = []
    ctrl = QoSController(shadow_rate=1.0, seed=0, shadow_rows=4)
    region, log = linear_region(tmp_path, "sub", weight=1.0, calls=calls,
                                qos=ctrl)
    rng = np.random.default_rng(1)
    x = rng.random((16, 2)) + 0.5
    y = np.empty(16)
    region(x, y, 16, use_model=True)
    # Accurate kernel validated 4 rows, not 16; the committed result is
    # still the full surrogate output.
    assert calls == [4]
    np.testing.assert_allclose(y, x.sum(axis=1), rtol=1e-10)
    stats = ctrl.stats_for("sub")
    assert stats.count == 1
    assert stats.last == pytest.approx(0.0, abs=1e-10)   # exact model
    assert log.records[-1].times[Phase.SHADOW] > 0


def test_shadow_rows_measures_error_of_wrong_model(tmp_path):
    ctrl = QoSController(shadow_rate=1.0, seed=0, shadow_rows=3)
    region, _ = linear_region(tmp_path, "wrong", weight=2.0, qos=ctrl)
    x = np.ones((12, 2))
    y = np.empty(12)
    region(x, y, 12, use_model=True)
    # pred = 2*sum, acc = sum -> relative error 1 on any row subset.
    assert ctrl.stats_for("wrong").last == pytest.approx(1.0, rel=1e-6)


def test_shadow_rows_ineligible_region_validates_full_batch(tmp_path):
    calls = []
    ctrl = QoSController(shadow_rate=1.0, seed=0, shadow_rows=4)
    region, _ = linear_region(tmp_path, "full", calls=calls, qos=ctrl)
    region.config.row_subsample = False          # opt-out wins
    region._row_plan = region._build_row_plan()
    x = np.ones((16, 2))
    y = np.empty(16)
    region(x, y, 16, use_model=True)
    assert calls == [16]


def test_shadow_rows_accurate_commit_validates_full_batch(tmp_path):
    calls = []
    ctrl = QoSController(shadow_rate=1.0, seed=0, shadow_rows=4,
                         commit="accurate")
    region, _ = linear_region(tmp_path, "acc", weight=2.0, calls=calls,
                              qos=ctrl)
    x = np.ones((16, 2))
    y = np.empty(16)
    region(x, y, 16, use_model=True)
    assert calls == [16]                 # accurate result is committed
    np.testing.assert_allclose(y, x.sum(axis=1))


def test_row_subsample_true_on_unsupported_maps_raises(tmp_path):
    src = """
#pragma approx tensor functor(f: [b, 0:4] = ([b, 0:4]))
#pragma approx tensor map(to: f(u[0:1]))
#pragma approx tensor map(from: f(u[0:1]))
#pragma approx ml(infer:use_model) inout(u) db("d.rh5") model("m.rnm")
"""
    with pytest.raises(ValueError, match="row_subsample"):
        @approx_ml(src, name="bad", row_subsample=True)
        def region(u, use_model=False):
            pass


# ----------------------------------------------------------------------
# Budget arbitration
# ----------------------------------------------------------------------

def test_arbitration_policy_warmup_then_denial_and_probing():
    policy = BudgetArbitrationPolicy(0.05, warmup=1, probe_interval=4,
                                     rebalance_every=4)
    stats = RegionErrorStats(alpha=0.5)
    assert policy.decide("r", stats).reason == "warmup"
    stats.update(2.0)                    # terrible surrogate
    policy.observe("r", 2.0, stats)
    actions = [policy.decide("r", stats) for _ in range(8)]
    paths = [a.path for a in actions]
    assert ExecutionPath.ACCURATE in paths
    assert all(a.path == ExecutionPath.ACCURATE or a.force_shadow
               for a in actions)
    probes = [a for a in actions if a.reason == "probe"]
    assert len(probes) == 2              # every 4th denial probes
    snap = policy.snapshot()
    assert snap["regions"]["r"]["denied"] == 8
    assert snap["global_mean_charge"] == 0.0


def test_arbitration_policy_admits_cheap_region():
    policy = BudgetArbitrationPolicy(0.05, warmup=1, rebalance_every=4)
    stats = RegionErrorStats(alpha=0.5)
    policy.decide("good", stats)         # warmup
    stats.update(1e-4)
    policy.observe("good", 1e-4, stats)
    decisions = [policy.decide("good", stats) for _ in range(16)]
    assert all(d is None for d in decisions)
    st = policy.snapshot()["regions"]["good"]
    assert st["inferred"] == 16 and st["denied"] == 0
    assert policy.global_mean_charge <= 0.05


def test_arbitration_water_filling_splits_budget():
    policy = BudgetArbitrationPolicy(0.1, warmup=0, rebalance_every=1,
                                     headroom=1.0, charge="linear")
    cheap = RegionErrorStats(alpha=1.0)
    cheap.update(0.01)
    costly = RegionErrorStats(alpha=1.0)
    costly.update(5.0)
    policy.decide("cheap", cheap)
    policy.decide("costly", costly)
    policy.observe("cheap", 0.01, cheap)
    policy.observe("costly", 5.0, costly)
    policy.decide("cheap", cheap)        # triggers rebalance
    alloc = {n: st["allocation"]
             for n, st in policy.snapshot()["regions"].items()}
    # The cheap region gets its full demand; the costly one only the
    # leftover mass over its share — far below its 5.0 demand.
    assert alloc["cheap"] >= 0.009
    assert alloc["costly"] < 0.5
    assert policy.rebalances >= 1


def test_reset_region_forgets_ledger():
    policy = BudgetArbitrationPolicy(0.05, warmup=1)
    stats = RegionErrorStats()
    policy.decide("r", stats)
    policy.reset_region("r")
    assert "r" not in policy.snapshot()["regions"]


# ----------------------------------------------------------------------
# Two-region arbitration end-to-end (the satellite acceptance test)
# ----------------------------------------------------------------------

def test_arbiter_forces_untrained_region_accurate_under_global_budget(
        tmp_path):
    budget = 0.05
    good, _ = linear_region(tmp_path, "good", weight=1.0)   # exact model
    bad, _ = linear_region(tmp_path, "bad", weight=5.0)     # rel err ~4
    server = RegionServer()
    server.register(good)
    server.register(bad)
    arbiter = QoSArbiter(budget, shadow_rate=0.3, seed=0, warmup=2,
                         rebalance_every=8)
    server.attach_qos(arbiter)

    rng = np.random.default_rng(2)
    x = rng.random((128, 2)) + 0.5
    y_good = np.empty(128)
    y_bad = np.empty(128)
    for start in range(0, 128, 4):
        block = np.ascontiguousarray(x[start:start + 4])
        server.invoke("good", block, y_good[start:start + 4], 4,
                      use_model=True)
        server.invoke("bad", block, y_bad[start:start + 4], 4,
                      use_model=True)
    server.drain()

    accurate = x.sum(axis=1)

    def rel(y):
        return float(np.linalg.norm(y - accurate) / np.linalg.norm(accurate))

    # Both regions' deployed QoI errors respect the global budget: the
    # good region because its surrogate is accurate, the bad one
    # because arbitration forced it onto the accurate path.
    assert rel(y_good) <= budget
    assert rel(y_bad) <= budget

    snap = arbiter.snapshot()
    arb = snap["arbitration"]
    assert arb["global_mean_charge"] <= budget
    assert arb["regions"]["bad"]["inferred"] == 0
    assert arb["regions"]["bad"]["denied"] >= 20
    assert arb["regions"]["good"]["inferred"] >= 24   # keeps infer share
    tele = snap["telemetry"]
    bad_paths = tele["bad"]["final_paths"]
    assert bad_paths.get(ExecutionPath.ACCURATE, 0) > \
        bad_paths.get(ExecutionPath.INFER, 0)
    rollup = snap["rollup"]
    assert rollup["regions"] == 2
    assert rollup["invocations"] == 64
    assert rollup["overrides"] >= 20


def test_telemetry_rollup_aggregates_regions(tmp_path):
    ctrl = QoSController(shadow_rate=1.0, seed=0)
    for name, weight in (("r1", 1.0), ("r2", 1.0)):
        region, _ = linear_region(tmp_path, name, weight=weight, qos=ctrl)
        x = np.ones((4, 2))
        y = np.empty(4)
        region(x, y, 4, use_model=True)
    rollup = ctrl.telemetry.rollup()
    assert rollup["regions"] == 2
    assert rollup["invocations"] == 2
    assert rollup["shadow_invocations"] == 2
    assert rollup["infer_fraction"] == pytest.approx(1.0)
    assert rollup["shadow_error_mean"] == pytest.approx(0.0, abs=1e-10)


# ----------------------------------------------------------------------
# Retrain worker: DB watch, background retrain, atomic hot-swap
# ----------------------------------------------------------------------

def _collectable_region(tmp_path, name="learn"):
    """Predicated region computing ``y = 2*x0 + 3*x1`` (learnable by a
    Linear layer); collection appends rows to its training DB."""
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""
    log = EventLog()

    @approx_ml(src, name=name, event_log=log)
    def region(x, y, N, use_model=False):
        y[:N] = 2.0 * x[:N, 0] + 3.0 * x[:N, 1]

    return region


def test_hot_swap_model_replaces_file_and_refreshes_engine(tmp_path):
    path = tmp_path / "m.rnm"
    model_a = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model_a[0].weight.data = np.array([[1.0, 1.0]])
    model_a[0].bias.data = np.array([0.0])
    save_model(model_a, path)

    from repro.runtime import InferenceEngine
    engine = InferenceEngine()
    x = np.ones((2, 2))
    np.testing.assert_allclose(engine.infer(path, x).ravel(), [2.0, 2.0])

    model_b = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model_b[0].weight.data = np.array([[10.0, 10.0]])
    model_b[0].bias.data = np.array([0.0])
    hot_swap_model(model_b, path, engines=[engine])
    np.testing.assert_allclose(engine.infer(path, x).ravel(), [20.0, 20.0])
    assert not path.with_name(path.name + ".swap").exists()


@pytest.mark.serving
@pytest.mark.resilience
def test_hot_swap_race_never_serves_torn_model(tmp_path):
    """Thread-hammer: engines inferring at full speed while the model
    file is hot-swapped back and forth must only ever observe complete
    models — old weights or new weights, never a torn mixture.  The
    atomic ``os.replace`` plus the checksum footer make any other
    outcome a test failure (garbage values or ModelFormatError)."""
    from repro.runtime import InferenceEngine, ModelCache

    path = tmp_path / "race.rnm"

    def make(w):
        m = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
        m[0].weight.data = np.array([[w, w]])
        m[0].bias.data = np.array([0.0])
        return m

    save_model(make(1.0), path)
    cache = ModelCache()                  # shared: one invalidate, all see it
    engines = [InferenceEngine(cache=cache) for _ in range(4)]
    x = np.ones((4, 2))
    stop = threading.Event()
    bad: list = []

    def hammer(engine):
        try:
            while not stop.is_set():
                out = engine.infer(path, x).ravel()
                if not (np.allclose(out, 2.0) or np.allclose(out, 20.0)):
                    bad.append(("torn", out.copy()))
                    return
        except Exception as exc:          # pragma: no cover - failure path
            bad.append(("raised", repr(exc)))

    threads = [threading.Thread(target=hammer, args=(e,)) for e in engines]
    for t in threads:
        t.start()
    try:
        for i in range(40):
            hot_swap_model(make(10.0 if i % 2 == 0 else 1.0), path,
                           engines=engines)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
    assert bad == []
    assert not path.with_name(path.name + ".swap").exists()
    # The file on disk is a complete, checksummed model either way.
    from repro.nn import load_model
    assert np.isfinite(load_model(path)[0].weight.data).all()


def test_retrain_worker_polls_db_growth_and_hot_swaps(tmp_path):
    region = _collectable_region(tmp_path)
    rng = np.random.default_rng(3)

    # A deliberately wrong initial model.
    bad = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    bad[0].weight.data = np.array([[0.0, 0.0]])
    bad[0].bias.data = np.array([0.0])
    save_model(bad, tmp_path / "learn.rnm")

    worker = RetrainWorker(seed=0)
    worker.watch(
        "learn", tmp_path / "learn.rh5", tmp_path / "learn.rnm",
        build=lambda xt, yt: Sequential(
            Linear(2, 1, rng=np.random.default_rng(1))),
        trainer_kwargs=dict(lr=0.1, batch_size=32, max_epochs=200,
                            patience=50),
        min_new_rows=32, engines=[region.engine])
    assert worker.poll() == []           # nothing collected yet

    x = rng.random((64, 2))
    y = np.empty(64)
    region(x, y, 64, use_model=False)    # predicated-false -> collect
    region.flush()
    assert db_row_count(tmp_path / "learn.rh5", "learn") == 64

    events = worker.poll()
    assert len(events) == 1
    assert events[0].region == "learn" and events[0].new_rows == 64
    assert worker.poll() == []           # baseline advanced: no re-fire

    # The hot-swapped model now serves: predictions close to 2x0+3x1.
    y_pred = np.empty(64)
    region(x, y_pred, 64, use_model=True)
    region.flush()
    ref = 2.0 * x[:, 0] + 3.0 * x[:, 1]
    rel = np.linalg.norm(y_pred - ref) / np.linalg.norm(ref)
    assert rel < 0.05


@pytest.mark.serving
def test_retrain_worker_background_thread_catches_refresh(tmp_path):
    region = _collectable_region(tmp_path, name="bg")
    bad = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    save_model(bad, tmp_path / "bg.rnm")
    worker = RetrainWorker(seed=0)
    worker.watch(
        "bg", tmp_path / "bg.rh5", tmp_path / "bg.rnm",
        build=lambda xt, yt: Sequential(
            Linear(2, 1, rng=np.random.default_rng(1))),
        trainer_kwargs=dict(lr=0.1, batch_size=32, max_epochs=50,
                            patience=20),
        min_new_rows=16, engines=[region.engine])
    worker.start(interval=0.05)
    assert worker.running
    x = np.random.default_rng(4).random((48, 2))
    y = np.empty(48)
    region(x, y, 48, use_model=False)
    region.flush()
    worker.stop()                        # final poll catches the refresh
    assert not worker.running
    assert len(worker.events) == 1
    assert worker.snapshot()["retrains"][0]["region"] == "bg"


# ----------------------------------------------------------------------
# Decayed spend window (long-running servers)
# ----------------------------------------------------------------------

def test_spend_window_ledger_decays():
    policy = BudgetArbitrationPolicy(1.0, warmup=0, charge="linear",
                                     headroom=0.9, spend_window=16)
    stats = RegionErrorStats(alpha=1.0)
    stats.update(0.5)
    policy.observe("r", 0.5, stats)
    for _ in range(200):
        policy.decide("r", stats)
    # Without decay the decision mass would be ~200; the window keeps
    # its effective memory near spend_window decisions.
    snap = policy.snapshot()
    assert snap["spend_window"] == 16
    assert snap["global_decisions"] < 30
    assert snap["regions"]["r"]["decisions"] < 30
    # Lifetime counters are not decayed.
    assert snap["regions"]["r"]["inferred"] > 100


def test_spend_window_forgets_ancient_spend():
    """After a regime change the windowed mean charge tracks the new
    regime while the unwindowed one stays pinned by ancient spend."""
    def run(spend_window):
        policy = BudgetArbitrationPolicy(1.0, warmup=1, charge="linear",
                                         headroom=0.9,
                                         spend_window=spend_window)
        stats = RegionErrorStats(alpha=1.0)
        policy.decide("r", stats)                     # warmup probe
        stats.update(0.8)                             # expensive era
        policy.observe("r", 0.8, stats)
        for _ in range(100):
            policy.decide("r", stats)
        stats.update(0.05)                            # model improves
        policy.observe("r", 0.05, stats)
        for _ in range(100):
            policy.decide("r", stats)
        return policy.global_mean_charge

    pinned = run(None)
    windowed = run(32)
    assert pinned > 0.3                  # ancient spend still dominates
    assert windowed < 0.15               # window tracks the new regime


def test_arbiter_passes_spend_window_through():
    arbiter = QoSArbiter(0.1, spend_window=64)
    assert arbiter.arbitration.spend_window == 64
    assert arbiter.snapshot()["arbitration"]["spend_window"] == 64


def test_spend_window_validation():
    with pytest.raises(ValueError):
        BudgetArbitrationPolicy(0.1, spend_window=1)


# ----------------------------------------------------------------------
# Recency-weighted retraining
# ----------------------------------------------------------------------

def test_recency_weighted_indices_prefer_fresh_rows():
    from repro.serving import recency_weighted_indices
    rng = np.random.default_rng(0)
    idx = recency_weighted_indices(np.arange(1000), 1000, 50.0, rng)
    assert idx.shape == (1000,)
    # With a 50-row half-life on 1000 rows, the newest quarter should
    # dominate the bootstrap and the oldest half should barely appear.
    assert (idx >= 750).mean() > 0.9
    assert (idx < 500).mean() < 0.01
    with pytest.raises(ValueError):
        recency_weighted_indices(np.arange(10), 10, 0.0, rng)


def test_recency_weighted_indices_long_half_life_is_uniformish():
    from repro.serving import recency_weighted_indices
    rng = np.random.default_rng(1)
    idx = recency_weighted_indices(np.arange(1000), 1000, 1e9, rng)
    # Effectively uniform: every quartile is represented.
    assert (idx < 250).mean() > 0.15
    assert (idx >= 750).mean() < 0.35


def test_recency_weighted_indices_respects_partition():
    # Bootstrapping a partition only ever returns members of it: the
    # no-train/val-leakage property of the split-then-bootstrap order.
    from repro.serving import recency_weighted_indices
    rng = np.random.default_rng(2)
    part = np.array([3, 900, 901, 950, 999])
    idx = recency_weighted_indices(part, 1000, 25.0, rng)
    assert set(idx) <= set(part)
    assert idx.size == part.size


def test_retrain_worker_recency_sampling_tracks_drifted_tail(tmp_path):
    """Old rows teach y = x0 + x1, a drifted refresh teaches
    y = 5*(x0 + x1).  With a short half-life the retrained surrogate
    must follow the fresh regime instead of averaging the two."""
    from repro.nn import load_model
    from repro.runtime import DataCollector

    rng = np.random.default_rng(0)
    db = tmp_path / "drift.rh5"
    collector = DataCollector(db)
    x_old = rng.random((256, 2))
    y_old = x_old.sum(axis=1, keepdims=True)
    x_new = rng.random((128, 2))
    y_new = 5.0 * x_new.sum(axis=1, keepdims=True)
    for xi, yi in zip(x_old, y_old):
        collector.record("drift", (xi,), (yi,), 0.0)
    for xi, yi in zip(x_new, y_new):
        collector.record("drift", (xi,), (yi,), 0.0)
    collector.close()

    def build(xt, yt):
        return Sequential(Linear(2, 1, rng=np.random.default_rng(1)))

    def retrain(half_life):
        worker = RetrainWorker(seed=0)
        model_path = tmp_path / f"drift-{half_life}.rnm"
        save_model(build(None, None), model_path)
        worker.watch("drift", db, model_path, build=build,
                     trainer_kwargs=dict(lr=0.05, batch_size=64,
                                         max_epochs=300, patience=60),
                     recency_half_life=half_life)
        worker.retrain_now("drift")
        model = load_model(model_path)
        probe = np.array([[0.5, 0.5]])
        return float(model.forward_compiled(probe).ravel()[0])

    full_history = retrain(None)         # trained on the 2:1 mixture
    recent = retrain(32.0)               # dominated by the drifted tail
    # Drifted truth at the probe is 5.0; stationary truth is 1.0.
    assert abs(recent - 5.0) < 0.8
    assert abs(full_history - 5.0) > abs(recent - 5.0)
