"""Tier-1 smoke run of the compiled-training microbenchmark.

Runs ``benchmarks/bench_training_fastpath.py`` at tiny sizes and
validates the ``BENCH_training.json`` schema plus the headline
acceptance properties: gradient parity <= 1e-10, identical fixed-seed
early-stopping behavior on both paths, and a retrained surrogate whose
quality is unchanged by the fast path.  (The >= 3x geomean speedup is
asserted on the committed full-size baseline, not under CI load.)
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_training_fastpath.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_training_fastpath", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_training_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_training.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_training_fastpath/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    epochs = on_disk["epochs"]
    assert len(epochs) >= 3
    for row in epochs:
        assert set(row) >= {"shape", "benchmark", "arch", "batch_size",
                            "graph_ms", "compiled_ms", "speedup",
                            "grad_parity_max_abs", "headline", "category",
                            "compiled_active"}
        assert row["graph_ms"] > 0 and row["compiled_ms"] > 0
        assert row["speedup"] > 0
        # The acceptance bit: fast-path gradients match the graph.
        assert row["grad_parity_max_abs"] <= 1e-10
        # No silent graph fallback anywhere in the grid.
        assert row["compiled_active"]

    # The plan-IR lowerings: GRU/conv shapes must be present and hit
    # the compiled path even in quick mode (the CI smoke lane).
    seq = [r for r in epochs if r["category"] == "sequence"]
    assert {r["benchmark"] for r in seq} == {"gru", "conv1d"}
    assert on_disk["summary"]["sequence_compiled_active"] is True

    equivalence = on_disk["fit_equivalence"]
    assert len(equivalence) >= 1
    for row in equivalence:
        assert row["compiled_active"], \
            f"{row['shape']} fell back to the graph path"
        assert row["epochs_match"], \
            f"{row['shape']} early stopping diverged"
        assert row["max_val_loss_diff"] <= 1e-10

    retrain = on_disk["retrain_hot_swap"]
    assert retrain["graph"]["seconds"] > 0
    assert retrain["compiled"]["seconds"] > 0
    assert retrain["speedup"] > 0
    assert retrain["val_loss_diff"] <= 1e-10

    summary = on_disk["summary"]
    assert summary["grad_parity_max_abs"] <= 1e-10
    assert summary["early_stop_epochs_match"] is True
    assert summary["all_compiled_active"] is True
    assert summary["epoch_speedup_geomean"] > 0


def test_committed_training_baseline_meets_acceptance():
    """The checked-in full-size BENCH_training.json carries the PR's
    acceptance numbers: >= 3x geomean epoch speedup on the headline
    (Table IV deployment shape x Table V batch) grid with parity
    <= 1e-10 and identical early stopping."""
    baseline_path = REPO_ROOT / "BENCH_training.json"
    assert baseline_path.exists(), "commit BENCH_training.json baselines"
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == "bench_training_fastpath/v1"
    assert baseline["config"]["quick"] is False
    summary = baseline["summary"]
    assert summary["epoch_speedup_geomean"] >= 3.0
    assert summary["grad_parity_max_abs"] <= 1e-10
    assert summary["early_stop_epochs_match"] is True
    assert summary["retrain_hot_swap_speedup"] > 1.0
    # PR-5 acceptance: the GRU/Conv1d training lowerings hit the
    # compiled path with >= 2x on at least one recurrent shape.
    assert summary["sequence_compiled_active"] is True
    assert summary["recurrent_epoch_speedup_best"] >= 2.0
