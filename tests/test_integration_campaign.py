"""Cross-module integration: harnesses, nested NAS, full campaign.

These run scaled-down versions of the paper's A4 workflow; they verify
wiring and qualitative behaviour, not paper-scale numbers (the
benchmark harness under ``benchmarks/`` does that).
"""

import numpy as np
import pytest

from repro.apps.harness import (BinomialHarness, MiniWeatherHarness,
                                harness_for)
from repro.nn import Trainer
from repro.runtime import load_training_data
from repro.search import NestedSearch, arch_space_for
from repro.workflow import SearchCampaign


@pytest.fixture(scope="module")
def binomial_setup(tmp_path_factory):
    h = BinomialHarness(tmp_path_factory.mktemp("bin"), n_train=768,
                        n_test=192, n_steps=48)
    h.collect()
    (xt, yt), (xv, yv) = h.training_arrays()
    return h, (xt, yt), (xv, yv)


def test_collection_matches_kernel(binomial_setup):
    h, (xt, yt), (xv, yv) = binomial_setup
    x, y, times = load_training_data(h.db_path, "binomial")
    assert x.shape[1] == 5 and y.shape[1] == 1
    assert len(x) == h.n_train
    assert np.all(times > 0)
    # Stored outputs equal the kernel on stored inputs.
    from repro.apps.binomial.kernel import price_american
    np.testing.assert_allclose(y[:64, 0],
                               price_american(x[:64], n_steps=48),
                               atol=1e-9)


def test_trained_surrogate_deploys(binomial_setup):
    h, (xt, yt), (xv, yv) = binomial_setup
    build = h.make_builder(xt, yt)
    model = build({"hidden1_features": 96, "hidden2_features": 48})
    Trainer(model, lr=3e-3, batch_size=128, max_epochs=50,
            patience=15).fit(xt, yt, xv, yv)
    metrics = h.evaluate(model, repeats=2)
    assert metrics.speedup > 1.0          # surrogate must win end-to-end
    assert metrics.qoi_error < 2.0        # prices are O(10): small RMSE
    assert metrics.breakdown["inference"] > 0
    assert metrics.n_params == model.num_parameters()


def test_nested_search_produces_trials(binomial_setup):
    h, (xt, yt), (xv, yv) = binomial_setup
    build = h.make_builder(xt, yt)
    search = NestedSearch(arch_space_for("binomial"), build,
                          xt, yt, xv, yv, n_inner=2, max_epochs=8, seed=0)
    result = search.run(n_outer=4, n_init=2)
    assert len(result.trials) >= 2
    front = result.pareto_trials()
    assert 1 <= len(front) <= len(result.trials)
    best = result.best_by_error()
    assert best.val_error == min(t.val_error for t in result.trials)
    assert all(t.latency > 0 and t.n_params > 0 for t in result.trials)


def test_campaign_end_to_end(tmp_path):
    h = BinomialHarness(tmp_path, n_train=512, n_test=128, n_steps=32)
    campaign = SearchCampaign(h, n_outer=3, n_inner=2, max_epochs=6)
    result = campaign.run(deploy="pareto")
    assert result.deployments
    trial, metrics = result.fastest_deployment()
    assert metrics.speedup > 0
    assert metrics.benchmark == "binomial"


def test_miniweather_error_propagation(tmp_path):
    """Fig. 9 shape: pure-surrogate error grows; interleaving damps it."""
    h = MiniWeatherHarness(tmp_path, nx=32, nz=16, train_steps=100,
                           test_steps=20)
    h.collect()
    (xt, yt), (xv, yv) = h.training_arrays()
    build = h.make_builder(xt, yt)
    model = build({"conv1_kernel": 5, "conv1_channels": 8,
                   "conv2_kernel": 3})
    Trainer(model, lr=2e-3, batch_size=16, max_epochs=30,
            patience=10).fit(xt, yt, xv, yv)
    h.install_model(model)

    pure = h.trajectory_errors(lambda i: True, 12)
    inter = h.trajectory_errors(lambda i: i % 2 == 1, 12)
    assert pure[-1] > pure[0]                 # error accumulates
    assert pure[-1] / max(pure[0], 1e-12) > 3  # substantially
    assert inter[-1] < pure[-1]               # interleaving helps


def test_harness_for_dispatch(tmp_path):
    h = harness_for("bonds", tmp_path, n_train=64, n_test=32)
    assert h.name == "bonds"
    with pytest.raises(KeyError):
        harness_for("nonesuch", tmp_path)


def test_parallel_campaigns(tmp_path):
    """Two benchmark campaigns fan out on the workflow executor."""
    from repro.workflow import run_campaigns
    results = run_campaigns(
        ["binomial", "bonds"], tmp_path, max_workers=2,
        harness_kwargs={
            "binomial": dict(n_train=384, n_test=96, n_steps=32),
            "bonds": dict(n_train=384, n_test=96),
        }, n_outer=2, n_inner=1, max_epochs=4)
    assert set(results) == {"binomial", "bonds"}
    for name, result in results.items():
        assert result.benchmark == name
        assert result.deployments
