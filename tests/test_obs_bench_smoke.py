"""Tier-1 smoke run of the observability benchmark.

Runs ``benchmarks/bench_observability.py`` at tiny sizes and validates
the ``BENCH_observability.json`` schema plus the acceptance
properties: default-on instrumentation within the <= 3% overhead
bound (the instrumented view — wall-clock deltas are reported but too
noisy to assert on shared machines), the profile hook covering the
compiled forward, and bit-identical stream replay under a fixed seed.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_observability.py"

pytestmark = pytest.mark.obs


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_observability", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_observability_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_observability.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_observability/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    overhead = on_disk["overhead"]
    assert overhead["within_bound"], (
        f"instrumented overhead {overhead['overhead_fraction']:.2%} "
        f"exceeds {overhead['bound']:.0%}")
    assert overhead["obs_us_per_invocation"] >= 0
    assert overhead["per_invocation_us_obs_off"] > 0
    assert overhead["seconds_obs_off"] > 0

    costs = on_disk["hot_path_costs"]
    assert 0 < costs["histogram_observe_ns"] < 50_000
    assert 0 < costs["trace_fold_ns"] < 50_000

    profile = on_disk["profile_hook"]
    assert profile["compiled"]
    assert profile["steps_cover_total"]
    assert len(profile["steps"]) >= 1

    determinism = on_disk["stream_determinism"]
    assert determinism["bit_identical"]
    assert determinism["records_replayed"] == determinism["invocations"]

    stream = on_disk["stream_overhead"]
    assert stream["records"] > 0

    summary = on_disk["summary"]
    assert summary["within_bound"]
    assert summary["stream_bit_identical"]
    assert summary["profile_compiled"]
