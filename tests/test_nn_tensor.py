"""Autograd core: gradients checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn.tensor import unbroadcast


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_grad(op, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape) + 2.5  # keep away from log/sqrt singularities

    def scalar(xv):
        return float(op(Tensor(xv)).sum().numpy())

    t = Tensor(x0.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numerical_grad(scalar, x0.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


@pytest.mark.parametrize("op", [
    lambda t: t * 3.0 + 1.0,
    lambda t: t * t,
    lambda t: t / 2.0,
    lambda t: 2.0 / t,
    lambda t: -t,
    lambda t: t ** 3,
    lambda t: t.exp(),
    lambda t: t.log(),
    lambda t: t.sqrt(),
    lambda t: t.tanh(),
    lambda t: t.sigmoid(),
    lambda t: t.relu(),
    lambda t: t.leaky_relu(0.1),
    lambda t: t.abs(),
    lambda t: t.clip(1.0, 3.0),
], ids=["affine", "square", "div", "rdiv", "neg", "pow", "exp", "log",
        "sqrt", "tanh", "sigmoid", "relu", "leaky", "abs", "clip"])
def test_elementwise_grads(op):
    check_grad(op, (3, 4))


def test_matmul_grad():
    rng = np.random.default_rng(1)
    a0 = rng.normal(size=(4, 3))
    b0 = rng.normal(size=(3, 5))
    a = Tensor(a0.copy(), requires_grad=True)
    b = Tensor(b0.copy(), requires_grad=True)
    (a @ b).sum().backward()
    ga = numerical_grad(lambda av: float((av @ b0).sum()), a0.copy())
    gb = numerical_grad(lambda bv: float((a0 @ bv).sum()), b0.copy())
    np.testing.assert_allclose(a.grad, ga, atol=1e-6)
    np.testing.assert_allclose(b.grad, gb, atol=1e-6)


def test_matmul_vector_cases():
    rng = np.random.default_rng(2)
    m = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    v = Tensor(rng.normal(size=4), requires_grad=True)
    (m @ v).sum().backward()
    assert m.grad.shape == (3, 4)
    assert v.grad.shape == (4,)

    u = Tensor(rng.normal(size=3), requires_grad=True)
    m2 = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    (u @ m2).sum().backward()
    assert u.grad.shape == (3,)
    assert m2.grad.shape == (3, 4)


def test_batched_matmul_grad_shapes():
    rng = np.random.default_rng(3)
    a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (2, 3, 4)
    assert b.grad.shape == (2, 4, 5)


def test_broadcast_add_grads():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones((1, 4)), requires_grad=True)
    c = Tensor(np.ones(4), requires_grad=True)
    (a + b + c).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 4)))
    np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))
    np.testing.assert_allclose(c.grad, np.full(4, 3.0))


def test_sum_mean_axis_grads():
    x0 = np.arange(12.0).reshape(3, 4)
    t = Tensor(x0.copy(), requires_grad=True)
    (t.sum(axis=0) * Tensor(np.arange(4.0))).sum().backward()
    np.testing.assert_allclose(t.grad, np.tile(np.arange(4.0), (3, 1)))

    t2 = Tensor(x0.copy(), requires_grad=True)
    t2.mean(axis=1).sum().backward()
    np.testing.assert_allclose(t2.grad, np.full((3, 4), 0.25))


def test_max_grad_routes_to_argmax():
    t = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
    t.max(axis=1).sum().backward()
    np.testing.assert_allclose(t.grad, [[0, 1], [1, 0]])


def test_max_grad_splits_ties():
    t = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
    t.max().backward()
    np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])


def test_getitem_grad_scatter():
    t = Tensor(np.zeros(5), requires_grad=True)
    t[1:4].sum().backward()
    np.testing.assert_allclose(t.grad, [0, 1, 1, 1, 0])


def test_getitem_repeated_index_accumulates():
    t = Tensor(np.zeros(3), requires_grad=True)
    idx = np.array([0, 0, 2])
    t[idx].sum().backward()
    np.testing.assert_allclose(t.grad, [2, 0, 1])


def test_concatenate_and_stack_grads():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.ones(2), requires_grad=True)
    Tensor.concatenate([a, b]).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(3))
    np.testing.assert_allclose(b.grad, np.ones(2))

    c = Tensor(np.ones((2, 2)), requires_grad=True)
    d = Tensor(np.ones((2, 2)), requires_grad=True)
    (Tensor.stack([c, d], axis=0) * 2.0).sum().backward()
    np.testing.assert_allclose(c.grad, np.full((2, 2), 2.0))


def test_reshape_transpose_grads():
    x0 = np.arange(6.0).reshape(2, 3)
    t = Tensor(x0.copy(), requires_grad=True)
    t.reshape(3, 2).transpose().sum().backward()
    np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    t2 = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
    t2.transpose(2, 0, 1).sum().backward()
    assert t2.grad.shape == (2, 3, 4)


def test_pad_grad():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    t.pad([(1, 1), (0, 2)]).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones((2, 2)))


def test_diamond_graph_accumulates():
    # y = x*x + x  — gradient 2x + 1; x used twice in the graph.
    t = Tensor(np.array([3.0]), requires_grad=True)
    (t * t + t).sum().backward()
    np.testing.assert_allclose(t.grad, [7.0])


def test_backward_requires_grad():
    t = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        t.backward()


def test_backward_shape_check():
    t = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(ValueError):
        (t * 2).backward(np.ones(4))


def test_no_grad_context():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2
        assert not out.requires_grad
    assert is_grad_enabled()


def test_detach_cuts_graph():
    t = Tensor(np.ones(3), requires_grad=True)
    d = (t * 2).detach()
    assert not d.requires_grad
    out = d * 3
    assert not out.requires_grad


def test_grad_accumulates_across_backwards():
    t = Tensor(np.ones(2), requires_grad=True)
    (t * 2).sum().backward()
    (t * 3).sum().backward()
    np.testing.assert_allclose(t.grad, [5.0, 5.0])
    t.zero_grad()
    assert t.grad is None


@given(st.lists(st.integers(1, 5), min_size=1, max_size=3),
       st.data())
@settings(max_examples=40, deadline=None)
def test_unbroadcast_inverts_broadcast(shape, data):
    """Property: unbroadcast(broadcast(g)) sums to the original shape."""
    shape = tuple(shape)
    # Build a broadcastable source shape by degrading random axes to 1.
    src = tuple(1 if data.draw(st.booleans()) else s for s in shape)
    grad = np.ones((2,) * data.draw(st.integers(0, 1)) + shape)
    out = unbroadcast(grad, src)
    assert out.shape == src
    assert out.sum() == pytest.approx(grad.sum())


@given(st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_mul_grad_property(n, m):
    """Property: d(sum(a*b))/da == b for arbitrary shapes."""
    rng = np.random.default_rng(n * 10 + m)
    a0 = rng.normal(size=(n, m))
    b0 = rng.normal(size=(n, m))
    a = Tensor(a0, requires_grad=True)
    (a * Tensor(b0)).sum().backward()
    np.testing.assert_allclose(a.grad, b0)
