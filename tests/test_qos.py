"""Online QoS subsystem: monitors, policies, region integration."""

import numpy as np
import pytest

from repro.api import approx_ml
from repro.directives import parse_directive
from repro.nn import Linear, Sequential, save_model
from repro.qos import (CompositePolicy, DriftBurstPolicy, ErrorBudgetPolicy,
                       EwmaStats, P2Quantile, PageHinkley,
                       PeriodicRecalibrationPolicy, QoSController,
                       RegionErrorStats, ShadowValidator, ThresholdPolicy)
from repro.runtime import (EventLog, ExecutionPath, Phase, decide_path,
                           load_training_data)

# ----------------------------------------------------------------------
# Rolling statistics
# ----------------------------------------------------------------------

def test_ewma_seeds_and_tracks():
    s = EwmaStats(alpha=0.5)
    s.update(1.0)
    assert s.mean == 1.0 and s.var == 0.0
    for _ in range(50):
        s.update(3.0)
    assert s.mean == pytest.approx(3.0, abs=1e-6)
    assert s.std < 0.1


def test_p2_quantile_approximates_empirical():
    rng = np.random.default_rng(0)
    stream = rng.normal(size=5000)
    sketch = P2Quantile(0.9)
    for v in stream:
        sketch.update(v)
    exact = float(np.quantile(stream, 0.9))
    assert abs(sketch.value - exact) < 0.1


def test_p2_quantile_small_stream_falls_back():
    sketch = P2Quantile(0.5)
    for v in (1.0, 2.0, 3.0):
        sketch.update(v)
    assert sketch.value == pytest.approx(2.0)


def test_page_hinkley_fires_on_shift_not_on_stationary():
    det = PageHinkley(delta=0.005, threshold=0.2, burn_in=5)
    rng = np.random.default_rng(1)
    fired = [det.update(v) for v in 0.05 + 0.01 * rng.random(100)]
    assert not any(fired)
    fired = [det.update(v) for v in 0.5 + 0.01 * rng.random(20)]
    assert any(fired)


def test_region_error_stats_snapshot():
    stats = RegionErrorStats()
    for v in (0.1, 0.2, 0.3):
        stats.update(v)
    snap = stats.snapshot()
    assert snap["count"] == 3
    assert snap["worst"] == pytest.approx(0.3)
    assert snap["lifetime_mean"] == pytest.approx(0.2)


# ----------------------------------------------------------------------
# Shadow sampling determinism
# ----------------------------------------------------------------------

def test_shadow_sampling_deterministic_under_seed():
    a = ShadowValidator(rate=0.3, seed=42)
    b = ShadowValidator(rate=0.3, seed=42)
    seq_a = [a.should_sample() for _ in range(200)]
    seq_b = [b.should_sample() for _ in range(200)]
    assert seq_a == seq_b
    assert 0 < sum(seq_a) < 200
    c = ShadowValidator(rate=0.3, seed=43)
    assert [c.should_sample() for _ in range(200)] != seq_a
    a.reset()
    assert [a.should_sample() for _ in range(200)] == seq_a


def test_shadow_rate_extremes():
    always = ShadowValidator(rate=1.0, seed=0)
    never = ShadowValidator(rate=0.0, seed=0)
    assert all(always.should_sample() for _ in range(10))
    assert not any(never.should_sample() for _ in range(10))
    assert always.sampled == 10 and never.sampled == 0


def test_shadow_error_metrics():
    v = ShadowValidator(metric="relative")
    assert v.error([1.0, 0.0], [1.0, 0.0]) == pytest.approx(0.0)
    assert v.error([2.0, 0.0], [1.0, 0.0]) == pytest.approx(1.0)
    rmse = ShadowValidator(metric="rmse")
    assert rmse.error([1.0, 3.0], [0.0, 0.0]) == pytest.approx(
        np.sqrt(5.0))
    with pytest.raises(ValueError):
        ShadowValidator(metric="nope")


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

def _fed(policy, errors, name="r"):
    """Feed errors through fresh stats; return the stats object."""
    stats = RegionErrorStats(alpha=0.5)
    for e in errors:
        stats.update(e)
        policy.observe(name, e, stats)
    return stats


def test_threshold_policy_trips_and_recovers():
    policy = ThresholdPolicy(high=0.1, low=0.02, probe_interval=4,
                             warmup=0)
    stats = _fed(policy, [0.5, 0.5])
    action = policy.decide("r", stats)
    assert action.path == ExecutionPath.ACCURATE
    assert policy.trips == 1
    # Errors drop below low -> recovery, inference resumes.
    _fed(policy, [0.001] * 8)
    assert policy.recoveries == 1
    stats2 = RegionErrorStats()
    stats2.update(0.001)
    assert policy.decide("r", stats2) is None


def test_threshold_policy_hysteresis_no_flapping():
    """Estimates oscillating inside (low, high) must not flip the path."""
    policy = ThresholdPolicy(high=0.1, low=0.02, probe_interval=1,
                             warmup=0)
    # Trip once with a high error...
    stats = RegionErrorStats(alpha=0.5)
    stats.update(0.5)
    policy.observe("r", 0.5, stats)
    assert policy.trips == 1
    # ...then feed mid-band errors: inside the hysteresis band nothing
    # transitions, in either direction.
    for e in (0.05, 0.07, 0.04, 0.06) * 10:
        stats.update(e)
        policy.observe("r", e, stats)
    assert policy.trips == 1
    assert policy.recoveries == 0
    assert policy.decide("r", stats).path in (ExecutionPath.ACCURATE, None) \
        or policy.decide("r", stats).force_shadow


def test_threshold_policy_probes_while_tripped():
    policy = ThresholdPolicy(high=0.1, low=0.02, probe_interval=3,
                             warmup=0)
    stats = _fed(policy, [0.9])
    kinds = []
    for _ in range(9):
        action = policy.decide("r", stats)
        kinds.append("probe" if action.force_shadow else action.path)
    assert kinds.count("probe") == 3          # every 3rd decision
    probe = [a for a in (policy.decide("r", stats) for _ in range(3))
             if a.force_shadow][0]
    assert probe.commit == "accurate"


def test_threshold_policy_warmup_probes_first():
    policy = ThresholdPolicy(high=0.1, warmup=2)
    empty = RegionErrorStats()
    action = policy.decide("r", empty)
    assert action.force_shadow and action.commit == "accurate"


def test_error_budget_policy_caps_mean_charge():
    policy = ErrorBudgetPolicy(budget=0.1, headroom=1.0, warmup=1)
    stats = RegionErrorStats(alpha=0.5)
    stats.update(0.4)                        # estimate: 0.4 per inference
    decisions = [policy.decide("r", stats) for _ in range(40)]
    st = policy._state["r"]
    # Mean admitted charge stays within the budget.
    assert st["spent"] / st["decisions"] <= 0.1
    assert st["denied"] > st["inferred"]     # high error: mostly accurate
    accurate = [d for d in decisions
                if d is not None and d.path == ExecutionPath.ACCURATE]
    assert accurate, "high estimate must deny some inferences"


def test_error_budget_policy_admits_when_cheap():
    policy = ErrorBudgetPolicy(budget=0.1, headroom=1.0, warmup=1)
    stats = RegionErrorStats(alpha=0.5)
    stats.update(0.001)
    assert all(policy.decide("r", stats) is None for _ in range(20))


def test_drift_burst_policy_bursts_after_detection():
    policy = DriftBurstPolicy(burst=5, threshold=0.1, delta=0.0, burn_in=2)
    stats = RegionErrorStats(alpha=0.5)
    for e in [0.01] * 6 + [0.8] * 4:
        stats.update(e)
        policy.observe("r", e, stats)
    assert policy.drifts == 1
    overrides = [policy.decide("r", stats) for _ in range(8)]
    collects = [a for a in overrides
                if a is not None and a.path == ExecutionPath.COLLECT]
    assert len(collects) == 5                # exactly one burst


def test_periodic_recalibration_policy_cycles():
    policy = PeriodicRecalibrationPolicy(period=4, n_accurate=1)
    stats = RegionErrorStats()
    paths = [getattr(policy.decide("r", stats), "path", None)
             for _ in range(8)]
    assert paths == [ExecutionPath.ACCURATE, None, None, None] * 2


def test_composite_policy_first_override_wins():
    policy = CompositePolicy(
        PeriodicRecalibrationPolicy(period=2, n_accurate=1),
        ThresholdPolicy(high=0.01, warmup=0))
    stats = _fed(policy, [0.9])              # threshold is tripped
    first = policy.decide("r", stats)
    second = policy.decide("r", stats)
    assert first.reason == "recalibration"
    assert second.reason in ("threshold", "probe")


# ----------------------------------------------------------------------
# decide_path override semantics
# ----------------------------------------------------------------------

def ml(src: str):
    return parse_directive(f"#pragma approx {src}")


def test_decide_path_override_applies_only_to_infer():
    node = ml('ml(predicated:flag) in(a) db("d") model("m") if(step < 5)')
    env = {"flag": True, "step": 3}
    assert decide_path(node, env, override=ExecutionPath.COLLECT) == \
        ExecutionPath.COLLECT
    # A false if-clause gates approximation entirely: no override.
    env_gated = {"flag": True, "step": 9}
    assert decide_path(node, env_gated, override=ExecutionPath.COLLECT) == \
        ExecutionPath.ACCURATE
    # predicated-false means the app asked for collection: no override.
    env_collect = {"flag": False, "step": 3}
    assert decide_path(node, env_collect, override=ExecutionPath.INFER) == \
        ExecutionPath.COLLECT


# ----------------------------------------------------------------------
# Region integration
# ----------------------------------------------------------------------

def make_region(tmp_path, qos, scale=1.0, weight=1.0):
    """A 2->1 region whose accurate kernel computes scale * row-sum and
    whose model predicts weight * row-sum."""
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, tmp_path / "m.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("{tmp_path}/d.rh5") model("{tmp_path}/m.rnm")
"""
    log = EventLog()

    @approx_ml(src, name="reg", event_log=log, qos=qos)
    def region(x, y, N, use_model=False):
        y[:N] = x[:N].sum(axis=1) * scale

    return region, log


def test_region_without_qos_records_no_shadow(tmp_path):
    region, log = make_region(tmp_path, qos=None)
    x = np.ones((3, 2))
    y = np.empty(3)
    region(x, y, 3, use_model=True)
    np.testing.assert_allclose(y, 2.0)
    assert all(Phase.SHADOW not in r.times for r in log.records)


def test_shadow_commit_surrogate_keeps_deployment_output(tmp_path):
    ctrl = QoSController(shadow_rate=1.0, seed=0, commit="surrogate")
    region, log = make_region(tmp_path, ctrl, scale=2.0)  # model off by 2x
    x = np.ones((3, 2))
    y = np.empty(3)
    region(x, y, 3, use_model=True)
    np.testing.assert_allclose(y, 2.0)       # surrogate result committed
    stats = ctrl.stats_for("reg")
    assert stats.count == 1
    assert stats.last == pytest.approx(0.5)  # |2-4|/4 relative
    rec = log.records[-1]
    assert rec.path == "infer"
    assert rec.times[Phase.SHADOW] > 0
    assert Phase.ACCURATE not in rec.times


def test_shadow_commit_accurate_corrects_state(tmp_path):
    ctrl = QoSController(shadow_rate=1.0, seed=0, commit="accurate")
    region, _log = make_region(tmp_path, ctrl, scale=2.0)
    x = np.ones((3, 2))
    y = np.empty(3)
    region(x, y, 3, use_model=True)
    np.testing.assert_allclose(y, 4.0)       # accurate result stays
    assert ctrl.stats_for("reg").count == 1


def test_shadow_sampling_schedule_matches_validator(tmp_path):
    ctrl = QoSController(shadow_rate=0.5, seed=11)
    region, log = make_region(tmp_path, ctrl)
    reference = ShadowValidator(rate=0.5, seed=11)
    expected = [reference.should_sample() for _ in range(30)]
    for _ in range(30):
        x = np.ones((2, 2))
        y = np.empty(2)
        region(x, y, 2, use_model=True)
    shadowed = [Phase.SHADOW in r.times for r in log.records]
    assert shadowed == expected


def test_drift_burst_writes_new_rows_to_db(tmp_path):
    policy = DriftBurstPolicy(burst=3, threshold=0.05, delta=0.0, burn_in=2)
    ctrl = QoSController(policy=policy, shadow_rate=1.0, seed=0)
    region, _log = make_region(tmp_path, ctrl, scale=1.0)
    rng = np.random.default_rng(2)
    for _ in range(6):                       # in-distribution: near-zero err
        x = rng.normal(size=(4, 2))
        y = np.empty(4)
        region(x, y, 4, use_model=True)
    assert not (tmp_path / "d.rh5").exists()
    # Drift: the accurate semantics change under the region.
    region.func = lambda x, y, N, use_model=False: \
        y.__setitem__(slice(None, N), x[:N].sum(axis=1) * 3.0)
    for _ in range(12):
        x = rng.normal(size=(4, 2))
        y = np.empty(4)
        region(x, y, 4, use_model=True)
    region.flush()
    assert policy.drifts >= 1
    xs, ys, _t = load_training_data(tmp_path / "d.rh5", "reg")
    assert len(xs) == 3 * 4                  # one burst of 3 invocations
    np.testing.assert_allclose(ys.ravel(), xs.sum(axis=1) * 3.0)
    snap = ctrl.snapshot()
    assert snap["telemetry"]["reg"]["final_paths"]["collect"] == 3


def test_threshold_policy_region_no_flapping(tmp_path):
    """End-to-end hysteresis: once tripped on a bad model, the region
    stays on the accurate path (plus probes) — the path sequence has a
    single infer->accurate transition, not a flap."""
    policy = ThresholdPolicy(high=0.1, low=0.01, probe_interval=4,
                             warmup=1)
    ctrl = QoSController(policy=policy, shadow_rate=0.2, seed=3)
    region, log = make_region(tmp_path, ctrl, scale=2.0)   # err 0.5 always
    for _ in range(40):
        x = np.ones((2, 2))
        y = np.empty(2)
        region(x, y, 2, use_model=True)
    assert policy.trips == 1
    assert policy.recoveries == 0
    # After the trip, nothing runs as trusted inference: every record is
    # accurate or a shadow-validated probe.
    tripped_at = next(i for i, r in enumerate(log.records)
                      if r.path == "accurate")
    for rec in log.records[tripped_at:]:
        assert rec.path == "accurate" or Phase.SHADOW in rec.times


def test_telemetry_summary_and_export(tmp_path):
    ctrl = QoSController(shadow_rate=1.0, seed=0)
    region, log = make_region(tmp_path, ctrl)
    for _ in range(4):
        x = np.ones((2, 2))
        y = np.empty(2)
        region(x, y, 2, use_model=True)
    out = ctrl.telemetry.export(tmp_path / "telemetry.json", log)
    import json
    data = json.loads(out.read_text())
    reg = data["regions"]["reg"]
    assert reg["invocations"] == 4
    assert reg["shadow_invocations"] == 4
    assert data["phases"]["paths"]["infer"]["count"] == 4
    assert data["phases"]["validation_overhead"] > 0


def test_qos_snapshot_json_clean(tmp_path):
    import json
    policy = CompositePolicy(ThresholdPolicy(high=0.1),
                             DriftBurstPolicy())
    ctrl = QoSController(policy=policy, shadow_rate=0.5, seed=0)
    region, _log = make_region(tmp_path, ctrl)
    for _ in range(8):
        x = np.ones((2, 2))
        y = np.empty(2)
        region(x, y, 2, use_model=True)
    snap = ctrl.snapshot()
    assert json.loads(json.dumps(snap)) == snap


# ----------------------------------------------------------------------
# Harness deployment path
# ----------------------------------------------------------------------

def test_deploy_with_qos_metrics(tmp_path):
    from repro.apps.harness import MiniBudeHarness
    from repro.search.builders import builder_for

    harness = MiniBudeHarness(tmp_path, n_train=32, n_test=64,
                              deploy_chunk=16)
    model = builder_for("minibude")(
        {"num_hidden_layers": 2, "hidden1_size": 16,
         "feature_multiplier": 0.5}, seed=0)
    ctrl = QoSController(shadow_rate=0.5, seed=0)
    metrics = harness.deploy_with_qos(model, ctrl)
    assert metrics.benchmark == "minibude"
    assert metrics.deployed_time > 0
    assert metrics.accurate_time > 0
    assert 0 < metrics.validation_overhead < 1
    assert metrics.shadow_invocations >= 1
    assert metrics.path_counts.get("infer", 0) == 4      # 64 / 16
    assert harness.deploy_region.config.qos is None      # detached
    assert metrics.qos["regions"]["minibude"]["count"] >= 1
