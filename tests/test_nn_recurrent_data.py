"""GRU layers, dataset/dataloader, and MiniWeather scenarios."""

import numpy as np
import pytest

from repro import nn
from repro.apps.miniweather import kernel as mw
from repro.nn import (GRU, GRUCell, ArrayDataset, DataLoader, H5Dataset,
                      Tensor, Trainer, load_model, save_model)
from repro.runtime import DataCollector

# ----------------------------------------------------------------------
# GRU
# ----------------------------------------------------------------------

def test_gru_cell_shapes_and_gating():
    cell = GRUCell(4, 8, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(3, 4))
    h1 = cell(x)
    assert h1.shape == (3, 8)
    h2 = cell(x, h1)
    assert h2.shape == (3, 8)
    # Hidden state is bounded by the tanh/σ gating.
    assert np.all(np.abs(h2.numpy()) <= 1.0 + 1e-9)


def test_gru_sequence_shapes():
    gru = GRU(3, 6, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(2, 5, 3))
    last = gru(Tensor(x))
    assert last.shape == (2, 6)
    gru_seq = GRU(3, 6, return_sequence=True, rng=np.random.default_rng(0))
    seq = gru_seq(Tensor(x))
    assert seq.shape == (2, 5, 6)
    np.testing.assert_allclose(seq.numpy()[:, -1], last.numpy(), atol=1e-12)


def test_gru_rejects_wrong_rank():
    gru = GRU(3, 4)
    with pytest.raises(ValueError):
        gru(Tensor(np.zeros((2, 3))))


def test_gru_gradients_flow():
    gru = GRU(2, 4, rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 2)),
               requires_grad=True)
    gru(x).sum().backward()
    assert x.grad is not None and np.any(x.grad != 0)
    assert all(p.grad is not None for p in gru.parameters())


def test_gru_learns_running_sum():
    """A GRU can learn to accumulate a short sequence (sanity check that
    backprop-through-time works end to end)."""
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, size=(400, 4, 1))
    y = x.sum(axis=1)
    model = nn.Sequential(GRU(1, 12, rng=rng), nn.Linear(12, 1, rng=rng))
    trainer = Trainer(model, lr=2e-2, batch_size=64, max_epochs=50,
                      patience=50)
    result = trainer.fit(x[:320], y[:320], x[320:], y[320:])
    assert result.best_val_loss < 0.05


def test_gru_serialization_roundtrip(tmp_path):
    model = nn.Sequential(GRU(2, 5, rng=np.random.default_rng(0)),
                          nn.Linear(5, 1, rng=np.random.default_rng(1)))
    path = tmp_path / "gru.rnm"
    save_model(model, path)
    loaded = load_model(path)
    x = np.random.default_rng(2).normal(size=(3, 6, 2))
    np.testing.assert_allclose(loaded(Tensor(x)).numpy(),
                               model(Tensor(x)).numpy(), atol=1e-12)


# ----------------------------------------------------------------------
# Datasets / DataLoader
# ----------------------------------------------------------------------

def test_array_dataset_indexing():
    ds = ArrayDataset(np.arange(10).reshape(5, 2), np.arange(5))
    assert len(ds) == 5
    xb, yb = ds[np.array([0, 2])]
    np.testing.assert_array_equal(yb, [0, 2])
    with pytest.raises(ValueError):
        ArrayDataset(np.zeros((3, 1)), np.zeros(4))


def test_h5_dataset_reads_collection(tmp_path):
    db = tmp_path / "d.rh5"
    coll = DataCollector(db)
    coll.record("reg", np.ones((4, 3)), np.zeros((4, 1)), 0.25)
    coll.close()
    ds = H5Dataset(db, "reg")
    assert len(ds) == 4
    assert ds.x.shape == (4, 3)
    assert ds.mean_region_seconds == pytest.approx(0.25)


def test_dataloader_covers_all_batches():
    ds = ArrayDataset(np.arange(23)[:, None].astype(float),
                      np.arange(23).astype(float))
    loader = DataLoader(ds, batch_size=5, shuffle=True, seed=0)
    assert len(loader) == 5
    seen = []
    for xb, yb in loader:
        assert len(xb) <= 5
        seen.extend(yb.tolist())
    assert sorted(seen) == list(range(23))


def test_dataloader_drop_last():
    ds = ArrayDataset(np.zeros((23, 1)), np.zeros(23))
    loader = DataLoader(ds, batch_size=5, drop_last=True)
    assert len(loader) == 4
    assert sum(len(xb) for xb, _ in loader) == 20
    with pytest.raises(ValueError):
        DataLoader(ds, batch_size=0)


# ----------------------------------------------------------------------
# MiniWeather scenarios
# ----------------------------------------------------------------------

def test_scenario_registry():
    assert set(mw.SCENARIOS) == {"thermal", "collision", "gravity_wave"}


def test_colliding_thermals_structure():
    cfg = mw.WeatherConfig(nx=32, nz=16)
    st = mw.init_colliding_thermals(cfg, amplitude=8.0)
    # Warm anomaly below, cold above.
    lower = st.q[3][: cfg.nz // 2]
    upper = st.q[3][cfg.nz // 2:]
    assert lower.max() > 0 and upper.min() < 0


def test_colliding_thermals_stable_run():
    cfg = mw.WeatherConfig(nx=32, nz=16)
    st = mw.init_colliding_thermals(cfg, amplitude=8.0)
    dt = 0.8 * mw.CFL * min(cfg.dx, cfg.dz) / mw.max_wave_speed(st)
    mw.run(st, 200, dt=dt)
    assert np.all(np.isfinite(st.q))


def test_gravity_wave_advects():
    cfg = mw.WeatherConfig(nx=32, nz=16)
    st = mw.init_gravity_wave(cfg, amplitude=2.0, u0=15.0)
    assert np.all(st.q[1] > 0)           # uniform drift imposed
    q0 = st.q[3].copy()
    dt = 0.8 * mw.CFL * min(cfg.dx, cfg.dz) / mw.max_wave_speed(st)
    mw.run(st, 100, dt=dt)
    assert np.all(np.isfinite(st.q))
    # Pattern evolves (advection) but remains bounded.
    assert not np.allclose(st.q[3], q0)
    assert np.abs(st.q[3]).max() < 10 * np.abs(q0).max() + 1.0
