"""Descriptor-cache correctness and multi-region databases."""

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.runtime import EventLog, load_training_data

DIRECTIVES = """
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:flag) in(x) out(y) db("{db}") model("{model}")
"""


def make_region(db, model, log=None):
    @approx_ml(DIRECTIVES.format(db=db, model=model), event_log=log)
    def region(x, y, N, flag=False):
        y[:N] = x[:N].sum(axis=1)

    return region


def identity_model(path):
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[1.0, 1.0]])
    model[0].bias.data = np.array([0.0])
    save_model(model, path)


def test_cache_reuses_descriptors_for_same_buffer(tmp_path):
    region = make_region(tmp_path / "d.rh5", tmp_path / "m.rnm")
    identity_model(tmp_path / "m.rnm")
    x = np.random.default_rng(0).normal(size=(8, 2))
    y = np.zeros(8)
    for _ in range(5):
        region(x, y, 8, flag=True)
    np.testing.assert_allclose(y, x.sum(axis=1), atol=1e-12)
    # One cached entry per (map, direction) after repeated invocations.
    assert len(region._map_cache) == 2


def test_cache_sees_fresh_data_in_same_buffer(tmp_path):
    """Views alias the buffer: new data must flow through cached maps."""
    region = make_region(tmp_path / "d.rh5", tmp_path / "m.rnm")
    identity_model(tmp_path / "m.rnm")
    x = np.zeros((4, 2))
    y = np.zeros(4)
    region(x, y, 4, flag=True)
    np.testing.assert_allclose(y, np.zeros(4), atol=1e-12)
    x[:] = 3.0                         # mutate in place
    region(x, y, 4, flag=True)
    np.testing.assert_allclose(y, np.full(4, 6.0), atol=1e-12)


def test_cache_invalidated_by_new_array(tmp_path):
    region = make_region(tmp_path / "d.rh5", tmp_path / "m.rnm")
    identity_model(tmp_path / "m.rnm")
    y = np.zeros(4)
    a = np.ones((4, 2))
    b = np.full((4, 2), 2.0)
    region(a, y, 4, flag=True)
    np.testing.assert_allclose(y, np.full(4, 2.0), atol=1e-12)
    region(b, y, 4, flag=True)         # different buffer, same shape
    np.testing.assert_allclose(y, np.full(4, 4.0), atol=1e-12)


def test_cache_invalidated_by_changed_extent(tmp_path):
    region = make_region(tmp_path / "d.rh5", tmp_path / "m.rnm")
    identity_model(tmp_path / "m.rnm")
    x = np.arange(16.0).reshape(8, 2)
    y = np.zeros(8)
    region(x, y, 8, flag=True)
    y2 = np.zeros(8)
    region(x, y2, 4, flag=True)        # N shrinks: only 4 entries written
    np.testing.assert_allclose(y2[:4], x[:4].sum(axis=1), atol=1e-12)
    assert y2[4:].sum() == 0.0


def test_two_regions_share_one_database(tmp_path):
    db = tmp_path / "shared.rh5"
    log = EventLog()

    @approx_ml(DIRECTIVES.format(db=db, model=tmp_path / "a.rnm"),
               name="alpha", event_log=log)
    def alpha(x, y, N, flag=False):
        y[:N] = x[:N].sum(axis=1)

    @approx_ml(DIRECTIVES.format(db=db, model=tmp_path / "b.rnm"),
               name="beta", event_log=log)
    def beta(x, y, N, flag=False):
        y[:N] = x[:N].prod(axis=1)

    x = np.random.default_rng(1).normal(size=(6, 2))
    alpha(x, np.zeros(6), 6)
    alpha.flush()
    beta(x, np.zeros(6), 6)
    beta.flush()

    xa, ya, _ = load_training_data(db, "alpha")
    xb, yb, _ = load_training_data(db, "beta")
    np.testing.assert_allclose(ya[:, 0], x.sum(axis=1), atol=1e-12)
    np.testing.assert_allclose(yb[:, 0], x.prod(axis=1), atol=1e-12)


def test_region_repr_and_flush_idempotent(tmp_path):
    region = make_region(tmp_path / "d.rh5", tmp_path / "m.rnm")
    assert "region" in repr(region)
    region(np.ones((3, 2)), np.zeros(3), 3)
    region.flush()
    region.flush()
    region.close()
    region.close()
