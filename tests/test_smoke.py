"""End-to-end smoke: Fig. 2 stencil example through the full bridge."""

import numpy as np

from repro.bridge import TensorFunctor, SweepRange, concretize
from repro.directives import parse_directive, FunctorDecl


def test_fig2_stencil_roundtrip():
    N, M = 8, 9
    t = np.arange(N * M, dtype=np.float64).reshape(N, M)
    tnew = np.zeros_like(t)

    ifnctr = TensorFunctor.parse(
        "#pragma approx tensor functor(ifnctr: "
        "[i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))")
    ofnctr = TensorFunctor.parse(
        "#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))")

    cmap = concretize(ifnctr, t, [SweepRange(1, N - 1), SweepRange(1, M - 1)])
    x = cmap.gather()
    assert x.shape == (N - 2, M - 2, 5)
    # Check the 5-point stencil at (i=1, j=1): up, down, left, center, right.
    np.testing.assert_allclose(
        x[0, 0], [t[0, 1], t[2, 1], t[1, 0], t[1, 1], t[1, 2]])
    # interior point
    np.testing.assert_allclose(
        x[3, 4], [t[3, 5], t[5, 5], t[4, 4], t[4, 5], t[4, 6]])

    omap = concretize(ofnctr, tnew, [SweepRange(1, N - 1), SweepRange(1, M - 1)],
                      writable=True)
    result = np.arange((N - 2) * (M - 2), dtype=np.float64).reshape(N - 2, M - 2, 1)
    omap.scatter(result)
    np.testing.assert_allclose(tnew[1:N - 1, 1:M - 1], result[..., 0])
    assert tnew[0].sum() == 0 and tnew[-1].sum() == 0


def test_parse_fig2_listing():
    node = parse_directive(
        '#pragma approx tensor functor(ifnctr: \\\n'
        '[i, j, 0:5] = ( ([i-1, j], [i+1, j], \\\n'
        '[i, j-1:j+2])))')
    assert isinstance(node, FunctorDecl)
    assert node.name == "ifnctr"
    assert len(node.rhs) == 3
