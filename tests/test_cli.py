"""CLI surface: parser wiring and the cheap informational commands."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["collect", "binomial", "--seed", "3"])
    assert args.command == "collect"
    assert args.benchmark == "binomial" and args.seed == 3
    args = parser.parse_args(["search", "bonds", "--outer", "2",
                              "--inner", "1", "--epochs", "4"])
    assert (args.outer, args.inner, args.epochs) == (2, 1, 4)


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["collect", "fluidsim"])


def test_list_and_loc_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "minibude" in out and "particlefilter" in out
    assert main(["loc"]) == 0
    out = capsys.readouterr().out
    assert "directives" in out


def test_collect_command(tmp_path, capsys):
    assert main(["collect", "bonds", "--workdir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "collected training data" in out
    assert (tmp_path / "bonds.rh5").exists()
