"""LR schedulers and Trainer gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn import (CosineAnnealingLR, ReduceLROnPlateau, StepLR, Trainer)
from repro.nn.layers import Parameter


def make_opt(lr=0.1):
    return nn.SGD([Parameter(np.ones(2))], lr=lr)


def test_step_lr_decays():
    opt = make_opt(0.1)
    sched = StepLR(opt, step_size=3, gamma=0.1)
    lrs = [sched.step() for _ in range(7)]
    assert lrs[0] == pytest.approx(0.1)    # epochs 1-2: base
    assert lrs[2] == pytest.approx(0.01)   # epoch 3: decayed once
    assert lrs[5] == pytest.approx(0.001)  # epoch 6: decayed twice


def test_step_lr_validation():
    with pytest.raises(ValueError):
        StepLR(make_opt(), step_size=0)


def test_cosine_annealing_endpoints():
    opt = make_opt(1.0)
    sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
    mid = None
    last = None
    for epoch in range(10):
        last = sched.step()
        if epoch == 4:
            mid = last
    assert last == pytest.approx(0.1)              # fully annealed
    assert 0.1 < mid < 1.0
    # Clamps past t_max.
    assert sched.step() == pytest.approx(0.1)


def test_reduce_on_plateau():
    opt = make_opt(0.4)
    sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
    sched.step(1.0)
    sched.step(0.9)       # improving: no decay
    assert opt.lr == pytest.approx(0.4)
    for _ in range(3):    # stale beyond patience
        sched.step(0.9)
    assert opt.lr == pytest.approx(0.2)


def test_reduce_on_plateau_respects_min_lr():
    opt = make_opt(1e-5)
    sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, min_lr=1e-6)
    for _ in range(10):
        sched.step(1.0)
    assert opt.lr >= 1e-6


def test_trainer_grad_clip_bounds_update():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 3)) * 100   # huge inputs -> huge gradients
    y = rng.normal(size=(64, 1)) * 100
    model = nn.Sequential(nn.Linear(3, 1, rng=rng))
    before = model[0].weight.data.copy()
    trainer = Trainer(model, lr=1e-2, batch_size=64, max_epochs=1,
                      patience=5, grad_clip=0.5,
                      optimizer=nn.SGD(model.parameters(), lr=1e-2))
    trainer.fit(x, y, x, y)
    delta = np.abs(model[0].weight.data - before).max()
    # One SGD step with clipped norm 0.5 and lr 1e-2 moves <= 5e-3.
    assert delta <= 5e-3 + 1e-9


def test_trainer_with_scheduler_converges():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(200, 2))
    y = x @ np.array([[1.0], [-2.0]])
    model = nn.Sequential(nn.Linear(2, 1, rng=rng))
    opt = nn.Adam(model.parameters(), lr=5e-2)
    trainer = Trainer(model, optimizer=opt, batch_size=32, max_epochs=40,
                      patience=40,
                      scheduler=CosineAnnealingLR(opt, t_max=40))
    result = trainer.fit(x[:160], y[:160], x[160:], y[160:])
    assert result.best_val_loss < 1e-2
    assert opt.lr < 5e-2      # scheduler actually ran
