"""BatchedInferenceEngine: ordering, flush triggers, region integration."""

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.runtime import (BatchedInferenceEngine, EventLog, InferenceEngine,
                           Phase)


def linear_model(path, scale=1.0):
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[scale, scale]])
    model[0].bias.data = np.array([0.0])
    save_model(model, path)
    return path


# ----------------------------------------------------------------------
# Engine-level semantics
# ----------------------------------------------------------------------

def test_flush_matches_unbatched_and_preserves_order(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    rng = np.random.default_rng(1)
    chunks = [rng.normal(size=(n, 2)) for n in (1, 3, 2)]

    immediate = InferenceEngine()
    expected = [immediate.infer(path, c) for c in chunks]

    engine = BatchedInferenceEngine(max_batch_rows=100)
    for c in chunks:
        engine.submit(path, c)
    assert engine.pending_rows == 6 and engine.pending_invocations == 3
    results = engine.flush()
    assert engine.pending_rows == 0 and engine.pending_invocations == 0
    assert len(results) == 3
    for got, want in zip(results, expected):
        np.testing.assert_allclose(got, want, rtol=1e-12)
    assert engine.batches_flushed == 1
    assert engine.rows_flushed == 6


def test_size_triggered_flush(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=4)
    outs = []
    for i in range(5):
        engine.submit(path, np.full((1, 2), float(i)),
                      lambda out, _s, i=i: outs.append((i, out.copy())))
    assert engine.batches_flushed == 1      # fired on the 4th row
    assert engine.pending_rows == 1
    engine.flush()
    assert engine.batches_flushed == 2
    assert [i for i, _ in outs] == [0, 1, 2, 3, 4]
    for i, out in outs:
        np.testing.assert_allclose(out, [[2.0 * i]], rtol=1e-12)


def test_region_triggered_flush_on_model_switch(tmp_path):
    a = linear_model(tmp_path / "a.rnm", scale=1.0)
    b = linear_model(tmp_path / "b.rnm", scale=3.0)
    engine = BatchedInferenceEngine(max_batch_rows=100)
    engine.submit(a, np.ones((2, 2)))
    engine.submit(b, np.ones((1, 2)))       # different model: a flushed
    assert engine.batches_flushed == 1
    results = engine.flush()
    np.testing.assert_allclose(results[0], [[6.0]], rtol=1e-12)


def test_immediate_infer_is_a_barrier(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=100)
    delivered = []
    engine.submit(path, np.ones((1, 2)), lambda out, _s: delivered.append(out))
    out = engine.infer(path, np.full((1, 2), 2.0))
    assert len(delivered) == 1              # queued work drained first
    np.testing.assert_allclose(out, [[4.0]], rtol=1e-12)


def test_callback_seconds_share_sums_to_forward(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=100)
    shares = []
    engine.submit(path, np.ones((1, 2)), lambda _o, s: shares.append(s))
    engine.submit(path, np.ones((3, 2)), lambda _o, s: shares.append(s))
    engine.flush()
    assert len(shares) == 2
    assert shares[1] == pytest.approx(3 * shares[0])
    assert sum(shares) == pytest.approx(engine.last_inference_seconds)


def test_submission_snapshot_allows_buffer_reuse(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=100)
    buf = np.ones((1, 2))
    engine.submit(path, buf)
    buf[:] = 100.0                          # mutate before flush
    (result,) = engine.flush()
    np.testing.assert_allclose(result, [[2.0]], rtol=1e-12)


def test_flush_failure_preserves_queue(tmp_path):
    """A failing forward must not drop queued invocations."""
    path = tmp_path / "m.rnm"
    linear_model(path)
    engine = BatchedInferenceEngine(max_batch_rows=100)
    engine.warmup(path)                     # resolve before sabotage
    engine.cache.clear()
    engine.submit(path, np.ones((2, 2)))
    path.unlink()                           # model file vanishes
    with pytest.raises(FileNotFoundError):
        engine.flush()
    assert engine.pending_rows == 2         # queue intact
    linear_model(path)                      # repair the file
    (result,) = engine.flush()
    np.testing.assert_allclose(result, [[2.0], [2.0]], rtol=1e-12)


def test_callback_error_does_not_block_other_deliveries(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=100)
    delivered = []

    def bad(_out, _s):
        raise RuntimeError("scatter exploded")

    engine.submit(path, np.ones((1, 2)), bad)
    engine.submit(path, np.ones((1, 2)), lambda out, _s: delivered.append(out))
    with pytest.raises(RuntimeError, match="scatter exploded"):
        engine.flush()
    assert len(delivered) == 1              # second delivery still ran
    assert engine.pending_rows == 0


def test_flush_empty_queue_is_noop(tmp_path):
    engine = BatchedInferenceEngine()
    assert engine.flush() == []
    assert engine.batches_flushed == 0


def test_bad_max_batch_rows():
    with pytest.raises(ValueError):
        BatchedInferenceEngine(max_batch_rows=0)


# ----------------------------------------------------------------------
# Region integration: deferred scatter through the data bridge
# ----------------------------------------------------------------------

DIRECTIVES = """
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:flag) in(x) out(y) db("{db}") model("{model}")
"""


def make_region(db, model, engine, log=None):
    @approx_ml(DIRECTIVES.format(db=db, model=model), event_log=log,
               engine=engine)
    def region(x, y, N, flag=True):
        y[:N] = x[:N].sum(axis=1)

    return region


def test_region_defers_scatter_until_flush(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=100)
    log = EventLog()
    region = make_region(tmp_path / "d.rh5", path, engine, log)
    rng = np.random.default_rng(2)
    xs = [rng.normal(size=(3, 2)) for _ in range(4)]
    ys = [np.zeros(3) for _ in range(4)]
    for x, y in zip(xs, ys):
        region(x, y, 3)
    assert all(np.all(y == 0.0) for y in ys)    # not yet delivered
    region.flush()
    for x, y in zip(xs, ys):
        np.testing.assert_allclose(y, x.sum(axis=1), rtol=1e-12)
    # One batched forward served all four invocations...
    assert engine.batches_flushed == 1
    # ...and each invocation record carries its share of inference time.
    infer_records = [r for r in log.records if r.path == "infer"]
    assert len(infer_records) == 4
    assert all(r.times.get(Phase.INFERENCE, 0.0) > 0 for r in infer_records)


def test_region_size_trigger_delivers_midstream(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=4)
    region = make_region(tmp_path / "d.rh5", path, engine)
    xs = [np.full((2, 2), float(i)) for i in range(3)]
    ys = [np.zeros(2) for _ in range(3)]
    for x, y in zip(xs, ys):
        region(x, y, 2)
    # Rows 0-3 flushed automatically; the third invocation still queued.
    np.testing.assert_allclose(ys[0], [0.0, 0.0], rtol=1e-12)
    np.testing.assert_allclose(ys[1], [2.0, 2.0], rtol=1e-12)
    assert np.all(ys[2] == 0.0)
    region.flush()
    np.testing.assert_allclose(ys[2], [4.0, 4.0], rtol=1e-12)


# ----------------------------------------------------------------------
# RegionConfig(auto_batch=...): the region wraps its own engine
# ----------------------------------------------------------------------

def test_region_auto_batch_wraps_engine(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    base = InferenceEngine()

    @approx_ml(DIRECTIVES.format(db=tmp_path / "d.rh5", model=path),
               engine=base, auto_batch=True, max_batch_rows=8)
    def region(x, y, N, flag=True):
        y[:N] = x[:N].sum(axis=1)

    wrapped = region.engine
    assert isinstance(wrapped, BatchedInferenceEngine)
    assert wrapped is not base
    assert wrapped.max_batch_rows == 8
    # Shared device + model cache: one load serves both engines.
    assert wrapped.device is base.device
    assert wrapped.cache is base.cache

    xs = [np.full((2, 2), float(i)) for i in range(3)]
    ys = [np.zeros(2) for _ in range(3)]
    for x, y in zip(xs, ys):
        region(x, y, 2)
    region.flush()
    for i, y in enumerate(ys):
        np.testing.assert_allclose(y, [2.0 * i, 2.0 * i], rtol=1e-12)
    assert wrapped.batches_flushed >= 1


def test_region_auto_batch_keeps_existing_batched_engine(tmp_path):
    path = linear_model(tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=16)

    @approx_ml(DIRECTIVES.format(db=tmp_path / "d.rh5", model=path),
               engine=engine, auto_batch=True)
    def region(x, y, N, flag=True):
        y[:N] = x[:N].sum(axis=1)

    assert region.engine is engine            # no double wrapping


def test_harness_auto_batch_matches_unbatched(tmp_path):
    """End-to-end: an auto-batched chunked deploy loop reproduces the
    single-invocation surrogate output exactly."""
    from repro.apps.harness import harness_for
    from repro.search.builders import builder_for

    model = builder_for("binomial")(
        {"hidden1_features": 12, "hidden2_features": 0}, seed=0)
    plain = harness_for("binomial", tmp_path / "plain",
                        n_train=32, n_test=48, n_steps=16)
    plain.install_model(model)
    ref = plain.run_surrogate()

    batched = harness_for("binomial", tmp_path / "batched",
                          n_train=32, n_test=48, n_steps=16,
                          auto_batch=True, batch_rows=16, deploy_chunk=6)
    assert isinstance(batched.deploy_region.engine, BatchedInferenceEngine)
    batched.install_model(model)
    out = batched.run_surrogate()
    np.testing.assert_allclose(out, ref, rtol=1e-12)
    assert batched.deploy_region.engine.batches_flushed >= 3
    # The accurate path is unaffected by batching.
    np.testing.assert_allclose(batched.run_accurate(), plain.run_accurate(),
                               rtol=1e-12)


def test_miniweather_harness_rejects_auto_batch(tmp_path):
    from repro.apps.harness import harness_for
    with pytest.raises(ValueError):
        harness_for("miniweather", tmp_path, nx=8, nz=4, train_steps=2,
                    test_steps=2, auto_batch=True)
