"""Mixed-precision inference: float32 plans under QoS governance.

The acceptance contract of the precision axis:

* ``compile_inference(model, dtype=np.float32)`` casts weights once at
  compile time and serves float32 end to end; the float64 default is
  untouched (same fingerprint, bitwise-identical outputs);
* engines key their plan caches on ``(model, dtype)`` and fall back to
  the float64 plan when narrowing is refused (conv-bearing models);
* a :class:`~repro.qos.PrecisionPolicy` governs ``precision="auto"``
  regions: shadow-sampled fp32-vs-fp64 divergence charges the error
  budget, trips a breaker-style demotion on breach, and probes back;
* decision streams, the fleet slab, and the shm transport all carry
  the negotiated dtype (the latter shipping half the bytes).
"""

import json
import math
import multiprocessing as mp

import numpy as np
import pytest

from repro import obs
from repro.api import approx_ml
from repro.h5 import File
from repro.nn import (Conv2d, Flatten, Linear, ReLU, Sequential, Tanh,
                      UnsupportedLayerError, compile_fleet_inference,
                      compile_inference, save_model)
from repro.nn.plan import _buf
from repro.qos import (BudgetArbitrationPolicy, PrecisionPolicy,
                       QoSController)
from repro.runtime import BatchedInferenceEngine, InferenceEngine
from repro.serving.shm import RemoteEngineClient, WorkerHandle

pytestmark = pytest.mark.precision


def _mlp(seed=0, n_in=6, n_hidden=32, n_out=2):
    r = np.random.default_rng(seed)
    return Sequential(Linear(n_in, n_hidden, rng=r), Tanh(),
                      Linear(n_hidden, n_out, rng=r))


def _conv(seed=0):
    r = np.random.default_rng(seed)
    return Sequential(Conv2d(1, 4, 3, rng=r), ReLU(), Flatten(),
                      Linear(4 * 6 * 6, 2, rng=r))


# ----------------------------------------------------------------------
# Compiled-plan dtype parameterization
# ----------------------------------------------------------------------

def test_fp64_default_is_unchanged_by_dtype_machinery():
    """The float64 path must stay bitwise-identical to the historical
    plans: same fingerprint, no input cast shim, float16 coercion."""
    model = _mlp()
    x = np.random.default_rng(1).standard_normal((16, 6))
    default = compile_inference(model)
    explicit = compile_inference(model, dtype=np.float64)
    assert default.dtype == np.float64 and default._cast is None
    assert default.fingerprint == explicit.fingerprint
    assert np.array_equal(default(x), explicit(x))
    assert default(x).dtype == np.float64
    # The pre-existing float16 coercion survives on the default path.
    assert default(x.astype(np.float16)).dtype == np.float64


def test_f32_plan_serves_float32_and_tracks_f64():
    model = _mlp()
    x = np.random.default_rng(2).standard_normal((64, 6))
    p64 = compile_inference(model)
    p32 = compile_inference(model, dtype=np.float32)
    assert p32.dtype == np.float32
    y64, y32 = p64(x), p32(x)
    assert y32.dtype == np.float32
    rel = np.abs(y32 - y64).max() / (np.abs(y64).max() + 1e-12)
    assert rel < 1e-5
    # Narrowed plans fingerprint differently: caches must never alias.
    assert p32.fingerprint != p64.fingerprint


def test_f32_plan_casts_float64_inputs_once_at_entry():
    model = _mlp()
    p32 = compile_inference(model, dtype=np.float32)
    out = p32(np.ones((4, 6), dtype=np.float64))
    assert out.dtype == np.float32
    out16 = p32(np.ones((4, 6), dtype=np.float16))
    assert out16.dtype == np.float32


def test_f32_refused_for_conv_models():
    with pytest.raises(UnsupportedLayerError):
        compile_inference(_conv(), dtype=np.float32)


def test_unsupported_dtype_rejected():
    with pytest.raises(ValueError):
        compile_inference(_mlp(), dtype=np.int32)


def test_scratch_adoption_refused_across_dtypes():
    """A narrowed plan must never adopt a float64 predecessor's scratch
    buffers (or vice versa): dtype is part of the adoption contract."""
    model = _mlp()
    x = np.ones((8, 6))
    old64 = compile_inference(model)
    old64(x)
    new64 = compile_inference(model)
    assert new64.adopt_scratch(old64)
    new32 = compile_inference(model, dtype=np.float32)
    assert not new32.adopt_scratch(old64)


# ----------------------------------------------------------------------
# Satellite: dtype promotion in plan scratch buffers
# ----------------------------------------------------------------------

def test_buf_reuses_same_dtype_scratch():
    s = {}
    a = _buf(s, "k", (4, 4))
    assert _buf(s, "k", (4, 4)) is a
    assert a.dtype == np.float64


def test_buf_reallocates_on_dtype_change():
    s = {}
    a = _buf(s, "k", (4, 4))
    b = _buf(s, "k", (4, 4), np.float32)
    assert b is not a and b.dtype == np.float32
    # And back: the narrow buffer must not leak into a wide reuse.
    c = _buf(s, "k", (4, 4))
    assert c is not b and c.dtype == np.float64


def test_f32_plan_keeps_dtype_across_batch_sizes():
    """Scratch reallocation on batch-size change must stay float32 —
    no silent promotion through ``result_type`` on mixed operands."""
    model = _mlp()
    p32 = compile_inference(model, dtype=np.float32)
    for n in (4, 32, 4, 128):
        out = p32(np.ones((n, 6)))
        assert out.dtype == np.float32


# ----------------------------------------------------------------------
# Engine plan caches keyed on dtype
# ----------------------------------------------------------------------

def test_engine_cache_keys_plans_on_dtype():
    engine = InferenceEngine()
    model = _mlp()
    p64 = engine.plan_for(model)
    p32 = engine.plan_for(model, dtype=np.float32)
    assert p64 is not p32
    assert engine.plan_for(model) is p64
    assert engine.plan_for(model, dtype=np.float32) is p32


def test_engine_f32_refusal_falls_back_to_cached_f64_plan():
    engine = InferenceEngine()
    conv = _conv()
    p64 = engine.plan_for(conv)
    fallback = engine.plan_for(conv, dtype=np.float32)
    assert fallback is p64                  # served the wide plan
    # The refusal is cached: asking again must not re-lower the model.
    assert engine.plan_for(conv, dtype=np.float32) is p64


def test_engine_infer_dtype_roundtrip(tmp_path):
    model = _mlp()
    save_model(model, tmp_path / "m.rnm")
    engine = InferenceEngine()
    x = np.random.default_rng(3).standard_normal((32, 6))
    y64 = engine.infer(tmp_path / "m.rnm", x)
    assert engine.last_timing["dtype"] == "float64"
    y32 = engine.infer(tmp_path / "m.rnm", x, dtype=np.float32)
    assert y32.dtype == np.float32
    assert engine.last_timing["dtype"] == "float32"
    assert np.abs(y32 - y64).max() < 1e-4


def test_batched_engine_flushes_on_dtype_change(tmp_path):
    """A dtype switch is a batch boundary: queued float64 work flushes
    before float32 work enqueues, so one forward never mixes dtypes."""
    model = _mlp()
    save_model(model, tmp_path / "m.rnm")
    engine = BatchedInferenceEngine(max_batch_rows=1024)
    x = np.ones((8, 6))
    results = {}
    engine.submit(tmp_path / "m.rnm", x,
                  on_result=lambda out, _s: results.setdefault("a", out))
    assert "a" not in results               # still queued
    engine.submit(tmp_path / "m.rnm", x,
                  on_result=lambda out, _s: results.setdefault("b", out),
                  dtype=np.float32)
    assert results["a"].dtype == np.float64  # flushed by the switch
    engine.flush()
    assert results["b"].dtype == np.float32
    assert np.abs(results["b"] - results["a"]).max() < 1e-4


# ----------------------------------------------------------------------
# Fleet slab narrowing
# ----------------------------------------------------------------------

def test_fleet_plan_f32_stacks_and_tracks_members():
    models = [_mlp(seed=s) for s in range(3)]
    x = np.random.default_rng(4).standard_normal((16, 6))
    plan = compile_fleet_inference(models, dtype=np.float32)
    assert plan.dtype == np.float32 and plan.slab.dtype == np.float32
    out = plan(x)
    assert out.dtype == np.float32 and out.shape[0] == 3
    for k, model in enumerate(models):
        ref = compile_inference(model)(x)
        rel = np.abs(out[k] - ref).max() / (np.abs(ref).max() + 1e-12)
        assert rel < 1e-5


def test_fleet_f32_hot_swap_casts_on_row_copy():
    models = [_mlp(seed=s) for s in range(3)]
    plan = compile_fleet_inference(models, dtype=np.float32)
    before = plan.member_digest(1)
    replacement = _mlp(seed=9)              # float64 weights
    plan.replace_member(1, replacement)
    assert plan.member_digest(1) != before
    assert plan.slab.dtype == np.float32    # cast landed on the copy
    x = np.random.default_rng(5).standard_normal((8, 6))
    ref = compile_inference(replacement)(x)
    got = plan(x)[1]
    rel = np.abs(got - ref).max() / (np.abs(ref).max() + 1e-12)
    assert rel < 1e-5


# ----------------------------------------------------------------------
# PrecisionPolicy governance
# ----------------------------------------------------------------------

def test_policy_warmup_always_samples():
    pol = PrecisionPolicy(warmup=3, sample_rate=0.0)
    for _ in range(3):
        assert pol.precision_for("r") == "float32"
        assert pol.should_sample("r")
        pol.observe("r", np.zeros(4), np.zeros(4))
    # Past warmup, the 0.0 Bernoulli rate never samples again.
    assert not pol.should_sample("r")


def test_policy_trips_probes_and_recovers():
    pol = PrecisionPolicy(high=1e-3, low=1e-4, warmup=1,
                          probe_interval=4, alpha=1.0)
    ones = np.ones(8)
    assert pol.precision_for("r") == "float32"
    pol.observe("r", ones * 1.01, ones)     # 1e-2 rel error > high
    assert pol.tripped("r")
    # Demoted: float64 until recovery, probing every 4th invocation.
    probes = [pol.precision_for("r") == "float64" and
              pol.should_sample("r") for _ in range(8)]
    assert sum(probes) == 2                 # since 1..8 -> probes at 4, 8
    pol.observe("r", ones, ones)            # clean probe: err 0 <= low
    assert not pol.tripped("r")
    snap = pol.snapshot()["regions"]["r"]
    assert snap["demotions"] == 1 and snap["promotions"] == 1


def test_policy_charges_divergence_to_qos_budget():
    charges = []

    class FakeQoS:
        def charge_budget(self, region, err):
            charges.append((region, err))
            return True

    pol = PrecisionPolicy(warmup=1)
    err = pol.observe("r", np.ones(4) * 1.001, np.ones(4), qos=FakeQoS())
    assert charges == [("r", err)] and err > 0


def test_policy_ctor_validation():
    with pytest.raises(ValueError):
        PrecisionPolicy(high=0.0)
    with pytest.raises(ValueError):
        PrecisionPolicy(high=1e-5, low=1e-4)
    with pytest.raises(ValueError):
        PrecisionPolicy(probe_interval=0)


def test_controller_charge_budget_spends_arbiter_ledger():
    arb = BudgetArbitrationPolicy(1.0, charge="linear")
    qos = QoSController(policy=arb)
    assert qos.charge_budget("r", 0.25)
    assert arb._global_spent == pytest.approx(0.25)
    assert arb._region("r")["spent"] == pytest.approx(0.25)
    # Controllers without a chargeable policy refuse gracefully.
    assert not QoSController().charge_budget("r", 0.1)


def test_controller_snapshot_and_reset_cover_precision():
    pol = PrecisionPolicy(warmup=1)
    qos = QoSController(precision_policy=pol)
    pol.observe("r", np.ones(4), np.ones(4))
    assert "r" in qos.snapshot()["precision"]["regions"]
    qos.reset_region("r")
    assert "r" not in pol.snapshot()["regions"]


# ----------------------------------------------------------------------
# Region-level routing (the RegionConfig.precision knob)
# ----------------------------------------------------------------------

DIRECTIVES = """
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:flag) in(x) out(y) db("{db}") model("{model}")
"""


def _identity_model(path):
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[1.0, 1.0]])
    model[0].bias.data = np.array([0.0])
    save_model(model, path)


def _make_region(tmp_path, name, **kwargs):
    _identity_model(tmp_path / f"{name}.rnm")

    @approx_ml(DIRECTIVES.format(db=tmp_path / f"{name}.rh5",
                                 model=tmp_path / f"{name}.rnm"),
               name=name, **kwargs)
    def region(x, y, N, flag=False):
        y[:N] = x[:N].sum(axis=1)

    return region


def test_region_config_rejects_unknown_precision(tmp_path):
    with pytest.raises(ValueError):
        _make_region(tmp_path, "bad", precision="bfloat16")


def test_region_float32_serves_narrowed_plan(tmp_path):
    region = _make_region(tmp_path, "narrow", precision="float32")
    x = np.random.default_rng(6).random((32, 2))
    y = np.zeros(32)
    region(x, y, 32, flag=True)
    assert region.engine.last_timing["dtype"] == "float32"
    # Committed app outputs stay float64 (scatter into the app array).
    assert y.dtype == np.float64
    np.testing.assert_allclose(y, x.sum(axis=1), rtol=1e-5)
    region.close()


def test_region_auto_samples_governs_and_records(tmp_path):
    pol = PrecisionPolicy(sample_rate=1.0, warmup=0, seed=0)
    qos = QoSController(precision_policy=pol, shadow_rate=0.0)
    region = _make_region(tmp_path, "gov", precision="auto", qos=qos)
    x = np.random.default_rng(7).random((16, 2))
    y = np.zeros(16)
    for _ in range(5):
        region(x, y, 16, flag=True)
    np.testing.assert_allclose(y, x.sum(axis=1), rtol=1e-5)
    snap = pol.snapshot()["regions"]["gov"]
    assert snap["count"] == 5
    assert snap["samples"] == 5             # rate 1.0: every invocation
    assert snap["ewma"] is not None and snap["ewma"] < 1e-5
    assert not snap["tripped"]
    # Observability: the precision path counter and divergence histogram.
    metrics = obs.snapshot()["metrics"]["metrics"]
    paths = [s for s in metrics.get("precision_path", ())
             if s["labels"].get("region") == "gov"]
    assert sum(s["value"] for s in paths) >= 5
    divs = [s for s in metrics.get("precision_divergence", ())
            if s["labels"].get("region") == "gov"]
    assert divs and divs[0]["count"] >= 5
    region.close()


def test_region_auto_demotes_to_f64_on_breach(tmp_path):
    # An impossible threshold: the very first sample trips the governor.
    pol = PrecisionPolicy(high=1e-30, sample_rate=1.0, warmup=1, seed=0)
    qos = QoSController(precision_policy=pol, shadow_rate=0.0)
    region = _make_region(tmp_path, "demote", precision="auto", qos=qos)
    x = np.random.default_rng(8).random((8, 2))
    y = np.zeros(8)
    region(x, y, 8, flag=True)              # sampled, tripped
    assert pol.tripped("demote")
    region(x, y, 8, flag=True)              # demoted: wide plan serves
    assert region.engine.last_timing["dtype"] == "float64"
    region.close()


def test_region_default_path_untouched(tmp_path):
    region = _make_region(tmp_path, "plain")
    x = np.ones((8, 2))
    y = np.zeros(8)
    region(x, y, 8, flag=True)
    assert region.engine.last_timing["dtype"] == "float64"
    region.close()


# ----------------------------------------------------------------------
# Satellite: descriptor-cache LRU (cold-key storms keep hot keys)
# ----------------------------------------------------------------------

def test_map_cache_storm_keeps_hot_keys(tmp_path):
    """Regression: the cache used to clear() wholesale past 64 entries,
    so a storm of cold buffers evicted the hot working set too.  Under
    LRU, keys touched every iteration survive any number of cold keys."""
    region = _make_region(tmp_path, "lru")
    hot_x, hot_y = np.random.default_rng(9).random((8, 2)), np.zeros(8)
    region(hot_x, hot_y, 8, flag=True)
    hot_keys = set(region._map_cache)
    assert hot_keys
    cold = [np.random.default_rng(i).random((8, 2)) for i in range(100)]
    for x in cold:
        region(hot_x, hot_y, 8, flag=True)  # touch hot
        region(x, np.zeros(8), 8, flag=True)  # one cold insert
    assert len(region._map_cache) <= 64     # bounded
    assert hot_keys <= set(region._map_cache)  # hot keys survived
    region.close()


# ----------------------------------------------------------------------
# Decision streams carry the precision column
# ----------------------------------------------------------------------

def test_stream_precision_round_trip(tmp_path):
    path = tmp_path / "s.rh5"
    with obs.DecisionStream(path) as stream:
        stream.record("r", digest=1, path="infer", precision="float32")
        stream.record("r", digest=2, path="infer")
    replay = obs.read_stream(path)
    assert replay["r"][0]["precision"] == "float32"
    assert replay["r"][1]["precision"] is None


def _write_width4_stream(path):
    """A pre-precision stream file, as the old writer laid it out."""
    with File(path, "w", atomic=True) as fh:
        fh.attrs["schema"] = "repro-decision-stream-v1"
        group = fh.require_group("r")
        group.require_dataset("codes", (4,), np.int64).append(
            np.array([[7, 0, -1, -1]], dtype=np.int64))
        group.require_dataset("values", (2,), np.float64).append(
            np.array([[math.nan, math.nan]]))
        group.attrs["paths"] = json.dumps(["infer"])
        group.attrs["reasons"] = json.dumps([])
        group.attrs["breakers"] = json.dumps([])


def test_stream_reads_pre_precision_width4_files(tmp_path):
    path = tmp_path / "old.rh5"
    _write_width4_stream(path)
    replay = obs.read_stream(path)
    assert replay["r"][0]["path"] == "infer"
    assert replay["r"][0]["precision"] is None


def test_stream_append_keeps_old_file_width(tmp_path):
    path = tmp_path / "old.rh5"
    _write_width4_stream(path)
    stream = obs.DecisionStream(path)
    stream.record("r", digest=8, path="infer", precision="float32")
    stream.close()
    replay = obs.read_stream(path)
    assert len(replay["r"]) == 2
    # The appended row dropped its precision code (width preserved).
    assert replay["r"][1]["precision"] is None


# ----------------------------------------------------------------------
# shm transport dtype negotiation
# ----------------------------------------------------------------------

def test_shm_f32_halves_shipped_bytes(tmp_path):
    model = _mlp()
    save_model(model, tmp_path / "m.rnm")
    handle = WorkerHandle(0, mp.get_context("fork"))
    try:
        client = RemoteEngineClient(handle)
        x = np.random.default_rng(10).standard_normal((64, 6))
        y64, t64 = client.infer(tmp_path / "m.rnm", x)
        b64 = client.bytes_shipped
        y32, t32 = client.infer(tmp_path / "m.rnm", x, dtype=np.float32)
        b32 = client.bytes_shipped - b64
        assert y64.dtype == np.float64 and y32.dtype == np.float32
        assert t64["dtype"] == "float64" and t32["dtype"] == "float32"
        assert b64 == 2 * b32               # exactly half the bytes
        assert np.abs(y32 - y64).max() < 1e-4
        assert client.pickle_fallbacks == 0
        client.close()
    finally:
        handle.close()


def test_shm_pickle_transport_negotiates_dtype(tmp_path):
    model = _mlp()
    save_model(model, tmp_path / "m.rnm")
    handle = WorkerHandle(0, mp.get_context("fork"))
    try:
        client = RemoteEngineClient(handle, transport="pickle")
        x = np.ones((8, 6))
        out, timing = client.infer(tmp_path / "m.rnm", x,
                                   dtype=np.float32)
        assert out.dtype == np.float32
        assert timing["dtype"] == "float32"
        client.close()
    finally:
        handle.close()
