"""Hierarchical datastore: roundtrips, append semantics, failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.h5 import File, Group, Dataset, FormatError, encode_tree, decode_tree


def test_file_roundtrip(tmp_path):
    path = tmp_path / "data.rh5"
    with File(path, "w") as f:
        g = f.create_group("region/inner")
        g.create_dataset("inputs", np.arange(12.0).reshape(3, 4),
                         attrs={"units": "K"})
        g.attrs["note"] = "hello"
        f.attrs["version"] = 2

    with File(path, "r") as f:
        assert f.attrs["version"] == 2
        g = f["region/inner"]
        assert g.attrs["note"] == "hello"
        ds = g["inputs"]
        np.testing.assert_allclose(ds.read(), np.arange(12.0).reshape(3, 4))
        assert ds.attrs["units"] == "K"


def test_dataset_append_and_len():
    ds = Dataset("d", np.zeros((0, 3)))
    ds.append(np.ones((2, 3)))
    ds.append(np.full((1, 3), 2.0))
    assert len(ds) == 3
    np.testing.assert_allclose(ds[2], [2, 2, 2])
    with pytest.raises(ValueError):
        ds.append(np.ones((1, 4)))


def test_append_mode_accumulates(tmp_path):
    path = tmp_path / "acc.rh5"
    for i in range(3):
        with File(path, "a") as f:
            g = f.require_group("r")
            ds = g.require_dataset("vals", (2,))
            ds.append(np.full((1, 2), float(i)))
    with File(path, "r") as f:
        data = f["r/vals"].read()
    assert data.shape == (3, 2)
    np.testing.assert_allclose(data[:, 0], [0, 1, 2])


def test_read_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        File(tmp_path / "nope.rh5", "r")


def test_invalid_mode(tmp_path):
    with pytest.raises(ValueError):
        File(tmp_path / "x.rh5", "q")


def test_group_name_conflicts():
    g = Group("/")
    g.create_dataset("x", np.zeros(3))
    with pytest.raises(ValueError):
        g.create_group("x")
    with pytest.raises(ValueError):
        g.create_dataset("x", np.zeros(3))
    g.create_group("sub")
    with pytest.raises(ValueError):
        g.create_dataset("sub", np.zeros(2))


def test_nested_path_creation_and_contains():
    g = Group("/")
    g.create_dataset("a/b/c", np.ones(2))
    assert "a" in g
    assert "a/b/c" in g
    assert "a/b/missing" not in g
    assert "z/c" not in g
    with pytest.raises(KeyError):
        g["a/b/zz"]


def test_keys_and_listing():
    g = Group("/")
    g.create_group("g1")
    g.create_dataset("d1", np.zeros(1))
    assert set(g.keys()) == {"g1", "d1"}
    assert set(g.groups()) == {"g1"}
    assert set(g.datasets()) == {"d1"}


def test_require_dataset_idempotent():
    g = Group("/")
    d1 = g.require_dataset("x", (4,), np.float32)
    d2 = g.require_dataset("x", (4,))
    assert d1 is d2
    assert d1.dtype == np.float32


def test_decode_rejects_bad_magic():
    with pytest.raises(FormatError):
        decode_tree(b"NOPE" + b"\0" * 16)


def test_decode_recovers_truncated_row_prefix():
    # Unclean shutdown mid-append: the intact row prefix is recovered
    # with a warning instead of refusing the whole database.
    blob = encode_tree({"attrs": {}, "groups": {},
                        "datasets": {"x": {"data": np.arange(10.0)}}})
    with pytest.warns(RuntimeWarning, match="truncated"):
        tree = decode_tree(blob[:-8])
    np.testing.assert_array_equal(tree["datasets"]["x"]["data"],
                                  np.arange(9.0))


def test_decode_rejects_unrecoverable_truncation():
    # A dataset cut before its first complete row cannot be salvaged.
    blob = encode_tree({"attrs": {}, "groups": {},
                        "datasets": {"x": {"data": np.arange(10.0)}}})
    with pytest.raises(FormatError):
        decode_tree(blob[:-78])


def test_various_dtypes_roundtrip(tmp_path):
    path = tmp_path / "dt.rh5"
    arrays = {
        "f64": np.linspace(0, 1, 7),
        "f32": np.linspace(0, 1, 7, dtype=np.float32),
        "i64": np.arange(5),
        "i32": np.arange(5, dtype=np.int32),
        "u8": np.arange(5, dtype=np.uint8),
        "b": np.array([True, False, True]),
    }
    with File(path, "w") as f:
        for name, arr in arrays.items():
            f.create_dataset(name, arr)
    with File(path, "r") as f:
        for name, arr in arrays.items():
            got = f[name].read()
            assert got.dtype == arr.dtype
            np.testing.assert_array_equal(got, arr)


def test_file_size(tmp_path):
    path = tmp_path / "sz.rh5"
    f = File(path, "w")
    assert f.file_size == 0
    f.create_dataset("big", np.zeros((1000, 10)))
    f.close()
    assert f.file_size > 1000 * 10 * 8


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "d"]),
              st.integers(1, 4), st.integers(1, 4)),
    min_size=1, max_size=6, unique_by=lambda t: t[0]))
@settings(max_examples=30, deadline=None)
def test_encode_decode_property(datasets):
    """Property: encode→decode reproduces arbitrary dataset trees."""
    rng = np.random.default_rng(0)
    tree = {"attrs": {"n": len(datasets)}, "groups": {}, "datasets": {}}
    for name, r, c in datasets:
        tree["datasets"][name] = {"data": rng.normal(size=(r, c)),
                                  "attrs": {"rows": r}}
    out = decode_tree(encode_tree(tree))
    assert out["attrs"] == {"n": len(datasets)}
    for name, r, c in datasets:
        np.testing.assert_allclose(out["datasets"][name]["data"],
                                   tree["datasets"][name]["data"])
        assert out["datasets"][name]["attrs"] == {"rows": r}
