"""Fault injection and self-healing: injector, breaker, retry, swaps.

Everything here carries the ``resilience`` marker (a dedicated CI
lane).  The acceptance stories: a scripted fault schedule replays
bit-identically from its seed; a NaN-bursting surrogate is demoted to
the accurate path with every invocation still served and application
memory never poisoned; a crashing/hanging trainer is retried and
watchdogged without wedging the worker; and a corrupt candidate at
hot-swap time rolls back with the deployed model intact.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, Sequential, load_model, save_model
from repro.nn.serialize import FOOTER_MAGIC, ModelFormatError
from repro.resilience import (ACCURATE, DB_READ, HOT_SWAP, SURROGATE,
                              TRAINER, CircuitBreaker, FaultInjector,
                              InjectedFault, NonFiniteOutput, RetryPolicy,
                              WatchdogTimeout, run_with_timeout)
from repro.resilience import faults as faults_mod
from repro.runtime import (DataCollector, EventLog, InferenceEngine,
                           load_training_data)
from repro.serving import (HotSwapError, RetrainWorker, db_row_count,
                           hot_swap_model)

pytestmark = pytest.mark.resilience


def _linear_model(weight=1.0):
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    return model


def _infer_region(tmp_path, name="guarded", weight=2.0, scale=1.0):
    """2->1 infer-mode region: surrogate predicts ``weight * row_sum``,
    the accurate kernel computes ``scale * row_sum``."""
    save_model(_linear_model(weight), tmp_path / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""
    log = EventLog()

    @approx_ml(src, name=name, event_log=log)
    def region(x, y, N):
        y[:N] = x[:N].sum(axis=1) * scale

    return region, log


# ----------------------------------------------------------------------
# FaultInjector: determinism and scheduling
# ----------------------------------------------------------------------

def _drive(seed):
    injector = FaultInjector(seed=seed)
    injector.script(SURROGATE, "nan", probability=0.3)
    injector.script(TRAINER, "raise", at=[1, 3])
    injector.script(ACCURATE, "slow", start=2, stop=10, every=4,
                    seconds=0.0)
    with injector:
        for _ in range(50):
            faults_mod.fire(SURROGATE)
        for _ in range(5):
            faults_mod.fire(TRAINER)
        for _ in range(12):
            faults_mod.fire(ACCURATE)
    return injector.schedule()


def test_injector_schedule_bit_identical_across_runs():
    first = _drive(seed=7)
    second = _drive(seed=7)
    assert first == second and len(first) > 0
    # The probability rule really is seeded: another seed reshuffles.
    assert _drive(seed=8) != first


def test_injector_reset_replays_same_schedule():
    injector = FaultInjector(seed=3)
    injector.script(SURROGATE, "raise", probability=0.5)
    with injector:
        for _ in range(20):
            faults_mod.fire(SURROGATE)
    first = injector.schedule()
    injector.reset()
    with injector:
        for _ in range(20):
            faults_mod.fire(SURROGATE)
    assert injector.schedule() == first


def test_injector_window_and_stride_rules():
    injector = FaultInjector()
    injector.script(TRAINER, "raise", start=2, stop=8, every=3)
    with injector:
        fired = [faults_mod.fire(TRAINER) is not None for _ in range(10)]
    assert fired == [False, False, True, False, False, True,
                     False, False, False, False]


def test_injector_inactive_fire_is_noop_and_exclusive():
    assert faults_mod.fire(SURROGATE) is None
    with FaultInjector() as injector:
        with pytest.raises(RuntimeError):
            FaultInjector().__enter__()
    assert faults_mod.active() is None
    assert injector.count(SURROGATE) == 0


# ----------------------------------------------------------------------
# Primitives: retry, watchdog, breaker
# ----------------------------------------------------------------------

def test_retry_policy_backoff_schedule_and_success():
    sleeps = []
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=0.3,
                         multiplier=2.0, sleep=sleeps.append)
    assert policy.delays() == [0.1, 0.2, 0.3]   # capped at max_delay

    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ValueError("transient")
        return "ok"

    assert policy.run(flaky) == "ok"
    assert len(attempts) == 3
    assert sleeps == [0.1, 0.2]                 # two failures, two waits


def test_retry_policy_exhausts_and_reraises():
    sleeps = []
    policy = RetryPolicy(max_attempts=3, base_delay=0.05,
                         sleep=sleeps.append)
    notified = []
    with pytest.raises(ValueError, match="always"):
        policy.run(lambda: (_ for _ in ()).throw(ValueError("always")),
                   on_retry=lambda n, exc: notified.append(n))
    assert notified == [1, 2, 3]
    assert len(sleeps) == 2                     # no sleep after the last


def test_run_with_timeout_result_error_and_hang():
    assert run_with_timeout(lambda: 42, None) == 42
    assert run_with_timeout(lambda: 42, 5.0) == 42
    with pytest.raises(KeyError):
        run_with_timeout(lambda: {}["missing"], 5.0)
    with pytest.raises(WatchdogTimeout):
        run_with_timeout(lambda: time.sleep(5.0), 0.05, name="hang")


def test_circuit_breaker_full_transition_cycle():
    breaker = CircuitBreaker(failure_threshold=2, quarantine_threshold=4,
                             recovery_successes=2, probe_interval=3,
                             cooldown=4)
    # healthy: everything allowed; 2 consecutive failures -> degraded.
    assert breaker.allow() and breaker.allow()
    breaker.record_failure("nan")
    assert breaker.state == CircuitBreaker.HEALTHY
    breaker.record_failure("nan")
    assert breaker.state == CircuitBreaker.DEGRADED
    # degraded: denied except every 3rd call (the probe).
    assert [breaker.allow() for _ in range(6)] == \
        [False, False, True, False, False, True]
    # 2 more failures (4 consecutive) -> quarantined; probes every 4th.
    breaker.record_failure("raise")
    breaker.record_failure("raise")
    assert breaker.state == CircuitBreaker.QUARANTINED
    assert [breaker.allow() for _ in range(4)] == [False, False, False,
                                                  True]
    # Recovery climbs one state per recovery_successes streak.
    breaker.record_success()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.DEGRADED
    breaker.record_success()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.HEALTHY
    snap = breaker.snapshot()
    assert snap["failures"] == 4 and snap["successes"] == 4
    assert [t[:2] for t in breaker.transitions] == [
        ("healthy", "degraded"), ("degraded", "quarantined"),
        ("quarantined", "degraded"), ("degraded", "healthy")]


def test_circuit_breaker_success_interrupts_failure_streak():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.HEALTHY   # streak broken


# ----------------------------------------------------------------------
# Guarded region: NaN burst never reaches application memory
# ----------------------------------------------------------------------

def test_guarded_region_survives_nan_burst_and_recovers(tmp_path):
    region, _ = _infer_region(tmp_path, weight=2.0, scale=1.0)
    breaker = CircuitBreaker(failure_threshold=2, quarantine_threshold=8,
                             recovery_successes=1, probe_interval=2,
                             name="guarded")
    region.config.breaker = breaker

    injector = FaultInjector(seed=0)
    injector.script(SURROGATE, "nan", start=3, stop=7)

    x = np.arange(8.0).reshape(4, 2)
    row_sum = x.sum(axis=1)
    served = 0
    with injector:
        for _ in range(40):
            y = np.full(4, np.nan)
            region(x, y, 4)
            # Every invocation is served with finite outputs — either
            # the surrogate's (2*sum) or the accurate kernel's (sum).
            assert np.all(np.isfinite(y))
            assert (np.allclose(y, 2.0 * row_sum)
                    or np.allclose(y, row_sum))
            served += 1
    assert served == 40
    snap = breaker.snapshot()
    assert snap["failures"] >= 2 and snap["denials"] > 0
    assert ("healthy", "degraded", "NonFiniteOutput") in breaker.transitions
    # The burst ended, probes succeeded: the surrogate is back.
    assert breaker.state == CircuitBreaker.HEALTHY
    y = np.empty(4)
    region(x, y, 4)
    np.testing.assert_allclose(y, 2.0 * row_sum)


def test_guarded_region_raise_faults_fall_back(tmp_path):
    region, _ = _infer_region(tmp_path, weight=3.0, scale=1.0)
    breaker = CircuitBreaker(failure_threshold=2, name="raises")
    region.config.breaker = breaker
    injector = FaultInjector()
    injector.script(SURROGATE, "raise", at=[0, 1])
    x = np.ones((2, 2))
    with injector:
        for _ in range(2):
            y = np.empty(2)
            region(x, y, 2)
            # Both faulted invocations are served by the accurate
            # kernel: y = row_sum, not the surrogate's 3*row_sum.
            np.testing.assert_allclose(y, [2.0, 2.0])
    assert breaker.state == CircuitBreaker.DEGRADED
    assert breaker.snapshot()["last_failure"] == "InjectedFault"
    assert breaker.snapshot()["fallbacks"] == 2


def test_unguarded_region_still_propagates_faults(tmp_path):
    region, _ = _infer_region(tmp_path, name="bare")
    injector = FaultInjector()
    injector.script(SURROGATE, "raise", at=[0])
    x = np.ones((2, 2))
    y = np.empty(2)
    with injector:
        with pytest.raises(InjectedFault):
            region(x, y, 2)


# ----------------------------------------------------------------------
# Crash-safe, checksummed model files
# ----------------------------------------------------------------------

def test_save_model_is_atomic_and_checksummed(tmp_path):
    path = tmp_path / "m.rnm"
    save_model(_linear_model(1.5), path)
    assert not path.with_name(path.name + ".tmp").exists()
    blob = path.read_bytes()
    assert FOOTER_MAGIC in blob[-20:]
    model = load_model(path)
    np.testing.assert_allclose(model[0].weight.data, [[1.5, 1.5]])


def test_load_model_rejects_single_flipped_payload_bit(tmp_path):
    path = tmp_path / "m.rnm"
    save_model(_linear_model(), path)
    blob = bytearray(path.read_bytes())
    blob[-40] ^= 0x01                     # one bit, deep in the payload
    path.write_bytes(bytes(blob))
    with pytest.raises(ModelFormatError, match="checksum"):
        load_model(path)


def test_load_model_accepts_legacy_footerless_file(tmp_path):
    path = tmp_path / "legacy.rnm"
    save_model(_linear_model(2.5), path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-20])          # strip footer: pre-footer file
    model = load_model(path)
    np.testing.assert_allclose(model[0].weight.data, [[2.5, 2.5]])


# ----------------------------------------------------------------------
# Tolerant training-DB reads
# ----------------------------------------------------------------------

def test_truncated_db_recovers_prefix_rows(tmp_path):
    db = tmp_path / "t.rh5"
    coll = DataCollector(db)
    coll.record("r", np.arange(16.0).reshape(8, 2),
                np.arange(8.0).reshape(8, 1), 0.1)
    coll.close()
    blob = db.read_bytes()
    db.write_bytes(blob[:-11])            # torn final record
    with pytest.warns(RuntimeWarning, match="truncated"):
        x, y, t = load_training_data(db, "r")
    assert len(x) == len(y) == len(t) > 0
    np.testing.assert_array_equal(x, np.arange(2.0 * len(x)).reshape(-1, 2))


# ----------------------------------------------------------------------
# Verified hot-swap: corrupt candidates roll back
# ----------------------------------------------------------------------

def test_hot_swap_corrupt_candidate_rolls_back(tmp_path):
    path = tmp_path / "m.rnm"
    save_model(_linear_model(1.0), path)
    engine = InferenceEngine()
    x = np.ones((2, 2))
    np.testing.assert_allclose(engine.infer(path, x).ravel(), [2.0, 2.0])

    injector = FaultInjector()
    injector.script(HOT_SWAP, "truncate", at=[0], keep=0.6)
    with injector:
        with pytest.raises(HotSwapError):
            hot_swap_model(_linear_model(10.0), path, engines=[engine])
    # Rollback: deployed model intact, no temp litter, engine unchanged.
    assert not path.with_name(path.name + ".swap").exists()
    np.testing.assert_allclose(engine.infer(path, x).ravel(), [2.0, 2.0])

    # Without the fault the same swap goes through.
    hot_swap_model(_linear_model(10.0), path, engines=[engine])
    np.testing.assert_allclose(engine.infer(path, x).ravel(), [20.0, 20.0])


def test_hot_swap_rejects_non_finite_candidate(tmp_path):
    path = tmp_path / "m.rnm"
    save_model(_linear_model(1.0), path)
    bad = _linear_model(1.0)
    bad[0].weight.data = np.array([[np.nan, np.nan]])
    with pytest.raises(HotSwapError, match="non-finite"):
        hot_swap_model(bad, path, verify_inputs=np.ones((4, 2)))
    model = load_model(path)              # prior weights intact
    np.testing.assert_allclose(model[0].weight.data, [[1.0, 1.0]])


def test_db_read_seam_scripts_stale_and_failing_reads(tmp_path):
    db = tmp_path / "s.rh5"
    coll = DataCollector(db)
    coll.record("r", np.ones((8, 2)), np.ones((8, 1)), 0.1)
    coll.close()
    injector = FaultInjector()
    injector.script(DB_READ, "stale", at=[0], rows=3)
    injector.script(DB_READ, "raise", at=[1])
    with injector:
        assert db_row_count(db, "r") == 3           # stale replica
        with pytest.raises(InjectedFault):
            db_row_count(db, "r")
        assert db_row_count(db, "r") == 8           # healthy again


# ----------------------------------------------------------------------
# RetrainWorker: retries, watchdog, bounded errors, safe stop
# ----------------------------------------------------------------------

def _seed_worker_db(tmp_path, name="w", rows=64):
    rng = np.random.default_rng(5)
    x = rng.random((rows, 2))
    y = (2.0 * x[:, 0] + 3.0 * x[:, 1]).reshape(-1, 1)
    coll = DataCollector(tmp_path / f"{name}.rh5")
    coll.record(name, x, y, 0.01)
    coll.close()
    save_model(_linear_model(0.0), tmp_path / f"{name}.rnm")


def _watch(worker, tmp_path, name="w", **kwargs):
    return worker.watch(
        name, tmp_path / f"{name}.rh5", tmp_path / f"{name}.rnm",
        build=lambda xt, yt: Sequential(
            Linear(2, 1, rng=np.random.default_rng(1))),
        trainer_kwargs=dict(lr=0.1, batch_size=32, max_epochs=50,
                            patience=20),
        min_new_rows=16, **kwargs)


def test_worker_retries_through_transient_trainer_crashes(tmp_path):
    worker = RetrainWorker(
        seed=0, retry=RetryPolicy(max_attempts=3, base_delay=0.0,
                                  sleep=lambda _s: None))
    spec = _watch(worker, tmp_path)
    _seed_worker_db(tmp_path)
    injector = FaultInjector()
    injector.script(TRAINER, "raise", at=[0, 1])    # crash, crash, ok
    with injector:
        events = worker.poll()
    assert len(events) == 1                          # healed via retry
    assert spec.consecutive_failures == 0
    assert len(worker.errors) == 2                   # both attempts logged
    assert all("retrying" in e for e in worker.errors)


def test_worker_contains_persistent_failure_and_recovers(tmp_path):
    worker = RetrainWorker(seed=0)                   # no retries
    spec = _watch(worker, tmp_path)
    _seed_worker_db(tmp_path)
    injector = FaultInjector()
    injector.script(TRAINER, "raise", at=[0, 1, 2])
    with injector:
        for _ in range(3):
            assert worker.poll() == []               # contained, no raise
    assert spec.consecutive_failures == 3
    assert spec.trained_rows == 0                    # never advanced
    assert len(worker.errors) == 3
    events = worker.poll()                           # faults exhausted
    assert len(events) == 1
    assert spec.consecutive_failures == 0            # recovery logged


def test_worker_watchdog_bounds_hung_trainer(tmp_path):
    worker = RetrainWorker(seed=0, job_timeout=0.1)
    spec = _watch(worker, tmp_path)
    _seed_worker_db(tmp_path)
    injector = FaultInjector()
    injector.script(TRAINER, "hang", at=[0], seconds=30.0)
    start = time.perf_counter()
    with injector:
        assert worker.poll() == []
    assert time.perf_counter() - start < 5.0         # not 30s
    assert spec.consecutive_failures == 1
    assert "WatchdogTimeout" in worker.errors[-1]
    events = worker.poll()                           # lock was released
    assert len(events) == 1


def test_worker_error_list_is_bounded(tmp_path):
    worker = RetrainWorker(seed=0, max_errors=5)
    _watch(worker, tmp_path)
    _seed_worker_db(tmp_path)
    injector = FaultInjector()
    injector.script(TRAINER, "raise")                # every attempt fails
    with injector:
        for _ in range(12):
            worker.poll()
    assert len(worker.errors) == 5                   # capped, newest kept
    snap = worker.snapshot()
    assert snap["watched"]["w"]["consecutive_failures"] == 12


def test_worker_stop_times_out_on_hung_retrain(tmp_path):
    worker = RetrainWorker(seed=0)                   # no watchdog: hangs
    _watch(worker, tmp_path)
    _seed_worker_db(tmp_path)
    release = threading.Event()
    original = worker._train_step

    def hang_forever(spec, rng_seed):
        release.wait(30.0)
        return original(spec, rng_seed)

    worker._train_step = hang_forever
    worker.start(interval=0.01)
    time.sleep(0.1)                                  # let a poll wedge
    start = time.perf_counter()
    assert worker.stop(timeout=0.2) == []
    assert time.perf_counter() - start < 5.0
    assert not worker.running
    assert any("failed to join" in e for e in worker.errors)
    release.set()                                    # unblock daemon
