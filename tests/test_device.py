"""Simulated device: clock accounting, transfers, memory-space safety."""

import time

import numpy as np
import pytest

from repro.device import (Device, DeviceBuffer, MemorySpace, TransferModel,
                          VirtualClock, WrongSpaceError)


def test_clock_advance_and_measure():
    clock = VirtualClock()
    clock.advance(1.5)
    assert clock.simulated == pytest.approx(1.5)
    with clock.measure():
        time.sleep(0.01)
    assert clock.measured >= 0.01
    assert clock.now == pytest.approx(clock.measured + clock.simulated)


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_clock_reset():
    clock = VirtualClock()
    clock.advance(2.0)
    clock.reset()
    assert clock.now == 0.0


def test_transfer_model_cost():
    model = TransferModel(bandwidth_bytes_per_s=1e9, latency_s=1e-5)
    assert model.cost(0) == pytest.approx(1e-5)
    assert model.cost(10 ** 9) == pytest.approx(1.0 + 1e-5)
    with pytest.raises(ValueError):
        model.cost(-1)


def test_device_roundtrip_preserves_data():
    dev = Device()
    x = np.random.default_rng(0).normal(size=(100, 4))
    buf = dev.to_device(x)
    assert buf.space is MemorySpace.DEVICE
    y = dev.to_host(buf)
    np.testing.assert_array_equal(x, y)
    # Copies, not aliases: mutating the host array later is safe.
    x[0, 0] = 999
    assert buf.array[0, 0] != 999


def test_device_charges_transfer_time():
    dev = Device(TransferModel(bandwidth_bytes_per_s=1e6, latency_s=0.0))
    x = np.zeros(125000)  # 1 MB
    dev.to_device(x)
    assert dev.clock.simulated == pytest.approx(1.0)
    assert dev.bytes_to_device == x.nbytes


def test_device_buffer_space_enforcement():
    buf = DeviceBuffer(np.zeros(3), MemorySpace.HOST)
    with pytest.raises(WrongSpaceError):
        buf.require(MemorySpace.DEVICE)
    dev = Device()
    with pytest.raises(WrongSpaceError):
        dev.to_host(buf)   # host buffer cannot be copied "back"


def test_device_launch_measures_and_counts():
    dev = Device()
    out = dev.launch(lambda a, b: a + b, 2, 3)
    assert out == 5
    assert dev.kernel_launches == 1
    assert dev.clock.measured > 0


def test_device_reset_counters():
    dev = Device()
    dev.to_device(np.zeros(10))
    dev.launch(lambda: None)
    dev.reset_counters()
    assert dev.bytes_to_device == 0
    assert dev.kernel_launches == 0
    assert dev.clock.now == 0.0
