"""Layer zoo: shapes, Module mechanics, state dicts."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def test_linear_shapes_and_layout():
    rng = np.random.default_rng(0)
    layer = nn.Linear(5, 3, rng=rng)
    out = layer(np.ones((7, 5)))
    assert out.shape == (7, 3)
    # Torch layout: weight is (out, in).
    assert layer.weight.shape == (3, 5)
    assert layer.bias.shape == (3,)


def test_linear_no_bias():
    layer = nn.Linear(4, 2, bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


@pytest.mark.parametrize("cls,kwargs,in_shape,out_shape", [
    (nn.Conv2d, dict(in_channels=3, out_channels=8, kernel_size=3),
     (2, 3, 10, 10), (2, 8, 8, 8)),
    (nn.Conv2d, dict(in_channels=1, out_channels=4, kernel_size=3,
                     stride=2, padding=1), (1, 1, 9, 9), (1, 4, 5, 5)),
    (nn.MaxPool2d, dict(kernel_size=2), (1, 3, 8, 8), (1, 3, 4, 4)),
    (nn.AvgPool2d, dict(kernel_size=2), (1, 3, 8, 8), (1, 3, 4, 4)),
])
def test_spatial_layer_shapes(cls, kwargs, in_shape, out_shape):
    layer = cls(**kwargs)
    assert layer(np.ones(in_shape)).shape == out_shape


def test_conv1d_shape():
    layer = nn.Conv1d(2, 6, 5, stride=3)
    assert layer(np.ones((4, 2, 20))).shape == (4, 6, 6)


def test_flatten():
    assert nn.Flatten()(np.ones((2, 3, 4, 5))).shape == (2, 60)
    assert nn.Flatten(start_dim=2)(np.ones((2, 3, 4, 5))).shape == (2, 3, 20)


def test_croppad2d_crop_and_pad():
    layer = nn.CropPad2d(5, 7)
    assert layer(np.ones((1, 2, 9, 9))).shape == (1, 2, 5, 7)
    out = layer(Tensor(np.ones((1, 2, 3, 4))))
    assert out.shape == (1, 2, 5, 7)
    assert out.numpy()[0, 0, 4, 6] == 0.0   # padded region is zero
    assert out.numpy()[0, 0, 2, 3] == 1.0


def test_croppad2d_gradient_flows():
    layer = nn.CropPad2d(2, 2)
    x = Tensor(np.ones((1, 1, 3, 3)), requires_grad=True)
    layer(x).sum().backward()
    np.testing.assert_allclose(x.grad, [[[[1, 1, 0], [1, 1, 0], [0, 0, 0]]]])


def test_standardize_destandardize_inverse():
    mean = np.array([1.0, -2.0])
    std = np.array([2.0, 0.5])
    f = nn.Standardize(mean, std)
    g = nn.Destandardize(mean, std)
    x = np.random.default_rng(0).normal(size=(5, 2))
    np.testing.assert_allclose(g(f(Tensor(x))).numpy(), x, atol=1e-12)


def test_standardize_rejects_zero_std():
    with pytest.raises(ValueError):
        nn.Standardize(np.zeros(2), np.array([1.0, 0.0]))


def test_batchnorm_train_and_eval():
    bn = nn.BatchNorm1d(3)
    rng = np.random.default_rng(1)
    x = rng.normal(loc=5.0, scale=2.0, size=(64, 3))
    out = bn(Tensor(x)).numpy()
    assert abs(out.mean()) < 0.1
    assert abs(out.std() - 1.0) < 0.1
    bn.eval()
    out2 = bn(Tensor(x)).numpy()   # running stats differ from batch stats
    assert out2.shape == (64, 3)


def test_layernorm():
    ln = nn.LayerNorm(8)
    x = np.random.default_rng(2).normal(size=(4, 8)) * 10 + 3
    out = ln(Tensor(x)).numpy()
    np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)


def test_sequential_iteration_and_indexing():
    seq = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
    assert len(seq) == 3
    assert isinstance(seq[1], nn.ReLU)
    assert [type(l).__name__ for l in seq] == ["Linear", "ReLU", "Linear"]
    out = seq(np.ones((5, 4)))
    assert out.shape == (5, 2)


def test_named_parameters_nested():
    seq = nn.Sequential(nn.Linear(2, 3), nn.Sequential(nn.Linear(3, 4)))
    names = dict(seq.named_parameters())
    assert "layers.0.weight" in names
    assert "layers.1.layers.0.bias" in names
    assert seq.num_parameters() == (2 * 3 + 3) + (3 * 4 + 4)


def test_state_dict_roundtrip():
    a = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
    b = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
    b.load_state_dict(a.state_dict())
    x = np.random.default_rng(3).normal(size=(6, 3))
    np.testing.assert_allclose(a(x).numpy(), b(x).numpy())


def test_state_dict_mismatch_errors():
    a = nn.Sequential(nn.Linear(3, 4))
    b = nn.Sequential(nn.Linear(3, 4), nn.Linear(4, 2))
    with pytest.raises(KeyError):
        b.load_state_dict(a.state_dict())
    state = a.state_dict()
    state["layers.0.weight"] = np.zeros((9, 9))
    with pytest.raises(ValueError):
        a.load_state_dict(state)


def test_train_eval_propagates():
    seq = nn.Sequential(nn.Dropout(0.5), nn.Sequential(nn.Dropout(0.3)))
    seq.eval()
    assert all(not m.training for m in seq.modules())
    seq.train()
    assert all(m.training for m in seq.modules())


def test_dropout_validation():
    with pytest.raises(ValueError):
        nn.Dropout(1.0)
    with pytest.raises(ValueError):
        nn.Dropout(-0.1)


def test_dropout_identity_in_eval():
    d = nn.Dropout(0.9)
    d.eval()
    x = np.ones((10, 10))
    np.testing.assert_allclose(d(x).numpy(), x)


def test_zero_grad_clears():
    layer = nn.Linear(2, 2)
    out = layer(np.ones((1, 2)))
    out.sum().backward()
    assert layer.weight.grad is not None
    layer.zero_grad()
    assert layer.weight.grad is None
