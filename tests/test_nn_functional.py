"""Convolution/pooling kernels vs naive references, adjoint checks."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def naive_conv2d(x, w, b, stride=1, padding=0):
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
        h += 2 * padding
        wdt += 2 * padding
    oh = (h - kh) // stride + 1
    ow = (wdt - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for i in range(n):
        for o in range(c_out):
            for y in range(oh):
                for z in range(ow):
                    patch = x[i, :, y * stride:y * stride + kh,
                              z * stride:z * stride + kw]
                    out[i, o, y, z] = (patch * w[o]).sum()
            if b is not None:
                out[i, o] += b[o]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (1, 1), (2, 2)])
def test_conv2d_matches_naive(stride, padding):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 8, 7))
    w = rng.normal(size=(4, 3, 3, 3))
    b = rng.normal(size=4)
    got = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride, padding).numpy()
    want = naive_conv2d(x, w, b, stride, padding)
    np.testing.assert_allclose(got, want, atol=1e-10)


def test_conv2d_channel_mismatch():
    with pytest.raises(ValueError):
        F.conv2d(Tensor(np.zeros((1, 2, 4, 4))),
                 Tensor(np.zeros((3, 5, 2, 2))))


def test_conv2d_gradients_match_numeric():
    rng = np.random.default_rng(1)
    x0 = rng.normal(size=(1, 2, 5, 5))
    w0 = rng.normal(size=(3, 2, 2, 2))
    b0 = rng.normal(size=3)
    x = Tensor(x0.copy(), requires_grad=True)
    w = Tensor(w0.copy(), requires_grad=True)
    b = Tensor(b0.copy(), requires_grad=True)
    F.conv2d(x, w, b, stride=2, padding=1).sum().backward()

    eps = 1e-6
    for arr0, tensor, make in [
            (w0, w, lambda v: naive_conv2d(x0, v, b0, 2, 1)),
            (b0, b, lambda v: naive_conv2d(x0, w0, v, 2, 1)),
            (x0, x, lambda v: naive_conv2d(v, w0, b0, 2, 1))]:
        num = np.zeros_like(arr0)
        flat = arr0.ravel()
        nflat = num.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = make(arr0).sum()
            flat[i] = orig - eps
            down = make(arr0).sum()
            flat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(tensor.grad, num, atol=1e-4)


def test_im2col_col2im_adjoint():
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    rng = np.random.default_rng(2)
    x = rng.normal(size=(2, 3, 6, 5))
    kh, kw, stride, pad = 3, 2, 2, 1
    cols = F.im2col(x, kh, kw, stride, pad)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    back = F.col2im(y, x.shape, kh, kw, stride, pad)
    rhs = float((x * back).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_max_pool2d_values_and_grad():
    x0 = np.arange(16.0).reshape(1, 1, 4, 4)
    x = Tensor(x0.copy(), requires_grad=True)
    out = F.max_pool2d(x, 2)
    np.testing.assert_allclose(out.numpy(),
                               [[[[5, 7], [13, 15]]]])
    out.sum().backward()
    want = np.zeros((1, 1, 4, 4))
    want[0, 0, 1, 1] = want[0, 0, 1, 3] = 1
    want[0, 0, 3, 1] = want[0, 0, 3, 3] = 1
    np.testing.assert_allclose(x.grad, want)


def test_max_pool2d_strided():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(1, 2, 7, 7))
    out = F.max_pool2d(Tensor(x), kernel=3, stride=2).numpy()
    assert out.shape == (1, 2, 3, 3)
    assert out[0, 0, 0, 0] == x[0, 0, :3, :3].max()
    assert out[0, 1, 2, 2] == x[0, 1, 4:7, 4:7].max()


def test_avg_pool2d():
    x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
    out = F.avg_pool2d(x, 2)
    np.testing.assert_allclose(out.numpy(), [[[[2.5, 4.5], [10.5, 12.5]]]])
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))


def test_max_pool1d():
    x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0, 4.0, 0.0]]]),
               requires_grad=True)
    out = F.max_pool1d(x, kernel=2)
    np.testing.assert_allclose(out.numpy(), [[[3, 5, 4]]])
    out.sum().backward()
    np.testing.assert_allclose(x.grad, [[[0, 1, 0, 1, 1, 0]]])


def test_conv1d_matches_conv2d():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(2, 3, 10))
    w = rng.normal(size=(5, 3, 4))
    got = F.conv1d(Tensor(x), Tensor(w), stride=2).numpy()
    want = naive_conv2d(x[:, :, None, :], w[:, :, None, :], None,
                        stride=2)[:, :, 0, :]
    np.testing.assert_allclose(got, want, atol=1e-10)


def test_dropout_train_vs_eval():
    rng = np.random.default_rng(5)
    x = Tensor(np.ones((100, 100)))
    out_eval = F.dropout(x, 0.5, training=False, rng=rng)
    assert out_eval is x
    out_train = F.dropout(x, 0.5, training=True, rng=rng).numpy()
    kept = out_train != 0
    assert 0.35 < kept.mean() < 0.65
    # Inverted scaling preserves the expectation.
    assert out_train.mean() == pytest.approx(1.0, abs=0.1)


def test_softmax_normalizes():
    rng = np.random.default_rng(6)
    x = Tensor(rng.normal(size=(4, 7)) * 30)  # large values: stability check
    s = F.softmax(x).numpy()
    np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), atol=1e-12)
    assert np.all(s >= 0)
    ls = F.log_softmax(x).numpy()
    np.testing.assert_allclose(np.exp(ls), s, atol=1e-10)


def test_conv_output_size():
    assert F.conv_output_size(10, 3, 1) == 8
    assert F.conv_output_size(10, 3, 2) == 4
    assert F.conv_output_size(10, 3, 1, padding=1) == 10
