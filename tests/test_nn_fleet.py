"""Fleet GEMM: stacked cross-model execution for serving and NAS.

Satellite acceptance for the fleet subsystem:

* stacked forward rows are **bitwise** each member's own compiled
  forward on Table IV MLP shapes;
* batched training gradients match the autodiff graph at <= 1e-10
  for K in {1, 2, 8};
* hot-swapping one member rewrites exactly one slab row (no other
  member disturbed, no plan rebuild);
* fleet early-stopping retires each member at exactly the epoch its
  own sequential ``Trainer`` would stop, with bitwise-equal history;
* structurally mixed groups refuse (``UnsupportedLayerError``);
* the serving lane batches same-fingerprint regions through one
  stacked forward while a member decided onto the accurate path runs
  its normal single-model invocation.
"""

import numpy as np
import pytest

from repro.nn import (FleetTrainer, Linear, Sequential, Tensor, Trainer,
                      UnsupportedLayerError, compile_fleet_inference,
                      compile_fleet_training, compile_inference, mse_loss,
                      save_model)
from repro.search.builders import build_mlp2

pytestmark = pytest.mark.fleet

PARITY = 1e-10

#: Table IV mlp2 architectures (best-found plus a 1-hidden-layer case).
TABLE_IV_MLP2 = [(418, 333), (57, 37), (64, 0)]


# ----------------------------------------------------------------------
# Stacked forward: bitwise parity with per-member compiled plans
# ----------------------------------------------------------------------

@pytest.mark.parametrize("h1,h2", TABLE_IV_MLP2)
def test_fleet_forward_bitwise_on_table_iv_shapes(h1, h2):
    cfg = {"hidden1_features": h1, "hidden2_features": h2}
    models = [build_mlp2(cfg, 6, 1, seed=s) for s in range(4)]
    fleet = compile_fleet_inference(models)
    x = np.random.default_rng(0).normal(size=(32, 6))
    stacked = fleet(x)
    for k, model in enumerate(models):
        single = compile_inference(model)(x)
        assert np.abs(stacked[k] - single).max() == 0.0


def test_fleet_forward_accepts_stacked_member_batches():
    cfg = {"hidden1_features": 11, "hidden2_features": 5}
    models = [build_mlp2(cfg, 4, 2, seed=s) for s in range(3)]
    fleet = compile_fleet_inference(models)
    rng = np.random.default_rng(1)
    xs = rng.normal(size=(3, 16, 4))           # per-member inputs
    stacked = fleet(xs)
    for k, model in enumerate(models):
        single = compile_inference(model)(xs[k])
        assert np.abs(stacked[k] - single).max() == 0.0


# ----------------------------------------------------------------------
# Batched training: gradient parity with the autodiff graph
# ----------------------------------------------------------------------

@pytest.mark.parametrize("k", [1, 2, 8])
def test_fleet_training_grad_parity(k):
    cfg = {"hidden1_features": 12, "hidden2_features": 7}
    models = [build_mlp2(cfg, 3, 2, seed=s) for s in range(k)]
    rng = np.random.default_rng(1)
    x = rng.normal(size=(16, 3))
    y = rng.normal(size=(16, 2))
    plan = compile_fleet_training(models, mse_loss)
    losses = plan.train_batch(x, y)
    for m, model in enumerate(models):
        # train_batch leaves the member models' live parameters (and
        # .grad slots) untouched, so the graph backward on the same
        # objects is an independent reference.
        model.train()
        model.zero_grad()
        loss = mse_loss(model(Tensor(x)), Tensor(y))
        loss.backward()
        row = plan.row_of[m]
        assert abs(losses[row] - loss.item()) <= PARITY
        for (step, si, lo, hi, shape) in plan._psegs:
            holder, _attr = step.param_sources()[si][row]
            got = plan.grads[row, lo:hi].reshape(shape)
            assert np.abs(got - holder.grad).max() <= PARITY


# ----------------------------------------------------------------------
# Hot swap: one slab row, nothing else
# ----------------------------------------------------------------------

def test_hot_swap_rewrites_exactly_one_slab_row():
    cfg = {"hidden1_features": 9, "hidden2_features": 5}
    models = [build_mlp2(cfg, 4, 1, seed=s) for s in range(3)]
    plan = compile_fleet_inference(models)
    before = plan.slab.copy()
    digests = [plan.member_digest(k) for k in range(3)]

    new = build_mlp2(cfg, 4, 1, seed=9)
    plan.replace_member(1, new)
    assert np.array_equal(plan.slab[0], before[0])
    assert np.array_equal(plan.slab[2], before[2])
    assert not np.array_equal(plan.slab[1], before[1])
    assert plan.member_digest(0) == digests[0]
    assert plan.member_digest(1) != digests[1]
    assert plan.member_digest(2) == digests[2]

    x = np.random.default_rng(2).normal(size=(8, 4))
    out = plan(x)
    assert np.abs(out[1] - compile_inference(new)(x)).max() == 0.0
    assert np.abs(out[0] - compile_inference(models[0])(x)).max() == 0.0


def test_hot_swap_refuses_mismatched_fingerprint():
    cfg = {"hidden1_features": 9, "hidden2_features": 5}
    plan = compile_fleet_inference(
        [build_mlp2(cfg, 4, 1, seed=s) for s in range(2)])
    other = build_mlp2({"hidden1_features": 9, "hidden2_features": 0},
                       4, 1, seed=3)
    with pytest.raises(UnsupportedLayerError):
        plan.replace_member(0, other)


# ----------------------------------------------------------------------
# Early-stop masking: lockstep fit == sequential fits
# ----------------------------------------------------------------------

def test_fleet_early_stop_matches_sequential_epochs():
    cfg = {"hidden1_features": 10, "hidden2_features": 6}
    lrs = [3e-3, 1e-2, 0.3, 1e-3]

    def build(seed):
        return build_mlp2(cfg, 2, 1, dropout=0.2, seed=seed)

    rng = np.random.default_rng(0)
    x = rng.normal(size=(96, 2))
    y = x[:, :1] * np.sin(x[:, 1:]) + 0.1
    xt, yt, xv, yv = x[24:], y[24:], x[:24], y[:24]

    fleet_models = [build(s) for s in range(len(lrs))]
    fleet = FleetTrainer(fleet_models, lr=lrs, batch_size=16,
                         max_epochs=12, patience=2, seed=5)
    fleet_results = fleet.fit(xt, yt, xv, yv)

    for s, lr in enumerate(lrs):
        seq_model = build(s)
        seq = Trainer(seq_model, lr=lr, batch_size=16, max_epochs=12,
                      patience=2, seed=5, compiled=True)
        res = seq.fit(xt, yt, xv, yv)
        assert seq.compiled_active
        fr = fleet_results[s]
        assert fr.epochs_run == res.epochs_run
        assert fr.best_val_loss == pytest.approx(res.best_val_loss,
                                                 abs=PARITY)
        for hf, hs in zip(fr.history, res.history):
            assert hf["train"] == pytest.approx(hs["train"], abs=PARITY)
            assert hf["val"] == pytest.approx(hs["val"], abs=PARITY)
        for pf, ps in zip(fleet_models[s].parameters(),
                          seq_model.parameters()):
            assert np.abs(pf.data - ps.data).max() <= PARITY
    # The masking actually triggered: members stopped at different
    # epochs, so later batched kernels ran on a shrunken prefix.
    assert len({r.epochs_run for r in fleet_results}) > 1


# ----------------------------------------------------------------------
# Mixed fingerprints refuse
# ----------------------------------------------------------------------

def test_mixed_fingerprint_group_refused():
    a = build_mlp2({"hidden1_features": 8, "hidden2_features": 4},
                   3, 1, seed=0)
    b = build_mlp2({"hidden1_features": 8, "hidden2_features": 0},
                   3, 1, seed=1)
    with pytest.raises(UnsupportedLayerError):
        compile_fleet_inference([a, b])
    with pytest.raises(UnsupportedLayerError):
        compile_fleet_training([a, b], mse_loss)


# ----------------------------------------------------------------------
# Serving lane: batched fleet wave with per-member path decisions
# ----------------------------------------------------------------------

def _linear_region(tmp_path, name, weight):
    """2->1 region whose accurate kernel computes ``10 * row_sum`` and
    whose saved model predicts ``weight * row_sum``."""
    from repro.api import approx_ml
    from repro.runtime import EventLog

    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, tmp_path / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""

    @approx_ml(src, name=name, event_log=EventLog())
    def region(x, y, N, use_model=False):
        y[:N] = x[:N].sum(axis=1) * 10.0

    return region


def test_serving_lane_batches_fleet_and_respects_paths(tmp_path):
    from repro.serving import RegionServer

    server = RegionServer()
    for name, w in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
        server.register(_linear_region(tmp_path, name, w))
    formed = server.enable_fleets(min_members=2)
    assert len(formed) == 1
    assert sorted(next(iter(formed.values()))) == ["a", "b", "c"]

    x = np.arange(8.0).reshape(4, 2)
    ya, yb, yc = np.empty(4), np.empty(4), np.empty(4)
    server.invoke_fleet([
        ("a", (x, ya, 4), {"use_model": True}),
        ("b", (x, yb, 4), {"use_model": False}),    # accurate path
        ("c", (x, yc, 4), {"use_model": True}),
    ])
    rowsum = x.sum(axis=1)
    np.testing.assert_array_equal(ya, 1.0 * rowsum)
    np.testing.assert_array_equal(yb, 10.0 * rowsum)
    np.testing.assert_array_equal(yc, 3.0 * rowsum)

    members = server.snapshot()["fleets"]["groups"][0]["members"]
    assert members["a"]["invocations"] == 1
    assert members["b"]["invocations"] == 0          # served accurate
    assert members["c"]["invocations"] == 1

    # The stacked answer is bitwise the member's own single-model path.
    y_direct = np.empty(4)
    server.region("a")(x, y_direct, 4, use_model=True)
    np.testing.assert_array_equal(ya, y_direct)
    server.close()
