"""ProcessPoolBackend: shared-memory transport, crash paths, hot-swap.

Also hosts the backend conformance suite (ordering, drain-quiescence,
close semantics) parameterized over Serial/Thread/Process — the
contract every backend must satisfy — and the drain/close atomicity
regression test for :class:`ThreadPoolBackend`.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, Sequential, save_model
from repro.obs.registry import MetricsRegistry
from repro.serving import (ProcessPoolBackend, RegionServer, RetrainWorker,
                           SerialBackend, SlabRing, ThreadPoolBackend,
                           WorkerCrashed, WorkerTimeout, db_row_count,
                           hot_swap_model)
from repro.serving.shm import WorkerHandle

pytestmark = pytest.mark.serving


def _mk_region(tmp_path, name, *, weight=1.0, scale=1.0, auto_batch=False,
               calls=None):
    """A 2->1 region: model predicts ``weight * row_sum``, the accurate
    kernel writes ``scale * row_sum`` (and records to ``calls``)."""
    model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    model[0].weight.data = np.array([[weight, weight]])
    model[0].bias.data = np.array([0.0])
    save_model(model, tmp_path / f"{name}.rnm")
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""

    @approx_ml(src, name=name, auto_batch=auto_batch)
    def region(x, y, N, use_model=False):
        if calls is not None:
            calls.append(N)
        y[:N] = x[:N].sum(axis=1) * scale

    return region


def _make_backend(kind):
    if kind == "serial":
        return SerialBackend()
    if kind == "thread":
        return ThreadPoolBackend()
    return ProcessPoolBackend(workers=2, request_timeout=30.0)


def _wait(result):
    return result.result() if hasattr(result, "result") else result


BACKENDS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Backend conformance suite
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_per_region_ordering(tmp_path, kind):
    """Invocations of one region run in submission order."""
    calls = []
    region = _mk_region(tmp_path, f"ord-{kind}", calls=calls)
    server = RegionServer(backend=_make_backend(kind))
    server.register(region)
    x = np.ones((20, 2))
    y = np.zeros(20)
    futures = [server.invoke(f"ord-{kind}", x[:n], y[:n], n,
                             use_model=False)
               for n in range(1, 21)]
    for fut in futures:
        _wait(fut)
    server.close()
    assert calls == list(range(1, 21))


@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_drain_quiescence(tmp_path, kind):
    """Outputs of batched (deferred) invocations land by drain time."""
    region = _mk_region(tmp_path, f"qsc-{kind}", weight=1.0,
                        auto_batch=True)
    server = RegionServer(backend=_make_backend(kind))
    server.register(region)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 2))
    ys = [np.zeros(8) for _ in range(5)]
    for y in ys:
        _wait(server.invoke(f"qsc-{kind}", x, y, 8, use_model=True))
    server.drain()                      # queue (40 rows < 256) must land
    for y in ys:
        np.testing.assert_allclose(y, x.sum(axis=1), atol=1e-12)
    server.close()


@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_double_close_idempotent(kind):
    backend = _make_backend(kind)
    backend.close()
    backend.close()                     # second close must be a no-op


@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_submit_and_drain_after_close_raise(tmp_path, kind):
    region = _mk_region(tmp_path, f"cls-{kind}")
    backend = _make_backend(kind)
    server = RegionServer(backend=backend)
    server.register(region)
    served = server.served(f"cls-{kind}")
    backend.close()
    with pytest.raises(RuntimeError, match="backend is closed"):
        backend.submit(served, served.region,
                       (np.ones((1, 2)), np.zeros(1), 1), {})
    with pytest.raises(RuntimeError, match="backend is closed"):
        backend.drain([served])


def test_thread_drain_close_race_is_atomic(tmp_path):
    """A drain racing close() either flushes every region or raises
    before scheduling any flush — never "backend is closed" halfway.

    Regression: drain used to call self.submit per region, so a close
    landing mid-list left some regions flushed and raised on the rest.
    """
    n_regions = 6
    flushes = []
    lock = threading.Lock()

    class _Region:
        def __init__(self, tag):
            self.tag = tag

        def flush(self):
            with lock:
                flushes.append(self.tag)

    class _Served:
        def __init__(self, i, round_no):
            self.name = f"r{i}"
            self.region = _Region((round_no, i))

    for round_no in range(30):
        backend = ThreadPoolBackend()
        served = [_Served(i, round_no) for i in range(n_regions)]
        backend.drain(served)           # warm the executors
        start = threading.Barrier(2)
        outcome = {}

        def drainer():
            start.wait()
            try:
                backend.drain(served)
                outcome["drained"] = True
            except RuntimeError as exc:
                outcome["error"] = str(exc)

        t = threading.Thread(target=drainer)
        t.start()
        start.wait()
        backend.close()
        t.join()

        this_round = [tag for tag in flushes if tag[0] == round_no]
        if "drained" in outcome:
            # drain won: every region flushed twice (warm + raced).
            assert len(this_round) == 2 * n_regions
        else:
            # close won: only the warm-up flushes, none from the race.
            assert outcome["error"] == "backend is closed"
            assert len(this_round) == n_regions


# ----------------------------------------------------------------------
# SlabRing / worker transport
# ----------------------------------------------------------------------

def test_slab_ring_lease_release_cycle():
    ring = SlabRing(slot_floats=16, slots=2)
    a = ring.lease()
    b = ring.lease()
    assert ring.outstanding == 2
    with pytest.raises(WorkerTimeout):
        ring.lease(timeout=0.05)        # ring exhausted
    ring.slot(a)[:] = 1.0
    ring.slot(b)[:] = 2.0
    assert ring.slot(a)[0] == 1.0 and ring.slot(b)[0] == 2.0
    ring.release(a)
    c = ring.lease(timeout=0.5)         # released slab is reusable
    assert c == a
    ring.release(b)
    ring.release(c)
    ring.close()
    ring.close()                        # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        ring.lease(timeout=0.05)


def test_worker_timeout_kills_wedged_worker():
    import multiprocessing as mp
    handle = WorkerHandle(0, mp.get_context("fork"), request_timeout=0.5)
    assert handle.request(("ping",))[1] == handle.proc.pid
    start = time.perf_counter()
    with pytest.raises(WorkerTimeout):
        handle.request(("sleep", 30.0))
    assert time.perf_counter() - start < 5.0   # killed, not waited out
    assert not handle.alive
    with pytest.raises(WorkerCrashed):
        handle.request(("ping",))
    handle.close()


# ----------------------------------------------------------------------
# ProcessPoolBackend serving semantics
# ----------------------------------------------------------------------

def test_process_backend_matches_serial_outputs(tmp_path):
    """Both engine kinds (immediate + batched) round-trip through
    workers with outputs identical to in-process serving, and the hot
    path never pickles an array."""
    backend = ProcessPoolBackend(workers=2)
    server = RegionServer(backend=backend)
    imm = _mk_region(tmp_path, "imm", weight=2.0)
    bat = _mk_region(tmp_path, "bat", weight=3.0, auto_batch=True)
    server.register(imm)
    server.register(bat)
    assert backend.worker_for("imm") != backend.worker_for("bat")

    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 2))
    y_imm, y_bat = np.zeros(32), np.zeros(32)
    for _ in range(3):
        _wait(server.invoke("imm", x, y_imm, 32, use_model=True))
        _wait(server.invoke("bat", x, y_bat, 32, use_model=True))
    server.drain()
    np.testing.assert_allclose(y_imm, 2.0 * x.sum(axis=1), atol=1e-12)
    np.testing.assert_allclose(y_bat, 3.0 * x.sum(axis=1), atol=1e-12)
    for placement in backend._placements.values():
        assert placement.client.pickle_fallbacks == 0
    server.close()


def test_process_backend_close_restores_original_engines(tmp_path):
    region = _mk_region(tmp_path, "restore")
    original = region.engine
    backend = ProcessPoolBackend(workers=1)
    server = RegionServer(backend=backend)
    server.register(region)
    assert region.engine is not original
    x = np.ones((4, 2))
    y = np.zeros(4)
    _wait(server.invoke("restore", x, y, 4, use_model=True))
    server.close()
    assert region.engine is original
    # The region still serves, now on the in-process engine.
    region(x, y, 4, use_model=True)
    np.testing.assert_allclose(y, x.sum(axis=1), atol=1e-12)


def test_process_backend_worker_counters_fold_exactly(tmp_path):
    """Worker-local counters fold into the registry; a killed worker's
    last-known samples keep contributing (exact aggregates)."""
    registry = MetricsRegistry()
    backend = ProcessPoolBackend(workers=2, registry=registry)
    server = RegionServer(backend=backend)
    ra = _mk_region(tmp_path, "cnt-a")
    rb = _mk_region(tmp_path, "cnt-b")
    server.register(ra)
    server.register(rb)
    x = np.ones((8, 2))
    y = np.zeros(8)
    for _ in range(5):
        _wait(server.invoke("cnt-a", x, y, 8, use_model=True))
        _wait(server.invoke("cnt-b", x, y, 8, use_model=True))
    server.drain()
    rollup = registry.rollup("worker_infer_rows")
    assert rollup["value"] == 80        # 2 regions x 5 calls x 8 rows
    per_worker = registry.snapshot()["metrics"]["worker_infer_requests"]
    assert {s["labels"]["worker"] for s in per_worker} == {"0", "1"}
    assert sum(s["value"] for s in per_worker) == 10

    backend.kill_worker(0)
    # Dead worker: counters freeze at last pull instead of vanishing.
    rollup_after = registry.rollup("worker_infer_rows")
    assert rollup_after["value"] == 80
    hist = registry.rollup("worker_forward_seconds")
    assert hist["count"] == 10
    server.close()


def test_process_killed_worker_quarantined_not_hung(tmp_path):
    """Acceptance: a killed worker surfaces through the breaker/health
    path — invocations fail over to the accurate kernel, the breaker
    quarantines the region, and drain returns promptly."""
    backend = ProcessPoolBackend(workers=1)
    server = RegionServer(backend=backend)
    region = _mk_region(tmp_path, "victim", weight=1.0, scale=-1.0)
    server.register(region)
    server.attach_breakers(failure_threshold=1, quarantine_threshold=2,
                           probe_interval=1, recovery_successes=2)

    x = np.ones((4, 2))
    y = np.zeros(4)
    _wait(server.invoke("victim", x, y, 4, use_model=True))
    np.testing.assert_allclose(y, x.sum(axis=1))     # surrogate healthy

    backend.kill_worker(0)
    start = time.perf_counter()
    for _ in range(6):
        _wait(server.invoke("victim", x, y, 4, use_model=True))
    elapsed = time.perf_counter() - start
    np.testing.assert_allclose(y, -x.sum(axis=1))    # accurate fallback
    assert elapsed < 10.0                            # fail-fast, no hang

    snap = server.snapshot()
    assert snap["health"]["victim"]["state"] == "quarantined"
    worker = snap["backend_detail"]["workers"][0]
    assert not worker["alive"] and worker["dead_reason"]

    start = time.perf_counter()
    server.drain()                                   # must not hang
    assert time.perf_counter() - start < 5.0
    server.close()


def test_process_drain_with_dead_worker_fails_fast(tmp_path):
    """Unguarded batched region + dead worker: drain raises the crash
    promptly instead of hanging on the lost flush."""
    backend = ProcessPoolBackend(workers=1)
    server = RegionServer(backend=backend)
    region = _mk_region(tmp_path, "lost", auto_batch=True)
    server.register(region)
    x = np.ones((4, 2))
    y = np.zeros(4)
    _wait(server.invoke("lost", x, y, 4, use_model=True))  # queued
    backend.kill_worker(0)
    start = time.perf_counter()
    with pytest.raises(WorkerCrashed):
        server.drain()
    assert time.perf_counter() - start < 5.0
    backend.close()                      # restores engines despite crash
    assert not hasattr(region.engine, "client")


# ----------------------------------------------------------------------
# Hot-swap / retrain e2e on the process backend
# ----------------------------------------------------------------------

def _learnable_region(tmp_path, name):
    src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:use_model) in(x) out(y) \\
    db("{tmp_path}/{name}.rh5") model("{tmp_path}/{name}.rnm")
"""

    @approx_ml(src, name=name)
    def region(x, y, N, use_model=False):
        y[:N] = 2.0 * x[:N, 0] + 3.0 * x[:N, 1]

    return region


def test_process_backend_retrain_hot_swap_e2e(tmp_path):
    """Acceptance: collect → retrain → hot-swap on a live process
    backend.  The swap broadcasts plan-cache invalidation to workers
    (awaiting acks), so the very next served invocation runs the new
    weights — no worker restart."""
    registry = MetricsRegistry()
    backend = ProcessPoolBackend(workers=2, registry=registry)
    server = RegionServer(backend=backend)
    region = _learnable_region(tmp_path, "learn")
    server.register(region)

    bad = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    bad[0].weight.data = np.array([[0.0, 0.0]])
    bad[0].bias.data = np.array([0.0])
    save_model(bad, tmp_path / "learn.rnm")

    rng = np.random.default_rng(3)
    x = rng.random((64, 2))
    y = np.empty(64)
    # Served through the worker: the broken model predicts all zeros.
    _wait(server.invoke("learn", x, y, 64, use_model=True))
    np.testing.assert_allclose(y, 0.0, atol=1e-12)

    worker = RetrainWorker(seed=0)
    worker.watch(
        "learn", tmp_path / "learn.rh5", tmp_path / "learn.rnm",
        build=lambda xt, yt: Sequential(
            Linear(2, 1, rng=np.random.default_rng(1))),
        trainer_kwargs=dict(lr=0.1, batch_size=32, max_epochs=200,
                            patience=50),
        min_new_rows=32, engines=[region.engine])

    # Drift: collection path refreshes the DB through the server.
    _wait(server.invoke("learn", x, y, 64, use_model=False))
    server.drain()
    assert db_row_count(tmp_path / "learn.rh5", "learn") == 64
    events = worker.poll()               # retrains + hot-swaps
    assert len(events) == 1 and events[0].region == "learn"

    # Workers acked the invalidation broadcast during the swap.
    assert registry.rollup("worker_model_invalidations")["value"] >= 2

    y_pred = np.empty(64)
    _wait(server.invoke("learn", x, y_pred, 64, use_model=True))
    server.drain()
    ref = 2.0 * x[:, 0] + 3.0 * x[:, 1]
    rel = np.linalg.norm(y_pred - ref) / np.linalg.norm(ref)
    assert rel < 0.05                    # new model, served by workers
    server.close()


def test_process_backend_hot_swap_direct(tmp_path):
    """hot_swap_model against a process engine: invalidate + warmup are
    synchronous worker round trips."""
    backend = ProcessPoolBackend(workers=1)
    server = RegionServer(backend=backend)
    region = _mk_region(tmp_path, "hs", weight=1.0)
    server.register(region)
    x = np.ones((4, 2))
    y = np.zeros(4)
    _wait(server.invoke("hs", x, y, 4, use_model=True))
    np.testing.assert_allclose(y, 2.0)

    new = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
    new[0].weight.data = np.array([[5.0, 5.0]])
    new[0].bias.data = np.array([0.0])
    hot_swap_model(new, tmp_path / "hs.rnm", engines=[region.engine],
                   verify_inputs=x)
    _wait(server.invoke("hs", x, y, 4, use_model=True))
    np.testing.assert_allclose(y, 10.0)
    server.close()


def test_process_backend_oversized_output_falls_back_to_pickle(tmp_path):
    """An output bigger than the slab still arrives (pickled reply) and
    is counted so benchmarks can assert the hot path stayed clean."""
    from repro.serving.shm import RemoteEngineClient
    import multiprocessing as mp
    model = Sequential(Linear(2, 64, rng=np.random.default_rng(0)))
    save_model(model, tmp_path / "wide.rnm")
    handle = WorkerHandle(0, mp.get_context("fork"))
    client = RemoteEngineClient(handle, min_slot_floats=64)
    x = np.ones((16, 2))                 # in: 32 floats, out: 1024
    out, _ = client.infer(tmp_path / "wide.rnm", x)
    assert out.shape == (16, 64)
    assert client.pickle_fallbacks == 1
    client.close()
    handle.close()
