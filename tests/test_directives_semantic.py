"""Semantic analysis: linearization, functor validation, deferred vars."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.directives import (SemanticAnalyzer, SemanticError, linearize,
                              parse_directive, parse_program)
from repro.directives.parser import _Parser
from repro.directives.semantic import form_sub, substitute


def expr(text: str):
    p = _Parser(text)
    return p.parse_s_expr()


def analyzed(src: str) -> SemanticAnalyzer:
    return SemanticAnalyzer().analyze(parse_program(src))


# ----------------------------------------------------------------------
# linearize
# ----------------------------------------------------------------------

def test_linearize_constant():
    form = linearize(expr("3 + 4 * 2"))
    assert form.is_constant() and form.const == 11


def test_linearize_symbolic():
    form = linearize(expr("2*i - j + 5"))
    assert dict(form.coeffs) == {"i": 2, "j": -1}
    assert form.const == 5


def test_linearize_cancellation():
    form = linearize(expr("i - i + 1"))
    assert form.is_constant() and form.const == 1


def test_linearize_env_resolution():
    form = linearize(expr("N - 1"), {"N": 64})
    assert form.is_constant() and form.const == 63


def test_linearize_division():
    form = linearize(expr("(4*i + 8) / 4"))
    assert dict(form.coeffs) == {"i": 1}
    assert form.const == 2


def test_linearize_rejects_nonlinear():
    with pytest.raises(SemanticError):
        linearize(expr("i * j"))
    with pytest.raises(SemanticError):
        linearize(expr("5 / i"))
    with pytest.raises(SemanticError):
        linearize(expr("i / 0"))
    with pytest.raises(SemanticError):
        linearize(expr("i / 2"))   # non-integral coefficient


def test_unary_minus():
    form = linearize(expr("-i + 3"))
    assert dict(form.coeffs) == {"i": -1}
    assert form.const == 3


@given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-20, 20),
       st.integers(-10, 10), st.integers(-10, 10))
@settings(max_examples=50, deadline=None)
def test_linearize_evaluates_correctly(a, b, c, i_val, j_val):
    """Property: the linear form evaluates like the original expression."""
    text = f"{a}*i + {b}*j + {c}" if a >= 0 and b >= 0 and c >= 0 else None
    form = linearize(expr(f"({a})*i + ({b})*j + ({c})"))
    got = form.coeff("i") * i_val + form.coeff("j") * j_val + form.const
    assert got == a * i_val + b * j_val + c


def test_substitute_and_form_sub():
    f = linearize(expr("2*N + i - 3"))
    g = substitute(f, {"N": 10})
    assert dict(g.coeffs) == {"i": 1}
    assert g.const == 17
    d = form_sub(linearize(expr("i + 5")), linearize(expr("i + 2")))
    assert d.is_constant() and d.const == 3


# ----------------------------------------------------------------------
# Functor analysis
# ----------------------------------------------------------------------

def test_functor_symbols_and_features():
    a = analyzed("#pragma approx tensor functor(f: [i, j, 0:5] = "
                 "([i-1, j], [i+1, j], [i, j-1:j+2]))")
    a.raise_if_errors()
    f = a.functors["f"]
    assert f.symbols == ("i", "j")
    assert f.feature_shape == (5,)
    assert f.resolved
    assert [s.feature_count for s in f.rhs] == [1, 1, 3]


def test_functor_feature_total_mismatch():
    a = analyzed("#pragma approx tensor functor(f: [i, 0:4] = ([i, 0:3]))")
    assert any("features" in str(d) for d in a.errors)


def test_functor_redeclaration():
    a = analyzed("#pragma approx tensor functor(f: [i] = ([i]))\n"
                 "#pragma approx tensor functor(f: [i] = ([i]))")
    assert any("redeclared" in str(d) for d in a.errors)


def test_functor_repeated_symbol():
    a = analyzed("#pragma approx tensor functor(f: [i, i] = ([i, i]))")
    assert any("repeated" in str(d) for d in a.errors)


def test_functor_symbol_after_feature_dim():
    a = analyzed("#pragma approx tensor functor(f: [0:3, i] = ([i, 0:3]))")
    assert any("precede" in str(d) for d in a.errors)


def test_functor_extent_depending_on_symbol():
    a = analyzed("#pragma approx tensor functor(f: [i, 0:5] = ([0:i, 0:5]))")
    assert any("extent depends" in str(d) for d in a.errors)


def test_functor_negative_extent():
    a = analyzed("#pragma approx tensor functor(f: [i, 0:0] = ([i, 5:2]))")
    assert a.errors


def test_functor_deferred_variables():
    a = analyzed("#pragma approx tensor functor(f: [t, 0:1, 0:H, 0:W] = "
                 "([t, 0:H, 0:W]))")
    a.raise_if_errors()
    f = a.functors["f"]
    assert not f.resolved
    assert f.feature_shape == (1, None, None)
    resolved = f.resolve({"H": 4, "W": 6})
    assert resolved.feature_shape == (1, 4, 6)
    assert resolved.total_features == 24


def test_functor_resolve_missing_variable():
    a = analyzed("#pragma approx tensor functor(f: [t, 0:H] = ([t, 0:H]))")
    a.raise_if_errors()
    with pytest.raises(SemanticError):
        a.functors["f"].resolve({})


def test_functor_resolve_validates_totals():
    a = analyzed("#pragma approx tensor functor(f: [t, 0:H] = ([t, 0:K]))")
    a.raise_if_errors()
    with pytest.raises(SemanticError):
        a.functors["f"].resolve({"H": 4, "K": 5})


def test_functor_no_symbols_warns():
    a = analyzed("#pragma approx tensor functor(f: [0:3] = ([0:3]))")
    assert any(d.severity == "warning" for d in a.diagnostics)


# ----------------------------------------------------------------------
# Map + ml analysis
# ----------------------------------------------------------------------

FULL = """
#pragma approx tensor functor(fi: [i, 0:5] = ([i, 0:5]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(predicated:flag) in(x) out(y) db("d") model("m")
"""


def test_full_annotation_clean():
    a = analyzed(FULL)
    a.raise_if_errors()
    assert a.ml.mode == "predicated"
    assert len(a.maps) == 2


def test_map_undeclared_functor():
    a = analyzed("#pragma approx tensor map(to: ghost(x[0:N]))")
    assert any("undeclared functor" in str(d) for d in a.errors)


def test_map_rank_mismatch():
    a = analyzed("#pragma approx tensor functor(f: [i, j] = ([i, j]))\n"
                 "#pragma approx tensor map(to: f(x[0:N]))")
    assert any("sweep dims" in str(d) for d in a.errors)


def test_map_point_target_rejected():
    a = analyzed("#pragma approx tensor functor(f: [i] = ([i]))\n"
                 "#pragma approx tensor map(to: f(x[5]))")
    assert any("must be ranges" in str(d) for d in a.errors)


def test_ml_missing_clauses():
    a = analyzed("#pragma approx tensor functor(f: [i] = ([i]))\n"
                 "#pragma approx tensor map(to: f(x[0:N]))\n"
                 "#pragma approx ml(infer) in(x)")
    assert any("model" in str(d) for d in a.errors)

    a2 = analyzed("#pragma approx tensor functor(f: [i] = ([i]))\n"
                  "#pragma approx tensor map(to: f(x[0:N]))\n"
                  "#pragma approx ml(collect) in(x)")
    assert any("db" in str(d) for d in a2.errors)


def test_ml_unmapped_array():
    a = analyzed("#pragma approx tensor functor(f: [i] = ([i]))\n"
                 "#pragma approx tensor map(to: f(x[0:N]))\n"
                 '#pragma approx ml(collect) in(x, zz) db("d")')
    assert any("zz" in str(d) for d in a.errors)


def test_ml_duplicate_directive():
    a = analyzed(FULL + '\n#pragma approx ml(collect) in(x) db("d")')
    assert any("multiple ml" in str(d) for d in a.errors)


def test_raise_if_errors_message_lists_all():
    a = analyzed("#pragma approx tensor map(to: g1(x[0:N]))\n"
                 "#pragma approx tensor map(to: g2(x[0:N]))")
    with pytest.raises(SemanticError) as err:
        a.raise_if_errors()
    assert "g1" in str(err.value) and "g2" in str(err.value)
