"""Tier-1 smoke run of the inference fast-path microbenchmark.

Runs ``benchmarks/bench_inference_fastpath.py`` at tiny sizes and
validates the ``BENCH_inference.json`` schema, so CI catches a broken
benchmark (or a fast path that stopped matching the graph) without
paying full measurement cost.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_inference_fastpath.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_inference_fastpath", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_inference.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "models")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_inference_fastpath/v1"
    assert on_disk == json.loads(json.dumps(results))  # JSON-clean

    config = on_disk["config"]
    for key in ("repeats", "n_rows", "batch_rows", "seed"):
        assert isinstance(config[key], int)

    single = on_disk["single_call"]
    assert len(single) == len(bench.TABLE4_MLP_SHAPES)
    for row in single:
        assert set(row) >= {"shape", "benchmark", "arch", "n_params",
                            "graph_us", "compiled_us", "speedup",
                            "max_abs_diff"}
        assert row["benchmark"] in ("minibude", "binomial", "bonds")
        assert row["n_params"] > 0
        assert row["graph_us"] > 0 and row["compiled_us"] > 0
        assert row["speedup"] > 0
        # The acceptance bit-compare: fast path matches the graph path.
        assert row["max_abs_diff"] <= 1e-12

    batched = on_disk["batched"]
    assert len(batched) >= 1
    for row in batched:
        assert row["rows_per_s_batched"] > 0
        assert row["rows_per_s_unbatched"] > 0
        assert row["throughput_gain"] > 0

    summary = on_disk["summary"]
    for key in ("single_call_speedup_geomean",
                "single_call_speedup_geomean_deployed",
                "single_call_speedup_best",
                "single_call_max_abs_diff",
                "batched_throughput_gain_geomean"):
        assert isinstance(summary[key], float)
    assert summary["single_call_max_abs_diff"] <= 1e-12
