"""Integration: annotate a stencil region, collect, train, deploy (§III)."""

import numpy as np
import pytest

from repro.api import approx_ml
from repro.nn import Linear, ReLU, Sequential, Trainer, save_model
from repro.runtime import EventLog, Phase, load_training_data

DIRECTIVES = """
#pragma approx tensor functor(ifnctr: \\
    [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
#pragma approx ml(predicated:use_model) in(t) out(tnew) \\
    db("{db}") model("{model}")
"""


def make_region(db, model, log):
    @approx_ml(DIRECTIVES.format(db=db, model=model), event_log=log)
    def do_timestep(t, tnew, N, M, use_model=False):
        # Jacobi-style 5-point average on the interior.
        tnew[1:N - 1, 1:M - 1] = 0.2 * (
            t[:N - 2, 1:M - 1] + t[2:, 1:M - 1] + t[1:N - 1, :M - 2]
            + t[1:N - 1, 1:M - 1] + t[1:N - 1, 2:])

    return do_timestep


@pytest.fixture
def paths(tmp_path):
    return str(tmp_path / "data.rh5"), str(tmp_path / "model.rnm")


def test_collect_then_infer(paths):
    db, model_path = paths
    log = EventLog()
    region = make_region(db, model_path, log)
    rng = np.random.default_rng(7)
    N, M = 12, 10

    # --- data collection phase (predicated condition false) ---
    t = rng.random((N, M))
    for _ in range(30):
        tnew = np.zeros_like(t)
        region(t, tnew, N, M, use_model=False)
        t, tnew = tnew, t
        t[0, :] = t[-1, :] = t[:, 0] = t[:, -1] = rng.random()
    region.flush()

    x, y, times = load_training_data(db, "do_timestep")
    assert x.shape[1:] == (5,)
    assert y.shape[1:] == (1,)
    assert len(x) == len(y) == 30 * (N - 2) * (M - 2)
    assert np.all(times >= 0)
    # Ground truth check: output is the mean of the 5 gathered inputs.
    np.testing.assert_allclose(y[:, 0], x.mean(axis=1), atol=1e-12)

    # --- train a tiny surrogate; the map is linear so an MLP nails it ---
    model = Sequential(Linear(5, 16, rng=np.random.default_rng(0)), ReLU(),
                       Linear(16, 1, rng=np.random.default_rng(1)))
    trainer = Trainer(model, lr=5e-3, batch_size=128, max_epochs=60,
                      patience=60)
    n_train = int(0.8 * len(x))
    result = trainer.fit(x[:n_train], y[:n_train], x[n_train:], y[n_train:])
    assert result.best_val_loss < 1e-3
    save_model(model, model_path)

    # --- inference phase (predicated condition true) ---
    t_acc = rng.random((N, M))
    t_ml = t_acc.copy()
    tnew_acc = np.zeros_like(t_acc)
    tnew_ml = np.zeros_like(t_ml)
    region(t_acc, tnew_acc, N, M, use_model=False)
    region(t_ml, tnew_ml, N, M, use_model=True)

    interior_err = np.abs(tnew_ml[1:N - 1, 1:M - 1]
                          - tnew_acc[1:N - 1, 1:M - 1]).max()
    assert interior_err < 0.15
    # Boundary untouched by inference.
    assert tnew_ml[0].sum() == 0

    # Event log saw both paths and all inference phases.
    assert log.count("infer") == 1
    assert log.count("collect") == 31  # 30 initial + 1 comparison run
    br = log.breakdown()
    assert abs(sum(br.values()) - 1.0) < 1e-9
    assert all(v >= 0 for v in br.values())


def test_if_clause_gates_approximation(paths):
    db, model_path = paths
    directives = DIRECTIVES.replace(
        'ml(predicated:use_model)', 'ml(collect) if(step % 2 == 0)')
    log = EventLog()

    @approx_ml(directives.format(db=db, model=model_path), event_log=log)
    def do_timestep(t, tnew, N, M, step=0, use_model=False):
        tnew[1:N - 1, 1:M - 1] = t[1:N - 1, 1:M - 1]

    t = np.ones((6, 6))
    for step in range(4):
        do_timestep(t, np.zeros_like(t), 6, 6, step=step)
    assert log.count("collect") == 2
    assert log.count("accurate") == 2
