"""Compiled inference fast path: graph-path equivalence + plan behavior."""

import numpy as np
import pytest

from repro.nn import (AvgPool2d, BatchNorm1d, Conv1d, Conv2d, CompiledPlan,
                      CropPad2d, Destandardize, Dropout, Flatten, GRU,
                      Identity, LayerNorm, LeakyReLU, Linear, MaxPool1d,
                      MaxPool2d, Module, ReLU, Sequential, Sigmoid,
                      Standardize, Tanh, Tensor, UnsupportedLayerError,
                      compile_inference, load_model, no_grad, save_model)

pytestmark = pytest.mark.compile

RTOL = 1e-12


def graph_forward(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).numpy()


def assert_equivalent(model, x):
    ref = graph_forward(model, x)
    plan = compile_inference(model)
    out = np.array(plan(x))              # plan output may be scratch
    np.testing.assert_allclose(out, ref, rtol=RTOL, atol=1e-300)
    # Second call reuses scratch buffers; must still match.
    np.testing.assert_allclose(np.array(plan(x)), ref, rtol=RTOL, atol=1e-300)
    return plan


def mlp_model(rng):
    return Sequential(
        Standardize(rng.normal(size=6), np.abs(rng.normal(size=6)) + 0.5),
        Linear(6, 32, rng=rng), ReLU(),
        Dropout(0.4, rng=np.random.default_rng(7)),
        Linear(32, 16, rng=rng), Tanh(),
        BatchNorm1d(16),
        LayerNorm(16),
        Linear(16, 8, rng=rng), Sigmoid(),
        LeakyReLU(0.02),
        Identity(),
        Linear(8, 3, rng=rng),
        Destandardize(rng.normal(size=3), np.abs(rng.normal(size=3)) + 0.1),
    )


def cnn2d_model(rng):
    return Sequential(
        Conv2d(2, 4, 3, padding=1, rng=rng), ReLU(),
        MaxPool2d(2),
        Conv2d(4, 3, 2, rng=rng), Tanh(),
        CropPad2d(4, 4),
        AvgPool2d(2),
        Flatten(),
        Linear(12, 2, rng=rng),
    )


def cnn1d_model(rng):
    return Sequential(
        Conv1d(2, 3, 3, rng=rng), ReLU(),
        MaxPool1d(2),
        Flatten(),
        Linear(21, 2, rng=rng), Sigmoid(),
    )


# ----------------------------------------------------------------------
# Equivalence across the serialized layer zoo
# ----------------------------------------------------------------------

def test_mlp_equivalence_all_layer_types():
    rng = np.random.default_rng(0)
    model = mlp_model(rng)
    # Give batch norm non-trivial running stats before eval comparison.
    model.train()
    with no_grad():
        model(Tensor(rng.normal(size=(64, 6))))
    x = rng.normal(size=(5, 6))
    plan = assert_equivalent(model, x)
    assert plan.n_fused >= 3             # Linear+act pairs fused


def test_cnn2d_equivalence():
    rng = np.random.default_rng(1)
    assert_equivalent(cnn2d_model(rng), rng.normal(size=(3, 2, 8, 8)))


def test_cnn1d_equivalence():
    rng = np.random.default_rng(2)
    assert_equivalent(cnn1d_model(rng), rng.normal(size=(4, 2, 16)))


def test_equivalence_batch_one_and_large():
    rng = np.random.default_rng(3)
    model = mlp_model(rng)
    for batch in (1, 2, 17):
        assert_equivalent(model, rng.normal(size=(batch, 6)))


def test_equivalence_after_serialization_roundtrip(tmp_path):
    """Compiled(load(save(m))) must match the loaded model's graph path
    for every serializable layer type."""
    rng = np.random.default_rng(4)
    for build, shape in ((mlp_model, (3, 6)), (cnn2d_model, (2, 2, 8, 8)),
                         (cnn1d_model, (2, 2, 16))):
        model = build(rng)
        path = tmp_path / f"{build.__name__}.rnm"
        save_model(model, path)
        loaded = load_model(path)
        assert_equivalent(loaded, rng.normal(size=shape))


def test_maxpool1d_unit_kernel():
    rng = np.random.default_rng(5)
    model = Sequential(MaxPool1d(1), Flatten(), Linear(12, 2, rng=rng))
    assert_equivalent(model, rng.normal(size=(3, 3, 4)))


def test_linear_without_bias():
    rng = np.random.default_rng(6)
    model = Sequential(Linear(4, 3, bias=False, rng=rng), ReLU())
    assert_equivalent(model, rng.normal(size=(2, 4)))


# ----------------------------------------------------------------------
# Plan lifecycle
# ----------------------------------------------------------------------

class _OpaqueLayer(Module):                     # a Module with no lowering
    def forward(self, x):
        return x


def test_unsupported_layer_raises():
    model = Sequential(Linear(4, 4), _OpaqueLayer())
    with pytest.raises(UnsupportedLayerError):
        compile_inference(model)


def test_forward_compiled_falls_back_for_unsupported():
    rng = np.random.default_rng(7)
    model = Sequential(Linear(4, 4, rng=rng), _OpaqueLayer(),
                       Linear(4, 1, rng=rng))
    x = rng.normal(size=(2, 4))
    ref = graph_forward(model, x)
    np.testing.assert_allclose(model.forward_compiled(x), ref, rtol=RTOL)


# ----------------------------------------------------------------------
# GRU lowering (the recurrent branch of the serialized zoo)
# ----------------------------------------------------------------------

def test_gru_final_state_equivalence():
    rng = np.random.default_rng(30)
    model = Sequential(GRU(4, 8, rng=rng), Linear(8, 2, rng=rng))
    assert_equivalent(model, rng.normal(size=(3, 7, 4)))


def test_gru_sequence_output_equivalence():
    rng = np.random.default_rng(31)
    model = Sequential(GRU(3, 6, return_sequence=True, rng=rng),
                       Flatten(), Linear(5 * 6, 2, rng=rng))
    assert_equivalent(model, rng.normal(size=(2, 5, 3)))


def test_gru_serialization_roundtrip_parity(tmp_path):
    """Compiled(load(save(m))) matches the graph path <= 1e-12 for
    sequence surrogates — the fast-path acceptance bit for GRUs."""
    rng = np.random.default_rng(32)
    model = Sequential(GRU(5, 10, rng=rng), Linear(10, 3, rng=rng))
    path = tmp_path / "gru.rnm"
    save_model(model, path)
    loaded = load_model(path)
    x = rng.normal(size=(4, 9, 5))
    ref = graph_forward(loaded, x)
    plan = compile_inference(loaded)
    assert np.abs(np.array(plan(x)) - ref).max() <= 1e-12


def test_gru_plan_tracks_in_place_updates():
    rng = np.random.default_rng(33)
    model = Sequential(GRU(3, 4, rng=rng), Linear(4, 1, rng=rng))
    plan = compile_inference(model)
    x = rng.normal(size=(2, 6, 3))
    plan(x)
    model[0].cell.weight_hh.data[...] *= 1.1      # in place
    assert not plan.stale()
    np.testing.assert_allclose(np.array(plan(x)), graph_forward(model, x),
                               rtol=RTOL, atol=1e-300)


def test_gru_engine_uses_compiled_plan(tmp_path):
    """The engine no longer falls back to the graph path for GRUs."""
    from repro.runtime import InferenceEngine
    rng = np.random.default_rng(34)
    model = Sequential(GRU(4, 6, rng=rng), Linear(6, 1, rng=rng))
    path = tmp_path / "gru.rnm"
    save_model(model, path)
    engine = InferenceEngine()
    loaded = engine.warmup(path)
    assert engine.plan_for(loaded) is not None
    x = rng.normal(size=(3, 5, 4))
    out = engine.infer(path, x)
    np.testing.assert_allclose(out, graph_forward(loaded, x), rtol=RTOL,
                               atol=1e-300)
    assert engine.last_timing["compiled"]


def test_forward_compiled_caches_and_matches():
    rng = np.random.default_rng(8)
    model = mlp_model(rng)
    model.eval()
    x = rng.normal(size=(2, 6))
    ref = graph_forward(model, x)
    np.testing.assert_allclose(np.array(model.forward_compiled(x)), ref,
                               rtol=RTOL, atol=1e-300)
    assert isinstance(model.__dict__["_plan_cache"], CompiledPlan)


def test_plan_stale_on_state_dict_load():
    rng = np.random.default_rng(9)
    model = Sequential(Linear(3, 2, rng=rng))
    plan = compile_inference(model)
    assert not plan.stale()
    state = {k: v * 2.0 for k, v in model.state_dict().items()}
    model.load_state_dict(state)
    assert plan.stale()
    x = rng.normal(size=(1, 3))
    # forward_compiled recompiles transparently.
    np.testing.assert_allclose(np.array(model.forward_compiled(x)),
                               graph_forward(model, x), rtol=RTOL)


def test_plan_tracks_in_place_updates():
    """Optimizer-style in-place writes flow through without recompiling."""
    rng = np.random.default_rng(10)
    model = Sequential(Linear(3, 2, rng=rng))
    plan = compile_inference(model)
    x = rng.normal(size=(2, 3))
    plan(x)
    model[0].weight.data[...] *= 1.5     # in place: same array object
    model[0].bias.data[...] += 0.25
    assert not plan.stale()
    np.testing.assert_allclose(np.array(plan(x)), graph_forward(model, x),
                               rtol=RTOL, atol=1e-300)


def test_plan_stale_on_structural_mutation():
    """Appending a layer must trip staleness in *any* plan holder (the
    engine's cache watches stale(), not the module's own cache)."""
    rng = np.random.default_rng(20)
    model = Sequential(Linear(4, 4, rng=rng), ReLU())
    plan = compile_inference(model)
    assert not plan.stale()
    model.append(Linear(4, 2, rng=rng))
    assert plan.stale()


def test_engine_recompiles_after_append(tmp_path):
    """Reviewer repro: engine must not serve a stale plan after append."""
    from repro.runtime import InferenceEngine
    rng = np.random.default_rng(21)
    model = Sequential(Linear(4, 4, rng=rng), ReLU())
    engine = InferenceEngine()
    x = rng.normal(size=(1, 4))
    assert engine.infer_with_model(model, x).shape == (1, 4)
    model.append(Linear(4, 2, rng=rng))
    out = engine.infer_with_model(model, x)
    assert out.shape == (1, 2)
    np.testing.assert_allclose(out, graph_forward(model, x), rtol=RTOL,
                               atol=1e-300)


def test_sequential_append_invalidates_cached_plan():
    rng = np.random.default_rng(11)
    model = Sequential(Linear(3, 3, rng=rng))
    x = rng.normal(size=(1, 3))
    model.forward_compiled(x)
    model.append(ReLU())
    np.testing.assert_allclose(np.array(model.forward_compiled(x)),
                               graph_forward(model, x), rtol=RTOL,
                               atol=1e-300)


def test_plan_output_isolated_from_next_call():
    """Scratch reuse must not corrupt a copied previous result."""
    rng = np.random.default_rng(12)
    model = mlp_model(rng)
    plan = compile_inference(model)
    x1 = rng.normal(size=(2, 6))
    x2 = rng.normal(size=(2, 6))
    out1 = np.array(plan(x1))
    plan(x2)
    np.testing.assert_allclose(out1, graph_forward(model, x1), rtol=RTOL,
                               atol=1e-300)
