"""Data bridge: Fig. 4 pipeline — views, composition, scatter, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bridge import (BridgeError, ConcretizedMap, SweepRange,
                          TensorFunctor, concretize, evaluate_ranges,
                          parse_map)
from repro.directives.parser import parse_directive


def functor(src: str) -> TensorFunctor:
    return TensorFunctor.parse(f"#pragma approx tensor functor({src})")


# ----------------------------------------------------------------------
# SweepRange / evaluate_ranges
# ----------------------------------------------------------------------

def test_sweep_range_count():
    assert SweepRange(0, 10).count == 10
    assert SweepRange(1, 10, 2).count == 5
    assert SweepRange(0, 7, 3).count == 3


def test_sweep_range_validation():
    with pytest.raises(BridgeError):
        SweepRange(5, 5)
    with pytest.raises(BridgeError):
        SweepRange(0, 4, 0)


def test_evaluate_ranges_with_env():
    node = parse_directive("#pragma approx tensor map(to: f(t[1:N-1, 0:M:2]))")
    ranges = evaluate_ranges(node.targets[0].spec, {"N": 10, "M": 8})
    assert (ranges[0].lo, ranges[0].hi) == (1, 9)
    assert ranges[1].step == 2


def test_evaluate_ranges_unresolved():
    node = parse_directive("#pragma approx tensor map(to: f(t[0:Q]))")
    with pytest.raises(BridgeError):
        evaluate_ranges(node.targets[0].spec, {})


def test_evaluate_ranges_ignores_non_int_env():
    node = parse_directive("#pragma approx tensor map(to: f(t[0:N]))")
    env = {"N": 4, "t": np.zeros(4), "flag": True}
    ranges = evaluate_ranges(node.targets[0].spec, env)
    assert ranges[0].hi == 4


# ----------------------------------------------------------------------
# Gather: identity, stencil, window, stride
# ----------------------------------------------------------------------

def test_identity_gather_1d():
    f = functor("f: [i, 0:3] = ([i, 0:3])")
    arr = np.arange(12.0).reshape(4, 3)
    out = concretize(f, arr, [SweepRange(0, 4)]).gather()
    np.testing.assert_array_equal(out, arr)


def test_gather_is_zero_copy_until_composition():
    f = functor("f: [i, 0:3] = ([i, 0:3])")
    arr = np.arange(12.0).reshape(4, 3)
    cm = concretize(f, arr, [SweepRange(0, 4)])
    views = cm.views()
    assert all(v.view.base is not None for v in views)   # aliases arr
    arr[0, 0] = 99.0
    assert views[0].view[0, 0] == 99.0                   # sees the write


def test_stencil_gather_offsets():
    f = functor("st: [i, 0:2] = ([i-1], [i+1])")
    arr = np.arange(10.0)
    out = concretize(f, arr, [SweepRange(1, 9)]).gather()
    assert out.shape == (8, 2)
    np.testing.assert_array_equal(out[:, 0], arr[0:8])
    np.testing.assert_array_equal(out[:, 1], arr[2:10])


def test_window_gather():
    f = functor("w: [i, 0:3] = ([i-1:i+2])")
    arr = np.arange(8.0)
    out = concretize(f, arr, [SweepRange(1, 7)]).gather()
    for k, i in enumerate(range(1, 7)):
        np.testing.assert_array_equal(out[k], arr[i - 1:i + 2])


def test_strided_sweep():
    f = functor("f: [i, 0:1] = ([i]))".rstrip(")") + ")")
    arr = np.arange(10.0)
    out = concretize(f, arr, [SweepRange(0, 10, 3)]).gather()
    np.testing.assert_array_equal(out[:, 0], arr[::3])


def test_2d_stencil_fig2():
    f = functor("ifn: [i, j, 0:5] = ([i-1, j], [i+1, j], [i, j-1:j+2])")
    N, M = 6, 7
    arr = np.arange(float(N * M)).reshape(N, M)
    out = concretize(f, arr, [SweepRange(1, N - 1),
                              SweepRange(1, M - 1)]).gather()
    assert out.shape == (N - 2, M - 2, 5)
    i, j = 2, 3
    np.testing.assert_array_equal(
        out[i - 1, j - 1],
        [arr[i - 1, j], arr[i + 1, j], arr[i, j - 1], arr[i, j],
         arr[i, j + 1]])


def test_gather_flatten_batch():
    f = functor("f: [i, j, 0:1] = ([i, j])")
    arr = np.arange(12.0).reshape(3, 4)
    cm = concretize(f, arr, [SweepRange(0, 3), SweepRange(0, 4)])
    flat = cm.gather(flatten_batch=True)
    assert flat.shape == (12, 1)
    np.testing.assert_array_equal(flat[:, 0], arr.ravel())


def test_deferred_variable_functor_gather():
    f = functor("fr: [t, 0:1, 0:H, 0:W] = ([t, 0:H, 0:W])")
    frames = np.arange(2 * 3 * 4.0).reshape(2, 3, 4)
    cm = concretize(f, frames, [SweepRange(0, 2)], env={"H": 3, "W": 4})
    out = cm.gather(flatten_batch=True)
    assert out.shape == (2, 1, 3, 4)
    np.testing.assert_array_equal(out[:, 0], frames)


def test_diagonal_access():
    """Two dims driven by the same symbol: matrix diagonal."""
    f = functor("d: [i, 0:1] = ([i, i])")
    arr = np.arange(16.0).reshape(4, 4)
    out = concretize(f, arr, [SweepRange(0, 4)]).gather()
    np.testing.assert_array_equal(out[:, 0], np.diag(arr))


# ----------------------------------------------------------------------
# Bounds and validation
# ----------------------------------------------------------------------

def test_out_of_bounds_detected():
    f = functor("st: [i, 0:2] = ([i-1], [i+1])")
    arr = np.arange(10.0)
    with pytest.raises(BridgeError):
        concretize(f, arr, [SweepRange(0, 9)]).gather()   # i-1 -> -1
    with pytest.raises(BridgeError):
        concretize(f, arr, [SweepRange(1, 10)]).gather()  # i+1 -> 10


def test_rank_mismatch():
    f = functor("f: [i, 0:1] = ([i]))".rstrip(")") + ")")
    with pytest.raises(BridgeError):
        concretize(f, np.zeros((3, 3)), [SweepRange(0, 3)]).gather()


def test_range_count_mismatch():
    f = functor("f: [i, j, 0:1] = ([i, j])")
    with pytest.raises(BridgeError):
        ConcretizedMap(f, np.zeros((3, 3)), [SweepRange(0, 3)])


def test_non_contiguous_rejected():
    f = functor("f: [i, 0:1] = ([i]))".rstrip(")") + ")")
    arr = np.arange(20.0)[::2]
    with pytest.raises(BridgeError):
        concretize(f, arr, [SweepRange(0, 5)]).gather()


# ----------------------------------------------------------------------
# Scatter (from-direction)
# ----------------------------------------------------------------------

def test_scatter_roundtrip():
    f = functor("f: [i, j, 0:1] = ([i, j])")
    src = np.random.default_rng(0).normal(size=(4, 5))
    dst = np.zeros((6, 7))
    cm = concretize(f, dst, [SweepRange(1, 5), SweepRange(1, 6)],
                    writable=True)
    cm.scatter(src.reshape(4, 5, 1))
    np.testing.assert_array_equal(dst[1:5, 1:6], src)
    assert dst[0].sum() == 0 and dst[5].sum() == 0


def test_scatter_accepts_flat_batch():
    f = functor("f: [i, 0:2] = ([i, 0:2])")
    dst = np.zeros((3, 2))
    cm = concretize(f, dst, [SweepRange(0, 3)], writable=True)
    cm.scatter(np.arange(6.0).reshape(3, 2))
    np.testing.assert_array_equal(dst, np.arange(6.0).reshape(3, 2))


def test_scatter_multi_slice_feature_split():
    f = functor("f: [i, 0:2] = ([i, 0], [i, 1])")
    dst = np.zeros((4, 2))
    cm = concretize(f, dst, [SweepRange(0, 4)], writable=True)
    tensor = np.stack([np.arange(4.0), np.arange(4.0) * 10], axis=1)
    cm.scatter(tensor.reshape(4, 2))
    np.testing.assert_array_equal(dst[:, 0], np.arange(4.0))
    np.testing.assert_array_equal(dst[:, 1], np.arange(4.0) * 10)


def test_scatter_requires_writable():
    f = functor("f: [i, 0:1] = ([i]))".rstrip(")") + ")")
    cm = concretize(f, np.zeros(4), [SweepRange(0, 4)])
    with pytest.raises(BridgeError):
        cm.scatter(np.zeros((4, 1)))


def test_scatter_shape_mismatch():
    f = functor("f: [i, 0:1] = ([i]))".rstrip(")") + ")")
    cm = concretize(f, np.zeros(4), [SweepRange(0, 4)], writable=True)
    with pytest.raises(BridgeError):
        cm.scatter(np.zeros((5, 1)))


def test_gather_scatter_inverse_property():
    """scatter(gather(x)) restores x on the swept region."""
    f = functor("ifn: [i, j, 0:5] = ([i-1, j], [i+1, j], [i, j-1:j+2])")
    g = functor("ofn: [i, j, 0:5] = ([i-1, j], [i+1, j], [i, j-1:j+2])")
    # Use a functor whose slices don't overlap for exact inversion:
    f2 = functor("p: [i, j, 0:1] = ([i, j])")
    arr = np.random.default_rng(1).normal(size=(5, 5))
    gathered = concretize(f2, arr, [SweepRange(0, 5),
                                    SweepRange(0, 5)]).gather()
    dst = np.zeros_like(arr)
    concretize(f2, dst, [SweepRange(0, 5), SweepRange(0, 5)],
               writable=True).scatter(gathered)
    np.testing.assert_array_equal(dst, arr)


# ----------------------------------------------------------------------
# parse_map
# ----------------------------------------------------------------------

def test_parse_map_resolves_functor():
    f = functor("fi: [i, 0:3] = ([i, 0:3])")
    specs = parse_map("#pragma approx tensor map(to: fi(x[0:N]))",
                      {"fi": f})
    assert len(specs) == 1
    assert specs[0].direction == "to"
    assert specs[0].array_name == "x"


def test_parse_map_unknown_functor():
    from repro.directives import SemanticError
    with pytest.raises(SemanticError):
        parse_map("#pragma approx tensor map(to: nope(x[0:N]))", {})


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

@given(n=st.integers(4, 40), lo=st.integers(0, 3), step=st.integers(1, 3),
       off=st.integers(-2, 2))
@settings(max_examples=60, deadline=None)
def test_point_slice_gather_property(n, lo, step, off):
    """Property: gathering [i+off] over lo:hi:step equals fancy indexing."""
    hi = n - 3
    if hi <= lo:
        return
    idx = np.arange(lo, hi, step) + off
    if idx.min() < 0 or idx.max() >= n:
        return
    f = functor(f"f: [i, 0:1] = ([i{'+' if off >= 0 else ''}{off}])") \
        if off != 0 else functor("f: [i, 0:1] = ([i])")
    arr = np.arange(float(n))
    out = concretize(f, arr, [SweepRange(lo, hi, step)]).gather()
    np.testing.assert_array_equal(out[:, 0], arr[idx])


@given(rows=st.integers(3, 10), cols=st.integers(3, 10),
       w=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_window_gather_property(rows, cols, w):
    """Property: row windows [j:j+w] match direct slicing everywhere."""
    if cols - w < 1:
        return
    f = functor(f"f: [i, j, 0:{w}] = ([i, j:j+{w}])")
    arr = np.random.default_rng(rows * cols).normal(size=(rows, cols))
    out = concretize(f, arr, [SweepRange(0, rows),
                              SweepRange(0, cols - w)]).gather()
    for i in range(rows):
        for j in range(cols - w):
            np.testing.assert_array_equal(out[i, j], arr[i, j:j + w])
