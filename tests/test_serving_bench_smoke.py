"""Tier-1 smoke run of the serving-layer benchmark.

Runs ``benchmarks/bench_serving.py`` at tiny sizes and validates the
``BENCH_serving.json`` schema plus the headline acceptance properties:
the untrained region is forced onto the accurate path with both
regions' deployed QoI errors under the global budget, and the retrain
worker hot-swaps a model under the live server.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_serving.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_serving", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_serving_bench_smoke_writes_valid_schema(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_serving.json"
    results = bench.main(["--quick", "--out", str(out),
                          "--workdir", str(tmp_path / "work")])
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "bench_serving/v1"
    assert on_disk == json.loads(json.dumps(results))    # JSON-clean
    assert on_disk["config"]["quick"] is True

    latency = on_disk["latency"]
    assert latency["invocations"] > 0 and latency["rows"] > 0
    assert latency["direct_seconds"] > 0
    assert latency["server_seconds"] > 0
    assert latency["ratio"] > 0

    throughput = on_disk["throughput"]
    assert set(throughput["backends"]) == {"serial", "thread"}
    for row in throughput["backends"].values():
        assert row["rows_per_second"] > 0
        assert row["rows"] > 0
    assert throughput["thread_vs_serial"] > 0

    scaling = on_disk["backend_scaling"]
    assert set(scaling["fleets"]) == {"1", "2", "4"}
    for fleet in scaling["fleets"].values():
        assert set(fleet) == {"serial", "thread", "process"}
        for entry in fleet.values():
            assert entry["rows_per_second"] > 0
        # The slab ring must carry every tensor on the hot path.
        assert fleet["process"]["pickle_fallbacks"] == 0
    assert scaling["thread_vs_serial_at_4"] > 0
    assert scaling["process_vs_serial_at_4"] > 0
    assert on_disk["summary"]["process_vs_serial_at_4"] > 0

    arb = on_disk["arbitration"]
    assert 0 < arb["budget"] < arb["weak"]["pure_relative_error"]
    # The acceptance property: the untrained surrogate is forced onto
    # the accurate path and both regions' deployed QoI errors respect
    # the single global budget.
    assert arb["weak"]["forced_accurate"]
    assert arb["weak"]["under_budget"]
    assert arb["strong"]["under_budget"]
    assert arb["compliant"]
    assert arb["global_mean_charge"] <= arb["budget"]
    assert arb["rollup"]["regions"] == 2

    retrain = on_disk["retrain"]
    assert retrain["hot_swapped"], "RetrainWorker must hot-swap a model"
    assert retrain["server_restarted"] is False
    assert retrain["drift_bursts"] >= 1
    assert len(retrain["retrains"]) >= 1
    assert retrain["retrains"][0]["region"] == "binomial"
    assert retrain["retrains"][0]["new_rows"] > 0
    assert retrain["both_under_budget"]

    summary = on_disk["summary"]
    assert summary["arbitration_compliant"]
    assert summary["retrain_hot_swapped"]
    assert summary["retrain_both_under_budget"]
