"""Optimizers converge; losses match hand computations."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.layers import Parameter


def quad_problem():
    """min (w - 3)^2 from w=0."""
    w = Parameter(np.zeros(4))
    target = np.full(4, 3.0)

    def loss_and_grad():
        w.zero_grad()
        loss = ((w - Tensor(target)) ** 2).sum()
        loss.backward()
        return loss.item()

    return w, loss_and_grad


@pytest.mark.parametrize("make_opt", [
    lambda p: nn.SGD(p, lr=0.1),
    lambda p: nn.SGD(p, lr=0.05, momentum=0.9),
    lambda p: nn.Adam(p, lr=0.3),
], ids=["sgd", "sgd-momentum", "adam"])
def test_optimizers_converge_on_quadratic(make_opt):
    w, step_loss = quad_problem()
    opt = make_opt([w])
    for _ in range(120):
        step_loss()
        opt.step()
    np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-2)


def test_sgd_weight_decay_shrinks_weights():
    w = Parameter(np.full(3, 10.0))
    opt = nn.SGD([w], lr=0.1, weight_decay=0.5)
    w.grad = np.zeros(3)   # pure decay
    opt.step()
    np.testing.assert_allclose(w.data, np.full(3, 10.0 - 0.1 * 0.5 * 10.0))


def test_adam_decoupled_weight_decay():
    w = Parameter(np.full(3, 10.0))
    opt = nn.Adam([w], lr=0.1, weight_decay=0.1)
    w.grad = np.zeros(3)
    opt.step()
    # Decoupled: weights shrink by lr*wd*w even with zero gradient.
    np.testing.assert_allclose(w.data, np.full(3, 10.0 - 0.1 * 0.1 * 10.0))


def test_optimizer_skips_gradless_params():
    a = Parameter(np.ones(2))
    b = Parameter(np.ones(2))
    opt = nn.SGD([a, b], lr=1.0)
    a.grad = np.ones(2)
    opt.step()
    np.testing.assert_allclose(a.data, np.zeros(2))
    np.testing.assert_allclose(b.data, np.ones(2))


def test_optimizer_validation():
    with pytest.raises(ValueError):
        nn.SGD([], lr=0.1)
    with pytest.raises(ValueError):
        nn.Adam([Parameter(np.ones(1))], lr=-1.0)


def test_zero_grad_via_optimizer():
    w = Parameter(np.ones(2))
    w.grad = np.ones(2)
    opt = nn.SGD([w], lr=0.1)
    opt.zero_grad()
    assert w.grad is None


# ----------------------------------------------------------------------
# Losses / metrics
# ----------------------------------------------------------------------

def test_mse_loss_value_and_grad():
    pred = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    target = np.array([0.0, 2.0, 5.0])
    loss = nn.mse_loss(pred, target)
    assert loss.item() == pytest.approx((1 + 0 + 4) / 3)
    loss.backward()
    np.testing.assert_allclose(pred.grad, 2 * (pred.data - target) / 3)


def test_l1_and_huber():
    pred = np.array([0.0, 3.0])
    target = np.array([1.0, 0.0])
    assert nn.l1_loss(pred, target).item() == pytest.approx(2.0)
    # Huber with delta=1: 0.5*1 for |d|=1, and 0.5 + (3-1) for |d|=3.
    assert nn.huber_loss(pred, target, delta=1.0).item() == \
        pytest.approx((0.5 + 2.5) / 2)


def test_mape_loss_fraction():
    pred = np.array([110.0])
    target = np.array([100.0])
    assert nn.mape_loss(pred, target).item() == pytest.approx(0.1)


def test_rmse_metric():
    assert nn.rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == \
        pytest.approx(np.sqrt(5.0))
    with pytest.raises(ValueError):
        nn.rmse(np.zeros(2), np.zeros(3))


def test_mape_metric_percent():
    assert nn.mape(np.array([90.0, 110.0]), np.array([100.0, 100.0])) == \
        pytest.approx(10.0)


def test_loss_shape_mismatch():
    with pytest.raises(ValueError):
        nn.mse_loss(np.zeros(3), np.zeros(4))
