"""Classic HPAC techniques: perforation masks, memoization, regions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (InputMemo, OutputMemo, PerforatedLoop,
                          TechniqueRegion, approx_technique, iteration_mask,
                          perforated_indices, quantize_key)
from repro.directives import parse_directive
from repro.directives.ast_nodes import MemoDirective, PerfoDirective

# ----------------------------------------------------------------------
# Directive parsing
# ----------------------------------------------------------------------

def test_parse_perfo_directive():
    node = parse_directive(
        '#pragma approx perfo(ini:0.1) in(x) out(y) label("warmup")')
    assert isinstance(node, PerfoDirective)
    assert node.kind == "ini" and node.rate == "0.1"
    assert node.label == "warmup"


def test_parse_perfo_expression_rate():
    node = parse_directive("#pragma approx perfo(rand: r * 2) in(x) out(y)")
    assert node.rate == "r * 2"


def test_parse_perfo_bad_kind():
    from repro.directives import ParseError
    with pytest.raises(ParseError):
        parse_directive("#pragma approx perfo(sideways:0.1) in(x)")


def test_parse_memo_directive():
    node = parse_directive(
        "#pragma approx memo(out:0.02) in(a, b) out(c) if(i > 3)")
    assert isinstance(node, MemoDirective)
    assert node.kind == "out" and node.parameter == "0.02"
    assert node.in_arrays == ("a", "b")
    assert node.if_condition == "i > 3"


# ----------------------------------------------------------------------
# Perforation masks
# ----------------------------------------------------------------------

def test_mask_ini_fin():
    m = iteration_mask(10, "ini", 0.3)
    assert m.tolist() == [False] * 3 + [True] * 7
    m = iteration_mask(10, "fin", 0.2)
    assert m.tolist() == [True] * 8 + [False] * 2


def test_mask_small_large():
    m = iteration_mask(8, "small", 0.25)      # skip every 4th
    assert m.tolist() == [True, True, True, False] * 2
    m = iteration_mask(8, "large", 0.25)      # run every 4th
    assert m.tolist() == [True, False, False, False] * 2


def test_mask_rand_fraction():
    m = iteration_mask(10000, "rand", 0.3, np.random.default_rng(0))
    assert 0.65 < m.mean() < 0.75


def test_mask_zero_rate_runs_everything():
    for kind in ("ini", "fin", "small", "large", "rand"):
        if kind == "large":
            continue   # large with rate->0 degenerates; covered below
        assert iteration_mask(16, kind, 0.0).all(), kind


def test_mask_validation():
    with pytest.raises(ValueError):
        iteration_mask(10, "small", 1.5)
    with pytest.raises(ValueError):
        iteration_mask(-1, "small", 0.5)
    with pytest.raises(ValueError):
        iteration_mask(10, "diagonal", 0.5)


@given(st.integers(0, 200), st.sampled_from(["ini", "fin", "small", "rand"]),
       st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_mask_skips_at_most_rate_fraction(n, kind, rate):
    """Property: executed count is within one stride of (1-rate)*n."""
    m = iteration_mask(n, kind, rate, np.random.default_rng(0))
    assert len(m) == n
    if n and kind in ("ini", "fin"):
        assert abs((~m).sum() - n * rate) <= 1


def test_perforated_indices():
    idx = perforated_indices(6, "large", 0.5)
    assert idx.tolist() == [0, 2, 4]


# ----------------------------------------------------------------------
# PerforatedLoop runtime
# ----------------------------------------------------------------------

def test_perforated_loop_counts():
    loop = PerforatedLoop("#pragma approx perfo(small:rate) in(x) out(y)")
    seen = []
    ran = loop.run(seen.append, 12, {"rate": 0.25})
    assert ran == len(seen) == 9
    assert loop.skipped == 3


def test_perforated_loop_if_clause_disables():
    loop = PerforatedLoop(
        "#pragma approx perfo(small:0.5) in(x) out(y) if(enable)")
    seen = []
    loop.run(seen.append, 10, {"enable": False})
    assert len(seen) == 10     # accurate path: all iterations


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------

def test_quantize_key_tolerance():
    a = np.array([1.00, 2.00])
    b = np.array([1.004, 1.996])   # within tolerance 0.01 grid rounding
    c = np.array([1.2, 2.0])
    assert quantize_key([a], 0.01) == quantize_key([b], 0.01)
    assert quantize_key([a], 0.01) != quantize_key([c], 0.01)
    with pytest.raises(ValueError):
        quantize_key([a], 0.0)


def test_quantize_key_collision_resistance():
    """Regression: the digest-based key must still separate near-keys.

    Same bytes under a different shape, reshaped views, per-array
    grouping, and dtype-coerced equal values must behave exactly as the
    full-payload keys of the seed implementation did.
    """
    flat = np.arange(4.0)
    square = flat.reshape(2, 2)
    # Identical bytes, different shape: distinct keys.
    assert quantize_key([flat], 0.1) != quantize_key([square], 0.1)
    # Same values split across two arrays vs one: distinct keys.
    assert quantize_key([flat[:2], flat[2:]], 0.1) != \
        quantize_key([flat], 0.1)
    # Equal values in different input dtypes: identical keys (both
    # quantize on the float64 grid).
    assert quantize_key([flat.astype(np.float32)], 0.5) == \
        quantize_key([flat], 0.5)
    # Non-contiguous views keyed by their logical contents.
    strided = np.arange(8.0)[::2]
    assert quantize_key([strided], 0.1) == \
        quantize_key([strided.copy()], 0.1)
    # The key is hashable and stable across calls.
    key = quantize_key([square], 0.1)
    assert hash(key) == hash(quantize_key([square], 0.1))


def test_quantize_key_does_not_mutate_input():
    a = np.array([1.25, -2.5])
    before = a.copy()
    quantize_key([a], 0.1)
    np.testing.assert_array_equal(a, before)


def test_input_memo_hits_and_eviction():
    calls = []
    memo = InputMemo(tolerance=0.1, capacity=2)

    def fn(x):
        calls.append(x.copy())
        return x * 2

    x1, x2, x3 = (np.array([float(v)]) for v in (1, 2, 3))
    memo(fn, x1)
    memo(fn, x1)                       # hit
    assert memo.hits == 1 and memo.misses == 1
    memo(fn, x2)
    memo(fn, x3)                       # evicts x1 (capacity 2)
    memo(fn, x1)                       # miss again
    assert memo.misses == 4
    assert memo.hit_rate == pytest.approx(1 / 5)


def test_output_memo_replays_when_stable():
    memo = OutputMemo(threshold=0.01, history=2, replay_limit=3)
    calls = []

    def fn():
        calls.append(1)
        return np.array([1.0, 1.0])

    for _ in range(10):
        out = memo(fn)
        np.testing.assert_allclose(out, [1.0, 1.0])
    # After 3 stable executions (1 initial + 2 history), replays kick in.
    assert memo.replays > 0
    assert len(calls) < 10


def test_output_memo_reexecutes_on_change():
    memo = OutputMemo(threshold=0.01, history=1, replay_limit=2)
    # Executions consume values; replays don't.  Calls 1-2 execute
    # (1.0, 1.0 -> stable), calls 3-4 replay, call 5 re-validates and
    # observes the changed signal.
    values = iter([1.0, 1.0, 5.0])
    outs = [memo(lambda: np.array([next(values)])) for _ in range(5)]
    assert outs[2][0] == 1.0           # replayed
    assert outs[-1][0] == 5.0          # change propagates on re-validation


# ----------------------------------------------------------------------
# TechniqueRegion decorator
# ----------------------------------------------------------------------

def test_memo_region_roundtrip():
    @approx_technique("#pragma approx memo(in:0.01) in(x) out(y)")
    def region(x, y):
        y[...] = np.sin(x)

    x = np.linspace(0, 1, 8)
    y = np.zeros(8)
    region(x, y)
    np.testing.assert_allclose(y, np.sin(x))
    y2 = np.zeros(8)
    region(x, y2)                      # served from cache
    np.testing.assert_allclose(y2, np.sin(x))
    assert region.stats["hits"] == 1


def test_memo_region_if_clause_bypasses_cache():
    calls = []

    @approx_technique("#pragma approx memo(in:0.01) in(x) out(y) if(on)")
    def region(x, y, on=True):
        calls.append(1)
        y[...] = x

    x = np.ones(3)
    region(x, np.zeros(3), on=False)
    region(x, np.zeros(3), on=False)
    assert len(calls) == 2             # accurate path both times
    assert region.stats["misses"] == 0


def test_perfo_region_run_loop():
    @approx_technique("#pragma approx perfo(fin:frac) in(a) out(b)")
    def region(a, b, frac=0.5):
        pass

    hits = []
    ran = region.run_loop(hits.append, 10, np.zeros(1), np.zeros(1),
                          frac=0.2)
    assert ran == 8
    assert max(hits) == 7              # trailing iterations skipped


def test_perfo_region_rejects_plain_call():
    @approx_technique("#pragma approx perfo(small:0.5) in(a) out(b)")
    def region(a, b):
        pass

    with pytest.raises(TypeError):
        region(np.zeros(1), np.zeros(1))


def test_technique_rejects_ml_directive():
    with pytest.raises(TypeError):
        TechniqueRegion(lambda x: x,
                        '#pragma approx ml(collect) in(x) db("d")')
