"""Mini-app numerics: physical/financial sanity of each accurate kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import binomial, bonds, minibude, miniweather, particlefilter
from repro.apps.base import REGISTRY, qoi_error_fn


def test_registry_has_all_five():
    assert set(REGISTRY) == {"minibude", "binomial", "bonds", "miniweather",
                             "particlefilter"}
    assert REGISTRY["minibude"].metric == "mape"
    assert all(REGISTRY[n].metric == "rmse"
               for n in ("binomial", "bonds", "miniweather",
                         "particlefilter"))


def test_qoi_error_fn_dispatch():
    assert qoi_error_fn("rmse")(np.ones(3), np.zeros(3)) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        qoi_error_fn("mae")


# ----------------------------------------------------------------------
# MiniBUDE
# ----------------------------------------------------------------------

def test_minibude_rotation_matrices_orthogonal():
    poses = minibude.kernel.generate_poses(16, seed=0)
    rots = minibude.kernel.pose_rotation_matrices(poses)
    for r in rots:
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


def test_minibude_energy_deterministic_and_pose_dependent():
    deck = minibude.kernel.generate_deck(seed=1)
    poses = minibude.kernel.generate_poses(32, seed=2)
    e1 = minibude.kernel.binding_energies(deck, poses)
    e2 = minibude.kernel.binding_energies(deck, poses)
    np.testing.assert_array_equal(e1, e2)
    assert np.std(e1) > 0   # different poses give different energies


def test_minibude_identity_pose_blocking_invariance():
    deck = minibude.kernel.generate_deck(seed=3)
    poses = minibude.kernel.generate_poses(50, seed=4)
    full = minibude.kernel.binding_energies(deck, poses, block=256)
    small = minibude.kernel.binding_energies(deck, poses, block=7)
    np.testing.assert_allclose(full, small, atol=1e-10)


def test_minibude_far_translation_gives_reference_energy():
    deck = minibude.kernel.generate_deck(seed=5)
    far = np.zeros((1, 6))
    far[0, 3:] = 100.0   # ligand far outside the cutoff
    e_far = minibude.kernel.binding_energies(deck, far)[0]
    # No interactions: energy equals the unbound reference offset.
    assert e_far == pytest.approx(minibude.kernel._E_REF)


# ----------------------------------------------------------------------
# Binomial Options
# ----------------------------------------------------------------------

def test_binomial_converges_to_black_scholes_european_limit():
    """Deep OTM American call == European call; check BS agreement."""
    from scipy.stats import norm
    s, k, t, r, sigma = 100.0, 90.0, 1.0, 0.05, 0.2
    d1 = (np.log(s / k) + (r + sigma ** 2 / 2) * t) / (sigma * np.sqrt(t))
    d2 = d1 - sigma * np.sqrt(t)
    bs_call = s * norm.cdf(d1) - k * np.exp(-r * t) * norm.cdf(d2)
    opts = np.array([[s, k, t, r, sigma]])
    # American call on a non-dividend stock equals the European price.
    price = binomial.kernel.price_american(opts, n_steps=512, call=True)[0]
    assert price == pytest.approx(bs_call, rel=2e-3)


def test_binomial_put_early_exercise_premium():
    """American put >= European put (early exercise has value)."""
    opts = np.array([[80.0, 100.0, 2.0, 0.08, 0.3]])
    american = binomial.kernel.price_american(opts, n_steps=256,
                                              call=False)[0]
    s, k, t, r, sigma = opts[0]
    from scipy.stats import norm
    d1 = (np.log(s / k) + (r + sigma ** 2 / 2) * t) / (sigma * np.sqrt(t))
    d2 = d1 - sigma * np.sqrt(t)
    european = k * np.exp(-r * t) * norm.cdf(-d2) - s * norm.cdf(-d1)
    assert american > european


def test_binomial_intrinsic_lower_bound():
    opts = binomial.kernel.generate_options(64, seed=0)
    prices = binomial.kernel.price_american(opts, n_steps=64)
    intrinsic = np.maximum(opts[:, 0] - opts[:, 1], 0.0)
    assert np.all(prices >= intrinsic - 1e-9)


def test_binomial_monotone_in_volatility():
    base = np.array([[20.0, 20.0, 1.0, 0.05, 0.2]])
    hi = base.copy()
    hi[0, 4] = 0.5
    p_lo = binomial.kernel.price_american(base, n_steps=128)[0]
    p_hi = binomial.kernel.price_american(hi, n_steps=128)[0]
    assert p_hi > p_lo


# ----------------------------------------------------------------------
# Bonds
# ----------------------------------------------------------------------

def test_bonds_accrued_zero_at_period_start():
    b = np.array([[10.0, 0.06, 0.05, 0.0, 100.0]])
    assert bonds.kernel.accrued_interest(b)[0] == pytest.approx(0.0)


def test_bonds_accrued_grows_within_period():
    fr = np.linspace(0, 0.99, 20)
    b = np.stack([np.full(20, 10.0), np.full(20, 0.06), np.full(20, 0.05),
                  fr, np.full(20, 100.0)], axis=1)
    acc = bonds.kernel.accrued_interest(b)
    assert np.all(np.diff(acc) >= 0)
    # Near a full period: ~half a year of coupon accrued.
    assert acc[-1] == pytest.approx(100 * 0.06 * 0.5, rel=0.05)


def test_bonds_value_decreases_with_rate():
    rates = np.linspace(0.01, 0.12, 10)
    b = np.stack([np.full(10, 10.0), np.full(10, 0.06), rates,
                  np.zeros(10), np.full(10, 100.0)], axis=1)
    values = bonds.kernel.bond_values(b)
    assert np.all(np.diff(values) < 0)


def test_bonds_par_pricing_sanity():
    """Coupon == yield => price near par (continuous-compounding gap)."""
    b = np.array([[10.0, 0.06, 0.06, 0.0, 100.0]])
    value = bonds.kernel.bond_values(b)[0]
    assert 92.0 < value < 103.0


def test_bonds_day_count_staircase():
    fr = np.array([0.0, 0.004, 0.006, 0.5, 1.0 - 1e-9])
    dc = bonds.kernel.day_count_30_360(fr)
    assert dc[0] == 0.0
    assert np.all(np.diff(dc) >= 0)
    assert dc[-1] == pytest.approx(179 / 360)


# ----------------------------------------------------------------------
# MiniWeather
# ----------------------------------------------------------------------

def test_miniweather_unperturbed_atmosphere_is_steady():
    cfg = miniweather.kernel.WeatherConfig(nx=16, nz=8)
    st_ = miniweather.kernel.init_thermal_bubble(cfg, amplitude=0.0)
    q0 = st_.q.copy()
    miniweather.kernel.run(st_, 50, dt=0.5)
    np.testing.assert_array_equal(st_.q, q0)


def test_miniweather_bubble_rises():
    cfg = miniweather.kernel.WeatherConfig(nx=32, nz=16)
    st_ = miniweather.kernel.init_thermal_bubble(cfg, amplitude=10.0)

    def center_of_mass_z(state):
        theta = np.maximum(state.q[3], 0.0)
        z = np.arange(cfg.nz)[:, None]
        return float((theta * z).sum() / max(theta.sum(), 1e-9))

    z0 = center_of_mass_z(st_)
    dt = 0.8 * miniweather.kernel.CFL * min(cfg.dx, cfg.dz) / \
        miniweather.kernel.max_wave_speed(st_)
    miniweather.kernel.run(st_, 150, dt=dt)
    assert center_of_mass_z(st_) > z0 + 0.5   # buoyant ascent


def test_miniweather_mass_conservation():
    cfg = miniweather.kernel.WeatherConfig(nx=32, nz=16)
    st_ = miniweather.kernel.init_thermal_bubble(cfg, amplitude=10.0)
    mass0 = st_.q[0].sum()
    dt = 0.8 * miniweather.kernel.CFL * min(cfg.dx, cfg.dz) / \
        miniweather.kernel.max_wave_speed(st_)
    miniweather.kernel.run(st_, 100, dt=dt)
    # Periodic x + rigid walls: total density perturbation is conserved
    # up to floating-point accumulation.
    assert st_.q[0].sum() == pytest.approx(mass0, abs=1e-8)


def test_miniweather_stability_long_run():
    cfg = miniweather.kernel.WeatherConfig(nx=32, nz=16)
    st_ = miniweather.kernel.init_thermal_bubble(cfg, amplitude=10.0)
    dt = 0.8 * miniweather.kernel.CFL * min(cfg.dx, cfg.dz) / \
        miniweather.kernel.max_wave_speed(st_)
    miniweather.kernel.run(st_, 400, dt=dt)
    assert np.all(np.isfinite(st_.q))
    assert np.abs(st_.q[3]).max() < 50.0


def test_miniweather_cfl_wave_speed_positive():
    st_ = miniweather.kernel.init_thermal_bubble()
    assert miniweather.kernel.max_wave_speed(st_) > 300.0  # ~sound speed


# ----------------------------------------------------------------------
# ParticleFilter
# ----------------------------------------------------------------------

def test_video_truth_stays_in_frame():
    wl = particlefilter.kernel.generate_video(64, 48, 40, seed=0)
    assert wl.frames.shape == (64, 48, 40)
    assert np.all(wl.truth[:, 0] >= 0) and np.all(wl.truth[:, 0] < 48)
    assert np.all(wl.truth[:, 1] >= 0) and np.all(wl.truth[:, 1] < 40)
    assert wl.frames.min() >= 0.0 and wl.frames.max() <= 1.0


def test_video_blob_is_at_truth():
    wl = particlefilter.kernel.generate_video(8, 64, 64, noise=0.0, seed=1)
    for f in range(8):
        peak = np.unravel_index(np.argmax(wl.frames[f]), (64, 64))
        assert abs(peak[0] - wl.truth[f, 0]) <= 1.0
        assert abs(peak[1] - wl.truth[f, 1]) <= 1.0


def test_particle_filter_tracks_object():
    wl = particlefilter.kernel.generate_video(48, 64, 64, seed=2)
    est = particlefilter.kernel.particle_filter_track(wl.frames, 512, seed=3)
    rmse = np.sqrt(np.mean((est - wl.truth) ** 2))
    assert rmse < 1.5   # paper regime: ~0.5


def test_particle_filter_more_particles_do_not_hurt():
    wl = particlefilter.kernel.generate_video(32, 48, 48, seed=4)
    few = particlefilter.kernel.particle_filter_track(wl.frames, 32, seed=5)
    many = particlefilter.kernel.particle_filter_track(wl.frames, 1024,
                                                       seed=5)
    err_few = np.sqrt(np.mean((few - wl.truth) ** 2))
    err_many = np.sqrt(np.mean((many - wl.truth) ** 2))
    assert err_many <= err_few * 1.5


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_video_generation_deterministic(seed):
    a = particlefilter.kernel.generate_video(4, 16, 16, seed=seed)
    b = particlefilter.kernel.generate_video(4, 16, 16, seed=seed)
    np.testing.assert_array_equal(a.frames, b.frames)
    np.testing.assert_array_equal(a.truth, b.truth)
