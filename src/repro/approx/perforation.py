"""Loop perforation — the classic HPAC technique (paper §II).

HPAC wraps a loop and, when the approximate execution path is active,
skips a subset of iterations.  The five HPAC perforation kinds are
implemented over an explicit iteration space:

* ``ini``   — skip the first ``rate`` fraction of iterations;
* ``fin``   — skip the last ``rate`` fraction;
* ``small`` — skip every ``n``-th iteration, ``n = round(1/rate)``;
* ``large`` — *execute only* every ``n``-th iteration,
  ``n = round(1/rate)`` (skips the (n-1)/n complement);
* ``rand``  — skip a uniformly random ``rate`` fraction.

The runtime entry point :class:`PerforatedLoop` evaluates the rate and
``if``-condition per invocation against the call environment, exactly
like the HPAC-ML ``ml`` clause conditions.
"""

from __future__ import annotations

import numpy as np

from ..directives.ast_nodes import PerfoDirective
from ..directives.parser import parse_directive
from ..runtime.control import eval_condition, eval_expr

__all__ = ["iteration_mask", "PerforatedLoop", "perforated_indices"]


def iteration_mask(n: int, kind: str, rate: float,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Boolean mask of iterations to EXECUTE for a perforated loop."""
    if n < 0:
        raise ValueError(f"negative iteration count {n}")
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"perforation rate must be in [0, 1]: {rate}")
    mask = np.ones(n, dtype=bool)
    if n == 0 or rate == 0.0:
        return mask
    def stride_for(r: float) -> int:
        # Guard against subnormal rates where 1/r overflows int; any
        # stride beyond n behaves like "no n-th iteration in range".
        inv = 1.0 / r
        if inv > n:
            return n + 1
        return max(1, int(round(inv)))

    if kind == "ini":
        mask[:int(round(n * rate))] = False
    elif kind == "fin":
        start = n - int(round(n * rate))
        mask[start:] = False
    elif kind == "small":
        stride = stride_for(rate)
        mask[stride - 1::stride] = False
    elif kind == "large":
        stride = stride_for(rate)
        mask[:] = False
        mask[::stride] = True
    elif kind == "rand":
        rng = rng or np.random.default_rng()
        mask &= rng.random(n) >= rate
    else:
        raise ValueError(f"unknown perforation kind {kind!r}")
    return mask


def perforated_indices(n: int, kind: str, rate: float,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """Indices of the iterations that execute."""
    return np.nonzero(iteration_mask(n, kind, rate, rng))[0]


class PerforatedLoop:
    """An HPAC ``perfo`` region: a loop body driven over a masked range.

    Usage::

        loop = PerforatedLoop('#pragma approx perfo(small:rate) in(x) out(y)')
        loop.run(body, n_iterations, env={'rate': 0.25, ...})

    ``body(i)`` is the outlined loop body; the accurate path executes
    all iterations (when the ``if`` clause is false), the approximate
    path the masked subset.
    """

    def __init__(self, directive: str, seed: int = 0):
        node = parse_directive(directive)
        if not isinstance(node, PerfoDirective):
            raise TypeError(f"expected a perfo directive, got "
                            f"{type(node).__name__}")
        self.directive = node
        self.rng = np.random.default_rng(seed)
        self.executed = 0
        self.skipped = 0

    def run(self, body, n: int, env: dict | None = None) -> int:
        """Execute the loop; returns the number of iterations run."""
        env = env or {}
        active = True
        if self.directive.if_condition is not None:
            active = eval_condition(self.directive.if_condition, env)
        if not active:
            for i in range(n):
                body(i)
            self.executed += n
            return n
        rate = eval_expr(self.directive.rate, env)
        mask = iteration_mask(n, self.directive.kind, rate, self.rng)
        count = 0
        for i in np.nonzero(mask)[0]:
            body(int(i))
            count += 1
        self.executed += count
        self.skipped += n - count
        return count
