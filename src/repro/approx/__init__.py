"""``repro.approx`` — classic HPAC approximate-computing techniques.

HPAC-ML extends HPAC (paper §II); this package implements the substrate
HPAC itself provides: loop perforation and input/output memoization,
behind the same directive-driven region machinery as the ML surrogates.
"""

from .perforation import iteration_mask, perforated_indices, PerforatedLoop
from .memoization import quantize_key, InputMemo, OutputMemo
from .region import approx_technique, TechniqueRegion

__all__ = ["iteration_mask", "perforated_indices", "PerforatedLoop",
           "quantize_key", "InputMemo", "OutputMemo", "approx_technique",
           "TechniqueRegion"]
