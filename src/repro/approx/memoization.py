"""Memoization — the second classic HPAC technique (paper §II).

Two flavors, matching the literature HPAC implements:

* **Input memoization** (iACT [Mishra et al.]): quantize the region's
  inputs to a tolerance grid and cache outputs keyed on the quantized
  signature; a hit skips the region entirely.
* **Output memoization** (TAF [Tziantzioulis et al.]): monitor the
  region's recent outputs; while they are stable (relative change under
  a threshold across a history window), replay the last output instead
  of executing.

Both operate on the same outlined-region shape as the HPAC-ML runtime:
``region(inputs) -> outputs`` over ndarrays.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

__all__ = ["quantize_key", "InputMemo", "OutputMemo"]


def quantize_key(arrays, tolerance: float) -> tuple:
    """Hashable signature of input arrays on a ``tolerance`` grid.

    Each array contributes ``(shape, digest)`` where the digest is a
    128-bit BLAKE2b hash of the quantized bytes.  The seed stored the
    full ``tobytes()`` payload as the dict key, which made every cache
    probe hash megabytes and kept the raw inputs alive in the table;
    the fixed-size digest makes probes O(1) in key size while the shape
    tuple still separates reshaped views of identical bytes.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive: {tolerance}")
    parts = []
    for arr in arrays:
        arr = np.asarray(arr)
        if arr.dtype != np.float64:          # skip the copy when already f64
            arr = arr.astype(np.float64)
        q = arr / tolerance                  # fresh array: round in place
        np.round(q, out=q)
        digest = hashlib.blake2b(
            np.ascontiguousarray(q).tobytes(), digest_size=16).digest()
        parts.append((q.shape, digest))
    return tuple(parts)


class InputMemo:
    """iACT-style input-keyed output cache with LRU eviction."""

    def __init__(self, tolerance: float, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.tolerance = tolerance
        self.capacity = capacity
        self._table: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __call__(self, fn, *inputs: np.ndarray):
        """Evaluate ``fn(*inputs)`` through the cache."""
        key = quantize_key(inputs, self.tolerance)
        cached = self._table.get(key)
        if cached is not None:
            self._table.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        out = fn(*inputs)
        self._table[key] = out
        if len(self._table) > self.capacity:
            self._table.popitem(last=False)
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._table.clear()
        self.hits = self.misses = 0


class OutputMemo:
    """TAF-style temporal output memoization.

    After ``history`` consecutive executions whose outputs changed by
    less than ``threshold`` (relative L2), the region is skipped and
    the last output replayed, for up to ``replay_limit`` invocations
    before re-validating with a real execution.
    """

    def __init__(self, threshold: float, history: int = 3,
                 replay_limit: int = 8):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.history = max(1, history)
        self.replay_limit = max(1, replay_limit)
        self._last_output = None
        self._stable_count = 0
        self._replays_left = 0
        self.executions = 0
        self.replays = 0

    def _relative_change(self, new: np.ndarray) -> float:
        prev = self._last_output
        denom = float(np.linalg.norm(prev)) or 1.0
        return float(np.linalg.norm(np.asarray(new) - prev)) / denom

    def __call__(self, fn, *inputs):
        if self._replays_left > 0 and self._last_output is not None:
            self._replays_left -= 1
            self.replays += 1
            return self._last_output
        out = np.asarray(fn(*inputs))
        self.executions += 1
        if self._last_output is not None and \
                self._relative_change(out) <= self.threshold:
            self._stable_count += 1
            if self._stable_count >= self.history:
                self._replays_left = self.replay_limit
                self._stable_count = 0
        else:
            self._stable_count = 0
        self._last_output = out.copy()
        return self._last_output

    def reset(self) -> None:
        self._last_output = None
        self._stable_count = 0
        self._replays_left = 0
