"""HPAC technique regions: the directive-driven runtime entry points.

HPAC views the accurate and approximate implementations as two
execution paths of one region (paper §II); HPAC-ML reuses that
machinery with NN inference as the approximate path.  This module
provides the pre-existing HPAC techniques behind the same decorator
ergonomics as :func:`repro.api.approx_ml`, so applications can compare
classic approximations against surrogates (the ParticleFilter
comparison of Observation 1)::

    @approx_technique('#pragma approx memo(in:0.05) in(x) out(y)')
    def region(x, y):
        ...

Supported directives: ``perfo`` (wrap loops via ``.run_loop``) and
``memo`` (transparent call-through cache).
"""

from __future__ import annotations

import inspect

import numpy as np

from ..directives.ast_nodes import MemoDirective, PerfoDirective
from ..directives.parser import parse_directive
from ..runtime.control import eval_condition, eval_expr
from .memoization import InputMemo, OutputMemo
from .perforation import iteration_mask

__all__ = ["approx_technique", "TechniqueRegion"]


class TechniqueRegion:
    """A callable region approximated by a classic HPAC technique."""

    def __init__(self, func, directive: str, seed: int = 0):
        self.func = func
        self.name = func.__name__
        self.signature = inspect.signature(func)
        node = parse_directive(directive)
        if not isinstance(node, (PerfoDirective, MemoDirective)):
            raise TypeError(
                f"approx_technique expects a perfo/memo directive, got "
                f"{type(node).__name__}")
        self.directive = node
        self.rng = np.random.default_rng(seed)
        self._memo = None
        if isinstance(node, MemoDirective):
            if node.kind == "in":
                self._memo = InputMemo(tolerance=float(node.parameter))
            else:
                self._memo = OutputMemo(threshold=float(node.parameter))

    # -- shared ----------------------------------------------------------
    def _env(self, args, kwargs) -> dict:
        bound = self.signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return dict(bound.arguments)

    def _active(self, env: dict) -> bool:
        if self.directive.if_condition is None:
            return True
        return eval_condition(self.directive.if_condition, env)

    # -- memo call path -----------------------------------------------------
    def __call__(self, *args, **kwargs):
        if isinstance(self.directive, PerfoDirective):
            raise TypeError(
                "perfo regions wrap loops; call run_loop(n, *args) instead")
        env = self._env(args, kwargs)
        if not self._active(env):
            return self.func(*args, **kwargs)
        key_arrays = [env[name] for name in self.directive.in_arrays]
        if isinstance(self._memo, InputMemo):
            out_names = self.directive.out_arrays
            outs = [env[name] for name in out_names]

            def compute(*_keys):
                self.func(*args, **kwargs)
                return [np.asarray(o).copy() for o in outs]

            cached = self._memo(compute, *key_arrays)
            for target, value in zip(outs, cached):
                np.asarray(target)[...] = value
            return None
        # Output memoization.
        out_names = self.directive.out_arrays
        outs = [env[name] for name in out_names]

        def compute():
            self.func(*args, **kwargs)
            return np.concatenate([np.asarray(o).ravel() for o in outs])

        flat = self._memo(compute)
        offset = 0
        for target in outs:
            t = np.asarray(target)
            t[...] = flat[offset:offset + t.size].reshape(t.shape)
            offset += t.size
        return None

    # -- perforation call path ---------------------------------------------
    def run_loop(self, body, n: int, *args, **kwargs) -> int:
        """Run ``body(i)`` for a perforated iteration space of size ``n``.

        ``args``/``kwargs`` bind the region signature to evaluate the
        rate and ``if`` condition (they are not passed to ``body``).
        """
        if not isinstance(self.directive, PerfoDirective):
            raise TypeError("run_loop is only valid for perfo regions")
        env = self._env(args, kwargs) if (args or kwargs) else {}
        if env and not self._active(env):
            mask = np.ones(n, dtype=bool)
        else:
            rate = eval_expr(self.directive.rate, env)
            mask = iteration_mask(n, self.directive.kind, rate, self.rng)
        count = 0
        for i in np.nonzero(mask)[0]:
            body(int(i))
            count += 1
        return count

    @property
    def stats(self) -> dict:
        if isinstance(self._memo, InputMemo):
            return {"hits": self._memo.hits, "misses": self._memo.misses,
                    "hit_rate": self._memo.hit_rate}
        if isinstance(self._memo, OutputMemo):
            return {"executions": self._memo.executions,
                    "replays": self._memo.replays}
        return {}


def approx_technique(directive: str, *, seed: int = 0):
    """Decorator attaching an HPAC perfo/memo directive to a region."""

    def decorate(func) -> TechniqueRegion:
        return TechniqueRegion(func, directive, seed=seed)

    return decorate
