"""Nested two-level multi-objective BO for neural architecture search.

Implements §V-C end to end:

* The **outer** level proposes architectures from the benchmark's
  Table IV space and jointly minimizes (inference latency, validation
  error) via ParEGO-style randomized Chebyshev scalarization over the
  trial archive, with the paper's early stop — five consecutive trials
  without a new Pareto-optimal model.
* The **inner** level tunes the Table V training hyperparameters for
  the proposed architecture with single-objective BO on validation
  error ("the inner level produces hyperparameters that minimize
  validation error; the model architecture determines inference
  speed").

Returns every evaluated model with its metrics — the population Figs.
7/8 scatter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..nn import FleetTrainer, Tensor, Trainer, no_grad
from ..nn.compile import UnsupportedLayerError
from .acquisition import expected_improvement
from .bo import BayesianOptimizer
from .gp import GaussianProcess
from .pareto import chebyshev_scalarize, pareto_front_mask
from .space import Space, hyperparameter_space

__all__ = ["ModelTrial", "NASResult", "NestedSearch", "measure_latency"]


def measure_latency(model, sample_batch: np.ndarray, repeats: int = 3) -> float:
    """Median wall-clock seconds of a forward pass over ``sample_batch``."""
    model.eval()
    times = []
    with no_grad():
        model(Tensor(sample_batch[: min(4, len(sample_batch))]))  # warm-up
        for _ in range(repeats):
            start = time.perf_counter()
            model(Tensor(sample_batch))
            times.append(time.perf_counter() - start)
    return float(np.median(times))


@dataclass
class ModelTrial:
    """One fully evaluated architecture (after inner tuning)."""

    index: int
    arch: dict
    hypers: dict
    val_error: float
    latency: float
    n_params: int
    model: object = field(repr=False, default=None)
    #: Whether the winning inner-loop fit ran on the compiled training
    #: fast path (False = graph fallback; ``compile_fallback`` says why).
    compiled: bool = True
    compile_fallback: str | None = None
    #: How many candidates trained in lockstep with the winning fit —
    #: 1 for sequential fits, >1 when a population-mode fleet
    #: (:class:`~repro.nn.FleetTrainer`) produced it.
    fleet_size: int = 1

    @property
    def objectives(self) -> tuple:
        return (self.latency, self.val_error)


@dataclass
class NASResult:
    trials: list

    def compiled_fraction(self) -> float:
        """Share of trials whose best fit trained on the compiled path —
        the BO throughput story depends on this staying at 1.0 now that
        the registry lowers the full Table IV zoo (MLP/CNN/RNN).
        Population-mode fleet fits count as compiled (the fleet plan
        *is* the compiled path); a fleet whose group fell back to
        sequential graph training reports ``compiled=False`` like any
        other fallback."""
        if not self.trials:
            return 1.0
        return sum(1 for t in self.trials if t.compiled) / len(self.trials)

    def objective_matrix(self) -> np.ndarray:
        return np.array([t.objectives for t in self.trials])

    def pareto_trials(self) -> list:
        if not self.trials:
            return []
        mask = pareto_front_mask(self.objective_matrix())
        return [t for t, m in zip(self.trials, mask) if m]

    def best_by_error(self, error_cutoff: float | None = None) -> ModelTrial:
        pool = self.trials
        if error_cutoff is not None:
            pool = [t for t in pool if t.val_error < error_cutoff] or self.trials
        return min(pool, key=lambda t: t.val_error)

    def fastest(self, error_cutoff: float | None = None) -> ModelTrial:
        pool = self.trials
        if error_cutoff is not None:
            pool = [t for t in pool if t.val_error < error_cutoff] or self.trials
        return min(pool, key=lambda t: t.latency)


class NestedSearch:
    """Drive the two-level search for one benchmark.

    Parameters
    ----------
    arch_space:
        The benchmark's Table IV space.
    build_model:
        ``build(arch_config, dropout=..., seed=...) -> Module``.
    x_train, y_train, x_val, y_val:
        Collected data, already split (the paper trains/evaluates only
        on the collection-phase training/validation data).
    n_inner:
        Inner BO iterations (paper: 30).
    max_epochs:
        Trainer epochs per candidate (scaled down from the paper's GPU
        budget; the search semantics are unchanged).
    """

    def __init__(self, arch_space: Space, build_model,
                 x_train, y_train, x_val, y_val,
                 n_inner: int = 6, max_epochs: int = 20,
                 latency_batch: int = 256, seed: int = 0,
                 loss_fn=None, compiled: bool = True,
                 population: int = 1):
        self.arch_space = arch_space
        self.build_model = build_model
        self.x_train, self.y_train = x_train, y_train
        self.x_val, self.y_val = x_val, y_val
        self.n_inner = n_inner
        self.max_epochs = max_epochs
        self.seed = seed
        self.loss_fn = loss_fn
        #: Train candidates through the compiled fast path (the inner
        #: loop trains every BO candidate, so epoch time bounds search
        #: throughput); unsupported architectures fall back per model.
        self.compiled = compiled
        #: Inner-loop candidates evaluated per proposal round.  1 keeps
        #: the exact sequential BO trajectory; >1 proposes rounds of
        #: ``population`` hyperparameter configs and trains
        #: same-fingerprint groups in lockstep through a fleet plan
        #: (:class:`~repro.nn.FleetTrainer`), falling back to
        #: sequential training per group when the structure has no
        #: fleet lowering.
        self.population = max(1, int(population))
        self.rng = np.random.default_rng(seed)
        n = min(latency_batch, len(x_val))
        self.latency_sample = np.ascontiguousarray(x_val[:n])

    # -- inner level -------------------------------------------------------
    def tune_architecture(self, arch: dict) -> ModelTrial:
        """Inner BO: tune Table V hyperparameters for one architecture."""
        if self.population > 1 and self.compiled:
            return self._tune_architecture_fleet(arch)
        hp_space = hyperparameter_space()
        best_model = {}

        def objective(hp: dict):
            model = self.build_model(arch, dropout=hp["dropout"],
                                     seed=self.seed)
            kwargs = {}
            if self.loss_fn is not None:
                kwargs["loss_fn"] = self.loss_fn
            trainer = Trainer(model, lr=hp["learning_rate"],
                              weight_decay=hp["weight_decay"],
                              batch_size=int(hp["batch_size"]),
                              max_epochs=self.max_epochs,
                              patience=max(3, self.max_epochs // 4),
                              seed=self.seed, compiled=self.compiled,
                              **kwargs)
            result = trainer.fit(self.x_train, self.y_train,
                                 self.x_val, self.y_val)
            if not best_model or result.best_val_loss < best_model["val"]:
                best_model["model"] = model
                best_model["val"] = result.best_val_loss
                best_model["hypers"] = dict(hp)
                best_model["compiled"] = trainer.compiled_active
                best_model["fallback"] = trainer.compile_fallback
            return result.best_val_loss

        bo = BayesianOptimizer(hp_space, n_init=max(2, self.n_inner // 3),
                               seed=int(self.rng.integers(2 ** 31)))
        bo.minimize(objective, n_iterations=self.n_inner)

        model = best_model["model"]
        latency = measure_latency(model, self.latency_sample)
        return ModelTrial(index=-1, arch=dict(arch),
                          hypers=best_model["hypers"],
                          val_error=float(best_model["val"]),
                          latency=latency,
                          n_params=model.num_parameters(), model=model,
                          compiled=best_model["compiled"],
                          compile_fallback=best_model["fallback"])

    def _tune_architecture_fleet(self, arch: dict) -> ModelTrial:
        """Population-mode inner loop: rounds of ``population``
        hyperparameter configs, same-fingerprint groups trained in
        lockstep through one fleet plan.

        Proposal cost is amortized with
        :meth:`~repro.search.bo.BayesianOptimizer.propose_batch` (one
        GP fit per round); candidates sharing a fleet training
        fingerprint and batch size train as one
        :class:`~repro.nn.FleetTrainer` fleet — each member's fit is
        bitwise its sequential fit, so the only search-trajectory
        change is the batched proposal pattern.  Groups without a
        fleet lowering (or singletons) train sequentially.
        """
        from ..nn.compile_train import fleet_training_fingerprint
        from ..nn.loss import mse_loss
        hp_space = hyperparameter_space()
        loss_fn = self.loss_fn if self.loss_fn is not None else mse_loss
        # Same seed-stream position as the sequential inner loop.
        bo = BayesianOptimizer(hp_space, n_init=max(2, self.n_inner // 3),
                               seed=int(self.rng.integers(2 ** 31)))
        best: dict = {}
        xs: list = []
        ys: list = []

        def record(hp, model, result, compiled, fallback, fleet_size):
            xs.append(hp_space.to_unit(hp))
            val = float(result.best_val_loss)
            ys.append(val if np.isfinite(val) else 1e12)
            if not best or val < best["val"]:
                best.update(model=model, val=val, hypers=dict(hp),
                            compiled=compiled, fallback=fallback,
                            fleet_size=fleet_size)

        # One fleet = one minibatch stream, so each round shares its
        # batch-size coordinate.  A round can therefore never vary
        # batch size *within* itself, and a GP fit on such rounds has
        # no signal in that dimension — so instead of letting the
        # acquisition pick it blind, the shared value walks a shuffled
        # geometric grid over the batch-size bounds (coarse round-level
        # exploration of the one coordinate a fleet must share).
        # Proposals for the round are *pinned* to the grid value —
        # batch size couples to learning rate, so overwriting it after
        # acquisition yields off-manifold configs.  xs/ys record the
        # pinned configs — the GP sees what actually trained.
        n_rounds = -(-self.n_inner // self.population)
        bs_grid = None
        bs_param = next((param for param in hp_space.params
                         if param.name == "batch_size"), None)
        if bs_param is not None and bs_param.lo > 0:
            ratio = bs_param.hi / bs_param.lo
            bs_grid = [int(round(bs_param.lo
                                 * ratio ** ((r + 0.5) / n_rounds)))
                       for r in range(n_rounds)]
            bs_grid = [bs_grid[i] for i in bo.rng.permutation(n_rounds)]

        evaluated = 0
        rounds = 0
        while evaluated < self.n_inner:
            p = min(self.population, self.n_inner - evaluated)
            # Fill the round: random seeding up to n_init, the rest
            # GP-proposed from everything evaluated so far.
            n_rand = max(0, min(p, bo.n_init - evaluated))
            configs = [hp_space.sample(bo.rng) for _ in range(n_rand)]
            if bs_grid is not None:
                shared_bs = bs_grid[min(rounds, len(bs_grid) - 1)]
            else:
                if not configs:
                    configs = bo.propose_batch(xs, ys, 1)
                shared_bs = int(configs[0]["batch_size"])
            configs = [dict(hp, batch_size=shared_bs) for hp in configs]
            if p > len(configs):
                configs.extend(bo.propose_batch(
                    xs, ys, p - len(configs),
                    fixed={"batch_size": shared_bs}))
            rounds += 1
            models = [self.build_model(arch, dropout=hp["dropout"],
                                       seed=self.seed) for hp in configs]
            groups: dict = {}
            for idx, (hp, model) in enumerate(zip(configs, models)):
                key = (fleet_training_fingerprint(model, loss_fn),
                       int(hp["batch_size"]))
                groups.setdefault(key, []).append(idx)
            for (_fp, batch_size), idxs in groups.items():
                if len(idxs) >= 2:
                    try:
                        ft = FleetTrainer(
                            [models[i] for i in idxs],
                            lr=[configs[i]["learning_rate"]
                                for i in idxs],
                            weight_decay=[configs[i]["weight_decay"]
                                          for i in idxs],
                            batch_size=batch_size,
                            max_epochs=self.max_epochs,
                            patience=max(3, self.max_epochs // 4),
                            loss_fn=loss_fn, seed=self.seed)
                        results = ft.fit(self.x_train, self.y_train,
                                         self.x_val, self.y_val)
                        for i, r in zip(idxs, results):
                            record(configs[i], models[i], r, True, None,
                                   len(idxs))
                        continue
                    except UnsupportedLayerError:
                        pass           # no fleet lowering: train singly
                for i in idxs:
                    hp = configs[i]
                    trainer = Trainer(models[i], lr=hp["learning_rate"],
                                      weight_decay=hp["weight_decay"],
                                      batch_size=int(hp["batch_size"]),
                                      max_epochs=self.max_epochs,
                                      patience=max(3,
                                                   self.max_epochs // 4),
                                      seed=self.seed,
                                      compiled=self.compiled,
                                      loss_fn=loss_fn)
                    r = trainer.fit(self.x_train, self.y_train,
                                    self.x_val, self.y_val)
                    record(hp, models[i], r, trainer.compiled_active,
                           trainer.compile_fallback, 1)
            evaluated += p

        model = best["model"]
        latency = measure_latency(model, self.latency_sample)
        return ModelTrial(index=-1, arch=dict(arch),
                          hypers=best["hypers"],
                          val_error=float(best["val"]), latency=latency,
                          n_params=model.num_parameters(), model=model,
                          compiled=best["compiled"],
                          compile_fallback=best["fallback"],
                          fleet_size=best["fleet_size"])

    # -- outer level --------------------------------------------------------
    def run(self, n_outer: int = 20, stale_limit: int = 5,
            n_init: int = 4, n_candidates: int = 128,
            callback=None) -> NASResult:
        trials: list[ModelTrial] = []
        xs: list[np.ndarray] = []
        stale = 0

        for it in range(n_outer):
            if it < n_init or len(trials) < 2:
                arch = self.arch_space.sample(self.rng)
            else:
                arch = self._propose(xs, trials, n_candidates)

            try:
                trial = self.tune_architecture(arch)
            except (ValueError, RuntimeError):
                # Infeasible architecture (e.g. conv collapses the frame):
                # skip, as Ax marks failed trials.
                stale += 1
                if stale >= stale_limit:
                    break
                continue
            trial.index = it
            was_front = {id(t) for t in NASResult(trials).pareto_trials()}
            trials.append(trial)
            xs.append(self.arch_space.to_unit(arch))
            now_front = NASResult(trials).pareto_trials()
            if any(id(t) not in was_front and t is trial for t in now_front):
                stale = 0
            else:
                stale += 1
            if callback is not None:
                callback(trial, trials)
            if stale >= stale_limit:
                break
        return NASResult(trials=trials)

    def _propose(self, xs: list, trials: list, n_candidates: int) -> dict:
        """ParEGO step: random Chebyshev weights, GP fit, EI proposal."""
        weights = self.rng.dirichlet(np.ones(2))
        objectives = np.array([t.objectives for t in trials])
        scalar = chebyshev_scalarize(objectives, weights)
        gp = GaussianProcess()
        try:
            gp.fit(np.array(xs), scalar)
        except Exception:
            return self.arch_space.sample(self.rng)
        cands = self.rng.random((n_candidates, self.arch_space.dim))
        configs = [self.arch_space.from_unit(c) for c in cands]
        snapped = np.array([self.arch_space.to_unit(c) for c in configs])
        mean, std = gp.predict(snapped)
        ei = expected_improvement(mean, std, best=float(scalar.min()))
        return configs[int(np.argmax(ei))]
