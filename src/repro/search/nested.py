"""Nested two-level multi-objective BO for neural architecture search.

Implements §V-C end to end:

* The **outer** level proposes architectures from the benchmark's
  Table IV space and jointly minimizes (inference latency, validation
  error) via ParEGO-style randomized Chebyshev scalarization over the
  trial archive, with the paper's early stop — five consecutive trials
  without a new Pareto-optimal model.
* The **inner** level tunes the Table V training hyperparameters for
  the proposed architecture with single-objective BO on validation
  error ("the inner level produces hyperparameters that minimize
  validation error; the model architecture determines inference
  speed").

Returns every evaluated model with its metrics — the population Figs.
7/8 scatter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..nn import Tensor, Trainer, no_grad
from .acquisition import expected_improvement
from .bo import BayesianOptimizer
from .gp import GaussianProcess
from .pareto import chebyshev_scalarize, pareto_front_mask
from .space import Space, hyperparameter_space

__all__ = ["ModelTrial", "NASResult", "NestedSearch", "measure_latency"]


def measure_latency(model, sample_batch: np.ndarray, repeats: int = 3) -> float:
    """Median wall-clock seconds of a forward pass over ``sample_batch``."""
    model.eval()
    times = []
    with no_grad():
        model(Tensor(sample_batch[: min(4, len(sample_batch))]))  # warm-up
        for _ in range(repeats):
            start = time.perf_counter()
            model(Tensor(sample_batch))
            times.append(time.perf_counter() - start)
    return float(np.median(times))


@dataclass
class ModelTrial:
    """One fully evaluated architecture (after inner tuning)."""

    index: int
    arch: dict
    hypers: dict
    val_error: float
    latency: float
    n_params: int
    model: object = field(repr=False, default=None)
    #: Whether the winning inner-loop fit ran on the compiled training
    #: fast path (False = graph fallback; ``compile_fallback`` says why).
    compiled: bool = True
    compile_fallback: str | None = None

    @property
    def objectives(self) -> tuple:
        return (self.latency, self.val_error)


@dataclass
class NASResult:
    trials: list

    def compiled_fraction(self) -> float:
        """Share of trials whose best fit trained on the compiled path —
        the BO throughput story depends on this staying at 1.0 now that
        the registry lowers the full Table IV zoo (MLP/CNN/RNN)."""
        if not self.trials:
            return 1.0
        return sum(1 for t in self.trials if t.compiled) / len(self.trials)

    def objective_matrix(self) -> np.ndarray:
        return np.array([t.objectives for t in self.trials])

    def pareto_trials(self) -> list:
        if not self.trials:
            return []
        mask = pareto_front_mask(self.objective_matrix())
        return [t for t, m in zip(self.trials, mask) if m]

    def best_by_error(self, error_cutoff: float | None = None) -> ModelTrial:
        pool = self.trials
        if error_cutoff is not None:
            pool = [t for t in pool if t.val_error < error_cutoff] or self.trials
        return min(pool, key=lambda t: t.val_error)

    def fastest(self, error_cutoff: float | None = None) -> ModelTrial:
        pool = self.trials
        if error_cutoff is not None:
            pool = [t for t in pool if t.val_error < error_cutoff] or self.trials
        return min(pool, key=lambda t: t.latency)


class NestedSearch:
    """Drive the two-level search for one benchmark.

    Parameters
    ----------
    arch_space:
        The benchmark's Table IV space.
    build_model:
        ``build(arch_config, dropout=..., seed=...) -> Module``.
    x_train, y_train, x_val, y_val:
        Collected data, already split (the paper trains/evaluates only
        on the collection-phase training/validation data).
    n_inner:
        Inner BO iterations (paper: 30).
    max_epochs:
        Trainer epochs per candidate (scaled down from the paper's GPU
        budget; the search semantics are unchanged).
    """

    def __init__(self, arch_space: Space, build_model,
                 x_train, y_train, x_val, y_val,
                 n_inner: int = 6, max_epochs: int = 20,
                 latency_batch: int = 256, seed: int = 0,
                 loss_fn=None, compiled: bool = True):
        self.arch_space = arch_space
        self.build_model = build_model
        self.x_train, self.y_train = x_train, y_train
        self.x_val, self.y_val = x_val, y_val
        self.n_inner = n_inner
        self.max_epochs = max_epochs
        self.seed = seed
        self.loss_fn = loss_fn
        #: Train candidates through the compiled fast path (the inner
        #: loop trains every BO candidate, so epoch time bounds search
        #: throughput); unsupported architectures fall back per model.
        self.compiled = compiled
        self.rng = np.random.default_rng(seed)
        n = min(latency_batch, len(x_val))
        self.latency_sample = np.ascontiguousarray(x_val[:n])

    # -- inner level -------------------------------------------------------
    def tune_architecture(self, arch: dict) -> ModelTrial:
        """Inner BO: tune Table V hyperparameters for one architecture."""
        hp_space = hyperparameter_space()
        best_model = {}

        def objective(hp: dict):
            model = self.build_model(arch, dropout=hp["dropout"],
                                     seed=self.seed)
            kwargs = {}
            if self.loss_fn is not None:
                kwargs["loss_fn"] = self.loss_fn
            trainer = Trainer(model, lr=hp["learning_rate"],
                              weight_decay=hp["weight_decay"],
                              batch_size=int(hp["batch_size"]),
                              max_epochs=self.max_epochs,
                              patience=max(3, self.max_epochs // 4),
                              seed=self.seed, compiled=self.compiled,
                              **kwargs)
            result = trainer.fit(self.x_train, self.y_train,
                                 self.x_val, self.y_val)
            if not best_model or result.best_val_loss < best_model["val"]:
                best_model["model"] = model
                best_model["val"] = result.best_val_loss
                best_model["hypers"] = dict(hp)
                best_model["compiled"] = trainer.compiled_active
                best_model["fallback"] = trainer.compile_fallback
            return result.best_val_loss

        bo = BayesianOptimizer(hp_space, n_init=max(2, self.n_inner // 3),
                               seed=int(self.rng.integers(2 ** 31)))
        bo.minimize(objective, n_iterations=self.n_inner)

        model = best_model["model"]
        latency = measure_latency(model, self.latency_sample)
        return ModelTrial(index=-1, arch=dict(arch),
                          hypers=best_model["hypers"],
                          val_error=float(best_model["val"]),
                          latency=latency,
                          n_params=model.num_parameters(), model=model,
                          compiled=best_model["compiled"],
                          compile_fallback=best_model["fallback"])

    # -- outer level --------------------------------------------------------
    def run(self, n_outer: int = 20, stale_limit: int = 5,
            n_init: int = 4, n_candidates: int = 128,
            callback=None) -> NASResult:
        trials: list[ModelTrial] = []
        xs: list[np.ndarray] = []
        stale = 0

        for it in range(n_outer):
            if it < n_init or len(trials) < 2:
                arch = self.arch_space.sample(self.rng)
            else:
                arch = self._propose(xs, trials, n_candidates)

            try:
                trial = self.tune_architecture(arch)
            except (ValueError, RuntimeError):
                # Infeasible architecture (e.g. conv collapses the frame):
                # skip, as Ax marks failed trials.
                stale += 1
                if stale >= stale_limit:
                    break
                continue
            trial.index = it
            was_front = {id(t) for t in NASResult(trials).pareto_trials()}
            trials.append(trial)
            xs.append(self.arch_space.to_unit(arch))
            now_front = NASResult(trials).pareto_trials()
            if any(id(t) not in was_front and t is trial for t in now_front):
                stale = 0
            else:
                stale += 1
            if callback is not None:
                callback(trial, trials)
            if stale >= stale_limit:
                break
        return NASResult(trials=trials)

    def _propose(self, xs: list, trials: list, n_candidates: int) -> dict:
        """ParEGO step: random Chebyshev weights, GP fit, EI proposal."""
        weights = self.rng.dirichlet(np.ones(2))
        objectives = np.array([t.objectives for t in trials])
        scalar = chebyshev_scalarize(objectives, weights)
        gp = GaussianProcess()
        try:
            gp.fit(np.array(xs), scalar)
        except Exception:
            return self.arch_space.sample(self.rng)
        cands = self.rng.random((n_candidates, self.arch_space.dim))
        configs = [self.arch_space.from_unit(c) for c in cands]
        snapped = np.array([self.arch_space.to_unit(c) for c in configs])
        mean, std = gp.predict(snapped)
        ei = expected_improvement(mean, std, best=float(scalar.min()))
        return configs[int(np.argmax(ei))]
