"""Multi-objective utilities: Pareto fronts and scalarization (§V-C).

The nested search "jointly minimizes inference latency and validation
error".  The outer loop scalarizes the two objectives with randomized
Chebyshev weights per iteration (the ParEGO strategy) — a standard way
to drive a single-objective GP toward the whole Pareto front — and the
analysis side extracts the front from all evaluated trials, which is
what Figs. 7/8 plot.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pareto_front_mask", "chebyshev_scalarize", "hypervolume_2d"]


def pareto_front_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all objectives minimized).

    ``objectives`` has shape (n, m).  A point is dominated when another
    point is <= in every objective and < in at least one.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    n = len(obj)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = np.all(obj <= obj[i], axis=1) & np.any(obj < obj[i], axis=1)
        if dominated.any():
            mask[i] = False
    return mask


def chebyshev_scalarize(objectives: np.ndarray, weights: np.ndarray,
                        rho: float = 0.05) -> np.ndarray:
    """Augmented Chebyshev scalarization over normalized objectives."""
    obj = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    lo = obj.min(axis=0)
    span = obj.max(axis=0) - lo
    span[span == 0] = 1.0
    norm = (obj - lo) / span
    weighted = norm * weights
    return weighted.max(axis=1) + rho * weighted.sum(axis=1)


def hypervolume_2d(objectives: np.ndarray, reference: tuple) -> float:
    """Dominated hypervolume for two minimized objectives.

    Useful as a single progress number for the multi-objective search.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2 or obj.shape[1] != 2:
        raise ValueError("hypervolume_2d expects (n, 2) objectives")
    front = obj[pareto_front_mask(obj)]
    front = front[(front[:, 0] <= reference[0]) & (front[:, 1] <= reference[1])]
    if len(front) == 0:
        return 0.0
    order = np.argsort(front[:, 0])
    front = front[order]
    hv = 0.0
    prev_y = reference[1]
    for x, y in front:
        hv += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return float(hv)
