"""Acquisition functions: expected improvement and UCB (minimization)."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["expected_improvement", "lower_confidence_bound"]


def expected_improvement(mean: np.ndarray, std: np.ndarray,
                         best: float, xi: float = 0.01) -> np.ndarray:
    """EI for minimization: expected amount below ``best - xi``."""
    std = np.maximum(std, 1e-12)
    improvement = best - xi - mean
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           kappa: float = 2.0) -> np.ndarray:
    """LCB utility (higher is better for minimization): ``-(μ - κσ)``."""
    return -(mean - kappa * std)
