"""Architecture builders: Table IV config dicts → ``repro.nn`` models.

One builder per benchmark family, matching the paper's
domain-expert-confined architecture classes: deep decaying MLPs for
MiniBUDE, 1-2 hidden-layer MLPs for Binomial Options/Bonds, small
grid-to-grid CNNs for MiniWeather, and conv+pool+FC regressors for
ParticleFilter.  Dropout comes from the Table V hyperparameters, so
builders accept it separately.
"""

from __future__ import annotations

import numpy as np

from ..nn import (Conv2d, CropPad2d, Dropout, Flatten, Linear, MaxPool2d,
                  ReLU, Sequential)
from ..nn.functional import conv_output_size

__all__ = ["build_minibude_mlp", "build_mlp2", "build_miniweather_cnn",
           "build_particlefilter_cnn", "builder_for"]


def build_minibude_mlp(config: dict, in_features: int = 6,
                       out_features: int = 1, dropout: float = 0.0,
                       seed: int = 0) -> Sequential:
    """Deep MLP whose width decays by ``feature_multiplier`` per layer."""
    rng = np.random.default_rng(seed)
    n_layers = int(config["num_hidden_layers"])
    width = int(config["hidden1_size"])
    mult = float(config["feature_multiplier"])
    layers = []
    prev = in_features
    for i in range(n_layers):
        w = max(4, int(round(width * mult ** i)))
        layers.append(Linear(prev, w, rng=rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=np.random.default_rng(seed + i)))
        prev = w
    layers.append(Linear(prev, out_features, rng=rng))
    return Sequential(*layers)


def build_mlp2(config: dict, in_features: int, out_features: int,
               dropout: float = 0.0, seed: int = 0) -> Sequential:
    """1-2 hidden-layer MLP; ``hidden2_features == 0`` drops layer 2."""
    rng = np.random.default_rng(seed)
    h1 = max(1, int(config["hidden1_features"]))
    h2 = int(config["hidden2_features"])
    layers = [Linear(in_features, h1, rng=rng), ReLU()]
    if dropout > 0:
        layers.append(Dropout(dropout, rng=np.random.default_rng(seed + 1)))
    prev = h1
    if h2 > 0:
        layers += [Linear(prev, h2, rng=rng), ReLU()]
        if dropout > 0:
            layers.append(Dropout(dropout, rng=np.random.default_rng(seed + 2)))
        prev = h2
    layers.append(Linear(prev, out_features, rng=rng))
    return Sequential(*layers)


def build_miniweather_cnn(config: dict, nz: int, nx: int,
                          channels: int = 4, dropout: float = 0.0,
                          seed: int = 0) -> Sequential:
    """Grid-to-grid CNN: state (4, nz, nx) → next state (4, nz, nx).

    Convolutions run un-padded; a :class:`CropPad2d` restores the exact
    grid shape (the data bridge requires the LHS tensor shape back).
    """
    rng = np.random.default_rng(seed)
    k1 = int(config["conv1_kernel"])
    c1 = int(config["conv1_channels"])
    k2 = int(config["conv2_kernel"])
    pad1 = k1 // 2
    layers = [Conv2d(channels, c1, k1, padding=pad1, rng=rng), ReLU()]
    if k2 > 0:
        layers += [Conv2d(c1, c1, k2, padding=k2 // 2, rng=rng), ReLU()]
    layers.append(Conv2d(c1, channels, 1, rng=rng))
    layers.append(CropPad2d(nz, nx))
    return Sequential(*layers)


def build_particlefilter_cnn(config: dict, height: int, width: int,
                             out_features: int = 2, dropout: float = 0.0,
                             conv_channels: int = 8, seed: int = 0) -> Sequential:
    """Frame CNN: (1, H, W) → (y, x) location regression."""
    rng = np.random.default_rng(seed)
    k = int(config["conv_kernel"])
    s = int(config["conv_stride"])
    mk = int(config["maxpool_kernel"])
    fc2 = int(config["fc2_size"])

    h = conv_output_size(height, k, s)
    w = conv_output_size(width, k, s)
    if h < 1 or w < 1:
        raise ValueError(f"conv config {config} collapses a {height}x{width} "
                         "frame to nothing")
    layers = [Conv2d(1, conv_channels, k, stride=s, rng=rng), ReLU()]
    if mk > 1 and h >= mk and w >= mk:
        layers.append(MaxPool2d(mk))
        h = conv_output_size(h, mk, mk)
        w = conv_output_size(w, mk, mk)
    layers.append(Flatten())
    flat = conv_channels * h * w
    if dropout > 0:
        layers.append(Dropout(dropout, rng=np.random.default_rng(seed + 1)))
    if fc2 > 0:
        layers += [Linear(flat, fc2, rng=rng), ReLU(),
                   Linear(fc2, out_features, rng=rng)]
    else:
        layers.append(Linear(flat, out_features, rng=rng))
    return Sequential(*layers)


def builder_for(benchmark: str):
    """Return ``build(config, dropout, seed, **shape_kwargs)`` per app."""
    if benchmark == "minibude":
        return lambda config, dropout=0.0, seed=0, **kw: build_minibude_mlp(
            config, dropout=dropout, seed=seed,
            in_features=kw.get("in_features", 6),
            out_features=kw.get("out_features", 1))
    if benchmark in ("binomial", "bonds"):
        out_default = 2 if benchmark == "bonds" else 1
        return lambda config, dropout=0.0, seed=0, **kw: build_mlp2(
            config, dropout=dropout, seed=seed,
            in_features=kw.get("in_features", 5),
            out_features=kw.get("out_features", out_default))
    if benchmark == "miniweather":
        return lambda config, dropout=0.0, seed=0, **kw: build_miniweather_cnn(
            config, dropout=dropout, seed=seed,
            nz=kw["nz"], nx=kw["nx"])
    if benchmark == "particlefilter":
        return lambda config, dropout=0.0, seed=0, **kw: \
            build_particlefilter_cnn(config, dropout=dropout, seed=seed,
                                     height=kw["height"], width=kw["width"])
    raise KeyError(f"no builder for benchmark {benchmark!r}")
