"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

import numpy as np

__all__ = ["rbf", "matern52", "Kernel", "RBF", "Matern52"]


def _sqdist(a: np.ndarray, b: np.ndarray, lengthscale) -> np.ndarray:
    a = a / lengthscale
    b = b / lengthscale
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    d2 = aa + bb - 2.0 * a @ b.T
    return np.maximum(d2, 0.0)


def rbf(a: np.ndarray, b: np.ndarray, lengthscale=1.0,
        variance: float = 1.0) -> np.ndarray:
    """Squared-exponential covariance."""
    return variance * np.exp(-0.5 * _sqdist(a, b, lengthscale))


def matern52(a: np.ndarray, b: np.ndarray, lengthscale=1.0,
             variance: float = 1.0) -> np.ndarray:
    """Matérn 5/2 — the standard BO kernel (less smooth than RBF)."""
    d = np.sqrt(_sqdist(a, b, lengthscale))
    s = np.sqrt(5.0) * d
    return variance * (1.0 + s + s * s / 3.0) * np.exp(-s)


class Kernel:
    """Callable kernel with trainable log-lengthscale/log-variance."""

    fn = staticmethod(rbf)

    def __init__(self, lengthscale: float = 0.3, variance: float = 1.0):
        self.lengthscale = lengthscale
        self.variance = variance

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return type(self).fn(a, b, self.lengthscale, self.variance)

    def with_params(self, lengthscale: float, variance: float) -> "Kernel":
        return type(self)(lengthscale, variance)

    def __repr__(self):
        return (f"{type(self).__name__}(lengthscale={self.lengthscale:.4g}, "
                f"variance={self.variance:.4g})")


class RBF(Kernel):
    fn = staticmethod(rbf)


class Matern52(Kernel):
    fn = staticmethod(matern52)
