"""Gaussian-process regression (the BO surrogate of §V-C).

Standard exact GP: Cholesky factorization of ``K + σ²I``, predictive
mean/variance, and marginal-likelihood-based hyperparameter selection
via L-BFGS over log-lengthscale/log-variance/log-noise (SciPy).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy import optimize

from .kernels import Kernel, Matern52

__all__ = ["GaussianProcess"]


class GaussianProcess:
    """Exact GP regressor on the unit hypercube.

    Targets are standardized internally; predictions are returned on
    the original scale.
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-6,
                 optimize_hypers: bool = True):
        self.kernel = kernel or Matern52()
        self.noise = noise
        self.optimize_hypers = optimize_hypers
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol = None
        self._alpha = None

    # -- fitting -----------------------------------------------------------
    def _nll(self, log_params: np.ndarray, x: np.ndarray,
             y: np.ndarray) -> float:
        ls, var, noise = np.exp(log_params)
        k = self.kernel.with_params(ls, var)(x, x)
        k[np.diag_indices_from(k)] += noise
        try:
            chol = sla.cholesky(k, lower=True)
        except sla.LinAlgError:
            return 1e12
        alpha = sla.cho_solve((chol, True), y)
        nll = 0.5 * y @ alpha + np.log(np.diag(chol)).sum() \
            + 0.5 * len(y) * np.log(2 * np.pi)
        return float(nll)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std

        if self.optimize_hypers and len(x) >= 4:
            x0 = np.log([self.kernel.lengthscale, self.kernel.variance,
                         max(self.noise, 1e-8)])
            bounds = [(np.log(1e-2), np.log(3.0)),
                      (np.log(1e-2), np.log(10.0)),
                      (np.log(1e-8), np.log(1e-1))]
            res = optimize.minimize(self._nll, x0, args=(x, yn),
                                    method="L-BFGS-B", bounds=bounds)
            ls, var, noise = np.exp(res.x)
            self.kernel = self.kernel.with_params(float(ls), float(var))
            self.noise = float(noise)

        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = sla.cholesky(k, lower=True)
        self._alpha = sla.cho_solve((self._chol, True), yn)
        self._x = x
        return self

    # -- prediction ---------------------------------------------------------
    def predict(self, x_new: np.ndarray):
        """Predictive mean and standard deviation at ``x_new``."""
        if self._x is None:
            raise RuntimeError("predict() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=np.float64))
        k_star = self.kernel(x_new, self._x)
        mean_n = k_star @ self._alpha
        v = sla.solve_triangular(self._chol, k_star.T, lower=True)
        var_n = self.kernel(x_new, x_new).diagonal() - (v * v).sum(axis=0)
        var_n = np.maximum(var_n, 1e-12)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std
