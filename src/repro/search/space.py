"""Search-space definitions, including the paper's Tables IV and V.

A :class:`Space` is an ordered set of parameters, each continuous
(optionally log-scaled), integer, or categorical.  Spaces map points to
and from the unit hypercube so the Gaussian-process surrogate of the
Bayesian optimizer works in a normalized, isotropic domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Continuous", "Integer", "Choice", "Space",
           "minibude_arch_space", "mlp2_arch_space",
           "miniweather_arch_space", "particlefilter_arch_space",
           "hyperparameter_space", "arch_space_for"]


@dataclass(frozen=True)
class Continuous:
    name: str
    lo: float
    hi: float
    log: bool = False

    def __post_init__(self):
        if self.hi <= self.lo:
            raise ValueError(f"{self.name}: empty range [{self.lo}, {self.hi}]")
        if self.log and self.lo <= 0:
            raise ValueError(f"{self.name}: log scale requires positive bounds")

    def to_unit(self, value: float) -> float:
        if self.log:
            return (math.log(value) - math.log(self.lo)) / \
                (math.log(self.hi) - math.log(self.lo))
        return (value - self.lo) / (self.hi - self.lo)

    def from_unit(self, u: float) -> float:
        u = min(max(u, 0.0), 1.0)
        if self.log:
            return math.exp(math.log(self.lo)
                            + u * (math.log(self.hi) - math.log(self.lo)))
        return self.lo + u * (self.hi - self.lo)

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(rng.random())


@dataclass(frozen=True)
class Integer:
    name: str
    lo: int
    hi: int  # inclusive

    def __post_init__(self):
        if self.hi < self.lo:
            raise ValueError(f"{self.name}: empty range [{self.lo}, {self.hi}]")

    def to_unit(self, value: int) -> float:
        if self.hi == self.lo:
            return 0.5
        return (value - self.lo) / (self.hi - self.lo)

    def from_unit(self, u: float) -> int:
        u = min(max(u, 0.0), 1.0)
        return int(round(self.lo + u * (self.hi - self.lo)))

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))


@dataclass(frozen=True)
class Choice:
    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"{self.name}: empty choice set")

    def to_unit(self, value) -> float:
        idx = self.values.index(value)
        if len(self.values) == 1:
            return 0.5
        return idx / (len(self.values) - 1)

    def from_unit(self, u: float):
        u = min(max(u, 0.0), 1.0)
        idx = int(round(u * (len(self.values) - 1)))
        return self.values[idx]

    def sample(self, rng: np.random.Generator):
        return self.values[int(rng.integers(len(self.values)))]


@dataclass
class Space:
    """An ordered parameter space with unit-cube encoding."""

    params: list = field(default_factory=list)

    @property
    def names(self) -> list:
        return [p.name for p in self.params]

    @property
    def dim(self) -> int:
        return len(self.params)

    def sample(self, rng: np.random.Generator) -> dict:
        return {p.name: p.sample(rng) for p in self.params}

    def to_unit(self, config: dict) -> np.ndarray:
        return np.array([p.to_unit(config[p.name]) for p in self.params])

    def from_unit(self, u: np.ndarray) -> dict:
        if len(u) != self.dim:
            raise ValueError(f"expected {self.dim} coords, got {len(u)}")
        return {p.name: p.from_unit(float(v))
                for p, v in zip(self.params, u)}

    def validate(self, config: dict) -> None:
        missing = set(self.names) - set(config)
        if missing:
            raise KeyError(f"config missing parameters {sorted(missing)}")


# ----------------------------------------------------------------------
# Table IV: neural architecture search spaces
# ----------------------------------------------------------------------

def minibude_arch_space() -> Space:
    """MiniBUDE: deep MLP with geometric width decay (Table IV left)."""
    return Space([
        Integer("num_hidden_layers", 2, 12),
        Choice("hidden1_size", tuple(64 * 2 ** i for i in range(7))),  # 64..4096
        Continuous("feature_multiplier", 0.1, 0.8),
    ])


def mlp2_arch_space() -> Space:
    """Binomial Options / Bonds: 1-2 hidden-layer MLP (Table IV right).

    ``hidden2_features`` of 0 drops the second hidden layer, exactly
    like the paper's [0, 512] bound.
    """
    return Space([
        Integer("hidden1_features", 5, 512),
        Integer("hidden2_features", 0, 512),
    ])


def miniweather_arch_space() -> Space:
    """MiniWeather: 1-2 conv layers (Table IV bottom-left)."""
    return Space([
        Integer("conv1_kernel", 2, 8),
        Integer("conv1_channels", 4, 8),
        Integer("conv2_kernel", 0, 6),   # 0 drops the second conv
    ])


def particlefilter_arch_space() -> Space:
    """ParticleFilter: conv + pool + FC head (Table IV bottom-right)."""
    return Space([
        Integer("conv_kernel", 2, 14),
        Integer("conv_stride", 2, 14),
        Integer("maxpool_kernel", 1, 10),
        Integer("fc2_size", 0, 128),     # 0 drops the second FC layer
    ])


def arch_space_for(benchmark: str) -> Space:
    """The Table IV space for a benchmark name."""
    table = {
        "minibude": minibude_arch_space,
        "binomial": mlp2_arch_space,
        "bonds": mlp2_arch_space,
        "miniweather": miniweather_arch_space,
        "particlefilter": particlefilter_arch_space,
    }
    if benchmark not in table:
        raise KeyError(f"no architecture space for benchmark {benchmark!r}")
    return table[benchmark]()


# ----------------------------------------------------------------------
# Table V: training hyperparameter space
# ----------------------------------------------------------------------

def hyperparameter_space() -> Space:
    return Space([
        Continuous("learning_rate", 1e-4, 1e-2, log=True),
        Continuous("weight_decay", 1e-4, 1e-1, log=True),
        Continuous("dropout", 0.0, 0.8),
        Integer("batch_size", 32, 512),
    ])
