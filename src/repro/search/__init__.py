"""``repro.search`` — Bayesian-optimization NAS (§V-C, Tables IV/V)."""

from .space import (Continuous, Integer, Choice, Space,
                    minibude_arch_space, mlp2_arch_space,
                    miniweather_arch_space, particlefilter_arch_space,
                    hyperparameter_space, arch_space_for)
from .kernels import rbf, matern52, Kernel, RBF, Matern52
from .gp import GaussianProcess
from .acquisition import expected_improvement, lower_confidence_bound
from .bo import Trial, BOResult, BayesianOptimizer
from .pareto import pareto_front_mask, chebyshev_scalarize, hypervolume_2d
from .builders import (build_minibude_mlp, build_mlp2, build_miniweather_cnn,
                       build_particlefilter_cnn, builder_for)
from .nested import ModelTrial, NASResult, NestedSearch, measure_latency

__all__ = [
    "Continuous", "Integer", "Choice", "Space", "minibude_arch_space",
    "mlp2_arch_space", "miniweather_arch_space", "particlefilter_arch_space",
    "hyperparameter_space", "arch_space_for", "rbf", "matern52", "Kernel",
    "RBF", "Matern52", "GaussianProcess", "expected_improvement",
    "lower_confidence_bound", "Trial", "BOResult", "BayesianOptimizer",
    "pareto_front_mask", "chebyshev_scalarize", "hypervolume_2d",
    "build_minibude_mlp", "build_mlp2", "build_miniweather_cnn",
    "build_particlefilter_cnn", "builder_for", "ModelTrial", "NASResult",
    "NestedSearch", "measure_latency",
]
