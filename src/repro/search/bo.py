"""Bayesian optimization loop (§V-C).

GP-surrogate minimization over a :class:`repro.search.space.Space`:
seed with random samples, then per iteration fit the GP on unit-cube
coordinates and pick the candidate maximizing expected improvement over
a random candidate pool (the standard discrete-acquisition strategy for
mixed integer/categorical spaces like Table IV's).

Supports the paper's early-stopping rule: stop when no improving trial
is found for ``stale_limit`` consecutive iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .acquisition import expected_improvement
from .gp import GaussianProcess
from .space import Space

__all__ = ["Trial", "BOResult", "BayesianOptimizer"]


@dataclass
class Trial:
    index: int
    config: dict
    value: float
    extra: dict = field(default_factory=dict)


@dataclass
class BOResult:
    best: Trial
    trials: list

    @property
    def best_config(self) -> dict:
        return self.best.config

    @property
    def best_value(self) -> float:
        return self.best.value


class BayesianOptimizer:
    """Minimize ``objective(config) -> float`` (or ``(float, extra)``)."""

    def __init__(self, space: Space, n_init: int = 5, n_candidates: int = 256,
                 stale_limit: int | None = None, seed: int = 0,
                 dedup: bool = True):
        self.space = space
        self.n_init = max(1, n_init)
        self.n_candidates = n_candidates
        self.stale_limit = stale_limit
        self.rng = np.random.default_rng(seed)
        self.dedup = dedup

    def _evaluate(self, objective: Callable, config: dict, index: int) -> Trial:
        result = objective(config)
        if isinstance(result, tuple):
            value, extra = result
        else:
            value, extra = result, {}
        if not np.isfinite(value):
            value = 1e12
        return Trial(index=index, config=config, value=float(value),
                     extra=extra)

    def _propose(self, xs: list, ys: list) -> dict:
        x = np.array(xs)
        y = np.array(ys)
        gp = GaussianProcess()
        try:
            gp.fit(x, y)
        except Exception:
            return self.space.sample(self.rng)
        cands = self.rng.random((self.n_candidates, self.space.dim))
        # Round-trip through config space so integer/choice snapping is
        # reflected in the acquisition coordinates.
        configs = [self.space.from_unit(c) for c in cands]
        snapped = np.array([self.space.to_unit(c) for c in configs])
        mean, std = gp.predict(snapped)
        ei = expected_improvement(mean, std, best=float(y.min()))
        if self.dedup:
            seen = {tuple(np.round(xi, 6)) for xi in x}
            for i, s in enumerate(snapped):
                if tuple(np.round(s, 6)) in seen:
                    ei[i] = -np.inf
        best_idx = int(np.argmax(ei))
        if not np.isfinite(ei[best_idx]):
            return self.space.sample(self.rng)
        return configs[best_idx]

    def propose_batch(self, xs: list, ys: list, k: int,
                      fixed: dict | None = None) -> list:
        """Propose ``k`` distinct configs from one GP fit.

        The population-mode inner loop evaluates candidates in fleets
        of ``k``; fitting once and taking the EI top-``k`` (with the
        same rounded-coordinate dedup as :meth:`_propose`, extended
        across the batch) keeps proposal cost amortized.  Short pools
        are padded with random samples.

        ``fixed`` pins named parameters to given values: the candidate
        pool is constrained to that slice *before* the acquisition is
        scored, so proposals are optimal given the pin rather than
        arbitrary configs with a coordinate overwritten afterwards
        (batch size is coupled to learning rate, so overwriting it
        post-hoc yields off-manifold, often divergent configs).
        """
        if k <= 0:
            return []

        def _pin(config: dict) -> dict:
            return dict(config, **fixed) if fixed else config

        if not xs:
            return [_pin(self.space.sample(self.rng)) for _ in range(k)]
        x = np.array(xs)
        y = np.array(ys)
        gp = GaussianProcess()
        try:
            gp.fit(x, y)
        except Exception:
            return [_pin(self.space.sample(self.rng)) for _ in range(k)]
        cands = self.rng.random((self.n_candidates, self.space.dim))
        if fixed:
            for name, value in fixed.items():
                idx = self.space.names.index(name)
                cands[:, idx] = self.space.params[idx].to_unit(value)
        configs = [self.space.from_unit(c) for c in cands]
        snapped = np.array([self.space.to_unit(c) for c in configs])
        mean, std = gp.predict(snapped)
        ei = expected_improvement(mean, std, best=float(y.min()))
        seen = {tuple(np.round(xi, 6)) for xi in x} if self.dedup else set()
        chosen = []
        for i in np.argsort(-ei):
            if len(chosen) >= k:
                break
            if not np.isfinite(ei[i]):
                continue
            key = tuple(np.round(snapped[i], 6))
            if self.dedup and key in seen:
                continue
            seen.add(key)
            chosen.append(configs[int(i)])
        while len(chosen) < k:
            chosen.append(_pin(self.space.sample(self.rng)))
        return chosen

    def minimize(self, objective: Callable, n_iterations: int = 30,
                 callback: Callable | None = None) -> BOResult:
        trials: list[Trial] = []
        xs: list[np.ndarray] = []
        ys: list[float] = []
        best: Trial | None = None
        stale = 0

        for it in range(n_iterations):
            if it < self.n_init:
                config = self.space.sample(self.rng)
            else:
                config = self._propose(xs, ys)
            trial = self._evaluate(objective, config, it)
            trials.append(trial)
            xs.append(self.space.to_unit(config))
            ys.append(trial.value)

            if best is None or trial.value < best.value - 1e-12:
                best = trial
                stale = 0
            else:
                stale += 1
            if callback is not None:
                callback(trial, best)
            if self.stale_limit is not None and stale >= self.stale_limit:
                break
        return BOResult(best=best, trials=trials)
