"""AST node definitions for the HPAC-ML directive grammar (paper Fig. 3).

The grammar has three directive forms::

    #pragma approx tensor functor(<id>: ss-specifier = (ss-specifier, ...))
    #pragma approx tensor map(to|from: <id>(array[cs-specifier], ...))
    #pragma approx ml(<mode>[: bool-expr]) in(...) out(...) inout(...)
            model("...") db("...") [if(bool-expr)]

Symbolic slice specifiers (``ss-specifier``) may reference *symbolic
constants* — free names like ``i, j`` that are bound to concrete sweep
ranges when a functor is applied to memory by a ``tensor map``.
Concrete slice specifiers (``cs-specifier``) may reference declared
integer variables (``N``, ``M``) resolved against an environment at
application time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "SourceLoc", "Expr", "IntLit", "SymRef", "VarRef", "BinOp", "SliceExpr",
    "SliceSpec", "FunctorDecl", "MapTarget", "TensorMapDirective",
    "MLDirective", "Directive", "LinearForm", "PerfoDirective",
    "MemoDirective",
]


@dataclass(frozen=True)
class SourceLoc:
    """Position within a directive string (for diagnostics)."""

    line: int
    col: int

    def __str__(self):
        return f"{self.line}:{self.col}"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    loc: SourceLoc = field(default=SourceLoc(0, 0), compare=False)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class SymRef(Expr):
    """A symbolic constant (``s-constant``): free name bound at map time."""

    name: str = ""

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class VarRef(Expr):
    """A declared integer variable reference inside a cs-specifier."""

    name: str = ""

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str = "+"
    lhs: Expr = None
    rhs: Expr = None

    def __str__(self):
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class LinearForm:
    """Canonical linear form ``sum(coeff_s * s) + const`` of an s-expr.

    The Fig. 4 lowering requires slice expressions linear in the
    symbolic constants; this is the normal form semantic analysis
    reduces every s-expr to.
    """

    coeffs: tuple  # tuple of (symbol_name, int_coeff), sorted by name
    const: int

    @property
    def symbols(self) -> tuple:
        return tuple(name for name, _ in self.coeffs)

    def coeff(self, name: str) -> int:
        for sym, c in self.coeffs:
            if sym == name:
                return c
        return 0

    def is_constant(self) -> bool:
        return not self.coeffs

    def __str__(self):
        parts = [f"{c}*{s}" for s, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


# ----------------------------------------------------------------------
# Slices and specifiers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SliceExpr:
    """One ``s-slice`` / ``c-slice``: ``start[:stop[:step]]``.

    A *point* access has ``stop is None``; a range has an explicit stop
    and optional step (default 1).
    """

    start: Expr
    stop: Optional[Expr] = None
    step: Optional[Expr] = None
    loc: SourceLoc = field(default=SourceLoc(0, 0), compare=False)

    @property
    def is_point(self) -> bool:
        return self.stop is None

    def __str__(self):
        if self.is_point:
            return str(self.start)
        s = f"{self.start}:{self.stop}"
        if self.step is not None:
            s += f":{self.step}"
        return s


@dataclass(frozen=True)
class SliceSpec:
    """An ``ss-specifier`` / ``cs-specifier``: bracketed slice list."""

    slices: tuple  # tuple[SliceExpr, ...]
    loc: SourceLoc = field(default=SourceLoc(0, 0), compare=False)

    @property
    def ndim(self) -> int:
        return len(self.slices)

    def __str__(self):
        return "[" + ", ".join(str(s) for s in self.slices) + "]"


# ----------------------------------------------------------------------
# Directives
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Directive:
    loc: SourceLoc = field(default=SourceLoc(0, 0), compare=False)


@dataclass(frozen=True)
class FunctorDecl(Directive):
    """``tensor functor(name: LHS = (RHS_1, RHS_2, ...))``."""

    name: str = ""
    lhs: SliceSpec = None
    rhs: tuple = ()  # tuple[SliceSpec, ...]

    def __str__(self):
        rhs = ", ".join(str(r) for r in self.rhs)
        return f"tensor functor({self.name}: {self.lhs} = ({rhs}))"


@dataclass(frozen=True)
class MapTarget:
    """``array[cs-specifier]`` inside a functor application."""

    array: str
    spec: SliceSpec
    loc: SourceLoc = field(default=SourceLoc(0, 0), compare=False)

    def __str__(self):
        return f"{self.array}{self.spec}"


@dataclass(frozen=True)
class TensorMapDirective(Directive):
    """``tensor map(to|from: functor(target, ...))``."""

    direction: str = "to"  # 'to' | 'from'
    functor: str = ""
    targets: tuple = ()  # tuple[MapTarget, ...]

    def __str__(self):
        tgts = ", ".join(str(t) for t in self.targets)
        return f"tensor map({self.direction}: {self.functor}({tgts}))"


@dataclass(frozen=True)
class PerfoDirective(Directive):
    """HPAC loop perforation: ``perfo(kind:rate) in(...) out(...)``.

    HPAC-ML extends HPAC, whose classic techniques remain available;
    kinds follow the HPAC paper: ``ini``/``fin`` skip a leading/trailing
    fraction of iterations, ``small``/``large`` skip every n-th /
    execute every n-th, ``rand`` skips a random fraction.
    """

    kind: str = "small"                  # ini|fin|small|large|rand
    rate: str = "1"                      # opaque host expression
    in_arrays: tuple = ()
    out_arrays: tuple = ()
    if_condition: Optional[str] = None
    label: Optional[str] = None

    def __str__(self):
        return f"perfo({self.kind}:{self.rate})"


@dataclass(frozen=True)
class MemoDirective(Directive):
    """HPAC memoization: ``memo(in:threshold)`` / ``memo(out:size)``.

    ``in``-memoization (iACT-style) caches outputs keyed on quantized
    inputs; ``out``-memoization (TAF-style) replays the last output
    while it remains stable.
    """

    kind: str = "in"                     # in|out
    parameter: str = "0"                 # threshold (in) or history (out)
    in_arrays: tuple = ()
    out_arrays: tuple = ()
    if_condition: Optional[str] = None
    label: Optional[str] = None

    def __str__(self):
        return f"memo({self.kind}:{self.parameter})"


@dataclass(frozen=True)
class MLDirective(Directive):
    """``ml(mode[: cond]) in(...) out(...) inout(...) model(...) db(...) if(...)``."""

    mode: str = "infer"  # 'infer' | 'collect' | 'predicated'
    condition: Optional[str] = None      # raw bool-expr text for predicated
    in_arrays: tuple = ()
    out_arrays: tuple = ()
    inout_arrays: tuple = ()
    model_path: Optional[str] = None
    db_path: Optional[str] = None
    if_condition: Optional[str] = None   # raw bool-expr of the if clause

    def __str__(self):
        parts = [f"ml({self.mode}" + (f":{self.condition}" if self.condition else "") + ")"]
        if self.in_arrays:
            parts.append(f"in({', '.join(self.in_arrays)})")
        if self.out_arrays:
            parts.append(f"out({', '.join(self.out_arrays)})")
        if self.inout_arrays:
            parts.append(f"inout({', '.join(self.inout_arrays)})")
        if self.model_path:
            parts.append(f'model("{self.model_path}")')
        if self.db_path:
            parts.append(f'db("{self.db_path}")')
        if self.if_condition:
            parts.append(f"if({self.if_condition})")
        return " ".join(parts)
