"""Recursive-descent parser for HPAC-ML directives (paper Fig. 3 grammar).

Entry point :func:`parse_directive` accepts one directive string (the
leading ``#pragma approx`` is optional) and returns the corresponding
AST node: :class:`FunctorDecl`, :class:`TensorMapDirective`, or
:class:`MLDirective`.  :func:`parse_program` parses a multi-directive
annotation block (one directive per pragma, as a region annotation in
the paper carries several consecutive pragmas).
"""

from __future__ import annotations

from .ast_nodes import (BinOp, FunctorDecl, IntLit, MapTarget, MemoDirective,
                        MLDirective, PerfoDirective, SliceExpr, SliceSpec,
                        SourceLoc, SymRef, TensorMapDirective)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_directive", "parse_program"]


class ParseError(ValueError):
    """Syntax error with source location."""

    def __init__(self, message: str, loc: SourceLoc):
        super().__init__(f"{loc}: {message}")
        self.loc = loc


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str, what: str | None = None) -> Token:
        if self.cur.kind != kind:
            raise ParseError(
                f"expected {what or kind}, got {self.cur.text!r}", self.cur.loc)
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.cur.kind == kind and (text is None or self.cur.text == text):
            return self.advance()
        return None

    def accept_ident(self, text: str) -> Token | None:
        return self.accept("IDENT", text)

    def expect_ident(self, text: str) -> Token:
        tok = self.accept_ident(text)
        if tok is None:
            raise ParseError(f"expected {text!r}, got {self.cur.text!r}",
                             self.cur.loc)
        return tok

    # -- raw bool-expr capture ---------------------------------------------
    def capture_until_balanced_rparen(self) -> str:
        """Consume tokens up to the matching ``)`` (exclusive); return the
        verbatim source text.  Used for opaque host-language bool-exprs."""
        start_pos = self.cur.pos
        depth = 0
        end_pos = start_pos
        while True:
            tok = self.cur
            if tok.kind == "EOF":
                raise ParseError("unterminated clause: missing ')'", tok.loc)
            if tok.kind == "LPAREN":
                depth += 1
            elif tok.kind == "RPAREN":
                if depth == 0:
                    break
                depth -= 1
            end_pos = tok.pos + len(tok.text) + (2 if tok.kind == "STRING" else 0)
            self.advance()
        return self.source[start_pos:end_pos].strip()

    # -- expressions --------------------------------------------------------
    def parse_s_expr(self):
        """Additive/multiplicative expression over symbols and ints."""
        return self._parse_additive()

    def _parse_additive(self):
        lhs = self._parse_multiplicative()
        while self.cur.kind in ("PLUS", "MINUS"):
            op = self.advance()
            rhs = self._parse_multiplicative()
            lhs = BinOp(loc=op.loc, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_multiplicative(self):
        lhs = self._parse_unary()
        while self.cur.kind in ("STAR", "SLASH"):
            op = self.advance()
            rhs = self._parse_unary()
            lhs = BinOp(loc=op.loc, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self):
        if self.cur.kind == "MINUS":
            op = self.advance()
            operand = self._parse_unary()
            return BinOp(loc=op.loc, op="-", lhs=IntLit(loc=op.loc, value=0),
                         rhs=operand)
        if self.cur.kind == "PLUS":
            self.advance()
            return self._parse_unary()
        if self.cur.kind == "INT":
            tok = self.advance()
            return IntLit(loc=tok.loc, value=int(tok.text))
        if self.cur.kind == "IDENT":
            tok = self.advance()
            # Symbol vs. declared-variable distinction happens in
            # semantic analysis; the parser emits SymRef uniformly.
            return SymRef(loc=tok.loc, name=tok.text)
        if self.cur.kind == "LPAREN":
            self.advance()
            inner = self._parse_additive()
            self.expect("RPAREN")
            return inner
        raise ParseError(f"expected expression, got {self.cur.text!r}",
                         self.cur.loc)

    def parse_slice(self) -> SliceExpr:
        loc = self.cur.loc
        start = self.parse_s_expr()
        if self.accept("COLON") is None:
            return SliceExpr(start=start, loc=loc)
        stop = self.parse_s_expr()
        step = None
        if self.accept("COLON") is not None:
            step = self.parse_s_expr()
        return SliceExpr(start=start, stop=stop, step=step, loc=loc)

    def parse_slice_spec(self) -> SliceSpec:
        loc = self.expect("LBRACKET", "'['").loc
        slices = [self.parse_slice()]
        while self.accept("COMMA") is not None:
            slices.append(self.parse_slice())
        self.expect("RBRACKET", "']'")
        return SliceSpec(slices=tuple(slices), loc=loc)

    # -- directives -----------------------------------------------------------
    def skip_pragma_prefix(self) -> None:
        if self.accept("HASH") is not None:
            self.expect_ident("pragma")
        self.accept_ident("pragma")
        self.expect_ident("approx")

    def parse_directive(self):
        self.skip_pragma_prefix()
        if self.accept_ident("tensor") is not None:
            if self.cur.kind == "IDENT" and self.cur.text == "functor":
                return self.parse_functor_decl()
            if self.cur.kind == "IDENT" and self.cur.text == "map":
                return self.parse_tensor_map()
            raise ParseError(
                f"expected 'functor' or 'map' after 'tensor', got "
                f"{self.cur.text!r}", self.cur.loc)
        if self.cur.kind == "IDENT" and self.cur.text == "ml":
            return self.parse_ml()
        if self.cur.kind == "IDENT" and self.cur.text == "perfo":
            return self.parse_perfo()
        if self.cur.kind == "IDENT" and self.cur.text == "memo":
            return self.parse_memo()
        raise ParseError(
            f"expected 'tensor', 'ml', 'perfo' or 'memo' directive, got "
            f"{self.cur.text!r}", self.cur.loc)

    def parse_functor_decl(self) -> FunctorDecl:
        loc = self.expect_ident("functor").loc
        self.expect("LPAREN")
        name = self.expect("IDENT", "functor name").text
        self.expect("COLON")
        lhs = self.parse_slice_spec()
        self.expect("EQUALS")
        self.expect("LPAREN")
        # Tolerate the doubled parentheses of the paper's Fig. 2 listing:
        # "= ( ([i-1, j], ...) )".
        doubled = self.accept("LPAREN") is not None
        rhs = [self.parse_slice_spec()]
        while self.accept("COMMA") is not None:
            rhs.append(self.parse_slice_spec())
        if doubled:
            self.expect("RPAREN")
        self.expect("RPAREN")   # closes "= ("
        self.expect("RPAREN")   # closes "functor("
        return FunctorDecl(loc=loc, name=name, lhs=lhs, rhs=tuple(rhs))

    def parse_tensor_map(self) -> TensorMapDirective:
        loc = self.expect_ident("map").loc
        self.expect("LPAREN")
        dir_tok = self.expect("IDENT", "'to' or 'from'")
        if dir_tok.text not in ("to", "from"):
            raise ParseError(
                f"direction must be 'to' or 'from', got {dir_tok.text!r}",
                dir_tok.loc)
        self.expect("COLON")
        functor = self.expect("IDENT", "functor name").text
        self.expect("LPAREN")
        targets = [self.parse_map_target()]
        while self.accept("COMMA") is not None:
            targets.append(self.parse_map_target())
        self.expect("RPAREN")
        self.expect("RPAREN")
        return TensorMapDirective(loc=loc, direction=dir_tok.text,
                                  functor=functor, targets=tuple(targets))

    def parse_map_target(self) -> MapTarget:
        tok = self.expect("IDENT", "array name")
        spec = self.parse_slice_spec()
        return MapTarget(array=tok.text, spec=spec, loc=tok.loc)

    def parse_ml(self) -> MLDirective:
        loc = self.expect_ident("ml").loc
        self.expect("LPAREN")
        mode_tok = self.expect("IDENT", "ml-mode")
        if mode_tok.text not in ("infer", "collect", "predicated"):
            raise ParseError(
                f"ml-mode must be infer|collect|predicated, got "
                f"{mode_tok.text!r}", mode_tok.loc)
        condition = None
        if self.accept("COLON") is not None:
            condition = self.capture_until_balanced_rparen()
            if not condition:
                raise ParseError("empty condition in ml clause", self.cur.loc)
        self.expect("RPAREN")

        in_arrays: list[str] = []
        out_arrays: list[str] = []
        inout_arrays: list[str] = []
        model_path = None
        db_path = None
        if_condition = None

        while self.cur.kind != "EOF":
            clause = self.expect("IDENT", "clause name")
            if clause.text in ("in", "out", "inout"):
                self.expect("LPAREN")
                names = [self.expect("IDENT", "array name").text]
                while self.accept("COMMA") is not None:
                    names.append(self.expect("IDENT", "array name").text)
                self.expect("RPAREN")
                {"in": in_arrays, "out": out_arrays,
                 "inout": inout_arrays}[clause.text].extend(names)
            elif clause.text == "model":
                self.expect("LPAREN")
                model_path = self.expect("STRING", "model path string").text
                self.expect("RPAREN")
            elif clause.text in ("db", "database"):
                self.expect("LPAREN")
                db_path = self.expect("STRING", "database path string").text
                self.expect("RPAREN")
            elif clause.text == "if":
                self.expect("LPAREN")
                if_condition = self.capture_until_balanced_rparen()
                self.expect("RPAREN")
                if not if_condition:
                    raise ParseError("empty if clause", clause.loc)
            else:
                raise ParseError(f"unknown ml clause {clause.text!r}", clause.loc)

        return MLDirective(loc=loc, mode=mode_tok.text, condition=condition,
                           in_arrays=tuple(in_arrays),
                           out_arrays=tuple(out_arrays),
                           inout_arrays=tuple(inout_arrays),
                           model_path=model_path, db_path=db_path,
                           if_condition=if_condition)


    def _parse_hpac_tail(self):
        """Shared clause tail of HPAC technique directives."""
        in_arrays: list[str] = []
        out_arrays: list[str] = []
        if_condition = None
        label = None
        while self.cur.kind != "EOF":
            clause = self.expect("IDENT", "clause name")
            if clause.text in ("in", "out"):
                self.expect("LPAREN")
                names = [self.expect("IDENT", "array name").text]
                while self.accept("COMMA") is not None:
                    names.append(self.expect("IDENT", "array name").text)
                self.expect("RPAREN")
                (in_arrays if clause.text == "in" else out_arrays).extend(names)
            elif clause.text == "if":
                self.expect("LPAREN")
                if_condition = self.capture_until_balanced_rparen()
                self.expect("RPAREN")
                if not if_condition:
                    raise ParseError("empty if clause", clause.loc)
            elif clause.text == "label":
                self.expect("LPAREN")
                label = self.expect("STRING", "label string").text
                self.expect("RPAREN")
            else:
                raise ParseError(f"unknown clause {clause.text!r}", clause.loc)
        return tuple(in_arrays), tuple(out_arrays), if_condition, label

    def parse_perfo(self) -> PerfoDirective:
        loc = self.expect_ident("perfo").loc
        self.expect("LPAREN")
        kind = self.expect("IDENT", "perforation kind")
        if kind.text not in ("ini", "fin", "small", "large", "rand"):
            raise ParseError(
                f"perforation kind must be ini|fin|small|large|rand, got "
                f"{kind.text!r}", kind.loc)
        self.expect("COLON")
        rate = self.capture_until_balanced_rparen()
        self.expect("RPAREN")
        if not rate:
            raise ParseError("empty perforation rate", loc)
        ins, outs, if_cond, label = self._parse_hpac_tail()
        return PerfoDirective(loc=loc, kind=kind.text, rate=rate,
                              in_arrays=ins, out_arrays=outs,
                              if_condition=if_cond, label=label)

    def parse_memo(self) -> MemoDirective:
        loc = self.expect_ident("memo").loc
        self.expect("LPAREN")
        kind = self.expect("IDENT", "memoization kind")
        if kind.text not in ("in", "out"):
            raise ParseError(
                f"memoization kind must be in|out, got {kind.text!r}",
                kind.loc)
        parameter = "0"
        if self.accept("COLON") is not None:
            parameter = self.capture_until_balanced_rparen()
            if not parameter:
                raise ParseError("empty memo parameter", loc)
        self.expect("RPAREN")
        ins, outs, if_cond, label = self._parse_hpac_tail()
        return MemoDirective(loc=loc, kind=kind.text, parameter=parameter,
                             in_arrays=ins, out_arrays=outs,
                             if_condition=if_cond, label=label)


def parse_directive(source: str):
    """Parse a single directive string into its AST node."""
    parser = _Parser(source)
    node = parser.parse_directive()
    if parser.cur.kind != "EOF":
        raise ParseError(f"trailing input {parser.cur.text!r}", parser.cur.loc)
    return node


def parse_program(source: str) -> list:
    """Parse an annotation block: one directive per ``#pragma`` line.

    Directives may span physical lines via backslash continuations,
    exactly as in the paper's Fig. 2 listing.
    """
    # Split on lines that begin a new pragma; honor continuations.
    logical: list[str] = []
    current: list[str] = []
    for raw_line in source.splitlines():
        stripped = raw_line.strip()
        if not stripped:
            continue
        starts_new = stripped.startswith("#pragma")
        if starts_new and current and not current[-1].rstrip().endswith("\\"):
            logical.append("\n".join(current))
            current = []
        current.append(raw_line)
    if current:
        logical.append("\n".join(current))
    return [parse_directive(chunk) for chunk in logical]
