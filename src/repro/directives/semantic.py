"""Semantic analysis for parsed HPAC-ML directives.

Responsibilities (mirroring the paper's Sema extension of Clang):

* reduce every ``s-expr`` to a canonical :class:`LinearForm`
  (``sum(coeff*name) + const``) — the Fig. 4 lowering requires slice
  indices linear in the symbolic constants;
* classify free names: names appearing as bare LHS point dims are
  **symbolic constants** (sweep symbols); any other free name is a
  **deferred integer variable** — a program variable (``H``, ``NZ``)
  the compiler would resolve, bound here from the region's argument
  environment when the functor is applied to memory
  (:meth:`AnalyzedFunctor.resolve`);
* validate functor declarations: symbolic LHS dims must precede the
  concrete (feature) dims, every range slice must have an extent
  independent of the sweep symbols;
* validate tensor maps and ml directives (declared functors, coherent
  mode/clause combinations, arrays covered by maps).

The analyzer accumulates :class:`Diagnostic` records rather than
raising, so callers can report every problem in an annotation at once —
the behaviour application developers get from a real compiler frontend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .ast_nodes import (BinOp, FunctorDecl, IntLit, LinearForm, MLDirective,
                        SliceExpr, SourceLoc, SymRef, TensorMapDirective)

__all__ = ["Diagnostic", "SemanticError", "SemanticAnalyzer", "linearize",
           "AnalyzedFunctor", "AnalyzedSlice", "AnalyzedDim",
           "substitute", "form_sub"]


class SemanticError(ValueError):
    """Raised when analysis finishes with errors (message lists them all)."""


@dataclass(frozen=True)
class Diagnostic:
    severity: str  # 'error' | 'warning'
    message: str
    loc: SourceLoc

    def __str__(self):
        return f"{self.loc}: {self.severity}: {self.message}"


def linearize(expr, env: dict | None = None) -> LinearForm:
    """Reduce an expression AST to ``LinearForm``.

    ``env`` maps declared-variable names to integers; names not in
    ``env`` stay symbolic in the form.  Raises :class:`SemanticError`
    for non-linear structure (``name * name``, symbolic division).
    """
    env = env or {}

    def walk(e) -> tuple[dict, int]:
        if isinstance(e, IntLit):
            return {}, e.value
        if isinstance(e, SymRef):
            if e.name in env:
                return {}, int(env[e.name])
            return {e.name: 1}, 0
        if isinstance(e, BinOp):
            lc, lk = walk(e.lhs)
            rc, rk = walk(e.rhs)
            if e.op == "+":
                merged = dict(lc)
                for s, c in rc.items():
                    merged[s] = merged.get(s, 0) + c
                return merged, lk + rk
            if e.op == "-":
                merged = dict(lc)
                for s, c in rc.items():
                    merged[s] = merged.get(s, 0) - c
                return merged, lk - rk
            if e.op == "*":
                if lc and rc:
                    raise SemanticError(
                        f"{e.loc}: non-linear symbolic expression "
                        f"(name * name)")
                if lc:
                    return {s: c * rk for s, c in lc.items()}, lk * rk
                return {s: c * lk for s, c in rc.items()}, lk * rk
            if e.op == "/":
                if rc:
                    raise SemanticError(f"{e.loc}: division by symbolic value")
                if rk == 0:
                    raise SemanticError(f"{e.loc}: division by zero")
                if lc and any(c % rk for c in lc.values()) or lk % rk:
                    raise SemanticError(
                        f"{e.loc}: non-integral symbolic division")
                return {s: c // rk for s, c in lc.items()}, lk // rk
            raise SemanticError(f"{e.loc}: unknown operator {e.op!r}")
        raise SemanticError(f"unsupported expression node {type(e).__name__}")

    coeffs, const = walk(expr)
    coeffs = {s: c for s, c in coeffs.items() if c != 0}
    return LinearForm(coeffs=tuple(sorted(coeffs.items())), const=const)


def substitute(form: LinearForm, env: dict) -> LinearForm:
    """Fold environment variables of ``form`` into its constant."""
    const = form.const
    remaining = []
    for name, coeff in form.coeffs:
        if name in env:
            const += coeff * int(env[name])
        else:
            remaining.append((name, coeff))
    return LinearForm(coeffs=tuple(remaining), const=const)


def form_sub(a: LinearForm, b: LinearForm) -> LinearForm:
    """``a - b`` in linear-form arithmetic."""
    coeffs = dict(a.coeffs)
    for name, c in b.coeffs:
        coeffs[name] = coeffs.get(name, 0) - c
    coeffs = {n: c for n, c in coeffs.items() if c != 0}
    return LinearForm(coeffs=tuple(sorted(coeffs.items())),
                      const=a.const - b.const)


@dataclass(frozen=True)
class AnalyzedDim:
    """One dimension of an analyzed RHS slice.

    ``start``/``stop`` are linear forms over symbols and deferred
    variables; ``extent`` is the concrete element count once all
    deferred variables are resolved (``None`` until then).
    """

    start: LinearForm
    stop: LinearForm | None
    step: int
    extent: int | None
    is_point: bool
    extent_form: LinearForm | None = None

    @property
    def resolved(self) -> bool:
        return self.extent is not None

    def resolve(self, env: dict, symbols: tuple) -> "AnalyzedDim":
        start = substitute(self.start, env)
        _check_resolved(start, symbols, "slice start")
        if self.is_point:
            return replace(self, start=start, extent=1)
        stop = substitute(self.stop, env)
        _check_resolved(stop, symbols, "slice stop")
        extent_form = form_sub(stop, start)
        if extent_form.coeffs:
            raise SemanticError(
                f"slice extent still symbolic after resolution: {extent_form}")
        span = extent_form.const
        if span <= 0:
            raise SemanticError(f"empty or negative slice extent {span}")
        extent = (span + self.step - 1) // self.step
        return replace(self, start=start, stop=stop, extent=extent,
                       extent_form=None)


def _check_resolved(form: LinearForm, symbols: tuple, what: str) -> None:
    free = [n for n in form.symbols if n not in symbols]
    if free:
        raise SemanticError(
            f"{what} references unresolved integer variables {free} "
            "(not found among the region's arguments)")


@dataclass(frozen=True)
class AnalyzedSlice:
    dims: tuple  # tuple[AnalyzedDim, ...]

    @property
    def resolved(self) -> bool:
        return all(d.resolved for d in self.dims)

    @property
    def feature_count(self) -> int:
        n = 1
        for d in self.dims:
            if d.extent is None:
                raise SemanticError("feature_count on unresolved slice; "
                                    "call AnalyzedFunctor.resolve(env) first")
            n *= d.extent
        return n

    def resolve(self, env: dict, symbols: tuple) -> "AnalyzedSlice":
        return AnalyzedSlice(dims=tuple(d.resolve(env, symbols)
                                        for d in self.dims))


@dataclass(frozen=True)
class AnalyzedFunctor:
    """Validated functor: symbol order, feature shape, analyzed RHS.

    ``feature_shape`` entries are ``None`` for extents that depend on
    deferred variables; :meth:`resolve` produces the fully concrete
    functor used by the data bridge.
    """

    name: str
    symbols: tuple           # LHS symbolic dims, in declaration order
    feature_shape: tuple     # ints or None (deferred)
    feature_forms: tuple     # LinearForm extents, parallel to feature_shape
    rhs: tuple               # tuple[AnalyzedSlice, ...]
    decl: FunctorDecl

    @property
    def resolved(self) -> bool:
        return all(f is not None for f in self.feature_shape) and \
            all(s.resolved for s in self.rhs)

    @property
    def total_features(self) -> int:
        n = 1
        for f in self.feature_shape:
            if f is None:
                raise SemanticError(
                    f"functor {self.name!r} has unresolved feature dims; "
                    "call resolve(env) first")
            n *= f
        return n

    def resolve(self, env: dict | None = None) -> "AnalyzedFunctor":
        """Bind deferred integer variables; validates feature totals."""
        env = env or {}
        if self.resolved and not env:
            return self
        shape = []
        for extent, form in zip(self.feature_shape, self.feature_forms):
            if extent is not None:
                shape.append(extent)
                continue
            resolved_form = substitute(form, env)
            if resolved_form.coeffs:
                raise SemanticError(
                    f"functor {self.name!r}: feature extent {form} has "
                    f"unresolved variables {list(resolved_form.symbols)}")
            if resolved_form.const <= 0:
                raise SemanticError(
                    f"functor {self.name!r}: feature extent {form} "
                    f"resolves to {resolved_form.const}")
            shape.append(resolved_form.const)
        rhs = tuple(s.resolve(env, self.symbols) for s in self.rhs)
        out = replace(self, feature_shape=tuple(shape), rhs=rhs)
        expected = out.total_features
        got = sum(s.feature_count for s in rhs)
        if got != expected:
            raise SemanticError(
                f"functor {self.name!r}: RHS contributes {got} features but "
                f"LHS declares {expected}")
        return out


class SemanticAnalyzer:
    """Analyze a directive list into validated functors/maps/ml configs."""

    def __init__(self):
        self.diagnostics: list[Diagnostic] = []
        self.functors: dict[str, AnalyzedFunctor] = {}
        self.maps: list[TensorMapDirective] = []
        self.ml: MLDirective | None = None

    # -- diagnostics -------------------------------------------------------
    def error(self, message: str, loc: SourceLoc) -> None:
        self.diagnostics.append(Diagnostic("error", message, loc))

    def warning(self, message: str, loc: SourceLoc) -> None:
        self.diagnostics.append(Diagnostic("warning", message, loc))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def raise_if_errors(self) -> None:
        if self.errors:
            raise SemanticError("\n".join(str(d) for d in self.errors))

    # -- functor analysis -----------------------------------------------------
    def _analyze_slice_expr(self, sl: SliceExpr, symbols: set,
                            where: str) -> AnalyzedDim | None:
        try:
            start = linearize(sl.start)
        except SemanticError as exc:
            self.error(str(exc), sl.loc)
            return None
        if sl.is_point:
            return AnalyzedDim(start=start, stop=None, step=1, extent=1,
                               is_point=True)
        try:
            stop = linearize(sl.stop)
            step_form = linearize(sl.step) if sl.step is not None else None
        except SemanticError as exc:
            self.error(str(exc), sl.loc)
            return None
        if step_form is not None and not step_form.is_constant():
            self.error(f"{where}: slice step must be a constant", sl.loc)
            return None
        step = step_form.const if step_form is not None else 1
        if step <= 0:
            self.error(f"{where}: slice step must be positive, got {step}",
                       sl.loc)
            return None
        # Extent must not depend on sweep symbols (deferred program
        # variables are fine — they resolve at map time).
        diff = form_sub(stop, start)
        if any(name in symbols for name, _c in diff.coeffs):
            self.error(
                f"{where}: slice extent depends on symbolic constants "
                f"({start} : {stop})", sl.loc)
            return None
        if diff.is_constant():
            span = diff.const
            if span <= 0:
                self.error(f"{where}: empty or negative slice extent {span}",
                           sl.loc)
                return None
            extent = (span + step - 1) // step
            return AnalyzedDim(start=start, stop=stop, step=step,
                               extent=extent, is_point=False)
        return AnalyzedDim(start=start, stop=stop, step=step, extent=None,
                           is_point=False, extent_form=diff)

    def analyze_functor(self, decl: FunctorDecl) -> None:
        if decl.name in self.functors:
            self.error(f"functor {decl.name!r} redeclared", decl.loc)
            return
        # Pass 1 — LHS point dims that are bare names become symbols.
        symbols: list[str] = []
        for sl in decl.lhs.slices:
            if not sl.is_point:
                continue
            try:
                form = linearize(sl.start)
            except SemanticError as exc:
                self.error(str(exc), sl.loc)
                continue
            if len(form.coeffs) == 1 and form.coeffs[0][1] == 1 \
                    and form.const == 0:
                name = form.coeffs[0][0]
                if name in symbols:
                    self.error(f"symbol {name!r} repeated on LHS", sl.loc)
                else:
                    symbols.append(name)
            elif form.is_constant():
                self.error("LHS point dims must be symbolic constants "
                           f"(got integer {form.const})", sl.loc)
            else:
                self.error(f"LHS symbolic dim must be a bare symbol, "
                           f"got {form}", sl.loc)

        # Pass 2 — LHS feature dims (ranges); must trail the symbols.
        feature_shape: list[int | None] = []
        feature_forms: list[LinearForm] = []
        seen_concrete = False
        for sl in decl.lhs.slices:
            if sl.is_point:
                if seen_concrete:
                    self.error("symbolic LHS dims must precede concrete "
                               "feature dims", sl.loc)
                continue
            seen_concrete = True
            try:
                start = linearize(sl.start)
                stop = linearize(sl.stop)
            except SemanticError as exc:
                self.error(str(exc), sl.loc)
                continue
            diff = form_sub(stop, start)
            if any(name in symbols for name, _c in diff.coeffs):
                self.error("LHS feature extent cannot depend on sweep "
                           "symbols", sl.loc)
                continue
            if diff.is_constant():
                if diff.const <= 0:
                    self.error(f"LHS feature dim has empty extent "
                               f"{diff.const}", sl.loc)
                    continue
                feature_shape.append(diff.const)
            else:
                feature_shape.append(None)   # deferred program variables
            feature_forms.append(diff)

        symset = set(symbols)
        rhs_slices: list[AnalyzedSlice] = []
        for spec in decl.rhs:
            dims = []
            ok = True
            for sl in spec.slices:
                dim = self._analyze_slice_expr(sl, symset,
                                               f"functor {decl.name!r} RHS")
                if dim is None:
                    ok = False
                    continue
                dims.append(dim)
            if ok:
                rhs_slices.append(AnalyzedSlice(dims=tuple(dims)))

        functor = AnalyzedFunctor(
            name=decl.name, symbols=tuple(symbols),
            feature_shape=tuple(feature_shape),
            feature_forms=tuple(feature_forms),
            rhs=tuple(rhs_slices), decl=decl)

        # Feature-total check only when everything is already concrete.
        if functor.resolved and feature_shape and rhs_slices:
            expected = functor.total_features
            got = sum(s.feature_count for s in rhs_slices)
            if got != expected:
                self.error(
                    f"functor {decl.name!r}: RHS contributes {got} features "
                    f"but LHS declares {expected}", decl.loc)
        if not symbols:
            self.warning(f"functor {decl.name!r} has no symbolic dims; the "
                         "map will produce a single tensor entry", decl.loc)
        self.functors[decl.name] = functor

    # -- map analysis ------------------------------------------------------------
    def analyze_map(self, directive: TensorMapDirective) -> None:
        functor = self.functors.get(directive.functor)
        if functor is None:
            self.error(f"tensor map references undeclared functor "
                       f"{directive.functor!r}", directive.loc)
            return
        for target in directive.targets:
            if target.spec.ndim != len(functor.symbols):
                self.error(
                    f"map target {target.array!r} has {target.spec.ndim} "
                    f"sweep dims but functor {functor.name!r} declares "
                    f"{len(functor.symbols)} symbols", target.loc)
            for sl in target.spec.slices:
                if sl.is_point:
                    self.error(
                        f"map target {target.array!r}: sweep dims must be "
                        "ranges (start:stop[:step])", sl.loc)
        self.maps.append(directive)

    # -- ml analysis ----------------------------------------------------------------
    def analyze_ml(self, directive: MLDirective) -> None:
        if self.ml is not None:
            self.error("multiple ml directives in one region annotation",
                       directive.loc)
            return
        if directive.mode == "infer" and directive.model_path is None:
            self.error("ml(infer) requires a model(...) clause", directive.loc)
        if directive.mode == "collect" and directive.db_path is None:
            self.error("ml(collect) requires a db(...) clause", directive.loc)
        if directive.mode == "predicated":
            if directive.condition is None:
                self.error("ml(predicated) requires a condition "
                           "(ml(predicated: expr))", directive.loc)
            if directive.model_path is None or directive.db_path is None:
                self.error("ml(predicated) requires both model(...) and "
                           "db(...) clauses", directive.loc)
        mapped_arrays = {t.array for m in self.maps for t in m.targets}
        for name in (directive.in_arrays + directive.out_arrays
                     + directive.inout_arrays):
            if name not in mapped_arrays:
                self.error(f"ml clause references array {name!r} that no "
                           "tensor map mentions", directive.loc)
        if not (directive.in_arrays or directive.inout_arrays):
            self.warning("ml directive has no inputs", directive.loc)
        self.ml = directive

    # -- driver --------------------------------------------------------------------
    def analyze(self, directives: list) -> "SemanticAnalyzer":
        for d in directives:
            if isinstance(d, FunctorDecl):
                self.analyze_functor(d)
            elif isinstance(d, TensorMapDirective):
                self.analyze_map(d)
            elif isinstance(d, MLDirective):
                self.analyze_ml(d)
            else:
                raise TypeError(f"not a directive: {type(d).__name__}")
        return self
