"""``repro.directives`` — compiler frontend for the HPAC-ML pragma grammar."""

from .ast_nodes import (SourceLoc, Expr, IntLit, SymRef, VarRef, BinOp,
                        SliceExpr, SliceSpec, FunctorDecl, MapTarget,
                        TensorMapDirective, MLDirective, LinearForm)
from .lexer import Token, LexError, tokenize, KEYWORDS
from .parser import ParseError, parse_directive, parse_program
from .semantic import (Diagnostic, SemanticError, SemanticAnalyzer,
                       linearize, AnalyzedFunctor, AnalyzedSlice, AnalyzedDim)

__all__ = [
    "SourceLoc", "Expr", "IntLit", "SymRef", "VarRef", "BinOp", "SliceExpr",
    "SliceSpec", "FunctorDecl", "MapTarget", "TensorMapDirective",
    "MLDirective", "LinearForm", "Token", "LexError", "tokenize", "KEYWORDS",
    "ParseError", "parse_directive", "parse_program", "Diagnostic",
    "SemanticError", "SemanticAnalyzer", "linearize", "AnalyzedFunctor",
    "AnalyzedSlice", "AnalyzedDim",
]
