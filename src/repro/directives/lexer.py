"""Tokenizer for HPAC-ML directive strings.

Accepts either a bare clause body (``tensor functor(...)``) or the full
pragma form (``#pragma approx tensor functor(...)``).  Backslash line
continuations — used throughout the paper's listings — are folded before
tokenization, preserving line/column bookkeeping for diagnostics.

Tokens carry their absolute source offset (``pos``) so the parser can
recover raw substrings verbatim — needed for the ``bool-expr`` operands
of ``ml(predicated: ...)`` and ``if(...)``, which are host-language
expressions the directive grammar treats as opaque.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast_nodes import SourceLoc

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "pragma", "approx", "tensor", "functor", "map", "ml", "in", "out",
    "inout", "model", "db", "database", "if", "to", "from", "infer",
    "collect", "predicated",
})

_PUNCT = {
    "(": "LPAREN", ")": "RPAREN", "[": "LBRACKET", "]": "RBRACKET",
    ":": "COLON", ",": "COMMA", "=": "EQUALS", "+": "PLUS", "-": "MINUS",
    "*": "STAR", "/": "SLASH", "#": "HASH", "<": "LT", ">": "GT",
    "!": "BANG", "%": "PERCENT", "&": "AMP", "|": "PIPE", ".": "DOT",
    ";": "SEMI",
}


@dataclass(frozen=True)
class Token:
    kind: str       # IDENT | INT | STRING | one of _PUNCT values | EOF
    text: str
    loc: SourceLoc
    pos: int        # absolute offset of the token's first character

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}@{self.loc})"


class LexError(ValueError):
    """Raised on unrecognized input characters."""

    def __init__(self, message: str, loc: SourceLoc):
        super().__init__(f"{loc}: {message}")
        self.loc = loc


def tokenize(text: str) -> list[Token]:
    """Tokenize a directive string into a token list ending with EOF."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        loc = SourceLoc(line, col)
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2
            line += 1
            col = 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise LexError("unterminated string literal", loc)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", loc)
            tokens.append(Token("STRING", text[i + 1:j], loc, i))
            col += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("INT", text[i:j], loc, i))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", text[i:j], loc, i))
            col += j - i
            i = j
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, loc, i))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", loc)
    tokens.append(Token("EOF", "", SourceLoc(line, col), n))
    return tokens
