"""``repro.device`` — simulated accelerator (DESIGN.md §2, GPU substitution)."""

from .clock import VirtualClock
from .memory import MemorySpace, DeviceBuffer, WrongSpaceError
from .transfer import TransferModel, Device

__all__ = ["VirtualClock", "MemorySpace", "DeviceBuffer", "WrongSpaceError",
           "TransferModel", "Device"]
