"""Transfer cost model and the simulated device itself.

The cost model is the classic latency+bandwidth line: moving ``n`` bytes
costs ``latency + n / bandwidth`` seconds of *simulated* time.  Defaults
approximate a PCIe 4.0 x16 link (the A100 host link in the paper's
platform): ~25 GB/s effective bandwidth, ~10 µs launch latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .clock import VirtualClock
from .memory import DeviceBuffer, MemorySpace

__all__ = ["TransferModel", "Device"]


@dataclass(frozen=True)
class TransferModel:
    """Latency/bandwidth model for host<->device copies."""

    bandwidth_bytes_per_s: float = 25e9
    latency_s: float = 10e-6

    def cost(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


class Device:
    """A simulated accelerator with its own memory space and clock.

    All explicit movement between spaces goes through :meth:`to_device`
    / :meth:`to_host`, which charge the transfer model onto the clock.
    Compute run via :meth:`launch` is measured in real wall time.

    ``dense_speedup`` models the accelerator's structural advantage on
    dense linear algebra: on the paper's A100, NN inference runs as
    vendor-optimized GEMM at ~47% of peak compute while the scientific
    kernels it replaces reach a few percent via scattered access (paper
    Observation 2: MiniBUDE's kernel at 33.5% compute / 6.1% bandwidth
    vs the model's 47.2% / 31.5%).  Host NumPy has no such gap — both
    sides run at similar efficiency — so the simulator scales *measured*
    dense-op wall time by this factor to recover the device's relative
    economics.  Calibration is documented in DESIGN.md §2.
    """

    def __init__(self, transfer_model: TransferModel | None = None,
                 clock: VirtualClock | None = None, name: str = "sim0",
                 dense_speedup: float = 8.0):
        if dense_speedup <= 0:
            raise ValueError(f"dense_speedup must be positive: {dense_speedup}")
        self.name = name
        self.transfer_model = transfer_model or TransferModel()
        self.clock = clock or VirtualClock()
        self.dense_speedup = dense_speedup
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.kernel_launches = 0

    def dense_time(self, wall_seconds: float) -> float:
        """Device-equivalent time of a dense operation measured on host."""
        return wall_seconds / self.dense_speedup

    # -- transfers -------------------------------------------------------
    def to_device(self, array: np.ndarray) -> DeviceBuffer:
        """Copy host data into device memory, charging transfer time."""
        array = np.asarray(array)
        self.clock.advance(self.transfer_model.cost(array.nbytes))
        self.bytes_to_device += array.nbytes
        return DeviceBuffer(array.copy(), MemorySpace.DEVICE)

    def to_host(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy device data back to the host, charging transfer time."""
        data = buf.require(MemorySpace.DEVICE)
        self.clock.advance(self.transfer_model.cost(data.nbytes))
        self.bytes_to_host += data.nbytes
        return data.copy()

    # -- compute ----------------------------------------------------------
    def launch(self, fn, *args, **kwargs):
        """Run ``fn`` as a device kernel, measuring its wall time."""
        self.kernel_launches += 1
        with self.clock.measure():
            return fn(*args, **kwargs)

    def reset_counters(self) -> None:
        self.bytes_to_device = self.bytes_to_host = 0
        self.kernel_launches = 0
        self.clock.reset()

    def __repr__(self):
        return (f"Device({self.name!r}, launches={self.kernel_launches}, "
                f"h2d={self.bytes_to_device}B, d2h={self.bytes_to_host}B)")
