"""Virtual clock combining measured wall time with simulated costs.

The paper's evaluation platform is an A100 GPU; our kernels run on the
host CPU.  To reproduce timing *shapes* (Fig. 5/6) we account time from
two sources on a single timeline:

* **measured** — real ``perf_counter`` intervals around actual NumPy
  compute (kernels, inference), and
* **simulated** — modeled costs for things our platform does not
  physically perform (PCIe transfers between the simulated host and
  device memory spaces).

The clock is monotonic and per-instance, so concurrent experiments do
not interfere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["VirtualClock"]


class VirtualClock:
    """Accumulates measured and simulated time on one timeline."""

    def __init__(self):
        self._elapsed = 0.0
        self._measured = 0.0
        self._simulated = 0.0

    @property
    def now(self) -> float:
        """Total virtual seconds elapsed."""
        return self._elapsed

    @property
    def measured(self) -> float:
        return self._measured

    @property
    def simulated(self) -> float:
        return self._simulated

    def advance(self, seconds: float) -> None:
        """Add simulated time (e.g. a modeled transfer)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._elapsed += seconds
        self._simulated += seconds

    @contextmanager
    def measure(self):
        """Context manager adding real wall time of the body to the clock."""
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self._elapsed += dt
            self._measured += dt

    def reset(self) -> None:
        self._elapsed = self._measured = self._simulated = 0.0

    def __repr__(self):
        return (f"VirtualClock(now={self._elapsed:.6f}, "
                f"measured={self._measured:.6f}, simulated={self._simulated:.6f})")
