"""Simulated host/device memory spaces.

A :class:`DeviceBuffer` tags an ndarray with the memory space it lives
in.  Kernels and the inference engine require device-resident operands;
the data bridge requires host-resident ones — forcing the same explicit
transfers the paper's runtime issues through CUDA, which is what the
Fig. 6 time breakdown accounts.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["MemorySpace", "DeviceBuffer", "WrongSpaceError"]


class MemorySpace(Enum):
    HOST = "host"
    DEVICE = "device"


class WrongSpaceError(RuntimeError):
    """An operation received a buffer resident in the wrong memory space."""


class DeviceBuffer:
    """An ndarray tagged with its (simulated) memory space."""

    __slots__ = ("array", "space")

    def __init__(self, array: np.ndarray, space: MemorySpace = MemorySpace.HOST):
        self.array = np.asarray(array)
        self.space = space

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def shape(self) -> tuple:
        return self.array.shape

    @property
    def dtype(self):
        return self.array.dtype

    def require(self, space: MemorySpace) -> np.ndarray:
        """Return the payload, asserting residency in ``space``."""
        if self.space is not space:
            raise WrongSpaceError(
                f"buffer is in {self.space.value} memory, {space.value} required")
        return self.array

    def __repr__(self):
        return f"DeviceBuffer(shape={self.array.shape}, space={self.space.value})"
