"""``repro.h5`` — hierarchical binary datastore (the "HDF5" substrate).

Provides the group/dataset container the HPAC-ML data-collection path
writes training databases into (DESIGN.md §2).
"""

from .file import File, Group, Dataset
from .format import encode_tree, decode_tree, FormatError, MAGIC

__all__ = ["File", "Group", "Dataset", "encode_tree", "decode_tree",
           "FormatError", "MAGIC"]
