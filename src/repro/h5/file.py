"""h5py-style ``File``/``Group``/``Dataset`` API over the RH5F container.

The HPAC-ML runtime's data-collection path (§IV-B) writes, per annotated
region, an HDF5 group holding three datasets: ``inputs``, ``outputs``
and ``region_time``.  This module provides the API surface that code
needs — nested groups, appendable datasets (``maxshape``-like semantics
via :meth:`Dataset.append`), attributes, and context-managed files — on
top of the single-file binary format in :mod:`repro.h5.format`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .format import decode_tree, encode_tree

__all__ = ["File", "Group", "Dataset"]


class Dataset:
    """An n-dimensional array within a group, appendable on axis 0.

    Appends buffer incoming chunks and concatenate lazily, so a long
    collection run costs one concatenation at flush rather than one per
    region invocation.
    """

    def __init__(self, name: str, data: np.ndarray, attrs: dict | None = None):
        self.name = name
        self._base = np.asarray(data)
        self._pending: list[np.ndarray] = []
        self.attrs: dict = dict(attrs or {})

    def _consolidate(self) -> None:
        if self._pending:
            self._base = np.concatenate([self._base] + self._pending, axis=0)
            self._pending.clear()

    @property
    def shape(self) -> tuple:
        self._consolidate()
        return self._base.shape

    @property
    def dtype(self):
        return self._base.dtype

    @property
    def nbytes(self) -> int:
        self._consolidate()
        return self._base.nbytes

    def __len__(self) -> int:
        return self.shape[0]

    def append(self, chunk: np.ndarray) -> None:
        """Append ``chunk`` along axis 0; trailing dims must match."""
        chunk = np.asarray(chunk, dtype=self._base.dtype)
        if chunk.shape[1:] != self._base.shape[1:]:
            raise ValueError(
                f"append shape {chunk.shape[1:]} does not match dataset "
                f"inner shape {self._base.shape[1:]}")
        self._pending.append(chunk.copy())

    def read(self) -> np.ndarray:
        """Materialize the full array (copy-safe view of internal buffer)."""
        self._consolidate()
        return self._base

    def __getitem__(self, idx) -> np.ndarray:
        self._consolidate()
        return self._base[idx]

    def __repr__(self):
        return f"Dataset({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class Group:
    """A node holding child groups, datasets, and attributes."""

    def __init__(self, name: str):
        self.name = name
        self._groups: dict[str, Group] = {}
        self._datasets: dict[str, Dataset] = {}
        self.attrs: dict = {}

    # -- navigation ----------------------------------------------------
    def _resolve(self, path: str):
        """Walk a '/'-separated path; returns (parent_group, leaf_name)."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise KeyError("empty path")
        node = self
        for part in parts[:-1]:
            if part not in node._groups:
                raise KeyError(f"no such group {part!r} in {node.name!r}")
            node = node._groups[part]
        return node, parts[-1]

    def __contains__(self, path: str) -> bool:
        try:
            parent, leaf = self._resolve(path)
        except KeyError:
            return False
        return leaf in parent._groups or leaf in parent._datasets

    def __getitem__(self, path: str):
        parent, leaf = self._resolve(path)
        if leaf in parent._groups:
            return parent._groups[leaf]
        if leaf in parent._datasets:
            return parent._datasets[leaf]
        raise KeyError(f"{path!r} not found in group {self.name!r}")

    def keys(self):
        return list(self._groups) + list(self._datasets)

    def groups(self):
        return dict(self._groups)

    def datasets(self):
        return dict(self._datasets)

    # -- creation --------------------------------------------------------
    def create_group(self, path: str) -> "Group":
        """Create (or return existing) nested group, making intermediates."""
        node = self
        for part in [p for p in path.split("/") if p]:
            if part in node._datasets:
                raise ValueError(f"{part!r} already names a dataset")
            node = node._groups.setdefault(part, Group(part))
        return node

    def require_group(self, path: str) -> "Group":
        return self.create_group(path)

    def create_dataset(self, name: str, data: np.ndarray,
                       attrs: dict | None = None) -> Dataset:
        if "/" in name:
            parent_path, leaf = name.rsplit("/", 1)
            return self.create_group(parent_path).create_dataset(leaf, data, attrs)
        if name in self._groups:
            raise ValueError(f"{name!r} already names a group")
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already exists")
        ds = Dataset(name, np.asarray(data), attrs)
        self._datasets[name] = ds
        return ds

    def require_dataset(self, name: str, inner_shape: tuple,
                        dtype=np.float64) -> Dataset:
        """Get an appendable dataset, creating it empty if absent."""
        if name in self._datasets:
            return self._datasets[name]
        empty = np.empty((0,) + tuple(inner_shape), dtype=dtype)
        return self.create_dataset(name, empty)

    def __repr__(self):
        return (f"Group({self.name!r}, groups={list(self._groups)}, "
                f"datasets={list(self._datasets)})")

    # -- (de)serialization to plain-dict tree -----------------------------
    def _to_tree(self) -> dict:
        return {
            "attrs": self.attrs,
            "groups": {n: g._to_tree() for n, g in self._groups.items()},
            "datasets": {n: {"data": d.read(), "attrs": d.attrs}
                         for n, d in self._datasets.items()},
        }

    @classmethod
    def _from_tree(cls, name: str, tree: dict) -> "Group":
        g = cls(name)
        g.attrs = dict(tree.get("attrs", {}))
        for n, sub in tree.get("groups", {}).items():
            g._groups[n] = cls._from_tree(n, sub)
        for n, ds in tree.get("datasets", {}).items():
            g._datasets[n] = Dataset(n, ds["data"], ds.get("attrs"))
        return g


class File(Group):
    """Root group bound to a path; context manager flushes on exit.

    Modes: ``"w"`` truncate-create, ``"a"`` read-modify-write (creates if
    missing), ``"r"`` read-only (writes raise at flush).

    ``atomic=True`` routes every flush through the crash-safe
    tmp+fsync+``os.replace`` path (:mod:`repro.ioutil`), so readers
    never observe a torn container — required for files that other
    processes tail while the writer is live (telemetry streams).
    """

    def __init__(self, path, mode: str = "r", atomic: bool = False):
        super().__init__("/")
        if mode not in ("r", "w", "a"):
            raise ValueError(f"invalid mode {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.atomic = atomic
        self._closed = False
        if mode in ("r", "a") and self.path.exists():
            tree = decode_tree(self.path.read_bytes())
            loaded = Group._from_tree("/", tree)
            self._groups = loaded._groups
            self._datasets = loaded._datasets
            self.attrs = loaded.attrs
        elif mode == "r":
            raise FileNotFoundError(str(self.path))

    def flush(self) -> None:
        if self.mode == "r":
            return
        if self.atomic:
            from ..ioutil import atomic_write_bytes
            atomic_write_bytes(self.path, encode_tree(self._to_tree()))
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_bytes(encode_tree(self._to_tree()))

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def file_size(self) -> int:
        """On-disk size in bytes (0 if never flushed)."""
        return self.path.stat().st_size if self.path.exists() else 0
