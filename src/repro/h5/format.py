"""Binary container format for the ``repro.h5`` datastore.

Single-file layout (magic ``RH5F``)::

    magic  b"RH5F"
    u64    header length
    bytes  JSON header describing the group tree:
           {"attrs": {...}, "groups": {...}, "datasets":
              {name: {"dtype", "shape", "offset", "nbytes", "attrs"}}}
    bytes  concatenated raw dataset payloads

The header is a faithful tree of the in-memory structure, so reading
restores groups, datasets, and attributes exactly.  Attributes are
JSON-serializable scalars/strings/lists (matching the common subset of
HDF5 attribute usage in ML data pipelines).
"""

from __future__ import annotations

import json
import struct
import warnings

import numpy as np

__all__ = ["encode_tree", "decode_tree", "FormatError", "MAGIC"]

MAGIC = b"RH5F"


class FormatError(RuntimeError):
    """Raised on malformed container data."""


def _encode_group(group_dict: dict, payload: bytearray) -> dict:
    node = {"attrs": group_dict.get("attrs", {}), "groups": {}, "datasets": {}}
    for name, sub in group_dict.get("groups", {}).items():
        node["groups"][name] = _encode_group(sub, payload)
    for name, ds in group_dict.get("datasets", {}).items():
        arr = np.ascontiguousarray(ds["data"])
        node["datasets"][name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "offset": len(payload),
            "nbytes": arr.nbytes,
            "attrs": ds.get("attrs", {}),
        }
        payload.extend(arr.tobytes())
    return node


def encode_tree(root: dict) -> bytes:
    """Serialize a group tree (plain-dict form) to container bytes."""
    payload = bytearray()
    header_tree = _encode_group(root, payload)
    header = json.dumps(header_tree).encode("utf-8")
    return MAGIC + struct.pack("<Q", len(header)) + header + bytes(payload)


def _decode_group(node: dict, payload: bytes) -> dict:
    out = {"attrs": dict(node.get("attrs", {})), "groups": {}, "datasets": {}}
    for name, sub in node.get("groups", {}).items():
        out["groups"][name] = _decode_group(sub, payload)
    for name, meta in node.get("datasets", {}).items():
        start = meta["offset"]
        raw = payload[start:start + meta["nbytes"]]
        shape = list(meta["shape"])
        if len(raw) != meta["nbytes"]:
            # Unclean shutdown mid-append: the header already promises
            # the full extent but the payload stops short.  Recover the
            # intact row prefix (rows are contiguous along the leading
            # axis) instead of refusing the whole database — losing the
            # final partial record beats losing every collected row.
            itemsize = np.dtype(meta["dtype"]).itemsize
            row_bytes = itemsize * int(np.prod(shape[1:], dtype=np.int64)) \
                if shape else itemsize
            rows = len(raw) // row_bytes if row_bytes else 0
            if not shape or rows <= 0:
                raise FormatError(f"truncated dataset {name!r}")
            warnings.warn(
                f"dataset {name!r} truncated (unclean shutdown?): "
                f"recovering {rows} of {shape[0]} rows", RuntimeWarning,
                stacklevel=2)
            shape[0] = rows
            raw = raw[:rows * row_bytes]
        arr = np.frombuffer(raw, dtype=meta["dtype"]).reshape(shape).copy()
        out["datasets"][name] = {"data": arr, "attrs": dict(meta.get("attrs", {}))}
    return out


def decode_tree(blob: bytes) -> dict:
    """Parse container bytes back into the plain-dict group tree."""
    if blob[:4] != MAGIC:
        raise FormatError(f"bad magic {blob[:4]!r}")
    (hlen,) = struct.unpack("<Q", blob[4:12])
    header_end = 12 + hlen
    if len(blob) < header_end:
        raise FormatError("truncated header")
    header = json.loads(blob[12:header_end].decode("utf-8"))
    payload = blob[header_end:]
    return _decode_group(header, payload)
