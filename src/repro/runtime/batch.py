"""Region invocation batching: amortize per-call inference overhead.

Every :class:`~repro.runtime.region.ApproxRegion` invocation in the
seed runtime paid a full engine round trip — H2D transfer, forward,
D2H transfer — even at batch size 1.  Iterative applications invoke the
same surrogate thousands of times on small batches, so the wall-clock
is dominated by fixed per-call overhead rather than math (the
amortize-over-many-queries observation of the pragmatic-synthesis
line of work).

:class:`BatchedInferenceEngine` queues submitted invocations and
flushes them as **one** ``(B, *features)`` forward:

* **size-triggered**: a flush fires when the queued row count reaches
  ``max_batch_rows``;
* **region-triggered**: a submission for a different model (a different
  region's surrogate) flushes the current queue first, preserving
  cross-region ordering;
* **explicit**: callers invoke :meth:`flush` at a program point where
  deferred outputs must land (e.g. before reading region outputs).

Because outputs are delivered at flush time, batching is only sound for
invocations that are independent of each other's outputs.  Regions
wired to a batched engine defer their scatter-back into the per-call
``on_result`` callback; auto-regressive loops (MiniWeather stepping)
must keep the immediate engine.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np

from .. import obs
from ..device import Device
from .infer import InferenceEngine, ModelCache

__all__ = ["BatchedInferenceEngine"]

#: Bucket bounds for the flushed-rows histogram (rows per fused
#: forward, powers of two up to typical ``max_batch_rows`` settings).
_ROW_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class _Pending:
    """One queued invocation: inputs plus its result callback."""

    __slots__ = ("inputs", "on_result")

    def __init__(self, inputs, on_result):
        self.inputs = inputs
        self.on_result = on_result


class BatchedInferenceEngine(InferenceEngine):
    """An :class:`InferenceEngine` that coalesces queued invocations."""

    def __init__(self, device: Device | None = None,
                 cache: ModelCache | None = None,
                 use_compiled: bool = True, max_batch_rows: int = 256):
        super().__init__(device=device, cache=cache,
                         use_compiled=use_compiled)
        if max_batch_rows <= 0:
            raise ValueError(f"max_batch_rows must be positive: "
                             f"{max_batch_rows}")
        self.max_batch_rows = max_batch_rows
        self._queue: list[_Pending] = []
        self._queue_key: str | None = None
        self._queue_dtype = None              # np.dtype | None (= float64)
        self._queued_rows = 0
        self._key_cache: dict[str, str] = {}   # raw path -> resolved
        # Reentrant: submit flushes (size/region triggers) while holding
        # the lock.  Serving backends drain regions from their own
        # threads, so queue mutation must be atomic with the forward.
        self._queue_lock = threading.RLock()
        self._rows_hist = None                # lazy cached obs handles
        self._obs_tracer = None
        self.submissions = 0
        self.batches_flushed = 0
        self.rows_flushed = 0

    # -- queue state -----------------------------------------------------
    @property
    def pending_rows(self) -> int:
        return self._queued_rows

    @property
    def pending_invocations(self) -> int:
        # Deliberately a property, not __len__: a len-able engine would
        # be falsy when idle and break ``engine or default`` wiring.
        return len(self._queue)

    # -- submission ------------------------------------------------------
    def submit(self, model_path, inputs: np.ndarray, on_result=None,
               dtype=None) -> None:
        """Queue one invocation's ``(b, *features)`` inputs.

        ``on_result(outputs, seconds)`` fires at flush time with this
        submission's slice of the batched output and its proportional
        share of the device-equivalent forward time.  Inputs are copied
        at submission, so callers may reuse their buffers immediately.
        ``dtype`` selects the plan precision for the fused forward;
        mixing precisions is a flush trigger like mixing models, so a
        batch always runs one plan.
        """
        inputs = np.array(inputs)             # snapshot: defer-safe
        if dtype is not None:
            dtype = np.dtype(dtype)
        raw = str(model_path)
        key = self._key_cache.get(raw)        # resolve() syscalls are the
        if key is None:                       # per-submit hot-path cost
            key = self._key_cache[raw] = str(Path(raw).resolve())
        with self._queue_lock:
            if self._queue and (key != self._queue_key or
                                dtype != self._queue_dtype or
                                inputs.shape[1:] !=
                                self._queue[0].inputs.shape[1:]):
                self.flush()                  # region-triggered
            self._queue.append(_Pending(inputs, on_result))
            self._queue_key = key
            self._queue_dtype = dtype
            self._queued_rows += len(inputs)
            self.submissions += 1
            if self._queued_rows >= self.max_batch_rows:
                self.flush()                  # size-triggered

    def flush(self) -> list:
        """Run all queued invocations as one forward; deliver results.

        Returns the per-submission output arrays in submission order.
        If the forward itself fails the queue is left intact (callers
        may repair the model file and flush again); a callback raising
        does not stop delivery to the remaining submissions — the first
        callback error re-raises after all deliveries ran.  Safe to
        call concurrently: the queue is consumed atomically, so a
        redundant flush (e.g. a server drain racing a size trigger)
        becomes a no-op instead of a double delivery.
        """
        with self._queue_lock:
            if not self._queue:
                return []
            pending = self._queue
            total = self._queued_rows

            if len(pending) == 1:
                batch = pending[0].inputs
            else:
                batch = np.concatenate([p.inputs for p in pending], axis=0)
            start = time.perf_counter()
            outputs = self._flush_forward(self._queue_key, batch,
                                          dtype=self._queue_dtype)
            if obs.is_enabled():
                tracer = self._obs_tracer
                if tracer is None:
                    tracer = self._obs_tracer = obs.tracer()
                tracer.record_span(
                    "batch_flush", time.perf_counter() - start,
                    model=self._queue_key.rsplit("/", 1)[-1],
                    rows=total, invocations=len(pending))
                if self._rows_hist is None:
                    self._rows_hist = obs.metrics().histogram(
                        "batch_flush_rows", buckets=_ROW_BUCKETS)
                self._rows_hist.observe(total)
            # The forward succeeded: the queue is consumed from here on.
            self._queue = []
            self._queue_key = None
            self._queue_dtype = None
            self._queued_rows = 0
            self.batches_flushed += 1
            self.rows_flushed += total
            forward_device = self.last_inference_seconds

        # Deliver outside the lock: callbacks scatter into application
        # memory and may re-enter submit (never while holding the queue).
        results = []
        offset = 0
        first_error = None
        for p in pending:
            n = len(p.inputs)
            out = outputs[offset:offset + n]
            offset += n
            if p.on_result is not None:
                try:
                    p.on_result(out, forward_device * (n / total))
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
            results.append(out)
        if first_error is not None:
            raise first_error
        return results

    # -- the one fused forward --------------------------------------------
    def _flush_forward(self, model_path, batch: np.ndarray,
                       dtype=None) -> np.ndarray:
        """Run one fused ``(B, *features)`` forward for the queue.

        The single seam between batching policy and execution:
        process-backend engines override this to ship the batch to a
        worker process, inheriting the queue/flush/delivery machinery
        unchanged.
        """
        return super().infer(model_path, batch, dtype=dtype)

    # -- immediate path ---------------------------------------------------
    def infer(self, model_path, inputs: np.ndarray,
              dtype=None) -> np.ndarray:
        """Immediate inference; acts as a barrier for queued work."""
        self.flush()
        return self._flush_forward(model_path, inputs, dtype=dtype)
