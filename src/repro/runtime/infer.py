"""Inference backend: model loading, caching, and device execution.

Mirrors §IV-B's inference path: the first invocation loads the model
file given by the ``model(...)`` clause (then caches it, "if it has not
already been loaded"); every invocation moves the composed input tensor
to the (simulated) device, evaluates the network, and moves the output
back for the bridge to scatter.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..device import Device
from ..nn import load_model, no_grad
from ..nn.layers import Module
from ..nn.tensor import Tensor

__all__ = ["InferenceEngine", "ModelCache"]


class ModelCache:
    """Path-keyed cache of deserialized models (one load per path)."""

    def __init__(self):
        self._models: dict[str, Module] = {}

    def get(self, path) -> Module:
        key = str(Path(path).resolve())
        model = self._models.get(key)
        if model is None:
            model = load_model(path)
            self._models[key] = model
        return model

    def put(self, path, model: Module) -> None:
        """Pre-seed the cache (used by in-memory search pipelines)."""
        self._models[str(Path(path).resolve())] = model

    def clear(self) -> None:
        self._models.clear()

    def __len__(self):
        return len(self._models)


class InferenceEngine:
    """Runs surrogate inference on a simulated device."""

    def __init__(self, device: Device | None = None,
                 cache: ModelCache | None = None):
        self.device = device or Device()
        self.cache = cache or ModelCache()
        #: Timing of the most recent inference: ``forward_wall`` is the
        #: measured host time of the dense forward pass;
        #: ``forward_device`` is its device-equivalent
        #: (:meth:`repro.device.Device.dense_time`); ``transfer_sim``
        #: is the modeled H2D+D2H cost.
        self.last_timing: dict = {}

    def infer(self, model_path, inputs: np.ndarray) -> np.ndarray:
        """Full inference round trip: H2D transfer, forward, D2H transfer.

        ``inputs`` is batch-major ``(B, *features)``; the return value
        keeps the model's output shape ``(B, *out_features)``.
        """
        model = self.cache.get(model_path)
        return self.infer_with_model(model, inputs)

    def infer_with_model(self, model: Module, inputs: np.ndarray) -> np.ndarray:
        import time

        sim_before = self.device.clock.simulated
        dev_in = self.device.to_device(inputs)
        model.eval()

        start = time.perf_counter()
        with no_grad():
            out = model(Tensor(dev_in.array)).numpy()
        forward_wall = time.perf_counter() - start
        self.device.kernel_launches += 1

        from ..device.memory import DeviceBuffer, MemorySpace
        dev_out = DeviceBuffer(out, MemorySpace.DEVICE)
        result = self.device.to_host(dev_out)
        self.last_timing = {
            "forward_wall": forward_wall,
            "forward_device": self.device.dense_time(forward_wall),
            "transfer_sim": self.device.clock.simulated - sim_before,
        }
        return result

    @property
    def last_inference_seconds(self) -> float:
        """Device-equivalent engine time of the last inference (used by
        the runtime for the Fig. 6 INFERENCE phase)."""
        return self.last_timing.get("forward_device", 0.0)
