"""Inference backend: model loading, caching, and device execution.

Mirrors §IV-B's inference path: the first invocation loads the model
file given by the ``model(...)`` clause (then caches it, "if it has not
already been loaded"); every invocation moves the composed input tensor
to the (simulated) device, evaluates the network, and moves the output
back for the bridge to scatter.

Two forward paths exist.  The default is the **compiled fast path**:
the engine keeps a per-model cache of :class:`repro.nn.CompiledPlan`
closures (keyed by model identity) and runs the flat NumPy plan —
no autodiff ``Tensor`` wrappers, fused affine+activation, preallocated
scratch.  Models with layers the planner cannot lower (or engines
constructed with ``use_compiled=False``) fall back to the original
graph path under ``no_grad``.
"""

from __future__ import annotations

import weakref
from pathlib import Path

import numpy as np

from ..device import Device
from ..nn import load_model, no_grad
from ..nn.compile import UnsupportedLayerError, compile_inference
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..resilience import faults as _faults

__all__ = ["InferenceEngine", "ModelCache"]


class ModelCache:
    """Path-keyed cache of deserialized models (one load per path)."""

    def __init__(self):
        self._models: dict[str, Module] = {}

    def get(self, path) -> Module:
        key = str(Path(path).resolve())
        model = self._models.get(key)
        if model is None:
            model = load_model(path)
            self._models[key] = model
        return model

    def put(self, path, model: Module) -> None:
        """Pre-seed the cache (used by in-memory search pipelines)."""
        self._models[str(Path(path).resolve())] = model

    def invalidate(self, path) -> bool:
        """Drop one path's cached model so the next ``get`` reloads it.

        The hot-swap primitive: after a retrained model file is moved
        into place (``os.replace``), invalidating the entry makes every
        engine sharing this cache pick up the new weights on its next
        inference — no restart, no full cache clear.  Returns whether
        an entry was dropped.
        """
        return self._models.pop(str(Path(path).resolve()), None) is not None

    def clear(self) -> None:
        self._models.clear()

    def __len__(self):
        return len(self._models)


class InferenceEngine:
    """Runs surrogate inference on a simulated device."""

    #: Compiled-plan cache entries kept before evicting dead ones.
    _PLAN_CACHE_LIMIT = 64

    def __init__(self, device: Device | None = None,
                 cache: ModelCache | None = None,
                 use_compiled: bool = True):
        self.device = device if device is not None else Device()
        # Not ``cache or ...``: an empty ModelCache is falsy (__len__),
        # which would silently drop a shared-but-cold cache.
        self.cache = cache if cache is not None else ModelCache()
        self.use_compiled = use_compiled
        #: (id(model), dtype) -> (weakref to model, CompiledPlan | None).
        #: ``None`` records a model whose layers have no lowering, so
        #: the graph fallback is not re-attempted every call.  Keying on
        #: dtype keeps a float32 and a float64 plan of the same model
        #: cached side by side without scratch/constant mixing.
        self._plans: dict[tuple, tuple] = {}
        #: Timing of the most recent inference: ``forward_wall`` is the
        #: measured host time of the dense forward pass;
        #: ``forward_device`` is its device-equivalent
        #: (:meth:`repro.device.Device.dense_time`); ``transfer_sim``
        #: is the modeled H2D+D2H cost; ``compiled`` says which forward
        #: path ran.
        self.last_timing: dict = {}

    # -- compiled-plan cache ---------------------------------------------
    def plan_for(self, model: Module, dtype=np.float64):
        """Return the cached :class:`CompiledPlan` for ``model``.

        Compiles on first sight, recompiles when the plan went stale
        (parameter arrays rebound), and returns ``None`` when the model
        has unsupported layers or the engine runs with
        ``use_compiled=False``.  Cache entries carry the plan's
        structural fingerprint: when a recompile preserves it (the
        hot-swap / ``load_state_dict`` case — same architecture, new
        weights), the fresh plan adopts the stale plan's scratch
        buffers, so the first post-swap inference allocates nothing.

        ``dtype=np.float32`` compiles a narrowed plan (cached under its
        own key).  Models the narrower refuses — steps outside the
        dtype-safe MLP set — fall back to the float64 plan, which is
        then cached under the float32 key so the refusal is not
        re-discovered on every call.
        """
        if not self.use_compiled:
            return None
        dtype = np.dtype(dtype)
        key = (id(model), dtype)
        entry = self._plans.get(key)
        old_plan = None
        if entry is not None:
            ref, plan = entry
            if ref() is model:
                if plan is None or not plan.stale():
                    return plan
                old_plan = plan           # stale, same model: recompile
        try:
            plan = compile_inference(model, dtype=dtype)
        except UnsupportedLayerError:
            if dtype != np.float64:
                # Narrowing refused: serve the float64 plan instead and
                # remember that decision under the narrow key.
                plan = self.plan_for(model)
                self._plans[key] = (weakref.ref(model), plan)
                return plan
            plan = None
        if plan is not None and not plan.adopt_scratch(old_plan):
            # Hot-swap path: the old model object is gone (the cache
            # invalidated its last strong reference), leaving a retired
            # entry with a dead weakref.  Its plan's scratch has
            # exactly the layout a same-fingerprint successor will
            # allocate; adopt it and retire the donor entry.  Entries
            # whose model is still alive are never donors — sharing
            # scratch between two live plans would corrupt outputs.
            for k, (ref2, p2) in list(self._plans.items()):
                if p2 is not None and ref2() is None and \
                        plan.adopt_scratch(p2):
                    del self._plans[k]
                    break
        if len(self._plans) > self._PLAN_CACHE_LIMIT:
            self._plans = {k: v for k, v in self._plans.items()
                           if v[0]() is not None}
        self._plans[key] = (weakref.ref(model), plan)
        return plan

    def warmup(self, model_path, dtype=None) -> Module:
        """Load + precompile a model so the first timed call is hot."""
        model = self.cache.get(model_path)
        self.plan_for(model, dtype if dtype is not None else np.float64)
        return model

    # -- inference -------------------------------------------------------
    def infer(self, model_path, inputs: np.ndarray,
              dtype=None) -> np.ndarray:
        """Full inference round trip: H2D transfer, forward, D2H transfer.

        ``inputs`` is batch-major ``(B, *features)``; the return value
        keeps the model's output shape ``(B, *out_features)``.
        ``dtype=np.float32`` runs the narrowed compiled plan when the
        model supports it (float64 otherwise).
        """
        model = self.cache.get(model_path)
        return self.infer_with_model(model, inputs, dtype=dtype)

    def infer_with_model(self, model: Module, inputs: np.ndarray,
                         dtype=None) -> np.ndarray:
        import time

        sim_before = self.device.clock.simulated
        dev_in = self.device.to_device(inputs)
        plan = self.plan_for(model,
                             dtype if dtype is not None else np.float64)

        start = time.perf_counter()
        if plan is not None:
            out = plan(dev_in.array)
        else:
            model.eval()
            with no_grad():
                out = model(Tensor(dev_in.array)).numpy()
        forward_wall = time.perf_counter() - start
        self.device.kernel_launches += 1

        from ..device.memory import DeviceBuffer, MemorySpace
        dev_out = DeviceBuffer(out, MemorySpace.DEVICE)
        result = self.device.to_host(dev_out)
        self.last_timing = {
            "forward_wall": forward_wall,
            "forward_device": self.device.dense_time(forward_wall),
            "transfer_sim": self.device.clock.simulated - sim_before,
            "compiled": plan is not None,
            "dtype": plan.dtype.name if plan is not None else "float64",
        }
        # SURROGATE fault seam: with an active FaultInjector this forward
        # may raise or hand back NaN/Inf/garbage outputs, exactly like a
        # model poisoned mid-training or a device fault would.
        fault = _faults.fire(_faults.SURROGATE)
        if fault is not None:
            result = _faults.apply_surrogate_fault(fault, result)
        return result

    def profile(self, model_path, inputs: np.ndarray) -> dict:
        """One instrumented forward with per-plan-step timings.

        Returns ``{"compiled", "steps", "total_seconds", "outputs"}``.
        On the compiled path ``steps`` holds one ``{"step", "seconds"}``
        entry per plan step (:meth:`CompiledPlan.profile
        <repro.nn.compile.CompiledPlan.profile>`); on the graph
        fallback it is a single whole-forward entry.  Diagnostic
        surface for ``repro stats`` — slower than :meth:`infer`, and
        it bypasses the transfer simulation and fault seams.
        """
        import time
        model = self.cache.get(model_path)
        plan = self.plan_for(model)
        x = np.asarray(inputs)
        start = time.perf_counter()
        if plan is not None:
            out, steps = plan.profile(x)
        else:
            model.eval()
            with no_grad():
                out = model(Tensor(x)).numpy()
            steps = [{"step": "graph forward",
                      "seconds": time.perf_counter() - start}]
        return {
            "compiled": plan is not None,
            "steps": steps,
            "total_seconds": time.perf_counter() - start,
            "outputs": out,
        }

    @property
    def last_inference_seconds(self) -> float:
        """Device-equivalent engine time of the last inference (used by
        the runtime for the Fig. 6 INFERENCE phase)."""
        return self.last_timing.get("forward_device", 0.0)
