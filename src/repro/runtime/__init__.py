"""``repro.runtime`` — HPAC-ML execution control (§III-A-2, §IV-B)."""

from .events import Phase, InvocationRecord, EventLog
from .control import ExecutionPath, decide_path, eval_condition
from .collect import DataCollector, load_training_data
from .infer import InferenceEngine, ModelCache
from .batch import BatchedInferenceEngine
from .fleet import FleetInferenceEngine, FleetMember
from .region import ApproxRegion, RegionConfig

__all__ = ["Phase", "InvocationRecord", "EventLog", "ExecutionPath",
           "decide_path", "eval_condition", "DataCollector",
           "load_training_data", "InferenceEngine", "ModelCache",
           "BatchedInferenceEngine", "FleetInferenceEngine", "FleetMember",
           "ApproxRegion", "RegionConfig"]
