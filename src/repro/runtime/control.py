"""Execution-path decision logic (§III-A-2, §IV-B).

HPAC generates two execution paths per annotated region — accurate and
approximate — and decides per invocation which to take.  HPAC-ML's
modes map onto that choice:

* ``infer``      → approximate path (surrogate inference), always;
* ``collect``    → accurate path *plus* data capture, always;
* ``predicated`` → evaluate the condition each invocation: true means
  inference, false means collection (paper §III-B);
* an additional ``if(...)`` clause gates approximation entirely: when
  false the accurate path runs with **no** collection — this is the
  primitive Fig. 9 uses to interleave accurate timesteps with surrogate
  steps.
"""

from __future__ import annotations

from functools import lru_cache

from ..directives.ast_nodes import MLDirective

__all__ = ["ExecutionPath", "decide_path", "apply_override",
           "eval_condition", "eval_expr"]


class ExecutionPath:
    ACCURATE = "accurate"
    COLLECT = "collect"
    INFER = "infer"

    #: Every path value, in reporting order (telemetry roll-ups).
    ALL = (ACCURATE, COLLECT, INFER)


@lru_cache(maxsize=512)
def _compile_expr(expr: str):
    """Compile a directive expression once; conditions are evaluated on
    every region invocation, so re-parsing the source string per call
    would dominate small-region serving latency."""
    return compile(expr, "<directive>", "eval")


def eval_condition(expr: str, env: dict) -> bool:
    """Evaluate an opaque bool-expr against the region's bound arguments.

    The directive grammar treats these conditions as host-language
    expressions (in C they compile into the application); here the host
    language is Python, so ``eval`` against the call's argument binding
    is the faithful analogue.  Builtins are stripped: conditions are
    arithmetic/logical expressions over region arguments, not programs.
    """
    try:
        return bool(eval(_compile_expr(expr), {"__builtins__": {}},
                         dict(env)))
    except Exception as exc:
        raise RuntimeError(f"failed to evaluate directive condition "
                           f"{expr!r}: {exc}") from exc


def eval_expr(expr: str, env: dict) -> float:
    """Evaluate an opaque host-language numeric expression (e.g. the
    rate operand of a ``perfo`` clause) against the call environment."""
    try:
        return float(eval(_compile_expr(expr), {"__builtins__": {}},
                          dict(env)))
    except Exception as exc:
        raise RuntimeError(f"failed to evaluate directive expression "
                           f"{expr!r}: {exc}") from exc


def apply_override(path: str, override: str | None) -> str:
    """Apply a dynamic QoS path request to a statically-decided path.

    The single source of the override rule: a request applies only when
    the directive's own decision is the infer path.  A false ``if``
    clause or a predicated-collect outcome expresses application intent
    the runtime must not undo, whereas "this inference is not
    trustworthy right now — run accurate/collect instead" is exactly
    the adaptation QoS is for.  Used by both :func:`decide_path` and
    :meth:`repro.qos.QoSController.decide`.
    """
    if override is not None and path == ExecutionPath.INFER:
        return override
    return path


def decide_path(ml: MLDirective, env: dict, override: str | None = None) -> str:
    """Resolve which execution path this invocation takes.

    ``override`` is a dynamic :class:`ExecutionPath` request from a QoS
    policy (:mod:`repro.qos`), applied per :func:`apply_override`.
    """
    if ml.if_condition is not None and not eval_condition(ml.if_condition, env):
        return ExecutionPath.ACCURATE
    if ml.mode == "infer":
        if ml.condition is not None and not eval_condition(ml.condition, env):
            return ExecutionPath.ACCURATE
        path = ExecutionPath.INFER
    elif ml.mode == "collect":
        path = ExecutionPath.COLLECT
    else:
        # predicated: true -> inference, false -> data collection
        path = ExecutionPath.INFER if eval_condition(ml.condition, env) \
            else ExecutionPath.COLLECT
    return apply_override(path, override)
