"""Execution-path decision logic (§III-A-2, §IV-B).

HPAC generates two execution paths per annotated region — accurate and
approximate — and decides per invocation which to take.  HPAC-ML's
modes map onto that choice:

* ``infer``      → approximate path (surrogate inference), always;
* ``collect``    → accurate path *plus* data capture, always;
* ``predicated`` → evaluate the condition each invocation: true means
  inference, false means collection (paper §III-B);
* an additional ``if(...)`` clause gates approximation entirely: when
  false the accurate path runs with **no** collection — this is the
  primitive Fig. 9 uses to interleave accurate timesteps with surrogate
  steps.
"""

from __future__ import annotations

from ..directives.ast_nodes import MLDirective

__all__ = ["ExecutionPath", "decide_path", "eval_condition", "eval_expr"]


class ExecutionPath:
    ACCURATE = "accurate"
    COLLECT = "collect"
    INFER = "infer"


def eval_condition(expr: str, env: dict) -> bool:
    """Evaluate an opaque bool-expr against the region's bound arguments.

    The directive grammar treats these conditions as host-language
    expressions (in C they compile into the application); here the host
    language is Python, so ``eval`` against the call's argument binding
    is the faithful analogue.  Builtins are stripped: conditions are
    arithmetic/logical expressions over region arguments, not programs.
    """
    try:
        return bool(eval(expr, {"__builtins__": {}}, dict(env)))
    except Exception as exc:
        raise RuntimeError(f"failed to evaluate directive condition "
                           f"{expr!r}: {exc}") from exc


def eval_expr(expr: str, env: dict) -> float:
    """Evaluate an opaque host-language numeric expression (e.g. the
    rate operand of a ``perfo`` clause) against the call environment."""
    try:
        return float(eval(expr, {"__builtins__": {}}, dict(env)))
    except Exception as exc:
        raise RuntimeError(f"failed to evaluate directive expression "
                           f"{expr!r}: {exc}") from exc


def decide_path(ml: MLDirective, env: dict) -> str:
    """Resolve which execution path this invocation takes."""
    if ml.if_condition is not None and not eval_condition(ml.if_condition, env):
        return ExecutionPath.ACCURATE
    if ml.mode == "infer":
        if ml.condition is not None and not eval_condition(ml.condition, env):
            return ExecutionPath.ACCURATE
        return ExecutionPath.INFER
    if ml.mode == "collect":
        return ExecutionPath.COLLECT
    # predicated: true -> inference, false -> data collection
    return ExecutionPath.INFER if eval_condition(ml.condition, env) \
        else ExecutionPath.COLLECT
