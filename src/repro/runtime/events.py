"""Runtime event timing: the Fig. 6 breakdown instrumentation.

Every region invocation records where its time went: mapping
application memory **to tensors**, running the **inference engine**,
mapping tensors back **from tensors**, or executing the **accurate
path** (original kernel).  :class:`EventLog` aggregates per-phase
totals so the benchmark harness can print the proportions of Fig. 6.

The log is the observability layer's hot-path measurement point and is
built around a **bounded ring with exact aggregates**: raw
:class:`InvocationRecord` objects live in a ring of configurable
capacity (long-running servers no longer grow without bound), and
records evicted from the ring are folded into per-(region, path) phase
totals first — so ``total``/``count``/``breakdown`` stay exact over
the whole run even after raw records are dropped.

The ring is the observability layer's **single measurement**; every
other view derives from it lazily, so default-on instrumentation adds
(nearly) nothing to the invocation path:

* **metrics** — the log registers as a registry *collector*:
  per-(region, path) counters are computed from the exact aggregates
  at snapshot time, and latency-histogram observations are folded
  from the ring on the same scrape (cursor-tracked, each record
  observed exactly once; eviction folds first, so nothing is lost).
* **traces** — the log registers as a tracer *source*: the span trees
  (to_tensor → infer/accurate → shadow → policy → breaker) are
  materialized at read time from the phase timings and notes each
  record already carries.
* **stream** — the one genuinely eager fan-out: when a
  :class:`~repro.obs.stream.DecisionStream` is attached,
  :meth:`EventLog.finish` appends one persisted per-decision record
  (replay needs every decision, not a sampled view).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from enum import Enum

from .. import obs as _obs_module

__all__ = ["Phase", "InvocationRecord", "EventLog"]

#: Default ring capacity: large enough that benchmark-harness runs and
#: tests never see an eviction (their index-based windowing stays
#: valid), small enough to bound a long-running server's memory.
_DEFAULT_CAPACITY = 65536


class Phase(Enum):
    TO_TENSOR = "to_tensor"
    INFERENCE = "inference"
    FROM_TENSOR = "from_tensor"
    ACCURATE = "accurate"
    COLLECT_IO = "collect_io"
    #: Accurate-kernel time spent *validating* an infer-path invocation
    #: (QoS shadow validation) — kept apart from ACCURATE so serving
    #: summaries can report validation overhead separately.
    SHADOW = "shadow"


class InvocationRecord:
    """Timing of a single region invocation, seconds per phase.

    ``notes`` carries decision context for the trace/stream fan-out
    (policy reason, breaker verdict, shadow error, inputs digest, ...)
    and stays ``None`` until the first :meth:`note` — zero cost for
    code that only times phases.
    """

    __slots__ = ("path", "region", "times", "notes", "finished")

    def __init__(self, path: str, times: dict | None = None,
                 region: str | None = None):
        self.path = path
        self.region = region
        self.times: dict = times if times is not None else {}
        self.notes: dict | None = None
        self.finished = False

    def add(self, phase: Phase, seconds: float) -> None:
        self.times[phase] = self.times.get(phase, 0.0) + seconds

    def note(self, key: str, value) -> None:
        """Attach one piece of decision context (trace/stream fan-out)."""
        if self.notes is None:
            self.notes = {}
        self.notes[key] = value

    @property
    def total(self) -> float:
        return sum(self.times.values())

    def __repr__(self):
        return (f"InvocationRecord(path={self.path!r}, "
                f"region={self.region!r}, total={self.total:.3g})")


class _Agg:
    """Folded totals for one (region, path) after ring eviction."""

    __slots__ = ("count", "times")

    def __init__(self):
        self.count = 0
        self.times: dict = {}

    def fold(self, record: InvocationRecord) -> None:
        self.count += 1
        for phase, seconds in record.times.items():
            self.times[phase] = self.times.get(phase, 0.0) + seconds


class EventLog:
    """Accumulates invocation records and answers breakdown queries.

    Thread-safety model: serving backends give each region a single
    writer thread, so record mutation is single-writer; the ring trim
    and aggregate fold run under a lock, and cross-thread reads during
    a fold may transiently double-count at most one trim chunk —
    quiesced totals are always exact.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY,
                 stream=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.records: list[InvocationRecord] = []
        self.dropped = 0
        self.stream = stream
        self._agg: dict[tuple, _Agg] = {}
        self._hist_cache: dict = {}
        self._hist_cursor = 0    # absolute index of next unfolded record
        # RLock: _trim folds histograms while already holding it.
        self._trim_lock = threading.RLock()
        self._register_collector()

    def _register_collector(self) -> None:
        _obs_module.metrics().register_collector(self)
        _obs_module.tracer().register_source(self)

    # -- recording ------------------------------------------------------
    def new_record(self, path: str,
                   region: str | None = None) -> InvocationRecord:
        rec = InvocationRecord(path=path, region=region)
        self.records.append(rec)
        if len(self.records) > self.capacity:
            self._trim()
        return rec

    def _trim(self) -> None:
        """Fold the oldest quarter of the ring into the aggregates.

        Trimming in chunks keeps the amortized append cost O(1) (one
        front ``del`` per capacity/4 appends) while bounding live
        memory at ~1.25× capacity.
        """
        with self._trim_lock:
            excess = len(self.records) - self.capacity
            if excess <= 0:
                return
            chunk = max(excess, self.capacity // 4)
            # Evicted records leave the lazy-fold window, so observe
            # them into the latency histograms first (batched: the
            # whole chunk folds with warm caches, off the append path).
            self._fold_histograms()
            folded = self.records[:chunk]
            for rec in folded:
                key = (rec.region, rec.path)
                agg = self._agg.get(key)
                if agg is None:
                    agg = self._agg[key] = _Agg()
                agg.fold(rec)
            del self.records[:chunk]
            self.dropped += len(folded)

    @contextmanager
    def timed(self, record: InvocationRecord, phase: Phase):
        start = time.perf_counter()
        try:
            yield
        finally:
            record.add(phase, time.perf_counter() - start)

    def finish(self, record: InvocationRecord) -> InvocationRecord:
        """Mark one invocation complete (the views fold from it later).

        Idempotent (batched deliveries and fallback re-records can race
        a flush).  Metrics and traces derive from the ring at snapshot
        / read time, so the only per-invocation work here is the eager
        stream append when a :class:`~repro.obs.stream.DecisionStream`
        is attached and ``repro.obs`` is enabled.
        """
        if record.finished:
            return record
        record.finished = True
        # Module global: the cheapest gate on the per-invocation path.
        if self.stream is not None and _obs_module._enabled:
            notes = record.notes or {}
            self.stream.record(
                record.region or "region",
                digest=notes.get("digest", 0),
                path=record.path,
                reason=notes.get("policy"),
                breaker=notes.get("breaker"),
                shadow_error=notes.get("shadow"),
                spend=notes.get("spend"),
                precision=notes.get("precision"))
        return record

    def _fold_histograms(self) -> None:
        """Observe finished-but-unfolded records into latency histograms.

        Cursor-tracked in absolute (pre-eviction) indices so each
        record is observed exactly once across snapshots and trims.
        Folding stops at the first unfinished record — in-flight
        invocations fold on the next scrape, once their timings are
        complete.
        """
        with self._trim_lock:
            recs = self.records
            idx = max(0, self._hist_cursor - self.dropped)
            n = len(recs)
            while idx < n:
                rec = recs[idx]
                if not rec.finished:
                    break
                region = rec.region or "region"
                key = (region, rec.path)
                hist = self._hist_cache.get(key)
                if hist is None:
                    hist = self._hist_cache[key] = \
                        _obs_module.metrics().histogram(
                            "region_invocation_seconds",
                            region=region, path=rec.path)
                hist.observe(rec.total)
                idx += 1
            self._hist_cursor = self.dropped + idx

    # -- aggregation ----------------------------------------------------
    @property
    def seen(self) -> int:
        """Total records ever created (survives ring eviction)."""
        return self.dropped + len(self.records)

    def records_since(self, start: int) -> list:
        """Live records from absolute index ``start`` (pre-eviction
        numbering): callers capture ``log.seen`` before a window and
        slice with it after, robust to drops in between."""
        return self.records[max(0, start - self.dropped):]

    def trace_entries(self, limit: int | None = None) -> list:
        """Tracer-source hook: recent invocations as compact entries.

        Trace ids are the records' absolute invocation indices (stable
        across eviction, monotone per log).  Phase timings and notes go
        by reference — finished records no longer mutate, so the view
        is stable; unfinished tail records are skipped.
        """
        records = self.records[-limit:] if limit else self.records[:]
        base = self.seen - len(records)
        return [("inv", base + i + 1, rec.region or "region", rec.path,
                 rec.total, rec.times, rec.notes)
                for i, rec in enumerate(records) if rec.finished]

    def total(self, phase: Phase | None = None) -> float:
        if phase is None:
            return (sum(r.total for r in self.records)
                    + sum(sum(a.times.values()) for a in self._agg.values()))
        return (sum(r.times.get(phase, 0.0) for r in self.records)
                + sum(a.times.get(phase, 0.0) for a in self._agg.values()))

    def count(self, path: str | None = None) -> int:
        if path is None:
            return self.seen
        return (sum(1 for r in self.records if r.path == path)
                + sum(a.count for (_, p), a in self._agg.items()
                      if p == path))

    def breakdown(self) -> dict:
        """Fraction of inference-path time per phase (Fig. 6 rows)."""
        phases = (Phase.TO_TENSOR, Phase.INFERENCE, Phase.FROM_TENSOR)
        totals = {p: 0.0 for p in phases}
        for r in self.records:
            if r.path != "infer":
                continue
            for p in phases:
                totals[p] += r.times.get(p, 0.0)
        for (_, path), agg in self._agg.items():
            if path != "infer":
                continue
            for p in phases:
                totals[p] += agg.times.get(p, 0.0)
        grand = sum(totals.values())
        if grand <= 0:
            return {p.value: 0.0 for p in phases}
        return {p.value: totals[p] / grand for p in phases}

    def bridge_overhead(self) -> float:
        """Bridge time relative to engine time (the paper's 0.01%–8%)."""
        engine = self.total(Phase.INFERENCE)
        bridge = self.total(Phase.TO_TENSOR) + self.total(Phase.FROM_TENSOR)
        return bridge / engine if engine > 0 else float("inf")

    def collect(self) -> list:
        """Registry-collector hook: aggregate samples at snapshot time.

        Contributes per-(region, path) invocation counts and per-phase
        seconds computed from the exact totals (ring + folded), after
        folding any deferred latency-histogram observations — all of
        the "one measurement, two views" cost lands here, at scrape
        time, none on the invocation path.  Folding runs under the
        trim lock, which also serializes histogram writers across
        scrape and eviction.
        """
        self._fold_histograms()
        per_key: dict[tuple, dict] = {}
        for r in self.records:
            entry = per_key.setdefault((r.region, r.path),
                                       {"count": 0, "times": {}})
            entry["count"] += 1
            for phase, seconds in r.times.items():
                entry["times"][phase] = entry["times"].get(phase, 0.0) \
                    + seconds
        for key, agg in self._agg.items():
            entry = per_key.setdefault(key, {"count": 0, "times": {}})
            entry["count"] += agg.count
            for phase, seconds in agg.times.items():
                entry["times"][phase] = entry["times"].get(phase, 0.0) \
                    + seconds
        samples = []
        for (region, path), entry in sorted(
                per_key.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
            labels = {"region": region or "region", "path": path}
            samples.append({"type": "counter", "name": "region_invocations",
                            "labels": dict(labels),
                            "value": entry["count"]})
            for phase, seconds in entry["times"].items():
                samples.append({
                    "type": "counter", "name": "region_phase_seconds",
                    "labels": dict(labels, phase=phase.value),
                    "value": seconds})
        return samples

    def reset(self) -> None:
        self.records.clear()
        self._agg.clear()
        self._hist_cache.clear()
        self._hist_cursor = 0
        self.dropped = 0
