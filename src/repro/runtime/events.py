"""Runtime event timing: the Fig. 6 breakdown instrumentation.

Every region invocation records where its time went: mapping
application memory **to tensors**, running the **inference engine**,
mapping tensors back **from tensors**, or executing the **accurate
path** (original kernel).  :class:`EventLog` aggregates per-phase
totals so the benchmark harness can print the proportions of Fig. 6.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Phase", "InvocationRecord", "EventLog"]


class Phase(Enum):
    TO_TENSOR = "to_tensor"
    INFERENCE = "inference"
    FROM_TENSOR = "from_tensor"
    ACCURATE = "accurate"
    COLLECT_IO = "collect_io"
    #: Accurate-kernel time spent *validating* an infer-path invocation
    #: (QoS shadow validation) — kept apart from ACCURATE so serving
    #: summaries can report validation overhead separately.
    SHADOW = "shadow"


@dataclass
class InvocationRecord:
    """Timing of a single region invocation, seconds per phase."""

    path: str  # 'infer' | 'collect' | 'accurate'
    times: dict = field(default_factory=dict)

    def add(self, phase: Phase, seconds: float) -> None:
        self.times[phase] = self.times.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.times.values())


class EventLog:
    """Accumulates invocation records and answers breakdown queries."""

    def __init__(self):
        self.records: list[InvocationRecord] = []

    def new_record(self, path: str) -> InvocationRecord:
        rec = InvocationRecord(path=path)
        self.records.append(rec)
        return rec

    @contextmanager
    def timed(self, record: InvocationRecord, phase: Phase):
        start = time.perf_counter()
        try:
            yield
        finally:
            record.add(phase, time.perf_counter() - start)

    # -- aggregation ----------------------------------------------------
    def total(self, phase: Phase | None = None) -> float:
        if phase is None:
            return sum(r.total for r in self.records)
        return sum(r.times.get(phase, 0.0) for r in self.records)

    def count(self, path: str | None = None) -> int:
        if path is None:
            return len(self.records)
        return sum(1 for r in self.records if r.path == path)

    def breakdown(self) -> dict:
        """Fraction of inference-path time per phase (Fig. 6 rows)."""
        phases = (Phase.TO_TENSOR, Phase.INFERENCE, Phase.FROM_TENSOR)
        totals = {p: 0.0 for p in phases}
        for r in self.records:
            if r.path != "infer":
                continue
            for p in phases:
                totals[p] += r.times.get(p, 0.0)
        grand = sum(totals.values())
        if grand <= 0:
            return {p.value: 0.0 for p in phases}
        return {p.value: totals[p] / grand for p in phases}

    def bridge_overhead(self) -> float:
        """Bridge time relative to engine time (the paper's 0.01%–8%)."""
        engine = self.total(Phase.INFERENCE)
        bridge = self.total(Phase.TO_TENSOR) + self.total(Phase.FROM_TENSOR)
        return bridge / engine if engine > 0 else float("inf")

    def reset(self) -> None:
        self.records.clear()
