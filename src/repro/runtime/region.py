"""ApproxRegion: the outlined code region and its runtime entry point.

The HPAC-ML compiler outlines the annotated statement into a function
and replaces it with a runtime call (§IV-B).  Here the "outlined
function" is the decorated Python callable; :class:`ApproxRegion` is the
runtime entry point that, per invocation:

1. binds the call arguments to the directive's array names and integer
   variables (the role Clang codegen plays when it forwards pointers);
2. concretizes the ``to``/``from`` tensor maps over those arrays;
3. decides the execution path (:mod:`repro.runtime.control`);
4. runs inference (data bridge → engine → data bridge) or the accurate
   path (plus collection), timing each phase for the Fig. 6 breakdown.
"""

from __future__ import annotations

import inspect
import threading
import weakref

import numpy as np

from ..bridge import BridgeError, TensorFunctor, concretize, evaluate_ranges
from ..directives.ast_nodes import (FunctorDecl, MLDirective,
                                    TensorMapDirective)
from ..directives.parser import parse_program
from ..directives.semantic import SemanticAnalyzer, linearize
from ..resilience import faults as _faults
from ..resilience.primitives import NonFiniteOutput
from .batch import BatchedInferenceEngine
from .collect import DataCollector
from .control import ExecutionPath, decide_path
from .events import EventLog, Phase
from .infer import InferenceEngine

__all__ = ["ApproxRegion", "RegionConfig"]


class RegionConfig:
    """Mutable runtime knobs a region honors (override directive clauses).

    ``qos`` attaches a :class:`repro.qos.QoSController` (shadow
    validation + adaptive path policies); ``None`` — the default —
    keeps the invocation hot path byte-for-byte on the PR-1 fast path.
    ``auto_batch`` wraps the region's engine in a
    :class:`~repro.runtime.batch.BatchedInferenceEngine` (sharing its
    device and model cache) so deploy loops coalesce invocations
    without the caller constructing one; only sound for invocations
    independent of each other's outputs.
    ``row_subsample`` governs QoS shadow-validation row sub-sampling
    (the controller's ``shadow_rows`` knob): ``None`` derives
    eligibility from the tensor maps (leading slice ``0:N`` with a bare
    count symbol), ``False`` disables it, ``True`` asserts it.  Only
    sound for regions whose batch entries are computed independently —
    auto-regressive or cross-row-stateful kernels must pass ``False``.
    ``breaker`` attaches a
    :class:`~repro.resilience.CircuitBreaker`: infer-path invocations
    are then *guarded* — a surrogate that raises or emits non-finite
    outputs is caught before anything reaches application memory, the
    invocation is served by the accurate kernel, and repeated failures
    demote the region to the accurate path until probes recover it.
    ``precision`` selects the compiled plan's dtype: ``None`` /
    ``"float64"`` keep the historical double-precision path untouched;
    ``"float32"`` serves the narrowed plan unconditionally (models the
    narrower refuses fall back to float64 inside the engine); and
    ``"auto"`` puts the narrowing under a
    :class:`~repro.qos.PrecisionPolicy` governor — fp32 outputs are
    shadow-sampled against the fp64 plan, the divergence is charged to
    the QoS budget, and a region whose divergence EWMA breaches its
    threshold is demoted back to float64 with breaker-style hysteresis.
    """

    def __init__(self, model_path=None, db_path=None, engine=None,
                 event_log=None, qos=None, auto_batch: bool = False,
                 max_batch_rows: int = 256,
                 row_subsample: bool | None = None, breaker=None,
                 precision: str | None = None):
        if precision not in (None, "float64", "float32", "auto"):
            raise ValueError(f"precision must be None, 'float64', "
                             f"'float32' or 'auto': {precision!r}")
        self.model_path = model_path
        self.db_path = db_path
        self.engine = engine
        self.event_log = event_log
        self.qos = qos
        self.auto_batch = auto_batch
        self.max_batch_rows = max_batch_rows
        self.row_subsample = row_subsample
        self.breaker = breaker
        self.precision = precision


class _BoundMap:
    """One map target resolved against the analyzer's functor table."""

    __slots__ = ("direction", "functor", "array_name", "spec")

    def __init__(self, direction, functor, array_name, spec):
        self.direction = direction
        self.functor = functor
        self.array_name = array_name
        self.spec = spec


class _RowPlan:
    """How to re-invoke the accurate kernel on a row subset.

    Derived once from the tensor maps: the mapped arrays whose leading
    axis is the batch dimension, and the integer symbols that carry the
    row count (the bare-symbol ``stop`` of each map's leading slice,
    e.g. ``NOPT`` in ``options[0:NOPT]``).  Shadow validation slices
    those arrays to a seeded row subset, rewrites the count symbols,
    and calls the kernel on the reduced invocation.
    """

    __slots__ = ("count_symbols", "arrays")

    def __init__(self, count_symbols: tuple, arrays: tuple):
        self.count_symbols = count_symbols
        self.arrays = arrays


class ApproxRegion:
    """A callable wrapping an outlined region with HPAC-ML semantics."""

    def __init__(self, func, directives: str, name: str | None = None,
                 config: RegionConfig | None = None):
        self.func = func
        self.name = name or func.__name__
        self.config = config or RegionConfig()
        self.signature = inspect.signature(func)
        self.events = self.config.event_log or EventLog()
        self._engine = self.config.engine \
            if self.config.engine is not None else InferenceEngine()
        self._collector: DataCollector | None = None
        self._map_cache: dict = {}
        #: Lazily-created default governor for ``precision="auto"``
        #: regions whose controller carries no ``precision_policy``.
        self._precision_policy = None
        self._prec_counters: dict = {}        # lazy obs handles
        self._prec_hist = None

        nodes = parse_program(directives)
        analyzer = SemanticAnalyzer().analyze(nodes)
        analyzer.raise_if_errors()
        if analyzer.ml is None:
            raise ValueError(f"region {self.name!r}: annotation lacks an "
                             "ml directive")
        self.ml: MLDirective = analyzer.ml
        self.functors = {n: TensorFunctor.from_analyzed(a)
                         for n, a in analyzer.functors.items()}

        self._in_maps: list[_BoundMap] = []
        self._out_maps: list[_BoundMap] = []
        in_names = set(self.ml.in_arrays) | set(self.ml.inout_arrays)
        out_names = set(self.ml.out_arrays) | set(self.ml.inout_arrays)
        for directive in analyzer.maps:
            functor = self.functors[directive.functor]
            for target in directive.targets:
                bound = _BoundMap(directive.direction, functor,
                                  target.array, target.spec)
                if directive.direction == "to":
                    if target.array not in in_names:
                        raise ValueError(
                            f"region {self.name!r}: to-map targets "
                            f"{target.array!r} which is not an in/inout array")
                    self._in_maps.append(bound)
                else:
                    if target.array not in out_names:
                        raise ValueError(
                            f"region {self.name!r}: from-map targets "
                            f"{target.array!r} which is not an out/inout array")
                    self._out_maps.append(bound)
        if not self._in_maps:
            raise ValueError(f"region {self.name!r}: no to-direction tensor map")
        if not self._out_maps:
            raise ValueError(f"region {self.name!r}: no from-direction tensor map")

        # -- precompiled bind/concretize plan (built once, not per call)
        params = list(self.signature.parameters.values())
        self._param_names = tuple(p.name for p in params)
        self._param_defaults = {
            p.name: p.default for p in params
            if p.default is not inspect.Parameter.empty}
        self._param_index = {p.name: i for i, p in enumerate(params)}
        self._simple_signature = all(
            p.kind == inspect.Parameter.POSITIONAL_OR_KEYWORD for p in params)
        self._int_symbols = self._collect_int_symbols()
        self._row_plan = self._build_row_plan()
        # Serving backends drain regions from worker threads; flush and
        # close must therefore be idempotent and mutually exclusive.
        self._io_lock = threading.RLock()
        if self.config.auto_batch and \
                not isinstance(self._engine, BatchedInferenceEngine):
            self._engine = BatchedInferenceEngine(
                device=self._engine.device, cache=self._engine.cache,
                use_compiled=self._engine.use_compiled,
                max_batch_rows=self.config.max_batch_rows)
        self._batched_engine = isinstance(self._engine, BatchedInferenceEngine)

    def _collect_int_symbols(self) -> tuple:
        """Integer argument names the maps depend on, computed once.

        The per-call concretization cache is keyed only on these (plus
        array identity/shape), so unrelated arguments — mode flags,
        step counters driving ``if`` clauses — no longer churn the key.
        """
        names: set = set()
        for m in self._in_maps + self._out_maps:
            for sl in m.spec.slices:
                for expr in (sl.start, sl.stop, sl.step):
                    if expr is not None:
                        names.update(linearize(expr).symbols)
            analyzed = m.functor.analyzed
            sweep = set(analyzed.symbols)
            functor_names: set = set()
            for form in analyzed.feature_forms:
                functor_names.update(form.symbols)
            for rhs_slice in analyzed.rhs:
                for dim in rhs_slice.dims:
                    for form in (dim.start, dim.stop):
                        if form is not None:
                            functor_names.update(form.symbols)
            names |= functor_names - sweep
        return tuple(sorted(names))

    def _build_row_plan(self) -> _RowPlan | None:
        """Derive the shadow row-subsampling plan, or ``None``.

        Eligibility is structural: every in/out map's leading slice must
        be ``0:SYM`` (no step) with a bare count symbol, so batch row
        ``i`` of the gathered tensors corresponds to row ``i`` of each
        mapped array and the count can be rewritten for a sub-call.
        ``RegionConfig(row_subsample=False)`` opts out regardless (for
        kernels whose rows are not independent); ``True`` asserts
        eligibility and raises when the maps cannot support it.
        """
        if self.config.row_subsample is False:
            return None
        count_syms: set = set()
        arrays: set = set()
        eligible = True
        for m in self._in_maps + self._out_maps:
            lead = m.spec.slices[0] if m.spec.slices else None
            if lead is None or lead.is_point or lead.step is not None:
                eligible = False
                break
            try:
                start = linearize(lead.start)
                stop = linearize(lead.stop)
            except Exception:
                eligible = False
                break
            if not start.is_constant() or start.const != 0:
                eligible = False
                break
            if stop.is_constant() or len(stop.coeffs) != 1 or \
                    stop.coeffs[0][1] != 1 or stop.const != 0:
                eligible = False
                break
            count_syms.add(stop.symbols[0])
            arrays.add(m.array_name)
        if not eligible or not count_syms:
            if self.config.row_subsample:
                raise ValueError(
                    f"region {self.name!r}: row_subsample=True but the "
                    "tensor maps' leading slices are not of the "
                    "row-batched 0:SYM form")
            return None
        return _RowPlan(tuple(sorted(count_syms)), tuple(sorted(arrays)))

    # ------------------------------------------------------------------
    # Per-invocation plumbing
    # ------------------------------------------------------------------
    def _bind_env(self, args, kwargs) -> dict:
        # Fast path for plain positional/keyword calls: dict assembly
        # from the precomputed parameter table instead of
        # ``Signature.bind`` (which dominates small-region call cost).
        if self._simple_signature and len(args) <= len(self._param_names):
            env = dict(self._param_defaults)
            env.update(zip(self._param_names, args))
            if kwargs:
                n_positional = len(args)
                for key, value in kwargs.items():
                    idx = self._param_index.get(key)
                    if idx is None or idx < n_positional:
                        break          # unknown/duplicate: full bind below
                    env[key] = value
                else:
                    if len(env) == len(self._param_names):
                        return env
            elif len(env) == len(self._param_names):
                return env
        bound = self.signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return dict(bound.arguments)

    def _concretize(self, maps: list[_BoundMap], env: dict, writable: bool):
        """Concretize map targets, reusing descriptors across invocations.

        The paper's runtime allocates the slice descriptors once and
        re-fills them per call; iterative applications (MiniWeather's
        timestep fires thousands of times on the same buffers) would
        otherwise pay symbolic resolution and view construction on the
        hot path.  Cached entries are keyed on the exact array object
        (via weakref), its shape, and the integer environment, so any
        change re-concretizes.
        """
        # Only the integer variables the maps actually reference
        # (precomputed at construction) participate in the cache key.
        key_parts = []
        for name in self._int_symbols:
            value = env.get(name)
            key_parts.append(int(value)
                             if isinstance(value, (int, np.integer)) else None)
        env_key = tuple(key_parts)
        out = []
        for idx, m in enumerate(maps):
            array = env.get(m.array_name)
            if array is None:
                raise BridgeError(
                    f"region {self.name!r}: array {m.array_name!r} not "
                    "among call arguments")
            if not isinstance(array, np.ndarray):
                raise BridgeError(
                    f"region {self.name!r}: argument {m.array_name!r} is "
                    f"{type(array).__name__}, expected ndarray")
            key = (writable, m.array_name, idx, id(array), array.shape,
                   env_key)
            cached = self._map_cache.get(key)
            if cached is not None:
                ref, cm = cached
                if ref() is array:
                    # LRU touch: move the hit to the recent end so a
                    # storm of cold keys evicts other cold keys, not
                    # the hot working set.
                    self._map_cache.pop(key)
                    self._map_cache[key] = cached
                    out.append(cm)
                    continue
            ranges = evaluate_ranges(m.spec, env)
            cm = concretize(m.functor, array, ranges, env=env,
                            writable=writable)
            self._map_cache[key] = (weakref.ref(array), cm)
            while len(self._map_cache) > 64:
                # Bounded LRU eviction (dicts iterate in insertion
                # order, so the first key is the least recently used).
                self._map_cache.pop(next(iter(self._map_cache)))
            out.append(cm)
        return out

    def _gather_inputs(self, in_maps, record) -> np.ndarray:
        with self.events.timed(record, Phase.TO_TENSOR):
            if len(in_maps) == 1:
                return in_maps[0].gather(flatten_batch=True)
            parts = []
            batch = None
            for cm in in_maps:
                x = cm.gather(flatten_batch=True)
                x = x.reshape(len(x), -1)
                if batch is None:
                    batch = len(x)
                elif len(x) != batch:
                    raise BridgeError(
                        f"region {self.name!r}: input maps disagree on batch "
                        f"size ({batch} vs {len(x)})")
                parts.append(x)
            return np.concatenate(parts, axis=-1)

    def _gather_outputs(self, env: dict) -> np.ndarray:
        """Read output arrays through the from-maps (collection path)."""
        out_reads = self._concretize(self._out_maps, env, writable=False)
        if len(out_reads) == 1:
            return out_reads[0].gather(flatten_batch=True)
        parts = [cm.gather(flatten_batch=True).reshape(cm.entry_count, -1)
                 for cm in out_reads]
        return np.concatenate(parts, axis=-1)

    def _scatter_outputs(self, out_maps, tensor: np.ndarray, record) -> None:
        with self.events.timed(record, Phase.FROM_TENSOR):
            if len(out_maps) == 1:
                out_maps[0].scatter(tensor)
                return
            flat = tensor.reshape(len(tensor), -1)
            offset = 0
            for cm in out_maps:
                width = cm.functor.total_features
                cm.scatter(flat[:, offset:offset + width])
                offset += width
            if offset != flat.shape[-1]:
                raise BridgeError(
                    f"region {self.name!r}: model produced {flat.shape[-1]} "
                    f"features, out maps consume {offset}")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def model_path(self):
        return self.config.model_path or self.ml.model_path

    @property
    def db_path(self):
        return self.config.db_path or self.ml.db_path

    def _collector_for(self, path) -> DataCollector:
        if self._collector is None or str(self._collector.db_path) != str(path):
            if self._collector is not None:
                self._collector.close()
            self._collector = DataCollector(path)
        return self._collector

    def _effective_precision(self, allow_sample: bool = True):
        """Resolve this invocation's plan dtype.

        Returns ``(dtype, policy, sample)``: the dtype to hand the
        engine (``None`` = historical float64 path, untouched), the
        governing :class:`~repro.qos.PrecisionPolicy` when
        ``precision="auto"``, and whether this invocation must also
        run the float64 plan to measure fp32 divergence.  The governor
        is taken from the QoS controller (``precision_policy``) so
        regions sharing a controller share demotion state; a region
        without one gets a private default-threshold policy.
        """
        prec = self.config.precision
        if prec is None or prec == "float64":
            return None, None, False
        if prec == "float32":
            return np.float32, None, False
        qos = self.config.qos
        pol = getattr(qos, "precision_policy", None) \
            if qos is not None else None
        if pol is None:
            pol = self._precision_policy
            if pol is None:
                from ..qos.precision import PrecisionPolicy
                pol = self._precision_policy = PrecisionPolicy()
        if pol.precision_for(self.name) == "float64":
            return None, pol, False
        sample = allow_sample and pol.should_sample(self.name)
        return np.float32, pol, sample

    def _note_precision(self, record, dtype, divergence=None) -> None:
        """Record an invocation's precision routing (stream + obs)."""
        name = "float32" if dtype is not None else "float64"
        record.note("precision", name)
        from .. import obs
        if not obs.is_enabled():
            return
        counter = self._prec_counters.get(name)
        if counter is None:
            counter = self._prec_counters[name] = obs.metrics().counter(
                "precision_path", region=self.name, dtype=name)
        counter.inc()
        if divergence is not None:
            if self._prec_hist is None:
                self._prec_hist = obs.metrics().histogram(
                    "precision_divergence", region=self.name)
            self._prec_hist.observe(divergence)

    def _surrogate_outputs(self, inputs, record, guard, dtype=None):
        """One surrogate forward; guarded, non-finite outputs raise.

        The finite check runs *before* any scatter so a NaN/Inf-emitting
        model can never poison application memory — the guard converts
        it into a breaker failure served by the accurate kernel.
        """
        outputs = self._engine.infer(self.model_path, inputs, dtype=dtype)
        # The INFERENCE phase is the engine's device-equivalent time
        # (dense forward on the simulated accelerator); transfer costs
        # accumulate on the device clock.
        record.add(Phase.INFERENCE, self._engine.last_inference_seconds)
        if guard is not None and not np.all(np.isfinite(outputs)):
            raise NonFiniteOutput(
                f"region {self.name!r}: surrogate emitted non-finite "
                "outputs")
        return outputs

    def _note_stream_context(self, record, inputs) -> None:
        """Stream-only decision context (digest, budget spend).

        Costs a blake2b over the inputs, so it runs only when a
        :class:`~repro.obs.DecisionStream` is attached to the log.
        """
        if self.events.stream is None:
            return
        from ..obs import input_digest
        record.note("digest", input_digest(inputs))
        qos = self.config.qos
        if qos is not None:
            spend = qos.budget_spend(self.name)
            if spend is not None:
                record.note("spend", spend)

    def _run_infer(self, env, record, guard=None):
        in_maps = self._concretize(self._in_maps, env, writable=False)
        inputs = self._gather_inputs(in_maps, record)
        if self.model_path is None:
            raise RuntimeError(f"region {self.name!r}: inference "
                               "requested but no model path configured")
        self._note_stream_context(record, inputs)
        dtype, pol, sample = self._effective_precision()
        if self.config.precision is not None and not sample:
            self._note_precision(record, dtype)
        if self._batched_engine and guard is None and not sample:
            # Defer: the engine coalesces queued invocations into one
            # forward; the scatter-back lands at flush time.  Only
            # sound for invocations independent of each other's
            # outputs — see :mod:`repro.runtime.batch`.  A guarded
            # region skips the deferral: the breaker needs the forward's
            # outcome *now* to decide whether this invocation falls back
            # (``BatchedInferenceEngine.infer`` flushes the queue
            # first), trading batching for synchronous verification.
            # A precision-sampled invocation also runs immediately: the
            # fp32-vs-fp64 divergence must be observed (and charged)
            # before the governor's next decision.
            out_maps = self._concretize(self._out_maps, env, writable=True)

            def deliver(outputs, seconds, out_maps=out_maps, record=record):
                record.add(Phase.INFERENCE, seconds)
                self._scatter_outputs(out_maps, outputs, record)
                # Deferred invocations complete here: the trace/stream
                # fold must see the flush-time scatter cost.
                self.events.finish(record)

            self._engine.submit(self.model_path, inputs, deliver,
                                dtype=dtype)
            return None
        outputs = self._surrogate_outputs(inputs, record, guard,
                                          dtype=dtype)
        if sample:
            # Governed fp32: also run the float64 plan and fold the
            # observed divergence into the policy (trip/recover) and
            # the QoS budget ledger.  Timed as SHADOW — it is
            # validation overhead, not serving cost.
            import time as _time
            start = _time.perf_counter()
            reference = self._engine.infer(self.model_path, inputs)
            record.add(Phase.SHADOW, _time.perf_counter() - start)
            div = pol.observe(self.name, outputs, reference,
                              qos=self.config.qos)
            self._note_precision(record, dtype, divergence=div)
        out_maps = self._concretize(self._out_maps, env, writable=True)
        self._scatter_outputs(out_maps, outputs, record)
        self.events.finish(record)
        return None

    def _run_accurate(self, env, record, collect: bool, args, kwargs):
        inputs = None
        if collect:
            in_maps = self._concretize(self._in_maps, env, writable=False)
            inputs = self._gather_inputs(in_maps, record)
        with self.events.timed(record, Phase.ACCURATE):
            # ACCURATE fault seam: scripted kernel slowdowns ride inside
            # the timed phase, so they show up as real kernel time.
            fault = _faults.fire(_faults.ACCURATE)
            if fault is not None:
                _faults.apply_kernel_fault(fault)
            result = self.func(*args, **kwargs)
        if collect:
            outputs = self._gather_outputs(env)
            region_time = record.times.get(Phase.ACCURATE, 0.0)
            if self.db_path is None:
                raise RuntimeError(f"region {self.name!r}: collection "
                                   "requested but no db path configured")
            with self.events.timed(record, Phase.COLLECT_IO):
                self._collector_for(self.db_path).record(
                    self.name, inputs, outputs, region_time)
            self._note_stream_context(record, inputs)
        self.events.finish(record)
        return result

    def _shadow_subset(self, qos, decision, batch: int):
        """Pick the seeded row subset for a shadowed invocation, or None.

        Sub-sampling (the controller's ``shadow_rows`` knob) only
        applies when the surrogate result is the committed one — with
        ``commit="accurate"`` the full kernel output must land in
        application memory — and when this invocation's batch is the
        leading extent the row plan expects.
        """
        rows = getattr(qos, "shadow_rows", None)
        if (rows is None or self._row_plan is None or batch <= rows
                or decision.commit != "surrogate"):
            return None
        # Through the controller, not the validator: shared controllers
        # (QoSArbiter) serialize the RNG draw with their other hooks.
        return qos.row_subset(batch)

    def _run_shadow(self, qos, decision, env, record, args, kwargs,
                    guard=None):
        """Shadow-validated inference: run accurate AND surrogate paths.

        The accurate kernel executes first (timed as the SHADOW phase,
        so validation overhead stays separate from real accurate-path
        time), its outputs are read through the from-maps, then the
        surrogate runs on inputs gathered *before* the kernel mutated
        anything.  The measured error feeds the QoS rolling stats; the
        committed result is the surrogate's (deployment-identical) or
        the accurate one (``commit="accurate"``, e.g. policy probes and
        auto-regressive regions).

        When the controller sets ``shadow_rows`` and the region's maps
        are row-batched (:class:`_RowPlan`), the accurate kernel runs on
        a seeded row *subset* of the invocation: mapped arrays are
        sliced to the subset, count symbols rewritten, and the error is
        measured on those rows only — cutting validation cost by
        ``rows/batch`` while the committed state stays the pure
        surrogate output.
        """
        in_maps = self._concretize(self._in_maps, env, writable=False)
        inputs = self._gather_inputs(in_maps, record)
        # Gather may return a view of application memory (identity
        # functors); the accurate run below mutates out/inout arrays,
        # so snapshot before executing it.
        inputs = np.array(inputs)
        self._note_stream_context(record, inputs)
        batch = len(inputs)
        subset = self._shadow_subset(qos, decision, batch)
        if subset is not None and not all(
                env.get(s) == batch for s in self._row_plan.count_symbols):
            subset = None      # partial invocation: counts != batch rows
        if subset is None:
            with self.events.timed(record, Phase.SHADOW):
                result = self.func(*args, **kwargs)
            accurate = self._gather_outputs(env)
        else:
            sub_env = dict(env)
            for name in self._row_plan.arrays:
                sub_env[name] = np.ascontiguousarray(env[name][subset])
            for sym in self._row_plan.count_symbols:
                sub_env[sym] = int(len(subset))
            with self.events.timed(record, Phase.SHADOW):
                result = self.func(**sub_env)
            accurate = self._gather_outputs(sub_env)
        if self.model_path is None:
            raise RuntimeError(f"region {self.name!r}: shadow validation "
                               "requested but no model path configured")
        # Immediate inference (flushes any batched queue first): the
        # error observation must not be deferred past policy decisions.
        # The surrogate runs at the region's governed precision — the
        # QoS shadow error then measures what deployment actually
        # commits (fp32 divergence folds into the same estimate).
        dtype, _, _ = self._effective_precision(allow_sample=False)
        if self.config.precision is not None:
            self._note_precision(record, dtype)
        try:
            outputs = self._surrogate_outputs(inputs, record, guard,
                                              dtype=dtype)
        except Exception as exc:
            if guard is None:
                raise
            guard.record_failure(type(exc).__name__)
            self._note_fallback(type(exc).__name__, guard)
            record.note("breaker", type(exc).__name__)
            if subset is not None:
                # The kernel only ran on sliced *copies*; the real
                # output arrays are still unwritten — run it for real.
                with self.events.timed(record, Phase.ACCURATE):
                    result = self.func(*args, **kwargs)
            self.events.finish(record)
            return result
        if guard is not None:
            guard.record_success()
        predicted = outputs if subset is None else outputs[subset]
        err = qos.observe_shadow(self.name, predicted, accurate)
        record.note("shadow", err)
        if decision.commit == "surrogate":
            out_maps = self._concretize(self._out_maps, env, writable=True)
            self._scatter_outputs(out_maps, outputs, record)
        self.events.finish(record)
        return result

    def _note_fallback(self, reason: str, breaker) -> None:
        """Report one breaker-driven fallback to the QoS telemetry."""
        qos = self.config.qos
        telemetry = getattr(qos, "telemetry", None) if qos is not None \
            else None
        if telemetry is not None and hasattr(telemetry, "record_fallback"):
            telemetry.record_fallback(self.name, reason,
                                      state=breaker.state)

    def _guarded_infer(self, breaker, env, args, kwargs,
                       qos=None, decision=None):
        """An infer-path invocation under the circuit breaker.

        A denied invocation (breaker open, not this denial's probe turn)
        is served by the accurate kernel outright.  An allowed one runs
        the surrogate guarded — any exception, including the pre-scatter
        non-finite check, becomes a breaker failure and the invocation
        is re-served accurately.  Either way the caller gets a result:
        the region stays available through a broken surrogate.
        """
        if not breaker.allow():
            self._note_fallback("breaker_open", breaker)
            record = self.events.new_record(ExecutionPath.ACCURATE,
                                            region=self.name)
            record.note("breaker", "breaker_open")
            if decision is not None and decision.reason is not None:
                record.note("policy", decision.reason)
            return self._run_accurate(env, record, False, args, kwargs)
        record = self.events.new_record(ExecutionPath.INFER,
                                        region=self.name)
        record.note("breaker", breaker.state)
        if decision is not None and decision.reason is not None:
            record.note("policy", decision.reason)
        if decision is not None and decision.shadow:
            # Shadow runs the accurate kernel anyway; failure handling
            # (record_failure + keep the accurate result) is internal.
            return self._run_shadow(qos, decision, env, record,
                                    args, kwargs, guard=breaker)
        try:
            result = self._run_infer(env, record, guard=breaker)
        except Exception as exc:
            breaker.record_failure(type(exc).__name__)
            self._note_fallback(type(exc).__name__, breaker)
            # The abandoned infer attempt still folds into the trace,
            # carrying the failure as its breaker verdict.
            record.note("breaker", type(exc).__name__)
            self.events.finish(record)
            record = self.events.new_record(ExecutionPath.ACCURATE,
                                            region=self.name)
            record.note("breaker", breaker.state)
            return self._run_accurate(env, record, False, args, kwargs)
        breaker.record_success()
        return result

    # ------------------------------------------------------------------
    # Decided-path invocation (fleet serving splits decide from run)
    # ------------------------------------------------------------------
    def path_decision(self, env: dict):
        """Resolve this invocation's path without executing anything.

        Returns ``(path, decision)``: the directive-resolved (and, when
        a QoS controller is attached, policy-adjusted)
        :class:`ExecutionPath`, plus the controller's decision object
        (``None`` when unmonitored).  The QoS controller's ``decide``
        hook runs exactly once here — pass both values to
        :meth:`invoke_decided` (or the prepare/complete pair) so the
        policy is not consulted twice per invocation.
        """
        base = decide_path(self.ml, env)
        qos = self.config.qos
        if qos is None:
            return base, None
        decision = qos.decide(self.name, base)
        return decision.path, decision

    def fleet_eligible(self, path, decision) -> bool:
        """Whether this decided invocation may join a batched fleet call.

        Only plain surrogate inference batches: shadow validation runs
        the accurate kernel anyway, a circuit breaker needs the
        forward's individual outcome, and accurate/collect paths never
        touch the engine.
        """
        return (path == ExecutionPath.INFER
                and (decision is None or not decision.shadow)
                and self.config.breaker is None
                and self.model_path is not None)

    def prepare_infer(self, env: dict, decision=None):
        """Gather an infer-path invocation's inputs without running it.

        First half of the fleet-batched protocol: returns
        ``(inputs, record)`` with the input tensors composed and the
        invocation record opened.  The caller runs the forward (one
        stacked call covering many regions) and lands the outputs with
        :meth:`complete_infer`.
        """
        record = self.events.new_record(ExecutionPath.INFER,
                                        region=self.name)
        if decision is not None and decision.reason is not None:
            record.note("policy", decision.reason)
        in_maps = self._concretize(self._in_maps, env, writable=False)
        inputs = self._gather_inputs(in_maps, record)
        self._note_stream_context(record, inputs)
        return inputs, record

    def complete_infer(self, env: dict, record, outputs,
                       seconds: float = 0.0) -> None:
        """Scatter a batched forward's outputs back; finish the record.

        ``seconds`` is this member's share of the batched forward's
        device time (the fleet analogue of
        ``engine.last_inference_seconds``).
        """
        record.add(Phase.INFERENCE, seconds)
        out_maps = self._concretize(self._out_maps, env, writable=True)
        self._scatter_outputs(out_maps, outputs, record)
        self.events.finish(record)

    def invoke_decided(self, env: dict, path, decision, args, kwargs):
        """Run one invocation whose path was already decided.

        The single-model completion of :meth:`path_decision` — used
        directly by ``__call__`` and by fleet serving for members the
        batched call cannot absorb (accurate/collect routing, shadow
        validation, breaker-guarded regions).
        """
        if path == ExecutionPath.INFER:
            breaker = self.config.breaker
            if breaker is not None:
                return self._guarded_infer(breaker, env, args, kwargs,
                                           qos=self.config.qos,
                                           decision=decision)
            record = self.events.new_record(path, region=self.name)
            if decision is not None and decision.reason is not None:
                record.note("policy", decision.reason)
            if decision is not None and decision.shadow:
                return self._run_shadow(self.config.qos, decision, env,
                                        record, args, kwargs)
            return self._run_infer(env, record)
        record = self.events.new_record(path, region=self.name)
        if decision is not None and decision.reason is not None:
            record.note("policy", decision.reason)
        if path == ExecutionPath.COLLECT:
            return self._run_accurate(env, record, True, args, kwargs)
        return self._run_accurate(env, record, False, args, kwargs)

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        env = self._bind_env(args, kwargs)
        path, decision = self.path_decision(env)
        return self.invoke_decided(env, path, decision, args, kwargs)

    @property
    def engine(self):
        """The engine this region actually invokes (post ``auto_batch``)."""
        return self._engine

    def swap_engine(self, engine):
        """Replace the region's engine; returns the previous one.

        The adoption primitive for process backends: the old engine is
        flushed first (under the I/O lock, mutually exclusive with
        serving-thread flushes) so queued invocations deliver through
        the engine that queued them, then the new engine takes over.
        The caller is responsible for handing over an engine whose
        batching semantics match the region's (a batched region gets a
        batched engine) — ``auto_batch`` wrapping is not re-applied.
        """
        with self._io_lock:
            old = self._engine
            if self._batched_engine:
                old.flush()
            self._engine = engine
            self._batched_engine = isinstance(engine, BatchedInferenceEngine)
            return old

    def flush(self) -> None:
        """Deliver queued batched inferences; persist collection data.

        Idempotent and thread-safe: serving backends drain regions from
        worker threads while the application may flush from its own, so
        the engine/collector flush pair runs under the region's I/O
        lock and a second flush of an already-drained region is a
        no-op.
        """
        with self._io_lock:
            if self._batched_engine:
                self._engine.flush()
            if self._collector is not None:
                self._collector.flush()

    def close(self) -> None:
        """Drain queued work and release the collector.  Idempotent."""
        with self._io_lock:
            if self._batched_engine:
                self._engine.flush()
            if self._collector is not None:
                self._collector.close()
                self._collector = None

    def __repr__(self):
        return (f"ApproxRegion({self.name!r}, mode={self.ml.mode!r}, "
                f"in={len(self._in_maps)}, out={len(self._out_maps)})")
