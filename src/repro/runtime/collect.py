"""Data-collection backend (§IV-B).

During collection the runtime maps the region's inputs and outputs to
tensors through the data bridge and appends them — together with the
measured execution time of the wrapped code region — to a hierarchical
database.  The layout matches the paper: one group per annotated
region, holding ``inputs``, ``outputs`` and ``region_time`` datasets
whose outer dimension is the invocation index, "directly readable by
the built-in PyTorch data loaders" (here: :mod:`repro.nn.training`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..h5 import File

__all__ = ["DataCollector", "load_training_data"]


class DataCollector:
    """Appends (inputs, outputs, region_time) triples per region group."""

    def __init__(self, db_path):
        self.db_path = Path(db_path)
        self._file: File | None = None

    def _open(self) -> File:
        if self._file is None:
            mode = "a" if self.db_path.exists() else "w"
            self._file = File(self.db_path, mode)
        return self._file

    def record(self, region_name: str, inputs: np.ndarray,
               outputs: np.ndarray, region_time: float) -> None:
        """Append one invocation's data.

        ``inputs``/``outputs`` are batch-major: shape ``(B, *features)``.
        Each invocation contributes its batch entries; ``region_time``
        is replicated per entry so sample-level runtime statistics
        remain available to the ML engineer, as §IV-B prescribes.
        """
        fh = self._open()
        group = fh.require_group(region_name)
        ds_in = group.require_dataset("inputs", inputs.shape[1:], inputs.dtype)
        ds_out = group.require_dataset("outputs", outputs.shape[1:], outputs.dtype)
        ds_t = group.require_dataset("region_time", (), np.float64)
        if len(inputs) != len(outputs):
            raise ValueError(
                f"inputs ({len(inputs)}) and outputs ({len(outputs)}) "
                "disagree on batch size")
        ds_in.append(inputs)
        ds_out.append(outputs)
        ds_t.append(np.full(len(inputs), region_time, dtype=np.float64))
        group.attrs["invocations"] = group.attrs.get("invocations", 0) + 1

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def bytes_written(self) -> int:
        self.flush()
        return self.db_path.stat().st_size if self.db_path.exists() else 0


def load_training_data(db_path, region_name: str):
    """Read a region's collected data: ``(inputs, outputs, region_time)``."""
    with File(db_path, "r") as fh:
        group = fh[region_name]
        return (group["inputs"].read().copy(),
                group["outputs"].read().copy(),
                group["region_time"].read().copy())
