"""Data-collection backend (§IV-B).

During collection the runtime maps the region's inputs and outputs to
tensors through the data bridge and appends them — together with the
measured execution time of the wrapped code region — to a hierarchical
database.  The layout matches the paper: one group per annotated
region, holding ``inputs``, ``outputs`` and ``region_time`` datasets
whose outer dimension is the invocation index, "directly readable by
the built-in PyTorch data loaders" (here: :mod:`repro.nn.training`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..h5 import File

__all__ = ["DataCollector", "load_training_data"]


class _RegionBuffer:
    """Pending chunks for one region, concatenated once at flush.

    Collection rides the application's hot loop, so ``record`` must be
    cheap: it validates and snapshots, and all database work (group
    lookups, dataset appends) happens once per flush rather than once
    per invocation — keeping the Fig. 6 COLLECT_IO share honest.
    """

    __slots__ = ("inner_in", "inner_out", "inputs", "outputs", "times",
                 "invocations")

    def __init__(self, inner_in: tuple, inner_out: tuple):
        self.inner_in = inner_in
        self.inner_out = inner_out
        self.inputs: list = []
        self.outputs: list = []
        self.times: list = []
        self.invocations = 0

    def clear(self) -> None:
        self.inputs.clear()
        self.outputs.clear()
        self.times.clear()
        self.invocations = 0


class DataCollector:
    """Appends (inputs, outputs, region_time) triples per region group."""

    def __init__(self, db_path):
        self.db_path = Path(db_path)
        self._file: File | None = None
        self._buffers: dict[str, _RegionBuffer] = {}

    def _open(self) -> File:
        if self._file is None:
            mode = "a" if self.db_path.exists() else "w"
            self._file = File(self.db_path, mode)
        return self._file

    def record(self, region_name: str, inputs: np.ndarray,
               outputs: np.ndarray, region_time: float) -> None:
        """Buffer one invocation's data (persisted at :meth:`flush`).

        ``inputs``/``outputs`` are batch-major: shape ``(B, *features)``.
        Each invocation contributes its batch entries; ``region_time``
        is replicated per entry so sample-level runtime statistics
        remain available to the ML engineer, as §IV-B prescribes.
        """
        inputs = np.asarray(inputs)
        outputs = np.asarray(outputs)
        if len(inputs) != len(outputs):
            raise ValueError(
                f"inputs ({len(inputs)}) and outputs ({len(outputs)}) "
                "disagree on batch size")
        buf = self._buffers.get(region_name)
        if buf is None:
            # Validate against a pre-existing database now, so a shape
            # mismatch fails at the offending record() call (as the
            # unbuffered collector did) rather than at flush time.
            if self._file is not None or self.db_path.exists():
                fh = self._open()
                if region_name in fh:
                    group = fh[region_name]
                    for ds_name, inner in (("inputs", inputs.shape[1:]),
                                           ("outputs", outputs.shape[1:])):
                        if ds_name in group and \
                                group[ds_name].shape[1:] != inner:
                            raise ValueError(
                                f"record shape {inner} does not match "
                                f"existing dataset inner shape "
                                f"{group[ds_name].shape[1:]} for "
                                f"{region_name}/{ds_name}")
            buf = self._buffers[region_name] = _RegionBuffer(
                inputs.shape[1:], outputs.shape[1:])
        if inputs.shape[1:] != buf.inner_in or \
                outputs.shape[1:] != buf.inner_out:
            raise ValueError(
                f"append shape {inputs.shape[1:]}/{outputs.shape[1:]} does "
                f"not match dataset inner shape {buf.inner_in}/{buf.inner_out}")
        buf.inputs.append(np.array(inputs))       # snapshot: callers reuse
        buf.outputs.append(np.array(outputs))
        buf.times.append(np.full(len(inputs), region_time, dtype=np.float64))
        buf.invocations += 1

    def flush(self) -> None:
        """Concatenate buffered chunks into the database and sync it."""
        for region_name, buf in self._buffers.items():
            if not buf.invocations:
                continue
            fh = self._open()
            group = fh.require_group(region_name)
            xs = buf.inputs[0] if len(buf.inputs) == 1 \
                else np.concatenate(buf.inputs, axis=0)
            ys = buf.outputs[0] if len(buf.outputs) == 1 \
                else np.concatenate(buf.outputs, axis=0)
            ts = buf.times[0] if len(buf.times) == 1 \
                else np.concatenate(buf.times, axis=0)
            group.require_dataset("inputs", xs.shape[1:], xs.dtype).append(xs)
            group.require_dataset("outputs", ys.shape[1:], ys.dtype).append(ys)
            group.require_dataset("region_time", (), np.float64).append(ts)
            group.attrs["invocations"] = (group.attrs.get("invocations", 0)
                                          + buf.invocations)
            buf.clear()
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        try:
            self.flush()
        finally:
            if self._file is not None:
                self._file.close()
                self._file = None

    @property
    def bytes_written(self) -> int:
        self.flush()
        return self.db_path.stat().st_size if self.db_path.exists() else 0


def load_training_data(db_path, region_name: str):
    """Read a region's collected data: ``(inputs, outputs, region_time)``.

    The triple is trimmed to its common row count: after an unclean
    shutdown mid-append the h5 layer recovers a truncated final dataset
    as its intact row prefix (with a warning), which can leave the
    three datasets one partial record apart.
    """
    with File(db_path, "r") as fh:
        group = fh[region_name]
        inputs = group["inputs"].read().copy()
        outputs = group["outputs"].read().copy()
        times = group["region_time"].read().copy()
    rows = min(len(inputs), len(outputs), len(times))
    return inputs[:rows], outputs[:rows], times[:rows]
