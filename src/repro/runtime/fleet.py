"""Fleet inference: one batched forward answering many tenants.

Multi-tenant serving runs one small surrogate per region; when several
regions deploy the *same architecture* (same plan fingerprint, different
weights), running them one at a time leaves the device doing many tiny
GEMMs.  A :class:`FleetInferenceEngine` groups its members by
:func:`~repro.nn.plan.fleet_fingerprint` and executes each group through
one :class:`~repro.nn.plan.FleetPlan` — a single ``(K, B, in) @
(K, in, out)`` stacked forward whose row ``k`` is bitwise-equal to
member ``k``'s own compiled forward.

Membership is dynamic: hot-swapping one member's model file updates one
slab row (no other member disturbed, no plan rebuild), and the engine
exposes the same ``cache``/``warmup`` surface as
:class:`~repro.runtime.infer.InferenceEngine`, so
:func:`~repro.serving.retrain.hot_swap_model` can re-warm a fleet the
way it re-warms a single-model engine.  Per-member identity survives
batching: each member keeps its own invocation counter and a BLAKE2b
weight digest (memo identity) derived from its slab row alone.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..device import Device
from ..nn.plan import FleetPlan, UnsupportedLayerError, fleet_fingerprint
from .infer import ModelCache

__all__ = ["FleetMember", "FleetInferenceEngine"]


class FleetMember:
    """One tenant of a fleet: a named model path plus its serving state."""

    __slots__ = ("name", "model_path", "model", "group", "row",
                 "invocations")

    def __init__(self, name: str, model_path):
        self.name = name
        self.model_path = str(Path(model_path))
        self.model = None
        self.group: _FleetGroup | None = None
        self.row = -1
        self.invocations = 0

    def __repr__(self):
        return (f"FleetMember({self.name!r}, row={self.row}, "
                f"invocations={self.invocations})")


class _FleetGroup:
    """K same-fingerprint members sharing one :class:`FleetPlan`."""

    __slots__ = ("fingerprint", "plan", "members")

    def __init__(self, fingerprint: str, plan: FleetPlan, members: list):
        self.fingerprint = fingerprint
        self.plan = plan
        self.members = members


class FleetInferenceEngine:
    """Answers per-member ``infer`` calls from stacked fleet forwards."""

    def __init__(self, device: Device | None = None,
                 cache: ModelCache | None = None, dtype=np.float64):
        self.device = device if device is not None else Device()
        self.cache = cache if cache is not None else ModelCache()
        #: Slab dtype for every fleet this engine compiles.  float32
        #: halves slab memory traffic on the bandwidth-bound K-row
        #: GEMMs; member models (and hot-swap sources) stay float64 —
        #: the cast happens on the slab row copies.
        self.dtype = np.dtype(dtype)
        self._members: dict[str, FleetMember] = {}
        self._groups: list[_FleetGroup] = []
        #: Member names whose models have no fleet lowering (or whose
        #: group fell below ``min_members``) after the last build; the
        #: server keeps these on the single-model path.
        self.ungrouped: list = []
        self._built = False
        #: Timing of the most recent batched call, mirroring
        #: :attr:`InferenceEngine.last_timing` plus the member count the
        #: forward served (callers attribute per-member cost as
        #: ``forward_device / members_served``).
        self.last_timing: dict = {}

    # -- membership --------------------------------------------------------
    def add_member(self, name: str, model_path) -> FleetMember:
        if name in self._members:
            raise ValueError(f"fleet member {name!r} already added")
        member = FleetMember(name, model_path)
        self._members[name] = member
        self._built = False
        return member

    def remove_member(self, name: str) -> None:
        del self._members[name]
        self._built = False

    @property
    def names(self) -> tuple:
        return tuple(self._members)

    def member(self, name: str) -> FleetMember:
        return self._members[name]

    def fleet_size(self, name: str) -> int:
        """Members in ``name``'s fleet (0 when ungrouped)."""
        member = self._members[name]
        return len(member.group.members) if member.group is not None else 0

    def member_digest(self, name: str) -> str:
        """BLAKE2b digest of the member's slab row (its memo identity)."""
        member = self._members[name]
        if member.group is None:
            raise KeyError(f"fleet member {name!r} is ungrouped")
        return member.group.plan.member_digest(member.row)

    # -- grouping ----------------------------------------------------------
    def build(self, min_members: int = 1) -> dict:
        """Group members by fleet fingerprint and compile one
        :class:`FleetPlan` per group.

        Groups smaller than ``min_members`` — and members whose model
        has no fleet lowering — are left ungrouped (their names land in
        :attr:`ungrouped`).  Returns ``{fingerprint: [names]}`` for the
        fleets formed.  Idempotent: rebuilding regroups from scratch.
        """
        by_fp: dict[str, list] = {}
        self.ungrouped = []
        for member in self._members.values():
            member.group = None
            member.row = -1
            member.model = self.cache.get(member.model_path)
            try:
                fp = fleet_fingerprint(member.model, extra=("infer",))
            except Exception:
                self.ungrouped.append(member.name)
                continue
            by_fp.setdefault(fp, []).append(member)
        self._groups = []
        formed = {}
        for fp, members in by_fp.items():
            if len(members) < min_members:
                self.ungrouped.extend(m.name for m in members)
                continue
            try:
                plan = FleetPlan([m.model for m in members],
                                 dtype=self.dtype)
            except UnsupportedLayerError:
                self.ungrouped.extend(m.name for m in members)
                continue
            group = _FleetGroup(fp, plan, members)
            for row, member in enumerate(members):
                member.group = group
                member.row = row
            self._groups.append(group)
            formed[fp] = [m.name for m in members]
        self._built = True
        return formed

    def groups(self) -> dict:
        """``{fingerprint: [member names]}`` for the current fleets."""
        return {g.fingerprint: [m.name for m in g.members]
                for g in self._groups}

    # -- hot-swap ----------------------------------------------------------
    def _sync_member(self, member: FleetMember) -> None:
        """Fold a swapped/retrained model into the member's slab row."""
        group = member.group
        model = self.cache.get(member.model_path)
        if model is not member.model:
            # Cache invalidation reloaded the file (hot swap): rebind
            # the member's step slots and copy exactly one slab row.
            group.plan.replace_member(member.row, model)
            member.model = model
        elif group.plan.member_stale(member.row):
            # In-place rebind (load_state_dict): same model object,
            # fresh parameter arrays.
            group.plan.refresh_member(member.row)

    def warmup(self, model_path) -> None:
        """Re-sync every member deployed from ``model_path``.

        The :func:`~repro.serving.retrain.hot_swap_model` re-warm hook:
        after the swap invalidates :attr:`cache`, this folds the new
        weights into the affected slab rows.
        """
        key = str(Path(model_path))
        for member in self._members.values():
            if member.model_path == key and member.group is not None:
                self._sync_member(member)

    def sync(self) -> None:
        """Re-sync every grouped member (swap + staleness sweep)."""
        for member in self._members.values():
            if member.group is not None:
                self._sync_member(member)

    # -- inference ---------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            self.build()

    def infer_many(self, calls: dict) -> dict:
        """Answer ``{name: inputs}`` with ``{name: outputs}``.

        Calls belonging to one fleet execute as a single stacked
        forward: member inputs are packed into a ``(K, B_max, F)``
        batch (shorter batches zero-padded — inference steps are
        row-independent, so padding rows never touch real ones) and
        each member's output rows are sliced back out.  Members of
        different fleets batch independently; ungrouped names raise.
        """
        self._require_built()
        by_group: dict[int, list] = {}
        for name in calls:
            member = self._members[name]
            if member.group is None:
                raise KeyError(f"fleet member {name!r} is ungrouped — "
                               "serve it on the single-model path")
            by_group.setdefault(id(member.group), []).append(member)

        out: dict = {}
        total_wall = 0.0
        sim_before = self.device.clock.simulated
        served = 0
        for members in by_group.values():
            group = members[0].group
            for member in members:
                self._sync_member(member)
            xs = [np.asarray(calls[m.name], dtype=group.plan.dtype)
                  for m in members]
            b_max = max(len(x) for x in xs)
            stacked = np.zeros((group.plan.k, b_max) + xs[0].shape[1:],
                               dtype=group.plan.dtype)
            for member, x in zip(members, xs):
                stacked[member.row, :len(x)] = x
            dev_in = self.device.to_device(stacked)
            start = time.perf_counter()
            result = group.plan(dev_in.array)
            total_wall += time.perf_counter() - start
            self.device.kernel_launches += 1
            from ..device.memory import DeviceBuffer, MemorySpace
            host = self.device.to_host(
                DeviceBuffer(result, MemorySpace.DEVICE))
            for member, x in zip(members, xs):
                out[member.name] = np.array(host[member.row, :len(x)])
                member.invocations += 1
            served += len(members)
        self.last_timing = {
            "forward_wall": total_wall,
            "forward_device": self.device.dense_time(total_wall),
            "transfer_sim": self.device.clock.simulated - sim_before,
            "compiled": True,
            "members_served": served,
            "dtype": self.dtype.name,
        }
        return out

    def infer(self, name: str, inputs: np.ndarray) -> np.ndarray:
        """One member's answer (still runs its fleet's stacked forward)."""
        return self.infer_many({name: inputs})[name]

    @property
    def last_inference_seconds(self) -> float:
        """Device-equivalent time of the last batched forward."""
        return self.last_timing.get("forward_device", 0.0)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-fleet membership, invocation counters, and weight digests."""
        self._require_built()
        groups = []
        for group in self._groups:
            groups.append({
                "fingerprint": group.fingerprint,
                "members": {
                    m.name: {
                        "row": m.row,
                        "invocations": m.invocations,
                        "digest": group.plan.member_digest(m.row),
                    } for m in group.members
                },
            })
        return {"groups": groups, "ungrouped": list(self.ungrouped)}

    def __repr__(self):
        sizes = [len(g.members) for g in self._groups]
        return (f"FleetInferenceEngine(members={len(self._members)}, "
                f"fleets={sizes})")
