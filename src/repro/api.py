"""``repro.api`` — the HPAC-ML programming-model surface for Python.

The paper's programming model annotates code regions with ``#pragma``
directives (Fig. 2).  In this reproduction the host language is Python,
so the annotation attaches to a function via the :func:`approx_ml`
decorator, carrying the *identical* directive text::

    from repro.api import approx_ml

    @approx_ml('''
        #pragma approx tensor functor(ifnctr: \\
            [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
        #pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
        #pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
        #pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
        #pragma approx ml(predicated:use_model) in(t) out(tnew) \\
            db("data.rh5") model("model.rnm")
    ''')
    def do_timestep(t, tnew, N, M, use_model=False):
        ...original computation writing tnew...

Array names in ``tensor map`` targets and integer variables in concrete
slice specifiers (``N``, ``M``) resolve against the function's bound
arguments per invocation — the same binding Clang codegen performs when
it forwards pointers to the HPAC runtime.  The decorated object is an
:class:`repro.runtime.ApproxRegion`: calling it executes the accurate
path, collects data, or runs surrogate inference per the ``ml`` clause.
"""

from __future__ import annotations

from .runtime.events import EventLog
from .runtime.infer import InferenceEngine
from .runtime.region import ApproxRegion, RegionConfig

__all__ = ["approx_ml", "RegionConfig", "default_event_log"]

#: Process-wide event log used when a region is not given its own.
default_event_log = EventLog()


def approx_ml(directives: str, *, name: str | None = None,
              model_path=None, db_path=None,
              engine: InferenceEngine | None = None,
              event_log: EventLog | None = None,
              qos=None, auto_batch: bool = False,
              max_batch_rows: int = 256,
              row_subsample: bool | None = None,
              precision: str | None = None):
    """Annotate a function as an HPAC-ML approximable code region.

    Parameters
    ----------
    directives:
        One or more ``#pragma approx`` directives (functor/map/ml), as
        in the paper's listings.  Backslash continuations are honored.
    name:
        Region name; defaults to the function name.  Becomes the group
        name inside the collection database.
    model_path, db_path:
        Runtime overrides for the ``model(...)``/``db(...)`` clauses —
        the knob the paper exposes so retargeting a model does not
        require "recompilation".
    engine:
        Custom :class:`InferenceEngine` (device/cache injection).
    event_log:
        Shared :class:`EventLog` for the Fig. 6 timing breakdown.
    qos:
        Optional :class:`repro.qos.QoSController`: shadow validation,
        drift detection, and adaptive path policies.  ``None`` keeps
        the invocation hot path untouched.
    auto_batch, max_batch_rows:
        When ``auto_batch`` is true the region wraps its engine in a
        :class:`repro.runtime.BatchedInferenceEngine` so deploy loops
        coalesce invocations (only for invocations independent of each
        other's outputs; call ``region.flush()`` before reading).
    row_subsample:
        Whether QoS shadow validation may run the accurate kernel on a
        row subset of a shadowed invocation (the controller's
        ``shadow_rows`` knob).  ``None`` derives eligibility from the
        tensor maps; pass ``False`` for kernels whose batch rows are
        not computed independently (auto-regressive or cross-row
        stateful regions).
    precision:
        Compiled-plan dtype: ``None``/``"float64"`` keep the historical
        double-precision path, ``"float32"`` serves narrowed plans
        unconditionally, ``"auto"`` narrows under a
        :class:`repro.qos.PrecisionPolicy` governor (divergence
        shadow-sampled against the fp64 plan, charged to the QoS
        budget, demoted back on breach).

    Serving many regions at once — shared scheduling, one global error
    budget, online retrain/hot-swap — is :mod:`repro.serving`
    (:class:`~repro.serving.RegionServer`).
    """

    def decorate(func) -> ApproxRegion:
        config = RegionConfig(model_path=model_path, db_path=db_path,
                              engine=engine,
                              event_log=event_log or default_event_log,
                              qos=qos, auto_batch=auto_batch,
                              max_batch_rows=max_batch_rows,
                              row_subsample=row_subsample,
                              precision=precision)
        return ApproxRegion(func, directives, name=name, config=config)

    return decorate
