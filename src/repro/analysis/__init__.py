"""``repro.analysis`` — QoI metrics, LoC accounting, report rendering."""

from .metrics import (relative_error, error_cdf, cdf_quantile,
                      geometric_mean, summarize_errors)
from .loc import count_directives, annotation_loc, app_loc, table2_rows
from .report import render_table, render_series, render_kv

__all__ = ["relative_error", "error_cdf", "cdf_quantile", "geometric_mean",
           "summarize_errors", "count_directives", "annotation_loc",
           "app_loc", "table2_rows", "render_table", "render_series",
           "render_kv"]
