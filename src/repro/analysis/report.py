"""Plain-text table/figure renderers for the benchmark harness.

Every bench prints the rows/series the corresponding paper table or
figure reports, via these helpers, so ``pytest benchmarks/ -s`` doubles
as the experiment log that EXPERIMENTS.md records.
"""

from __future__ import annotations

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(rows: list[dict], columns: list[str] | None = None,
                 title: str | None = None, float_fmt: str = "{:.4g}") -> str:
    """Fixed-width text table from a list of row dicts."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = columns or list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs, ys, x_label: str = "x",
                  y_label: str = "y", float_fmt: str = "{:.5g}") -> str:
    """A figure series as aligned (x, y) pairs."""
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in zip(xs, ys):
        fx = float_fmt.format(x) if isinstance(x, float) else str(x)
        fy = float_fmt.format(y) if isinstance(y, float) else str(y)
        lines.append(f"  {fx:>12}  {fy}")
    return "\n".join(lines)


def render_kv(title: str, pairs: dict, float_fmt: str = "{:.5g}") -> str:
    lines = [title]
    for k, v in pairs.items():
        fv = float_fmt.format(v) if isinstance(v, float) else str(v)
        lines.append(f"  {k}: {fv}")
    return "\n".join(lines)
