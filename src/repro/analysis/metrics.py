"""QoI analysis metrics beyond plain RMSE/MAPE.

Provides the relative-error CDF of Fig. 9f and summary statistics the
experiment harness reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relative_error", "error_cdf", "cdf_quantile", "geometric_mean",
           "summarize_errors"]


def relative_error(pred: np.ndarray, ref: np.ndarray,
                   eps: float = 1e-12) -> np.ndarray:
    """Elementwise ``|pred - ref| / max(|ref|, eps)``."""
    pred = np.asarray(pred, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if pred.shape != ref.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {ref.shape}")
    return np.abs(pred - ref) / np.maximum(np.abs(ref), eps)


def error_cdf(errors: np.ndarray, n_points: int = 200):
    """Empirical CDF of an error sample: returns (values, fractions)."""
    flat = np.sort(np.asarray(errors, dtype=np.float64).ravel())
    if flat.size == 0:
        raise ValueError("empty error sample")
    idx = np.linspace(0, flat.size - 1, min(n_points, flat.size)).astype(int)
    values = flat[idx]
    fractions = (idx + 1) / flat.size
    return values, fractions


def cdf_quantile(errors: np.ndarray, fraction: float) -> float:
    """Error value below which ``fraction`` of locations fall.

    This is how the paper states Fig. 9f: "80% of domain locations have
    relative error less than 0.09".
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    flat = np.sort(np.asarray(errors, dtype=np.float64).ravel())
    idx = min(int(np.ceil(fraction * flat.size)) - 1, flat.size - 1)
    return float(flat[max(idx, 0)])


def geometric_mean(values) -> float:
    """Geometric mean (the paper's speedup aggregate, §V-D)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def summarize_errors(pred: np.ndarray, ref: np.ndarray) -> dict:
    """RMSE plus relative-error quantiles in one record."""
    rel = relative_error(pred, ref)
    diff = np.asarray(pred, dtype=np.float64) - np.asarray(ref, np.float64)
    return {
        "rmse": float(np.sqrt(np.mean(diff ** 2))),
        "max_abs": float(np.abs(diff).max()),
        "rel_p50": cdf_quantile(rel, 0.5),
        "rel_p80": cdf_quantile(rel, 0.8),
        "rel_p90": cdf_quantile(rel, 0.9),
    }
