"""Table II accounting: directive counts and annotation LoC per app.

The paper measures programming-model complexity as the number of
HPAC-ML directives and the lines of code they add (after clang-format).
Here the annotation is the directive string each app module declares,
so the accounting parses those strings directly — the same directives a
C port would carry.
"""

from __future__ import annotations

import inspect

from ..directives.parser import parse_program

__all__ = ["count_directives", "annotation_loc", "app_loc", "table2_rows"]


def count_directives(directives_source: str) -> int:
    """Number of ``#pragma approx`` directives in an annotation block."""
    return len(parse_program(directives_source))


def annotation_loc(directives_source: str) -> int:
    """Physical lines the annotation adds (continuations count, blank
    lines don't) — matching the paper's clang-format-normalized LoC."""
    return sum(1 for line in directives_source.splitlines() if line.strip())


def app_loc(module) -> int:
    """Total source lines of an app package (kernel + integration)."""
    total = 0
    seen = set()
    for mod in _package_modules(module):
        try:
            src = inspect.getsource(mod)
        except (OSError, TypeError):
            continue
        if id(mod) in seen:
            continue
        seen.add(id(mod))
        total += sum(1 for line in src.splitlines() if line.strip())
    return total


def _package_modules(module):
    yield module
    for attr in ("kernel", "app"):
        sub = getattr(module, attr, None)
        if sub is not None and inspect.ismodule(sub):
            yield sub


def table2_rows() -> list[dict]:
    """Recreate Table II for the five benchmarks."""
    from .. import apps
    rows = []
    for name in ("minibude", "binomial", "bonds", "miniweather",
                 "particlefilter"):
        module = getattr(apps, name)
        directives = module.DIRECTIVES.format(mode="predicated", db="db",
                                              model="model")
        rows.append({
            "benchmark": name,
            "total_loc": app_loc(module),
            "hpacml_loc": annotation_loc(directives),
            "directives": count_directives(directives),
        })
    return rows
