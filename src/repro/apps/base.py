"""Common benchmark interface for the five evaluation mini-apps (Table I).

Every app exposes the same surface so the search/benchmark harness can
drive them uniformly:

* ``generate_workload(scale, seed)`` — synthetic stand-in for the
  paper's datasets (DESIGN.md §2 records the substitution);
* ``run_accurate(workload)`` — the original algorithm, returning the
  QoI;
* ``build_region(...)`` — the HPAC-ML-annotated entry point;
* ``qoi_error(pred, ref)`` — the Table I metric (RMSE or MAPE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..nn.loss import mape, rmse

__all__ = ["BenchmarkInfo", "qoi_error_fn", "REGISTRY", "register"]


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description of a benchmark (the Table I row)."""

    name: str
    description: str
    qoi: str
    metric: str                      # 'rmse' | 'mape'
    surrogate_family: str            # 'mlp' | 'cnn'
    module: str                      # import path of the app package
    extras: dict = field(default_factory=dict)


def qoi_error_fn(metric: str) -> Callable:
    if metric == "rmse":
        return rmse
    if metric == "mape":
        return mape
    raise ValueError(f"unknown QoI metric {metric!r}")


#: name -> BenchmarkInfo, populated by each app module at import.
REGISTRY: dict[str, BenchmarkInfo] = {}


def register(info: BenchmarkInfo) -> BenchmarkInfo:
    if info.name in REGISTRY:
        raise ValueError(f"benchmark {info.name!r} already registered")
    REGISTRY[info.name] = info
    return info
