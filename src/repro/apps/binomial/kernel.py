"""Binomial Options: CRR American-option pricing (Table I row 2).

Iteratively prices a portfolio of American stock options on a
Cox-Ross-Rubinstein binomial lattice [Podlozhnyuk 2007].  Vectorized
across the portfolio: the time-step recursion runs once while every
option's lattice column updates simultaneously — the NumPy analogue of
the CUDA option-per-block kernel.

QoI: the computed price per option.  Metric: RMSE (Table I).
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_options", "price_american", "PARAM_NAMES"]

#: Column layout of an options matrix: spot, strike, expiry (years),
#: risk-free rate, volatility.
PARAM_NAMES = ("S", "K", "T", "r", "sigma")


def generate_options(n_options: int, seed: int = 0,
                     call: bool = True) -> np.ndarray:
    """Synthesize a portfolio with realistic parameter ranges.

    Stands in for the paper's 16M-option dataset (DESIGN.md §2): spot
    5-30, strike 1-100, expiry 0.25-10y, rate 2-10 %, vol 10-60 % — the
    classic ranges of the CUDA SDK sample this benchmark derives from.
    """
    rng = np.random.default_rng(seed)
    s = rng.uniform(5.0, 30.0, n_options)
    k = rng.uniform(1.0, 100.0, n_options)
    t = rng.uniform(0.25, 10.0, n_options)
    r = rng.uniform(0.02, 0.10, n_options)
    sigma = rng.uniform(0.10, 0.60, n_options)
    return np.stack([s, k, t, r, sigma], axis=1)


def price_american(options: np.ndarray, n_steps: int = 256,
                   call: bool = True) -> np.ndarray:
    """Price American options on an ``n_steps`` CRR lattice.

    ``options`` has shape ``(N, 5)`` per :data:`PARAM_NAMES`.  Returns
    prices of shape ``(N,)``.  Backward induction compares continuation
    and immediate-exercise value at every lattice node — the "multiple
    time points before expiration" structure Table I describes.
    """
    options = np.asarray(options, dtype=np.float64)
    s, k, t, r, sigma = (options[:, i] for i in range(5))
    dt = t / n_steps                                   # (N,)
    u = np.exp(sigma * np.sqrt(dt))
    d = 1.0 / u
    disc = np.exp(-r * dt)
    p = (np.exp(r * dt) - d) / (u - d)
    p = np.clip(p, 0.0, 1.0)
    q = 1.0 - p

    # Terminal prices at every lattice node: S * u^j * d^(n-j).
    j = np.arange(n_steps + 1)                         # (M,)
    log_ud = np.log(u)[:, None] * j + np.log(d)[:, None] * (n_steps - j)
    asset = s[:, None] * np.exp(log_ud)                # (N, M)
    if call:
        values = np.maximum(asset - k[:, None], 0.0)
    else:
        values = np.maximum(k[:, None] - asset, 0.0)

    for step in range(n_steps - 1, -1, -1):
        cont = disc[:, None] * (p[:, None] * values[:, 1:step + 2]
                                + q[:, None] * values[:, 0:step + 1])
        log_ud = np.log(u)[:, None] * j[:step + 1] \
            + np.log(d)[:, None] * (step - j[:step + 1])
        asset = s[:, None] * np.exp(log_ud)
        if call:
            exercise = np.maximum(asset - k[:, None], 0.0)
        else:
            exercise = np.maximum(k[:, None] - asset, 0.0)
        values[:, 0:step + 1] = np.maximum(cont, exercise)
    return values[:, 0].copy()
