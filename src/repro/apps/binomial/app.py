"""Binomial Options HPAC-ML integration (4 directives, per Table II)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...api import approx_ml
from ...runtime import EventLog
from ..base import BenchmarkInfo, register
from .kernel import generate_options, price_american

__all__ = ["INFO", "Workload", "generate_workload", "run_accurate",
           "build_region", "DIRECTIVES"]

INFO = register(BenchmarkInfo(
    name="binomial",
    description="Iteratively calculates the price for a portfolio of "
                "American stock options at multiple time points before "
                "expiration.",
    qoi="The computed option prices",
    metric="rmse",
    surrogate_family="mlp",
    module=__name__,
))

DIRECTIVES = """
#pragma approx tensor functor(opt_in: [p, 0:5] = ([p, 0:5]))
#pragma approx tensor functor(price_out: [p, 0:1] = ([p]))
#pragma approx tensor map(to: opt_in(options[0:NOPT]))
#pragma approx tensor map(from: price_out(prices[0:NOPT]))
#pragma approx ml({mode}:use_model) in(options) out(prices) \\
    db("{db}") model("{model}")
"""


@dataclass
class Workload:
    options: np.ndarray     # (N, 5)
    n_steps: int = 128

    @property
    def n_options(self) -> int:
        return len(self.options)


def generate_workload(n_options: int = 4096, seed: int = 0,
                      n_steps: int = 128) -> Workload:
    return Workload(options=generate_options(n_options, seed=seed),
                    n_steps=n_steps)


def run_accurate(workload: Workload) -> np.ndarray:
    return price_american(workload.options, n_steps=workload.n_steps)


def build_region(*, mode: str = "predicated",
                 n_steps: int = 128, db_path: str = "binomial.rh5",
                 model_path: str = "binomial.rnm",
                 event_log: EventLog | None = None, engine=None,
                 auto_batch: bool = False, max_batch_rows: int = 256):
    # Options price independently: shadow validation may sub-sample
    # rows of an invocation (``QoSController(shadow_rows=...)``).
    @approx_ml(DIRECTIVES.format(mode=mode, db=db_path, model=model_path),
               name="binomial", event_log=event_log, engine=engine,
               auto_batch=auto_batch, max_batch_rows=max_batch_rows,
               row_subsample=True)
    def price_portfolio(options, prices, NOPT, use_model=False):
        prices[:NOPT] = price_american(options[:NOPT], n_steps=n_steps)

    return price_portfolio
