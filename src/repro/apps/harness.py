"""Evaluation harnesses: collect → train → deploy → measure per app.

Implements the paper's A4 "benchmark evaluation" artifact: for each
benchmark, run the accurate application capturing runtime and QoI; run
the HPAC-ML-approximated version with a given surrogate capturing the
same; report end-to-end speedup and QoI error.  Speedup accounting
includes "all required data transfers and transformations" (§V-D):
to-tensor and from-tensor bridge time, measured inference wall time,
and the simulated device-transfer seconds from :mod:`repro.device`.

The test-vs-train protocol follows §V-B: every harness collects on a
training workload and deploys on a held-out test workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..device import Device
from ..nn import Destandardize, Sequential, Standardize, mse_loss, save_model
from ..nn.training import train_val_split
from ..search.builders import builder_for
from ..runtime import EventLog, InferenceEngine, Phase, load_training_data
from . import binomial, bonds, minibude, miniweather, particlefilter
from .base import REGISTRY, qoi_error_fn

__all__ = ["DeploymentMetrics", "AppHarness", "MiniBudeHarness",
           "BinomialHarness", "BondsHarness", "ParticleFilterHarness",
           "MiniWeatherHarness", "harness_for"]


@dataclass
class DeploymentMetrics:
    """One deployed model's end-to-end measurement."""

    benchmark: str
    speedup: float
    qoi_error: float
    accurate_time: float
    surrogate_time: float
    breakdown: dict = field(default_factory=dict)
    n_params: int = 0

    def row(self) -> dict:
        return {"benchmark": self.benchmark, "speedup": self.speedup,
                "error": self.qoi_error, "n_params": self.n_params,
                **{f"t_{k}": v for k, v in self.breakdown.items()}}


class AppHarness:
    """Shared collect/deploy machinery; subclasses bind one benchmark."""

    name: str = ""
    #: Fig. 5/6 runs use the compiled inference fast path by default;
    #: subclass (or flip on an instance before ``_setup``) to force the
    #: graph path, e.g. for fast-path ablation studies.
    use_compiled: bool = True

    def __init__(self, workdir, seed: int = 0):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.seed = seed
        self.db_path = self.workdir / f"{self.name}.rh5"
        self.model_path = self.workdir / f"{self.name}.rnm"
        self.events = EventLog()
        self.device = Device()
        self.engine = InferenceEngine(device=self.device,
                                      use_compiled=self.use_compiled)
        self.info = REGISTRY[self.name]
        self.error_fn = qoi_error_fn(self.info.metric)
        self._setup()

    # subclass hooks ----------------------------------------------------
    def _setup(self) -> None:
        raise NotImplementedError

    def collect(self) -> None:
        """Run the region in collection mode over the training workload."""
        raise NotImplementedError

    def run_accurate(self) -> np.ndarray:
        """Accurate path on the *test* workload; returns QoI."""
        raise NotImplementedError

    def run_surrogate(self) -> np.ndarray:
        """Inference path on the *test* workload; returns QoI."""
        raise NotImplementedError

    def builder_kwargs(self) -> dict:
        return {}

    def loss_fn(self):
        return mse_loss

    # shared ----------------------------------------------------------------
    def training_arrays(self, val_fraction: float = 0.2):
        """Load collected data and split train/validation."""
        x, y, _t = load_training_data(self.db_path, self.name)
        rng = np.random.default_rng(self.seed + 17)
        return train_val_split(x, y, val_fraction, rng)

    def install_model(self, model) -> None:
        """Persist a trained model where the annotation's clause points."""
        save_model(model, self.model_path)
        self.engine.cache.clear()
        # Load + precompile now so the first timed invocation of the
        # deployed surrogate pays neither deserialization nor planning.
        self.engine.warmup(self.model_path)

    def _surrogate_seconds(self, before_records: int) -> tuple[float, dict]:
        recs = self.events.records[before_records:]
        to_t = sum(r.times.get(Phase.TO_TENSOR, 0.0) for r in recs)
        inf = sum(r.times.get(Phase.INFERENCE, 0.0) for r in recs)
        from_t = sum(r.times.get(Phase.FROM_TENSOR, 0.0) for r in recs)
        total = to_t + inf + from_t
        breakdown = {"to_tensor": to_t, "inference": inf,
                     "from_tensor": from_t}
        return total, breakdown

    def evaluate(self, model, repeats: int = 3) -> DeploymentMetrics:
        """Deploy ``model`` and measure speedup + QoI error (§V-D).

        Mirrors the paper's protocol of repeated runs with the mean
        runtime (scaled down from 20 runs / drop 2).
        """
        self.install_model(model)

        acc_times, qoi_acc = [], None
        for _ in range(repeats):
            before = len(self.events.records)
            qoi_acc = self.run_accurate()
            recs = self.events.records[before:]
            acc_times.append(sum(r.times.get(Phase.ACCURATE, 0.0)
                                 for r in recs))
        sur_times, breakdown, qoi_sur = [], {}, None
        for _ in range(repeats):
            before = len(self.events.records)
            sim_before = self.device.clock.simulated
            qoi_sur = self.run_surrogate()
            wall, breakdown = self._surrogate_seconds(before)
            sim = self.device.clock.simulated - sim_before
            breakdown["transfer_sim"] = sim
            sur_times.append(wall + sim)

        accurate_time = float(np.mean(acc_times))
        surrogate_time = float(np.mean(sur_times))
        error = float(self.error_fn(qoi_sur, self.reference_qoi(qoi_acc)))
        return DeploymentMetrics(
            benchmark=self.name,
            speedup=accurate_time / max(surrogate_time, 1e-12),
            qoi_error=error,
            accurate_time=accurate_time,
            surrogate_time=surrogate_time,
            breakdown=breakdown,
            n_params=model.num_parameters())

    def reference_qoi(self, qoi_accurate: np.ndarray) -> np.ndarray:
        """What surrogate QoI is compared against (default: accurate)."""
        return qoi_accurate

    # -- model construction with baked-in normalization --------------------
    def _input_stats(self, x: np.ndarray):
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def _output_stats(self, y: np.ndarray):
        mean = y.mean(axis=0)
        std = y.std(axis=0)
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def make_builder(self, x_train: np.ndarray, y_train: np.ndarray):
        """Builder closure wrapping the Table IV family with frozen
        standardization layers fitted on the training split.

        This is the ML-engineer step of the §III workflow: the model
        file is self-contained, so the runtime feeds it raw application
        memory.
        """
        base = builder_for(self.name)
        kwargs = self.builder_kwargs()
        in_stats = self._input_stats(x_train)
        out_stats = self._output_stats(y_train)

        def build(arch: dict, dropout: float = 0.0, seed: int = 0):
            core = base(arch, dropout=dropout, seed=seed, **kwargs)
            layers = []
            if in_stats is not None:
                layers.append(Standardize(*in_stats))
            layers += list(core)
            if out_stats is not None:
                layers.append(Destandardize(*out_stats))
            return Sequential(*layers)

        return build


# ----------------------------------------------------------------------
# MLP-family harnesses: pose/option/bond batch evaluation
# ----------------------------------------------------------------------

class MiniBudeHarness(AppHarness):
    name = "minibude"

    def __init__(self, workdir, seed: int = 0, n_train: int = 2048,
                 n_test: int = 512):
        self.n_train, self.n_test = n_train, n_test
        super().__init__(workdir, seed)

    def _setup(self) -> None:
        self.deck = minibude.kernel.generate_deck(seed=self.seed)
        self.train_poses = minibude.kernel.generate_poses(
            self.n_train, seed=self.seed + 1)
        self.test_poses = minibude.kernel.generate_poses(
            self.n_test, seed=self.seed + 2)
        common = dict(deck=self.deck, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = minibude.build_region(mode="predicated", **common)
        self.region = minibude.build_region(mode="infer", **common)

    def collect(self, chunk: int = 512) -> None:
        energies = np.empty(self.n_train)
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(
                self.train_poses[start:start + chunk])
            out = np.empty(len(block))
            self.collect_region(block, out, len(block), use_model=False)
        self.collect_region.flush()

    def run_accurate(self) -> np.ndarray:
        energies = np.empty(self.n_test)
        self.region(self.test_poses, energies, self.n_test, use_model=False)
        return energies.copy()

    def run_surrogate(self) -> np.ndarray:
        energies = np.empty(self.n_test)
        self.region(self.test_poses, energies, self.n_test, use_model=True)
        return energies.copy()

    def builder_kwargs(self) -> dict:
        return {"in_features": 6, "out_features": 1}


class BinomialHarness(AppHarness):
    name = "binomial"

    def __init__(self, workdir, seed: int = 0, n_train: int = 4096,
                 n_test: int = 1024, n_steps: int = 128):
        self.n_train, self.n_test, self.n_steps = n_train, n_test, n_steps
        super().__init__(workdir, seed)

    def _setup(self) -> None:
        self.train_opts = binomial.kernel.generate_options(
            self.n_train, seed=self.seed + 1)
        self.test_opts = binomial.kernel.generate_options(
            self.n_test, seed=self.seed + 2)
        common = dict(n_steps=self.n_steps, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = binomial.build_region(mode="predicated", **common)
        self.region = binomial.build_region(mode="infer", **common)

    def collect(self, chunk: int = 1024) -> None:
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(self.train_opts[start:start + chunk])
            out = np.empty(len(block))
            self.collect_region(block, out, len(block), use_model=False)
        self.collect_region.flush()

    def run_accurate(self) -> np.ndarray:
        prices = np.empty(self.n_test)
        self.region(self.test_opts, prices, self.n_test, use_model=False)
        return prices.copy()

    def run_surrogate(self) -> np.ndarray:
        prices = np.empty(self.n_test)
        self.region(self.test_opts, prices, self.n_test, use_model=True)
        return prices.copy()

    def builder_kwargs(self) -> dict:
        return {"in_features": 5, "out_features": 1}


class BondsHarness(AppHarness):
    name = "bonds"

    def __init__(self, workdir, seed: int = 0, n_train: int = 4096,
                 n_test: int = 1024):
        self.n_train, self.n_test = n_train, n_test
        super().__init__(workdir, seed)

    def _setup(self) -> None:
        self.train_bonds = bonds.kernel.generate_bonds(
            self.n_train, seed=self.seed + 1)
        self.test_bonds = bonds.kernel.generate_bonds(
            self.n_test, seed=self.seed + 2)
        common = dict(db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = bonds.build_region(mode="predicated", **common)
        self.region = bonds.build_region(mode="infer", **common)

    def collect(self, chunk: int = 1024) -> None:
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(self.train_bonds[start:start + chunk])
            values = np.empty(len(block))
            accrued = np.empty(len(block))
            self.collect_region(block, values, accrued, len(block),
                                use_model=False)
        self.collect_region.flush()

    def _run(self, use_model: bool) -> np.ndarray:
        values = np.empty(self.n_test)
        accrued = np.empty(self.n_test)
        self.region(self.test_bonds, values, accrued, self.n_test,
                    use_model=use_model)
        return accrued.copy()   # QoI: accrued interest (Table I)

    def run_accurate(self) -> np.ndarray:
        return self._run(False)

    def run_surrogate(self) -> np.ndarray:
        return self._run(True)

    def builder_kwargs(self) -> dict:
        return {"in_features": 5, "out_features": 2}


# ----------------------------------------------------------------------
# ParticleFilter: CNN per frame; error judged against ground truth
# ----------------------------------------------------------------------

class ParticleFilterHarness(AppHarness):
    name = "particlefilter"

    def __init__(self, workdir, seed: int = 0, n_train_frames: int = 192,
                 n_test_frames: int = 64, frame_size: int = 32,
                 n_particles: int = 512):
        self.n_train_frames = n_train_frames
        self.n_test_frames = n_test_frames
        self.frame_size = frame_size
        self.n_particles = n_particles
        super().__init__(workdir, seed)

    def _setup(self) -> None:
        self.train_video = particlefilter.generate_workload(
            self.n_train_frames, self.frame_size, self.frame_size,
            seed=self.seed + 1)
        self.test_video = particlefilter.generate_workload(
            self.n_test_frames, self.frame_size, self.frame_size,
            seed=self.seed + 2)
        self.region = particlefilter.build_region(
            mode="infer", n_particles=self.n_particles,
            db_path=str(self.db_path), model_path=str(self.model_path),
            event_log=self.events, engine=self.engine)

    def collect(self, chunk: int = 64) -> None:
        frames = self.train_video.frames
        truth = self.train_video.truth
        h = w = self.frame_size
        for start in range(0, len(frames), chunk):
            block = np.ascontiguousarray(frames[start:start + chunk])
            locs = np.empty((len(block), 2))
            # Collection captures ground truth (paper Observation 1).
            region = particlefilter.build_region(
                mode="predicated", n_particles=self.n_particles,
                db_path=str(self.db_path), model_path=str(self.model_path),
                event_log=self.events, engine=self.engine,
                collect_truth=truth[start:start + chunk])
            region(block, locs, len(block), h, w, use_model=False)
            region.flush()

    def run_accurate(self) -> np.ndarray:
        h = w = self.frame_size
        locs = np.empty((self.n_test_frames, 2))
        self.region(self.test_video.frames, locs, self.n_test_frames, h, w,
                    use_model=False)
        return locs.copy()

    def run_surrogate(self) -> np.ndarray:
        h = w = self.frame_size
        locs = np.empty((self.n_test_frames, 2))
        self.region(self.test_video.frames, locs, self.n_test_frames, h, w,
                    use_model=True)
        return locs.copy()

    def reference_qoi(self, qoi_accurate: np.ndarray) -> np.ndarray:
        """PF error is judged against ground truth, not the filter."""
        return self.test_video.truth

    def _input_stats(self, x: np.ndarray):
        return None            # frames already live in [0, 1]

    def accurate_vs_truth_rmse(self) -> float:
        """The algorithmic approximation's own RMSE (Fig. 7 black line)."""
        est = self.run_accurate()
        return float(np.sqrt(np.mean((est - self.test_video.truth) ** 2)))

    def builder_kwargs(self) -> dict:
        return {"height": self.frame_size, "width": self.frame_size}


# ----------------------------------------------------------------------
# MiniWeather: auto-regressive stepping with interleaving support
# ----------------------------------------------------------------------

class MiniWeatherHarness(AppHarness):
    name = "miniweather"

    def __init__(self, workdir, seed: int = 0, nx: int = 32, nz: int = 16,
                 train_steps: int = 160, test_steps: int = 40,
                 amplitude: float = 10.0):
        self.nx, self.nz = nx, nz
        self.train_steps = train_steps
        self.test_steps = test_steps
        self.amplitude = amplitude
        super().__init__(workdir, seed)

    def _setup(self) -> None:
        wl = miniweather.generate_workload(nx=self.nx, nz=self.nz,
                                           amplitude=self.amplitude)
        self.workload = wl
        self.dt = wl.dt
        common = dict(state=wl.state, dt=wl.dt, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.timestep_collect = miniweather.build_region(mode="predicated",
                                                         **common)
        self.timestep = miniweather.build_region(mode="infer", **common)
        self._initial_q = wl.state.q.copy()

    def _fresh_u(self) -> np.ndarray:
        return np.ascontiguousarray(self._initial_q[None].copy())

    def collect(self) -> None:
        """March the accurate solver ``train_steps`` steps, capturing
        every (state_t, state_t+1) pair."""
        u = self._fresh_u()
        for _ in range(self.train_steps):
            self.timestep_collect(u, use_model=False)
        self.timestep_collect.region.flush()

    def _march(self, n_steps: int, schedule) -> np.ndarray:
        """Run ``n_steps`` from the post-training state; ``schedule(i)``
        says whether step ``i`` uses the surrogate.

        Sets :attr:`window_record_start` to the event-log index where
        the test window begins, so timing analyses (Fig. 9d) can
        exclude the warm-up march shared by every configuration.
        """
        u = self._fresh_u()
        for _ in range(self.train_steps):     # reach the test window
            self.timestep(u, use_model=False)
        self.window_record_start = len(self.events.records)
        for i in range(n_steps):
            self.timestep(u, use_model=bool(schedule(i)))
        return u[0].copy()

    def window_seconds(self) -> float:
        """Total time of the records since the last test window began."""
        recs = self.events.records[self.window_record_start:]
        return sum(r.total for r in recs)

    def run_accurate(self) -> np.ndarray:
        return self._march(self.test_steps, lambda i: False)

    def run_surrogate(self) -> np.ndarray:
        return self._march(self.test_steps, lambda i: True)

    def run_interleaved(self, n_accurate: int, n_surrogate: int) -> np.ndarray:
        """Fig. 9 Original:Surrogate cycles, e.g. 1:1, 2:1, 3:3."""
        cycle = n_accurate + n_surrogate
        if cycle == 0:
            raise ValueError("empty interleave cycle")
        return self._march(self.test_steps,
                           lambda i: (i % cycle) >= n_accurate)

    def trajectory_errors(self, schedule, n_steps: int | None = None):
        """Per-timestep RMSE vs the accurate trajectory (Fig. 9e)."""
        n_steps = n_steps or self.test_steps
        u_acc = self._fresh_u()
        u_sur = self._fresh_u()
        for _ in range(self.train_steps):
            self.timestep(u_acc, use_model=False)
        u_sur[...] = u_acc
        errors = []
        for i in range(n_steps):
            self.timestep(u_acc, use_model=False)
            self.timestep(u_sur, use_model=bool(schedule(i)))
            errors.append(float(np.sqrt(np.mean((u_sur - u_acc) ** 2))))
        return np.array(errors)

    def builder_kwargs(self) -> dict:
        return {"nz": self.nz, "nx": self.nx}

    def _input_stats(self, x: np.ndarray):
        # Per-channel statistics over (sample, z, x): the four state
        # fields live on wildly different scales (rho' ~1, momenta ~50).
        mean = x.mean(axis=(0, 2, 3), keepdims=True)[0]
        std = x.std(axis=(0, 2, 3), keepdims=True)[0]
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def _output_stats(self, y: np.ndarray):
        return self._input_stats(y)


def harness_for(benchmark: str, workdir, seed: int = 0, **kwargs) -> AppHarness:
    classes = {h.name: h for h in
               (MiniBudeHarness, BinomialHarness, BondsHarness,
                ParticleFilterHarness, MiniWeatherHarness)}
    if benchmark not in classes:
        raise KeyError(f"no harness for benchmark {benchmark!r}")
    return classes[benchmark](workdir, seed=seed, **kwargs)
