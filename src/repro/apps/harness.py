"""Evaluation harnesses: collect → train → deploy → measure per app.

Implements the paper's A4 "benchmark evaluation" artifact: for each
benchmark, run the accurate application capturing runtime and QoI; run
the HPAC-ML-approximated version with a given surrogate capturing the
same; report end-to-end speedup and QoI error.  Speedup accounting
includes "all required data transfers and transformations" (§V-D):
to-tensor and from-tensor bridge time, measured inference wall time,
and the simulated device-transfer seconds from :mod:`repro.device`.

The test-vs-train protocol follows §V-B: every harness collects on a
training workload and deploys on a held-out test workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..device import Device
from ..nn import Destandardize, Sequential, Standardize, mse_loss, save_model
from ..nn.training import train_val_split
from ..search.builders import builder_for
from ..runtime import EventLog, InferenceEngine, Phase, load_training_data
from ..serving import RegionServer
from . import binomial, bonds, minibude, miniweather, particlefilter
from .base import REGISTRY, qoi_error_fn

__all__ = ["DeploymentMetrics", "QoSDeploymentMetrics", "AppHarness",
           "RowBatchedHarness", "MiniBudeHarness", "BinomialHarness",
           "BondsHarness", "ParticleFilterHarness", "MiniWeatherHarness",
           "harness_for"]


@dataclass
class DeploymentMetrics:
    """One deployed model's end-to-end measurement."""

    benchmark: str
    speedup: float
    qoi_error: float
    accurate_time: float
    surrogate_time: float
    breakdown: dict = field(default_factory=dict)
    n_params: int = 0

    def row(self) -> dict:
        return {"benchmark": self.benchmark, "speedup": self.speedup,
                "error": self.qoi_error, "n_params": self.n_params,
                **{f"t_{k}": v for k, v in self.breakdown.items()}}


@dataclass
class QoSDeploymentMetrics:
    """A deployment measured under a :class:`repro.qos.QoSController`.

    ``deployed_time`` is the full serving cost — inference, bridge,
    simulated transfers, *and* the accurate-path/shadow time the QoS
    loop spent; ``validation_overhead`` is the SHADOW share of it.
    """

    benchmark: str
    speedup: float
    qoi_error: float
    accurate_time: float
    deployed_time: float
    validation_overhead: float
    shadow_invocations: int
    path_counts: dict = field(default_factory=dict)
    qos: dict = field(default_factory=dict)

    def row(self) -> dict:
        return {"benchmark": self.benchmark, "speedup": self.speedup,
                "error": self.qoi_error,
                "validation_overhead": self.validation_overhead,
                "shadows": self.shadow_invocations,
                **{f"n_{k}": v for k, v in sorted(self.path_counts.items())}}


class AppHarness:
    """Shared collect/deploy machinery; subclasses bind one benchmark."""

    name: str = ""
    #: Fig. 5/6 runs use the compiled inference fast path by default;
    #: subclass (or flip on an instance before ``_setup``) to force the
    #: graph path, e.g. for fast-path ablation studies.
    use_compiled: bool = True
    #: Auto-regressive harnesses (MiniWeather) must keep the immediate
    #: engine: deferred scatter-back would feed step t+1 stale state.
    supports_auto_batch: bool = True

    def __init__(self, workdir, seed: int = 0, auto_batch: bool = False,
                 batch_rows: int = 256, deploy_chunk: int | None = None,
                 server: RegionServer | None = None):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.seed = seed
        if auto_batch and not self.supports_auto_batch:
            raise ValueError(f"{type(self).__name__} is auto-regressive; "
                             "auto-batching its deploy loop is unsound")
        self.auto_batch = auto_batch
        self.batch_rows = batch_rows
        self.deploy_chunk = deploy_chunk
        self.db_path = self.workdir / f"{self.name}.rh5"
        self.model_path = self.workdir / f"{self.name}.rnm"
        self.events = EventLog()
        self.device = Device()
        self.engine = InferenceEngine(device=self.device,
                                      use_compiled=self.use_compiled)
        self.info = REGISTRY[self.name]
        self.error_fn = qoi_error_fn(self.info.metric)
        self._setup()
        # Every harness serves through a RegionServer: its own (serial
        # backend, the latency baseline) or a shared one — the
        # multi-region deployment story, where several harnesses
        # register their regions on one server under one arbiter.
        self.server = server if server is not None else RegionServer()
        self.server.register(self.deploy_region, name=self.name)

    # subclass hooks ----------------------------------------------------
    def _setup(self) -> None:
        raise NotImplementedError

    def collect(self) -> None:
        """Run the region in collection mode over the training workload."""
        raise NotImplementedError

    def _run(self, use_model: bool) -> np.ndarray:
        """Drive the deployment workload through the server; returns QoI."""
        raise NotImplementedError

    def run_accurate(self) -> np.ndarray:
        """Accurate path on the *test* workload; returns QoI."""
        return self._run(False)

    def run_surrogate(self) -> np.ndarray:
        """Inference path on the *test* workload; returns QoI."""
        return self._run(True)

    def builder_kwargs(self) -> dict:
        return {}

    def loss_fn(self):
        return mse_loss

    # shared ----------------------------------------------------------------
    def training_arrays(self, val_fraction: float = 0.2):
        """Load collected data and split train/validation."""
        x, y, _t = load_training_data(self.db_path, self.name)
        rng = np.random.default_rng(self.seed + 17)
        return train_val_split(x, y, val_fraction, rng)

    @property
    def deploy_region(self):
        """The :class:`ApproxRegion` the deployment loop invokes."""
        return self.region

    def install_model(self, model) -> None:
        """Persist a trained model where the annotation's clause points."""
        save_model(model, self.model_path)
        self.engine.cache.clear()
        # Load + precompile now so the first timed invocation of the
        # deployed surrogate pays neither deserialization nor planning.
        self.engine.warmup(self.model_path)
        # An auto-batched region wraps the harness engine (shared model
        # cache, separate plan cache): warm that wrapper too.
        region_engine = self.deploy_region.engine
        if region_engine is not self.engine:
            region_engine.warmup(self.model_path)

    def _surrogate_seconds(self, before_records: int) -> tuple[float, dict]:
        recs = self.events.records[before_records:]
        to_t = sum(r.times.get(Phase.TO_TENSOR, 0.0) for r in recs)
        inf = sum(r.times.get(Phase.INFERENCE, 0.0) for r in recs)
        from_t = sum(r.times.get(Phase.FROM_TENSOR, 0.0) for r in recs)
        total = to_t + inf + from_t
        breakdown = {"to_tensor": to_t, "inference": inf,
                     "from_tensor": from_t}
        return total, breakdown

    def _window_start(self, before: int) -> int:
        """First record index of the measured deployment window.

        Auto-regressive harnesses (MiniWeather) march a warm-up phase
        before the test window and publish ``window_record_start``;
        clamping both the accurate and surrogate measurements to it
        keeps the speedup ratio's windows comparable.
        """
        return max(before, getattr(self, "window_record_start", before))

    def evaluate(self, model, repeats: int = 3) -> DeploymentMetrics:
        """Deploy ``model`` and measure speedup + QoI error (§V-D).

        Mirrors the paper's protocol of repeated runs with the mean
        runtime (scaled down from 20 runs / drop 2).
        """
        self.install_model(model)

        acc_times, qoi_acc = [], None
        for _ in range(repeats):
            before = len(self.events.records)
            qoi_acc = self.run_accurate()
            recs = self.events.records[self._window_start(before):]
            acc_times.append(sum(r.times.get(Phase.ACCURATE, 0.0)
                                 for r in recs))
        sur_times, breakdown, qoi_sur = [], {}, None
        for _ in range(repeats):
            before = len(self.events.records)
            sim_before = self.device.clock.simulated
            qoi_sur = self.run_surrogate()
            wall, breakdown = self._surrogate_seconds(
                self._window_start(before))
            sim = self.device.clock.simulated - sim_before
            breakdown["transfer_sim"] = sim
            sur_times.append(wall + sim)

        accurate_time = float(np.mean(acc_times))
        surrogate_time = float(np.mean(sur_times))
        error = float(self.error_fn(qoi_sur, self.reference_qoi(qoi_acc)))
        return DeploymentMetrics(
            benchmark=self.name,
            speedup=accurate_time / max(surrogate_time, 1e-12),
            qoi_error=error,
            accurate_time=accurate_time,
            surrogate_time=surrogate_time,
            breakdown=breakdown,
            n_params=model.num_parameters())

    def reference_qoi(self, qoi_accurate: np.ndarray) -> np.ndarray:
        """What surrogate QoI is compared against (default: accurate)."""
        return qoi_accurate

    def deploy_with_qos(self, model, controller,
                        repeats: int = 1) -> QoSDeploymentMetrics:
        """Deploy ``model`` under a QoS controller and measure it.

        Extends the §V-D accounting with the QoS loop's own costs: the
        deployed time includes shadow-validation kernel runs and any
        accurate/collect invocations a policy forced, so the reported
        speedup is the *net* serving speedup after paying for online
        quality control.  The controller is attached only for the
        surrogate window and detached afterwards.

        Timing and ``path_counts`` cover the measured deployment
        window, accumulated over ``repeats``; the controller's own
        counters (``qos`` snapshot, ``shadow_invocations``) cover its
        whole attachment, which for auto-regressive harnesses also
        spans the warm-up march preceding each window.
        """
        self.install_model(model)
        acc_times, qoi_acc = [], None
        for _ in range(repeats):
            before = len(self.events.records)
            qoi_acc = self.run_accurate()
            recs = self.events.records[self._window_start(before):]
            acc_times.append(sum(r.times.get(Phase.ACCURATE, 0.0)
                                 for r in recs))
        region = self.deploy_region
        dep_times, shadow_times, qoi_sur = [], [], None
        # Accumulated across repeats, like the controller's own
        # shadow/telemetry counters, so the row reconciles.
        path_counts: dict = {}
        prev_qos = self.server.attach_qos(controller, names=[self.name])
        try:
            for _ in range(repeats):
                before = len(self.events.records)
                sim_before = self.device.clock.simulated
                qoi_sur = self.run_surrogate()
                recs = self.events.records[self._window_start(before):]
                sim = self.device.clock.simulated - sim_before
                dep_times.append(sum(r.total for r in recs) + sim)
                shadow_times.append(sum(r.times.get(Phase.SHADOW, 0.0)
                                        for r in recs))
                for r in recs:
                    path_counts[r.path] = path_counts.get(r.path, 0) + 1
        finally:
            self.server.restore_qos(prev_qos)
        accurate_time = float(np.mean(acc_times))
        deployed_time = float(np.mean(dep_times))
        error = float(self.error_fn(qoi_sur, self.reference_qoi(qoi_acc)))
        snapshot = controller.snapshot()
        shadows = snapshot["telemetry"].get(region.name, {}) \
            .get("shadow_invocations", 0)
        return QoSDeploymentMetrics(
            benchmark=self.name,
            speedup=accurate_time / max(deployed_time, 1e-12),
            qoi_error=error,
            accurate_time=accurate_time,
            deployed_time=deployed_time,
            validation_overhead=(float(np.mean(shadow_times)) /
                                 max(deployed_time, 1e-12)),
            shadow_invocations=shadows,
            path_counts=path_counts,
            qos=snapshot)

    # -- model construction with baked-in normalization --------------------
    def _input_stats(self, x: np.ndarray):
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def _output_stats(self, y: np.ndarray):
        mean = y.mean(axis=0)
        std = y.std(axis=0)
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def make_builder(self, x_train: np.ndarray, y_train: np.ndarray):
        """Builder closure wrapping the Table IV family with frozen
        standardization layers fitted on the training split.

        This is the ML-engineer step of the §III workflow: the model
        file is self-contained, so the runtime feeds it raw application
        memory.
        """
        base = builder_for(self.name)
        kwargs = self.builder_kwargs()
        in_stats = self._input_stats(x_train)
        out_stats = self._output_stats(y_train)

        def build(arch: dict, dropout: float = 0.0, seed: int = 0):
            core = base(arch, dropout=dropout, seed=seed, **kwargs)
            layers = []
            if in_stats is not None:
                layers.append(Standardize(*in_stats))
            layers += list(core)
            if out_stats is not None:
                layers.append(Destandardize(*out_stats))
            return Sequential(*layers)

        return build


# ----------------------------------------------------------------------
# Row-batched harnesses: one server-driven deploy loop for every app
# whose test workload is a batch of independent rows.
# ----------------------------------------------------------------------

class RowBatchedHarness(AppHarness):
    """Shared deploy loop for row-batched benchmarks.

    The five per-app ``_run`` loops used to be near-identical copies;
    this base collapses them into one server-driven path.  Subclasses
    declare the workload shape — :meth:`test_inputs` (the test rows),
    :attr:`output_shapes` (per-row inner shape of each output buffer),
    :attr:`qoi_index` (which buffer is the QoI), and optionally
    :meth:`extra_invoke_args` / :meth:`deploy_chunk_for` — and the base
    chunks the rows, allocates output buffers, and submits each chunk
    through ``self.server`` (output views into the result buffers, so
    a batched engine's deferred scatter lands through them at the
    drain).
    """

    #: Per-row inner shape of each output buffer, in region-argument
    #: order; e.g. ``((), ())`` for bonds' value/accrued pair.
    output_shapes: tuple = ((),)
    #: Which output buffer is the QoI.
    qoi_index: int = 0

    def test_inputs(self) -> np.ndarray:
        """The ``(n_test, *row)`` deployment workload rows."""
        raise NotImplementedError

    def extra_invoke_args(self) -> tuple:
        """Trailing region arguments after the row count (e.g. H, W)."""
        return ()

    def deploy_chunk_for(self, use_model: bool, n_test: int) -> int:
        """Invocation chunk size for one deployment run."""
        return self.deploy_chunk or n_test

    def _run(self, use_model: bool) -> np.ndarray:
        rows = self.test_inputs()
        n_test = len(rows)
        outs = [np.empty((n_test, *shape)) for shape in self.output_shapes]
        chunk = self.deploy_chunk_for(use_model, n_test)
        extra = self.extra_invoke_args()
        invoke = self.server.invoke
        pending = []
        for start in range(0, n_test, chunk):
            block = np.ascontiguousarray(rows[start:start + chunk])
            n = len(block)
            views = [out[start:start + n] for out in outs]
            result = invoke(self.name, block, *views, n, *extra,
                            use_model=use_model)
            if result is not None and hasattr(result, "result"):
                pending.append(result)      # threaded backend: a Future
        self.server.flush(self.name)
        # Re-raise any worker-thread invocation failure: returning the
        # uninitialized output buffers as QoI would be silently wrong.
        for future in pending:
            future.result()
        return outs[self.qoi_index].copy()


class MiniBudeHarness(RowBatchedHarness):
    name = "minibude"

    def __init__(self, workdir, seed: int = 0, n_train: int = 2048,
                 n_test: int = 512, **kwargs):
        self.n_train, self.n_test = n_train, n_test
        super().__init__(workdir, seed, **kwargs)

    def _setup(self) -> None:
        self.deck = minibude.kernel.generate_deck(seed=self.seed)
        self.train_poses = minibude.kernel.generate_poses(
            self.n_train, seed=self.seed + 1)
        self.test_poses = minibude.kernel.generate_poses(
            self.n_test, seed=self.seed + 2)
        common = dict(deck=self.deck, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = minibude.build_region(mode="predicated", **common)
        self.region = minibude.build_region(
            mode="infer", auto_batch=self.auto_batch,
            max_batch_rows=self.batch_rows, **common)

    def collect(self, chunk: int = 512) -> None:
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(
                self.train_poses[start:start + chunk])
            out = np.empty(len(block))
            self.collect_region(block, out, len(block), use_model=False)
        self.collect_region.flush()

    def test_inputs(self) -> np.ndarray:
        return self.test_poses

    def builder_kwargs(self) -> dict:
        return {"in_features": 6, "out_features": 1}


class BinomialHarness(RowBatchedHarness):
    name = "binomial"

    def __init__(self, workdir, seed: int = 0, n_train: int = 4096,
                 n_test: int = 1024, n_steps: int = 128, **kwargs):
        self.n_train, self.n_test, self.n_steps = n_train, n_test, n_steps
        super().__init__(workdir, seed, **kwargs)

    def _setup(self) -> None:
        self.train_opts = binomial.kernel.generate_options(
            self.n_train, seed=self.seed + 1)
        self.test_opts = binomial.kernel.generate_options(
            self.n_test, seed=self.seed + 2)
        common = dict(n_steps=self.n_steps, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = binomial.build_region(mode="predicated", **common)
        self.region = binomial.build_region(
            mode="infer", auto_batch=self.auto_batch,
            max_batch_rows=self.batch_rows, **common)

    def collect(self, chunk: int = 1024) -> None:
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(self.train_opts[start:start + chunk])
            out = np.empty(len(block))
            self.collect_region(block, out, len(block), use_model=False)
        self.collect_region.flush()

    def test_inputs(self) -> np.ndarray:
        return self.test_opts

    def builder_kwargs(self) -> dict:
        return {"in_features": 5, "out_features": 1}


class BondsHarness(RowBatchedHarness):
    name = "bonds"
    output_shapes = ((), ())
    qoi_index = 1              # QoI: accrued interest (Table I)

    def __init__(self, workdir, seed: int = 0, n_train: int = 4096,
                 n_test: int = 1024, **kwargs):
        self.n_train, self.n_test = n_train, n_test
        super().__init__(workdir, seed, **kwargs)

    def _setup(self) -> None:
        self.train_bonds = bonds.kernel.generate_bonds(
            self.n_train, seed=self.seed + 1)
        self.test_bonds = bonds.kernel.generate_bonds(
            self.n_test, seed=self.seed + 2)
        common = dict(db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.collect_region = bonds.build_region(mode="predicated", **common)
        self.region = bonds.build_region(
            mode="infer", auto_batch=self.auto_batch,
            max_batch_rows=self.batch_rows, **common)

    def collect(self, chunk: int = 1024) -> None:
        for start in range(0, self.n_train, chunk):
            block = np.ascontiguousarray(self.train_bonds[start:start + chunk])
            values = np.empty(len(block))
            accrued = np.empty(len(block))
            self.collect_region(block, values, accrued, len(block),
                                use_model=False)
        self.collect_region.flush()

    def test_inputs(self) -> np.ndarray:
        return self.test_bonds

    def builder_kwargs(self) -> dict:
        return {"in_features": 5, "out_features": 2}


# ----------------------------------------------------------------------
# ParticleFilter: CNN per frame; error judged against ground truth
# ----------------------------------------------------------------------

class ParticleFilterHarness(RowBatchedHarness):
    name = "particlefilter"
    output_shapes = ((2,),)

    def __init__(self, workdir, seed: int = 0, n_train_frames: int = 192,
                 n_test_frames: int = 64, frame_size: int = 32,
                 n_particles: int = 512, **kwargs):
        self.n_train_frames = n_train_frames
        self.n_test_frames = n_test_frames
        self.frame_size = frame_size
        self.n_particles = n_particles
        super().__init__(workdir, seed, **kwargs)

    def _setup(self) -> None:
        self.train_video = particlefilter.generate_workload(
            self.n_train_frames, self.frame_size, self.frame_size,
            seed=self.seed + 1)
        self.test_video = particlefilter.generate_workload(
            self.n_test_frames, self.frame_size, self.frame_size,
            seed=self.seed + 2)
        self.region = particlefilter.build_region(
            mode="infer", n_particles=self.n_particles,
            db_path=str(self.db_path), model_path=str(self.model_path),
            event_log=self.events, engine=self.engine,
            auto_batch=self.auto_batch, max_batch_rows=self.batch_rows)

    def collect(self, chunk: int = 64) -> None:
        frames = self.train_video.frames
        truth = self.train_video.truth
        h = w = self.frame_size
        for start in range(0, len(frames), chunk):
            block = np.ascontiguousarray(frames[start:start + chunk])
            locs = np.empty((len(block), 2))
            # Collection captures ground truth (paper Observation 1).
            region = particlefilter.build_region(
                mode="predicated", n_particles=self.n_particles,
                db_path=str(self.db_path), model_path=str(self.model_path),
                event_log=self.events, engine=self.engine,
                collect_truth=truth[start:start + chunk])
            region(block, locs, len(block), h, w, use_model=False)
            region.flush()

    def test_inputs(self) -> np.ndarray:
        return self.test_video.frames

    def extra_invoke_args(self) -> tuple:
        return (self.frame_size, self.frame_size)

    def deploy_chunk_for(self, use_model: bool, n_test: int) -> int:
        # The filter carries state across frames, so the accurate path
        # always runs as one invocation (chunking would re-seed it);
        # only the per-frame CNN deploy loop honors deploy_chunk.
        return (self.deploy_chunk or n_test) if use_model else n_test

    def reference_qoi(self, qoi_accurate: np.ndarray) -> np.ndarray:
        """PF error is judged against ground truth, not the filter."""
        return self.test_video.truth

    def _input_stats(self, x: np.ndarray):
        return None            # frames already live in [0, 1]

    def accurate_vs_truth_rmse(self) -> float:
        """The algorithmic approximation's own RMSE (Fig. 7 black line)."""
        est = self.run_accurate()
        return float(np.sqrt(np.mean((est - self.test_video.truth) ** 2)))

    def builder_kwargs(self) -> dict:
        return {"height": self.frame_size, "width": self.frame_size}


# ----------------------------------------------------------------------
# MiniWeather: auto-regressive stepping with interleaving support
# ----------------------------------------------------------------------

class MiniWeatherHarness(AppHarness):
    name = "miniweather"
    supports_auto_batch = False        # auto-regressive stepping

    def __init__(self, workdir, seed: int = 0, nx: int = 32, nz: int = 16,
                 train_steps: int = 160, test_steps: int = 40,
                 amplitude: float = 10.0, **kwargs):
        self.nx, self.nz = nx, nz
        self.train_steps = train_steps
        self.test_steps = test_steps
        self.amplitude = amplitude
        super().__init__(workdir, seed, **kwargs)

    def _setup(self) -> None:
        wl = miniweather.generate_workload(nx=self.nx, nz=self.nz,
                                           amplitude=self.amplitude)
        self.workload = wl
        self.dt = wl.dt
        common = dict(state=wl.state, dt=wl.dt, db_path=str(self.db_path),
                      model_path=str(self.model_path),
                      event_log=self.events, engine=self.engine)
        self.timestep_collect = miniweather.build_region(mode="predicated",
                                                         **common)
        self.timestep = miniweather.build_region(mode="infer", **common)
        self._initial_q = wl.state.q.copy()

    @property
    def deploy_region(self):
        return self.timestep.region

    def _step(self, u: np.ndarray, use_model: bool) -> None:
        """One deploy-path timestep, through the server.

        Auto-regressive: step t+1 consumes step t's in-place update of
        ``u``, so a threaded backend's Future is resolved immediately —
        the march is inherently sequential, but it still flows through
        the serving surface (counters, QoS wiring, fleet snapshot).
        """
        result = self.server.invoke(self.name, u, self.nz, self.nx,
                                    use_model=use_model)
        if result is not None and hasattr(result, "result"):
            result.result()

    def _fresh_u(self) -> np.ndarray:
        return np.ascontiguousarray(self._initial_q[None].copy())

    def collect(self) -> None:
        """March the accurate solver ``train_steps`` steps, capturing
        every (state_t, state_t+1) pair."""
        u = self._fresh_u()
        for _ in range(self.train_steps):
            self.timestep_collect(u, use_model=False)
        self.timestep_collect.region.flush()

    def _march(self, n_steps: int, schedule) -> np.ndarray:
        """Run ``n_steps`` from the post-training state; ``schedule(i)``
        says whether step ``i`` uses the surrogate.

        Sets :attr:`window_record_start` to the event-log index where
        the test window begins, so timing analyses (Fig. 9d) can
        exclude the warm-up march shared by every configuration.
        """
        u = self._fresh_u()
        for _ in range(self.train_steps):     # reach the test window
            self._step(u, use_model=False)
        self.window_record_start = len(self.events.records)
        for i in range(n_steps):
            self._step(u, use_model=bool(schedule(i)))
        return u[0].copy()

    def window_seconds(self) -> float:
        """Total time of the records since the last test window began."""
        recs = self.events.records[self.window_record_start:]
        return sum(r.total for r in recs)

    def run_accurate(self) -> np.ndarray:
        return self._march(self.test_steps, lambda i: False)

    def run_surrogate(self) -> np.ndarray:
        return self._march(self.test_steps, lambda i: True)

    def run_interleaved(self, n_accurate: int, n_surrogate: int) -> np.ndarray:
        """Fig. 9 Original:Surrogate cycles, e.g. 1:1, 2:1, 3:3."""
        cycle = n_accurate + n_surrogate
        if cycle == 0:
            raise ValueError("empty interleave cycle")
        return self._march(self.test_steps,
                           lambda i: (i % cycle) >= n_accurate)

    def trajectory_errors(self, schedule, n_steps: int | None = None):
        """Per-timestep RMSE vs the accurate trajectory (Fig. 9e)."""
        n_steps = n_steps or self.test_steps
        u_acc = self._fresh_u()
        u_sur = self._fresh_u()
        for _ in range(self.train_steps):
            self._step(u_acc, use_model=False)
        u_sur[...] = u_acc
        errors = []
        for i in range(n_steps):
            self._step(u_acc, use_model=False)
            self._step(u_sur, use_model=bool(schedule(i)))
            errors.append(float(np.sqrt(np.mean((u_sur - u_acc) ** 2))))
        return np.array(errors)

    def builder_kwargs(self) -> dict:
        return {"nz": self.nz, "nx": self.nx}

    def _input_stats(self, x: np.ndarray):
        # Per-channel statistics over (sample, z, x): the four state
        # fields live on wildly different scales (rho' ~1, momenta ~50).
        mean = x.mean(axis=(0, 2, 3), keepdims=True)[0]
        std = x.std(axis=(0, 2, 3), keepdims=True)[0]
        std = np.where(std < 1e-8, 1.0, std)
        return mean, std

    def _output_stats(self, y: np.ndarray):
        return self._input_stats(y)


def harness_for(benchmark: str, workdir, seed: int = 0, **kwargs) -> AppHarness:
    classes = {h.name: h for h in
               (MiniBudeHarness, BinomialHarness, BondsHarness,
                ParticleFilterHarness, MiniWeatherHarness)}
    if benchmark not in classes:
        raise KeyError(f"no harness for benchmark {benchmark!r}")
    return classes[benchmark](workdir, seed=seed, **kwargs)
