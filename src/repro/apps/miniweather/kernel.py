"""MiniWeather: 2-D compressible atmospheric dynamics (Table I row 4).

A NumPy port of Norman's MiniWeather mini-app structure: the dry
compressible Euler equations on an x-z plane over a hydrostatic,
constant-potential-temperature background, integrated with a
dimensionally-split finite-volume scheme.  The state carries the four
Table I QoI fields at every gridpoint::

    q[0] = rho'      density perturbation
    q[1] = rho*u     x momentum
    q[2] = rho*w     z momentum
    q[3] = (rho*theta)'  potential-temperature density perturbation

Fluxes use the Rusanov (local Lax-Friedrichs) approximation — second
order in smooth regions with built-in stabilizing dissipation, which is
what lets the auto-regressive Fig. 9 experiments march thousands of
steps.  Buoyancy enters as the ``-g*rho'`` source on vertical momentum
("emphasizing buoyant force impacts", Table I).  Boundary conditions:
periodic in x, rigid free-slip walls in z.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WeatherConfig", "WeatherState", "init_thermal_bubble",
           "init_colliding_thermals", "init_gravity_wave",
           "step", "run", "max_wave_speed", "CFL", "SCENARIOS"]

# Physical constants (as in MiniWeather).
_GRAV = 9.8
_CP = 1004.0
_CV = 717.0
_RD = 287.0
_P0 = 1.0e5
_GAMMA = _CP / _CV
_THETA0 = 300.0
_C0 = _RD ** _GAMMA * _P0 ** (1.0 - _GAMMA)   # p = C0 * (rho*theta)^gamma

CFL = 0.4


@dataclass(frozen=True)
class WeatherConfig:
    """Grid and domain configuration."""

    nx: int = 64
    nz: int = 32
    xlen: float = 2.0e4       # 20 km
    zlen: float = 1.0e4       # 10 km
    #: Rusanov dissipation scale in (0, 1].  1.0 is the textbook flux;
    #: 0.4 keeps the thermal's slow advective dynamics alive much longer
    #: while remaining stable at CFL 0.4 (verified to 1500 steps).
    dissipation: float = 0.4

    @property
    def dx(self) -> float:
        return self.xlen / self.nx

    @property
    def dz(self) -> float:
        return self.zlen / self.nz


@dataclass
class WeatherState:
    """Perturbation state plus the hydrostatic background columns."""

    q: np.ndarray                    # (4, nz, nx)
    hy_dens: np.ndarray              # (nz,) background rho(z)
    hy_dens_theta: np.ndarray        # (nz,) background rho*theta(z)
    config: WeatherConfig = field(default_factory=WeatherConfig)
    time: float = 0.0
    #: Completed timesteps; drives the Strang sweep alternation (the
    #: seed derived parity from ``time / dt``, which drifts once float
    #: accumulation error crosses a rounding boundary).
    step_count: int = 0


def _hydrostatic_profile(z: np.ndarray):
    """Constant-theta hydrostatic balance via the Exner function."""
    exner = 1.0 - _GRAV * z / (_CP * _THETA0)
    p = _P0 * exner ** (_CP / _RD)
    temp = _THETA0 * exner
    rho = p / (_RD * temp)
    return rho, rho * _THETA0


def init_thermal_bubble(config: WeatherConfig | None = None,
                        amplitude: float = 3.0,
                        x_frac: float = 0.5, z_frac: float = 0.3,
                        radius_frac: float = 0.15) -> WeatherState:
    """The rising-thermal test: a warm potential-temperature anomaly."""
    config = config or WeatherConfig()
    z = (np.arange(config.nz) + 0.5) * config.dz
    x = (np.arange(config.nx) + 0.5) * config.dx
    hy_dens, hy_dens_theta = _hydrostatic_profile(z)

    q = np.zeros((4, config.nz, config.nx))
    xx, zz = np.meshgrid(x, z)
    x0, z0 = x_frac * config.xlen, z_frac * config.zlen
    radius = radius_frac * config.zlen
    dist = np.sqrt(((xx - x0) / radius) ** 2 + ((zz - z0) / radius) ** 2)
    bubble = amplitude * np.cos(np.minimum(dist, 1.0) * np.pi / 2) ** 2
    # Warm anomaly: theta' > 0 => (rho*theta)' = rho * theta'.
    q[3] = hy_dens[:, None] * bubble
    return WeatherState(q=q, hy_dens=hy_dens, hy_dens_theta=hy_dens_theta,
                        config=config)


def init_colliding_thermals(config: WeatherConfig | None = None,
                            amplitude: float = 10.0) -> WeatherState:
    """MiniWeather's 'collision' scenario: a warm rising thermal under a
    cold sinking one — the configuration that develops the most complex
    small-scale structure."""
    config = config or WeatherConfig()
    warm = init_thermal_bubble(config, amplitude=amplitude,
                               x_frac=0.5, z_frac=0.25, radius_frac=0.15)
    cold = init_thermal_bubble(config, amplitude=-amplitude,
                               x_frac=0.5, z_frac=0.75, radius_frac=0.15)
    warm.q[3] += cold.q[3]
    return warm


def init_gravity_wave(config: WeatherConfig | None = None,
                      amplitude: float = 2.0, u0: float = 15.0) -> WeatherState:
    """Stably-propagating gravity-wave scenario: a horizontally drifting
    sinusoidal potential-temperature perturbation."""
    config = config or WeatherConfig()
    state = init_thermal_bubble(config, amplitude=0.0)
    z = (np.arange(config.nz) + 0.5) * config.dz
    x = (np.arange(config.nx) + 0.5) * config.dx
    xx, zz = np.meshgrid(x, z)
    theta_pert = amplitude * np.sin(2 * np.pi * xx / config.xlen) \
        * np.sin(np.pi * zz / config.zlen)
    state.q[3] = state.hy_dens[:, None] * theta_pert
    state.q[1] = state.hy_dens[:, None] * u0      # uniform advection
    return state


#: Scenario registry: name -> initializer(config, **kwargs).
SCENARIOS = {
    "thermal": init_thermal_bubble,
    "collision": init_colliding_thermals,
    "gravity_wave": init_gravity_wave,
}


def _full_fields(state: WeatherState):
    """Recover full rho, u, w, rho*theta from perturbations."""
    q = state.q
    rho = q[0] + state.hy_dens[:, None]
    rho_theta = q[3] + state.hy_dens_theta[:, None]
    u = q[1] / rho
    w = q[2] / rho
    return rho, u, w, rho_theta


def max_wave_speed(state: WeatherState) -> float:
    """|velocity| + sound speed, for the CFL bound."""
    rho, u, w, rho_theta = _full_fields(state)
    p = _C0 * rho_theta ** _GAMMA
    cs = np.sqrt(_GAMMA * p / rho)
    return float(np.max(np.sqrt(u * u + w * w) + cs))


def _flux_x(rho, u, w, rho_theta, p):
    """Physical x-direction fluxes of (rho, rho u, rho w, rho theta)."""
    return np.stack([rho * u,
                     rho * u * u + p,
                     rho * u * w,
                     rho_theta * u])


def _flux_z(rho, u, w, rho_theta, p):
    return np.stack([rho * w,
                     rho * u * w,
                     rho * w * w + p,
                     rho_theta * w])


def _sweep_x(state: WeatherState, dt: float) -> None:
    cfg = state.config
    rho, u, w, rho_theta = _full_fields(state)
    p = _C0 * rho_theta ** _GAMMA
    cons = np.stack([rho, rho * u, rho * w, rho_theta])
    flux = _flux_x(rho, u, w, rho_theta, p)
    cs = np.sqrt(_GAMMA * p / rho)
    lam = np.abs(u) + cs

    # Periodic x: pad one ghost cell each side.
    cons_p = np.concatenate([cons[..., -1:], cons, cons[..., :1]], axis=-1)
    flux_p = np.concatenate([flux[..., -1:], flux, flux[..., :1]], axis=-1)
    lam_p = np.concatenate([lam[..., -1:], lam, lam[..., :1]], axis=-1)

    lam_face = np.maximum(lam_p[..., :-1], lam_p[..., 1:])    # (nz, nx+1)
    f_face = 0.5 * (flux_p[..., :-1] + flux_p[..., 1:]) \
        - 0.5 * cfg.dissipation * lam_face[None] \
        * (cons_p[..., 1:] - cons_p[..., :-1])
    state.q -= (dt / cfg.dx) * (f_face[..., 1:] - f_face[..., :-1])


def _sweep_z(state: WeatherState, dt: float) -> None:
    """Vertical sweep, well-balanced against the hydrostatic background.

    The numerical flux and its Rusanov dissipation act on *perturbation*
    variables: the background contributes only its pressure to the
    vertical momentum flux, whose discrete gradient cancels the
    ``-g*rho_bg`` weight exactly, so an unperturbed atmosphere is a
    steady state of the scheme (the same well-balancing MiniWeather
    achieves by fluxing cell perturbations).
    """
    cfg = state.config
    rho, u, w, rho_theta = _full_fields(state)
    p = _C0 * rho_theta ** _GAMMA
    p_bg = _C0 * state.hy_dens_theta ** _GAMMA          # (nz,)
    bg = np.zeros_like(state.q)
    bg[0] = state.hy_dens[:, None]
    bg[3] = state.hy_dens_theta[:, None]

    cons_pert = np.stack([rho, rho * u, rho * w, rho_theta]) - bg
    flux = _flux_z(rho, u, w, rho_theta, p)
    flux[2] -= p_bg[:, None]        # perturbation pressure in momentum flux
    cs = np.sqrt(_GAMMA * p / rho)
    lam = np.abs(w) + cs

    # Rigid free-slip walls: mirror perturbation cells with reflected w.
    def wall(arr, flip_w=False):
        lo = arr[..., :1, :].copy()
        hi = arr[..., -1:, :].copy()
        if flip_w:
            lo[2] *= -1
            hi[2] *= -1
        return np.concatenate([lo, arr, hi], axis=-2)

    cons_p = wall(cons_pert, flip_w=True)
    flux_p = wall(flux, flip_w=False)
    # Wall fluxes: reflect the vertical mass/theta flux (w -> -w) and
    # keep the pressure term symmetric.
    flux_p[0, 0] *= -1
    flux_p[0, -1] *= -1
    flux_p[1, 0] *= -1
    flux_p[1, -1] *= -1
    flux_p[3, 0] *= -1
    flux_p[3, -1] *= -1
    lam_p = wall(lam[None])[0]

    lam_face = np.maximum(lam_p[:-1, :], lam_p[1:, :])
    f_face = 0.5 * (flux_p[:, :-1] + flux_p[:, 1:]) \
        - 0.5 * cfg.dissipation * lam_face[None] \
        * (cons_p[:, 1:] - cons_p[:, :-1])
    state.q -= (dt / cfg.dz) * (f_face[:, 1:] - f_face[:, :-1])
    # Buoyancy source on vertical momentum: -g * rho'.
    state.q[2] -= dt * _GRAV * state.q[0]


def step(state: WeatherState, dt: float | None = None) -> float:
    """Advance one timestep (dimensional splitting x/z); returns dt."""
    if dt is None:
        dt = CFL * min(state.config.dx, state.config.dz) / max_wave_speed(state)
    # Alternate sweep order each step (Strang-style) for 2nd-order splitting.
    if state.step_count % 2 == 0:
        _sweep_x(state, dt)
        _sweep_z(state, dt)
    else:
        _sweep_z(state, dt)
        _sweep_x(state, dt)
    state.time += dt
    state.step_count += 1
    return dt


def run(state: WeatherState, n_steps: int, dt: float | None = None) -> WeatherState:
    """March ``n_steps`` timesteps in place; returns the state."""
    for _ in range(n_steps):
        step(state, dt)
    return state
