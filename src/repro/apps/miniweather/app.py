"""MiniWeather HPAC-ML integration.

Matches the paper's Table II row: MiniWeather is an iterative solver
re-using the same memory for an iteration's input and output, so the
annotation uses the ``inout`` clause — 3 directives total (one functor,
one map reused for both directions via ``to`` and ``from`` on the same
array, and the ``ml`` directive).

The ``if``-clause interleaving of Fig. 9 is driven through the region's
``step``/``ratio`` arguments: ``if(step % cycle >= surrogate_start)``
patterns run the accurate solver on some steps and the surrogate on
the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...api import approx_ml
from ...runtime import EventLog
from ..base import BenchmarkInfo, register
from .kernel import WeatherConfig, WeatherState, init_thermal_bubble, step

__all__ = ["INFO", "Workload", "generate_workload", "run_accurate",
           "build_region", "DIRECTIVES", "state_array", "load_state"]

INFO = register(BenchmarkInfo(
    name="miniweather",
    description="Simulates atmospheric dynamics through essential weather "
                "and climate modeling equations, emphasizing buoyant force "
                "impacts.",
    qoi="Simulation state variables (density, x momentum, z momentum, "
        "potential temperature) at each gridpoint",
    metric="rmse",
    surrogate_family="cnn",
    module=__name__,
))

DIRECTIVES = """
#pragma approx tensor functor(state_f: \\
    [b, 0:4, 0:NZ, 0:NX] = ([b, 0:4, 0:NZ, 0:NX]))
#pragma approx tensor map(to: state_f(u[0:1]))
#pragma approx tensor map(from: state_f(u[0:1]))
#pragma approx ml({mode}:use_model) inout(u) db("{db}") model("{model}")
"""


@dataclass
class Workload:
    state: WeatherState
    n_steps: int = 200
    dt: float = 0.25

    @property
    def config(self) -> WeatherConfig:
        return self.state.config


def generate_workload(nx: int = 64, nz: int = 32, n_steps: int = 200,
                      amplitude: float = 10.0, seed: int = 0) -> Workload:
    cfg = WeatherConfig(nx=nx, nz=nz)
    state = init_thermal_bubble(cfg, amplitude=amplitude)
    # Fixed dt at 80% of the initial CFL bound keeps every run
    # reproducible and every surrogate step commensurate.
    from .kernel import CFL, max_wave_speed
    dt = 0.8 * CFL * min(cfg.dx, cfg.dz) / max_wave_speed(state)
    return Workload(state=state, n_steps=n_steps, dt=dt)


def state_array(state: WeatherState) -> np.ndarray:
    """The (1, 4, nz, nx) batch view the tensor functor maps."""
    q = state.q
    return np.ascontiguousarray(q[None])


def load_state(state: WeatherState, u: np.ndarray) -> None:
    state.q[...] = u[0]


def run_accurate(workload: Workload) -> np.ndarray:
    """March the accurate solver; QoI = final state fields."""
    st = WeatherState(q=workload.state.q.copy(),
                      hy_dens=workload.state.hy_dens,
                      hy_dens_theta=workload.state.hy_dens_theta,
                      config=workload.config)
    for _ in range(workload.n_steps):
        step(st, workload.dt)
    return st.q.copy()


def build_region(*, mode: str = "predicated",
                 state: WeatherState, dt: float,
                 db_path: str = "miniweather.rh5",
                 model_path: str = "miniweather.rnm",
                 event_log: EventLog | None = None, engine=None):
    """Create the annotated timestep region.

    The region advances the (1, 4, nz, nx) array ``u`` by one timestep
    in place: the accurate path unpacks it into the solver state and
    repacks; the surrogate path feeds it straight through the CNN.
    """
    nz, nx = state.config.nz, state.config.nx

    # Auto-regressive stepping on a batch of one: shadow row
    # sub-sampling can never apply — opt out explicitly.
    @approx_ml(DIRECTIVES.format(mode=mode, db=db_path, model=model_path),
               name="miniweather", event_log=event_log, engine=engine,
               row_subsample=False)
    def do_timestep(u, NZ, NX, use_model=False):
        st = WeatherState(q=u[0], hy_dens=state.hy_dens,
                          hy_dens_theta=state.hy_dens_theta,
                          config=state.config)
        step(st, dt)

    def timestep(u, use_model=False):
        return do_timestep(u, nz, nx, use_model=use_model)

    timestep.region = do_timestep
    return timestep
