"""particlefilter benchmark (see app.py for the HPAC-ML integration)."""
from .app import (INFO, Workload, generate_workload, run_accurate,
                  build_region, DIRECTIVES)
from . import kernel
