"""ParticleFilter: statistical object tracking in video (Table I row 5).

Port of the Rodinia particle filter: estimate a target object's
location in each frame of a (synthetic) video given noisy measurements,
using sequential importance resampling over ``N`` particles.  The
Rodinia workload synthesizes its video too — a bright disc moving on a
noisy background — so this generator reproduces the real benchmark's
input, not a stand-in.

The filter is itself an *algorithmic approximation* (paper Observation
1: its RMSE is ~0.5 on this workload); the surrogate CNN replaces the
whole likelihood/resample pipeline with per-frame location regression.

QoI: the estimated (x, y) location per frame.  Metric: RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VideoWorkload", "generate_video", "particle_filter_track",
           "true_dynamics"]


@dataclass
class VideoWorkload:
    frames: np.ndarray        # (F, H, W) float in [0, 1]
    truth: np.ndarray         # (F, 2) ground-truth (y, x) locations


def true_dynamics(n_frames: int, height: int, width: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Rodinia-style piecewise-smooth target path with process noise."""
    pos = np.empty((n_frames, 2))
    pos[0] = (height * 0.3, width * 0.3)
    vel = np.array([1.0, 2.0])
    for f in range(1, n_frames):
        vel = vel + rng.normal(scale=0.35, size=2)
        vel = np.clip(vel, -3.0, 3.0)
        pos[f] = pos[f - 1] + vel
        # Reflect off the borders, keeping the object inside the frame.
        for d, limit in ((0, height), (1, width)):
            if pos[f, d] < 4:
                pos[f, d] = 8 - pos[f, d]
                vel[d] = abs(vel[d])
            elif pos[f, d] > limit - 5:
                pos[f, d] = 2 * (limit - 5) - pos[f, d]
                vel[d] = -abs(vel[d])
    return pos


def generate_video(n_frames: int = 64, height: int = 64, width: int = 64,
                   radius: float = 3.0, noise: float = 0.15,
                   seed: int = 0) -> VideoWorkload:
    """Synthesize the tracking video: bright disc + Gaussian pixel noise."""
    rng = np.random.default_rng(seed)
    truth = true_dynamics(n_frames, height, width, rng)
    yy, xx = np.mgrid[0:height, 0:width]
    frames = np.empty((n_frames, height, width))
    for f in range(n_frames):
        cy, cx = truth[f]
        blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2)
                        / (2.0 * radius ** 2)))
        frames[f] = np.clip(blob + rng.normal(scale=noise,
                                              size=(height, width)), 0.0, 1.0)
    return VideoWorkload(frames=frames, truth=truth)


def _likelihood(frame: np.ndarray, particles: np.ndarray,
                radius: float) -> np.ndarray:
    """Foreground-vs-background intensity likelihood per particle.

    Rodinia compares pixel values inside a disc template around each
    particle against expected foreground/background intensities; here
    the template is a 3x3 neighborhood average (vectorized across all
    particles at once).
    """
    h, w = frame.shape
    y = np.clip(particles[:, 0].round().astype(int), 1, h - 2)
    x = np.clip(particles[:, 1].round().astype(int), 1, w - 2)
    patch = np.zeros(len(particles))
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            patch += frame[y + dy, x + dx]
    patch /= 9.0
    # Log-likelihood: bright patch (foreground ~1) vs background (~0).
    return patch * 24.0


def particle_filter_track(frames: np.ndarray, n_particles: int = 512,
                          radius: float = 3.0, process_noise: float = 1.5,
                          seed: int = 1) -> np.ndarray:
    """Run sequential importance resampling; return (F, 2) estimates.

    As in Rodinia, the filter is seeded near the object's initial
    location — here taken from the brightest smoothed pixel of frame 0
    (the measurement available to the real application).
    """
    rng = np.random.default_rng(seed)
    n_frames, h, w = frames.shape
    # Smooth frame 0 with a 3x3 box to find the seed location.
    f0 = frames[0]
    smooth = (f0[:-2, :-2] + f0[:-2, 1:-1] + f0[:-2, 2:]
              + f0[1:-1, :-2] + f0[1:-1, 1:-1] + f0[1:-1, 2:]
              + f0[2:, :-2] + f0[2:, 1:-1] + f0[2:, 2:]) / 9.0
    seed_y, seed_x = np.unravel_index(np.argmax(smooth), smooth.shape)
    particles = np.empty((n_particles, 2))
    particles[:, 0] = seed_y + 1 + rng.normal(scale=2.0, size=n_particles)
    particles[:, 1] = seed_x + 1 + rng.normal(scale=2.0, size=n_particles)
    weights = np.full(n_particles, 1.0 / n_particles)
    estimates = np.empty((n_frames, 2))

    for f in range(n_frames):
        # Propagate with process noise (the motion model).
        particles += rng.normal(scale=process_noise, size=particles.shape)
        particles[:, 0] = np.clip(particles[:, 0], 0, h - 1)
        particles[:, 1] = np.clip(particles[:, 1], 0, w - 1)
        # Weight by likelihood.
        loglik = _likelihood(frames[f], particles, radius)
        weights = weights * np.exp(loglik - loglik.max())
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            weights = np.full(n_particles, 1.0 / n_particles)
        else:
            weights /= total
        estimates[f] = (weights[:, None] * particles).sum(axis=0)
        # Systematic resampling when effective sample size collapses.
        ess = 1.0 / np.sum(weights ** 2)
        if ess < n_particles / 2:
            positions = (rng.random() + np.arange(n_particles)) / n_particles
            idx = np.searchsorted(np.cumsum(weights), positions)
            idx = np.clip(idx, 0, n_particles - 1)
            particles = particles[idx]
            weights = np.full(n_particles, 1.0 / n_particles)
    return estimates
