"""ParticleFilter HPAC-ML integration.

The surrogate replaces the *entire* filter (likelihood, resampling,
estimation — "three distinct GPU kernels" in the paper) with a CNN that
regresses the object location from each raw frame.  The functor maps
every frame to a (1, H, W) image tensor entry; the output functor maps
the per-frame (y, x) estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...api import approx_ml
from ...runtime import EventLog
from ..base import BenchmarkInfo, register
from .kernel import VideoWorkload, generate_video, particle_filter_track

__all__ = ["INFO", "Workload", "generate_workload", "run_accurate",
           "build_region", "DIRECTIVES"]

INFO = register(BenchmarkInfo(
    name="particlefilter",
    description="Statistical estimation of a target object's location "
                "given noisy measurements.",
    qoi="The location of the object",
    metric="rmse",
    surrogate_family="cnn",
    module=__name__,
))

DIRECTIVES = """
#pragma approx tensor functor(frame_in: \\
    [f, 0:1, 0:H, 0:W] = ([f, 0:H, 0:W]))
#pragma approx tensor functor(loc_out: [f, 0:2] = ([f, 0:2]))
#pragma approx tensor map(to: frame_in(frames[0:NF]))
#pragma approx tensor map(from: loc_out(locations[0:NF]))
#pragma approx ml({mode}:use_model) in(frames) out(locations) \\
    db("{db}") model("{model}")
"""

Workload = VideoWorkload


def generate_workload(n_frames: int = 64, height: int = 64, width: int = 64,
                      seed: int = 0) -> VideoWorkload:
    return generate_video(n_frames=n_frames, height=height, width=width,
                          seed=seed)


def run_accurate(workload: VideoWorkload, n_particles: int = 512,
                 seed: int = 1) -> np.ndarray:
    """QoI: per-frame location estimates from the particle filter."""
    return particle_filter_track(workload.frames, n_particles=n_particles,
                                 seed=seed)


def build_region(*, mode: str = "predicated",
                 n_particles: int = 512,
                 db_path: str = "particlefilter.rh5",
                 model_path: str = "particlefilter.rnm",
                 event_log: EventLog | None = None, engine=None,
                 collect_truth: np.ndarray | None = None,
                 auto_batch: bool = False, max_batch_rows: int = 256):
    """Create the annotated region.

    ``collect_truth`` mirrors the paper's setup: "the HPAC-ML version of
    PF captures the ground-truth values to create the training dataset"
    — during collection the region writes the *ground-truth* locations
    (available from the synthetic video generator) rather than the
    filter's estimates, so the surrogate can learn to beat the filter.
    """

    # The filter carries particle state across the frames of an
    # invocation, so validating a row subset would re-seed it on a
    # different trajectory: shadow row sub-sampling is unsound here.
    @approx_ml(DIRECTIVES.format(mode=mode, db=db_path, model=model_path),
               name="particlefilter", event_log=event_log, engine=engine,
               auto_batch=auto_batch, max_batch_rows=max_batch_rows,
               row_subsample=False)
    def track(frames, locations, NF, H, W, use_model=False):
        if collect_truth is not None and not use_model:
            locations[:NF] = collect_truth[:NF]
        else:
            locations[:NF] = particle_filter_track(
                frames[:NF], n_particles=n_particles)

    return track
