"""``repro.apps`` — the five Table I evaluation mini-apps.

Importing this package registers every benchmark in
:data:`repro.apps.base.REGISTRY`.
"""

from .base import BenchmarkInfo, REGISTRY, register, qoi_error_fn
from . import minibude, binomial, bonds, miniweather, particlefilter

__all__ = ["BenchmarkInfo", "REGISTRY", "register", "qoi_error_fn",
           "minibude", "binomial", "bonds", "miniweather", "particlefilter"]
