"""MiniBUDE HPAC-ML integration: annotated region + harness hooks.

The annotation mirrors the paper's Table II accounting: two tensor
functors (input poses, output energies), one input map, one output map,
and the ``approx ml`` directive — 4 directives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...api import approx_ml
from ...runtime import EventLog
from ..base import BenchmarkInfo, register
from .kernel import Deck, binding_energies, generate_deck, generate_poses

__all__ = ["INFO", "Workload", "generate_workload", "run_accurate",
           "build_region", "DIRECTIVES"]

INFO = register(BenchmarkInfo(
    name="minibude",
    description="Virtual screening in molecular docking: poses scored by "
                "an empirical forcefield for ligand-protein binding energy.",
    qoi="Ligand-protein binding energy for each pose",
    metric="mape",
    surrogate_family="mlp",
    module=__name__,
))

DIRECTIVES = """
#pragma approx tensor functor(pose_in: [p, 0:6] = ([p, 0:6]))
#pragma approx tensor functor(energy_out: [p, 0:1] = ([p]))
#pragma approx tensor map(to: pose_in(poses[0:NP]))
#pragma approx tensor map(from: energy_out(energies[0:NP]))
#pragma approx ml({mode}:use_model) in(poses) out(energies) \\
    db("{db}") model("{model}")
"""


@dataclass
class Workload:
    deck: Deck
    poses: np.ndarray       # (NP, 6)

    @property
    def n_poses(self) -> int:
        return len(self.poses)


def generate_workload(n_poses: int = 2048, seed: int = 0) -> Workload:
    return Workload(deck=generate_deck(seed=seed),
                    poses=generate_poses(n_poses, seed=seed + 1))


def run_accurate(workload: Workload) -> np.ndarray:
    """The original application: score every pose. QoI = energies."""
    return binding_energies(workload.deck, workload.poses)


def build_region(*, mode: str = "predicated",
                 deck: Deck, db_path: str = "minibude.rh5",
                 model_path: str = "minibude.rnm",
                 event_log: EventLog | None = None, engine=None,
                 auto_batch: bool = False, max_batch_rows: int = 256):
    """Create the annotated region; ``deck`` is captured like the
    application's constant global docking data."""

    # Poses score independently: shadow validation may sub-sample rows
    # of an invocation (``QoSController(shadow_rows=...)``).
    @approx_ml(DIRECTIVES.format(mode=mode, db=db_path, model=model_path),
               name="minibude", event_log=event_log, engine=engine,
               auto_batch=auto_batch, max_batch_rows=max_batch_rows,
               row_subsample=True)
    def score_poses(poses, energies, NP, use_model=False):
        energies[:NP] = binding_energies(deck, poses[:NP])

    return score_poses
