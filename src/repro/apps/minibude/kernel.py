"""MiniBUDE: virtual-screening molecular docking (Table I row 1).

The real MiniBUDE [Poenaru et al. 2021] evaluates an empirical
forcefield between a ligand placed in many rigid-body *poses* and a
target protein, producing one binding-energy estimate per pose.  This
port keeps the computational structure — per pose: build the rotation
from the pose's Euler angles, transform every ligand atom, accumulate
pairwise ligand–protein interaction terms — with a BUDE-style
forcefield of steric (soft Lennard-Jones), electrostatic, and
desolvation contributions.

QoI: the binding energy per pose.  Metric: MAPE (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Deck", "generate_deck", "generate_poses", "binding_energies",
           "pose_rotation_matrices"]

# Forcefield constants (BUDE-like magnitudes; shapes, not exact values,
# are what matter for the reproduction).
_ELEC_SCALE = 332.0637          # kcal mol^-1 Å e^-2 Coulomb prefactor
_DIEL = 4.0                     # distance-dependent dielectric factor
_LJ_EPS = 0.2                   # well depth scale
_CUTOFF = 12.0                  # interaction cutoff (Å)
#: Unbound-state reference energy.  BUDE reports binding energy
#: relative to the separated ligand+protein state; the constant offset
#: also keeps the QoI away from zero, where MAPE (Table I's metric for
#: this benchmark) is undefined in practice.
_E_REF = -60.0


@dataclass(frozen=True)
class Deck:
    """A docking problem: protein and ligand atoms with FF parameters."""

    protein_pos: np.ndarray    # (P, 3)
    protein_charge: np.ndarray  # (P,)
    protein_radius: np.ndarray  # (P,)
    ligand_pos: np.ndarray     # (L, 3) centered at origin
    ligand_charge: np.ndarray  # (L,)
    ligand_radius: np.ndarray  # (L,)


def generate_deck(n_protein: int = 64, n_ligand: int = 16,
                  seed: int = 0) -> Deck:
    """Synthesize a protein pocket and a small ligand.

    The protein atoms form a rough spherical shell (a binding pocket);
    the ligand is a compact cluster at the origin.  Stands in for the
    paper's 16M-pose BUDE deck (DESIGN.md §2).
    """
    rng = np.random.default_rng(seed)
    # Pocket: atoms on a shell of radius ~8 Å with jitter.
    directions = rng.normal(size=(n_protein, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = 8.0 + rng.normal(scale=1.5, size=(n_protein, 1))
    protein_pos = directions * radii
    protein_charge = rng.uniform(-0.5, 0.5, n_protein)
    protein_radius = rng.uniform(1.2, 2.0, n_protein)
    # Ligand: compact blob.
    ligand_pos = rng.normal(scale=1.5, size=(n_ligand, 3))
    ligand_pos -= ligand_pos.mean(axis=0)
    ligand_charge = rng.uniform(-0.4, 0.4, n_ligand)
    ligand_radius = rng.uniform(1.0, 1.8, n_ligand)
    return Deck(protein_pos, protein_charge, protein_radius,
                ligand_pos, ligand_charge, ligand_radius)


def generate_poses(n_poses: int, seed: int = 1,
                   angle_range: float = np.pi / 4,
                   translation_range: float = 1.5) -> np.ndarray:
    """Rigid-body poses: (n, 6) = 3 Euler angles + 3 translations (Å).

    Docking pose generators perturb around the binding site rather than
    sweeping all of SO(3); the default ranges match that regime (and
    keep the pose->energy landscape in the band a laptop-scale MLP can
    learn — the paper throws 16M poses and up-to-4096-wide networks at
    the full-range version).
    """
    rng = np.random.default_rng(seed)
    angles = rng.uniform(-angle_range, angle_range, size=(n_poses, 3))
    trans = rng.uniform(-translation_range, translation_range,
                        size=(n_poses, 3))
    return np.concatenate([angles, trans], axis=1)


def pose_rotation_matrices(poses: np.ndarray) -> np.ndarray:
    """ZYX Euler-angle rotation matrices for every pose, shape (n, 3, 3)."""
    a, b, c = poses[:, 0], poses[:, 1], poses[:, 2]
    ca, sa = np.cos(a), np.sin(a)
    cb, sb = np.cos(b), np.sin(b)
    cc, sc = np.cos(c), np.sin(c)
    rot = np.empty((len(poses), 3, 3))
    rot[:, 0, 0] = cb * cc
    rot[:, 0, 1] = sa * sb * cc - ca * sc
    rot[:, 0, 2] = ca * sb * cc + sa * sc
    rot[:, 1, 0] = cb * sc
    rot[:, 1, 1] = sa * sb * sc + ca * cc
    rot[:, 1, 2] = ca * sb * sc - sa * cc
    rot[:, 2, 0] = -sb
    rot[:, 2, 1] = sa * cb
    rot[:, 2, 2] = ca * cb
    return rot


def binding_energies(deck: Deck, poses: np.ndarray,
                     block: int = 256) -> np.ndarray:
    """Evaluate the empirical forcefield for every pose.

    Processes poses in blocks so the (block, L, P) pairwise tensors stay
    cache-resident — the NumPy analogue of MiniBUDE's pose-per-thread
    GPU tiling.  Returns energies of shape ``(n_poses,)``.
    """
    n = len(poses)
    energies = np.empty(n)
    lig = deck.ligand_pos                         # (L, 3)
    pro = deck.protein_pos                        # (P, 3)
    qq = np.outer(deck.ligand_charge, deck.protein_charge)      # (L, P)
    rsum = deck.ligand_radius[:, None] + deck.protein_radius[None, :]

    for start in range(0, n, block):
        chunk = poses[start:start + block]
        rot = pose_rotation_matrices(chunk)                      # (B, 3, 3)
        moved = np.einsum("bij,lj->bli", rot, lig) + chunk[:, None, 3:]
        diff = moved[:, :, None, :] - pro[None, None, :, :]      # (B, L, P, 3)
        # Soft-core distance: caps contact singularities the way BUDE's
        # piecewise-linear empirical terms do, keeping the pose->energy
        # landscape smooth (surrogate-learnable) while preserving the
        # short-range repulsion / long-range attraction structure.
        dist = np.sqrt((diff * diff).sum(axis=-1) + 1.0)         # (B, L, P)
        mask = dist < _CUTOFF
        # Electrostatics with distance-dependent dielectric.
        elec = _ELEC_SCALE * qq[None] / (_DIEL * dist * dist)
        # Soft steric term (LJ-like on the softened distance).
        ratio = rsum[None] / dist
        steric = _LJ_EPS * (ratio ** 6 - 2.0 * ratio ** 3)
        # Desolvation: short-range burial penalty.
        desolv = 0.05 * np.exp(-dist / 3.0)
        total = (elec + steric + desolv) * mask
        energies[start:start + block] = total.sum(axis=(1, 2)) + _E_REF
    return energies
