"""Bonds: fixed-rate bond valuation with a flat forward curve (Table I).

Ports the Grauer-Gray et al. GPU financial benchmark: for each bond,
build the semiannual cashflow schedule between issue and maturity,
discount every flow on a flat continuously-compounded forward curve,
and compute the accrued interest at settlement under a 30/360 day-count
convention.

QoI: the accrued interest per bond.  Metric: RMSE (Table I).
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_bonds", "bond_values", "accrued_interest",
           "bond_yields", "PARAM_NAMES", "day_count_30_360"]

#: Column layout of a bonds matrix: years to maturity, coupon rate,
#: forward (yield) rate, settlement offset within the current coupon
#: period (fraction in [0,1)), face value.
PARAM_NAMES = ("maturity", "coupon", "rate", "settle_frac", "face")

_FREQ = 2  # semiannual coupons


def generate_bonds(n_bonds: int, seed: int = 0) -> np.ndarray:
    """Synthesize a bond portfolio with QuantLib-sample-like ranges."""
    rng = np.random.default_rng(seed)
    maturity = rng.uniform(1.0, 30.0, n_bonds)
    coupon = rng.uniform(0.01, 0.10, n_bonds)
    rate = rng.uniform(0.005, 0.12, n_bonds)
    settle_frac = rng.uniform(0.0, 1.0, n_bonds)
    face = np.full(n_bonds, 100.0)
    return np.stack([maturity, coupon, rate, settle_frac, face], axis=1)


def day_count_30_360(frac_of_period: np.ndarray) -> np.ndarray:
    """30/360 accrual fraction for a position inside a coupon period.

    With semiannual periods of 180/360 days, the year fraction accrued
    since the last coupon is ``frac * 0.5`` after 30/360 rounding of
    the day counts; we model the staircase the convention induces by
    quantizing to whole 30/360 days.
    """
    days = np.floor(frac_of_period * 180.0)
    return days / 360.0


def accrued_interest(bonds: np.ndarray) -> np.ndarray:
    """Accrued interest at settlement for every bond (the QoI)."""
    bonds = np.asarray(bonds, dtype=np.float64)
    coupon = bonds[:, 1]
    settle_frac = bonds[:, 3]
    face = bonds[:, 4]
    accrual = day_count_30_360(settle_frac)
    return face * coupon * accrual


def bond_values(bonds: np.ndarray, max_periods: int = 60) -> np.ndarray:
    """Dirty price of every bond on the flat forward curve.

    Vectorized across bonds with a masked cashflow matrix: period ``k``
    pays ``coupon/2 * face`` at time ``(k+1)/2 - settle`` years if it is
    on or before maturity; the face value pays at maturity.
    """
    bonds = np.asarray(bonds, dtype=np.float64)
    maturity = bonds[:, 0]
    coupon = bonds[:, 1]
    rate = bonds[:, 2]
    settle_frac = bonds[:, 3]
    face = bonds[:, 4]

    n_periods = np.minimum(np.ceil(maturity * _FREQ).astype(int),
                           max_periods)
    k = np.arange(max_periods)[None, :]                      # (1, P)
    pay_times = (k + 1) / _FREQ - settle_frac[:, None] / _FREQ
    live = (k < n_periods[:, None]) & (pay_times > 0)
    discount = np.exp(-rate[:, None] * np.maximum(pay_times, 0.0))
    coupon_flows = (coupon[:, None] / _FREQ) * face[:, None] * live
    pv_coupons = (coupon_flows * discount).sum(axis=1)

    t_maturity = np.maximum(maturity - settle_frac / _FREQ, 0.0)
    pv_face = face * np.exp(-rate * t_maturity)
    return pv_coupons + pv_face


def _pv_and_duration(bonds: np.ndarray, rates: np.ndarray,
                     max_periods: int):
    """Present value and its rate-derivative at per-bond trial rates."""
    maturity = bonds[:, 0]
    coupon = bonds[:, 1]
    settle_frac = bonds[:, 3]
    face = bonds[:, 4]
    n_periods = np.minimum(np.ceil(maturity * _FREQ).astype(int),
                           max_periods)
    k = np.arange(max_periods)[None, :]
    pay_times = (k + 1) / _FREQ - settle_frac[:, None] / _FREQ
    live = (k < n_periods[:, None]) & (pay_times > 0)
    tt = np.maximum(pay_times, 0.0)
    discount = np.exp(-rates[:, None] * tt)
    flows = (coupon[:, None] / _FREQ) * face[:, None] * live
    pv = (flows * discount).sum(axis=1)
    dpv = -(flows * discount * tt).sum(axis=1)
    t_mat = np.maximum(maturity - settle_frac / _FREQ, 0.0)
    pv += face * np.exp(-rates * t_mat)
    dpv -= face * np.exp(-rates * t_mat) * t_mat
    return pv, dpv


def bond_yields(bonds: np.ndarray, target_prices: np.ndarray | None = None,
                n_iterations: int = 40, max_periods: int = 60) -> np.ndarray:
    """Yield to maturity via vectorized Newton iteration.

    The original GPU Bonds benchmark [Grauer-Gray et al. 2013] solves
    each bond's yield iteratively from its price — the computationally
    dominant part of the kernel.  Here every Newton step re-discounts
    the full cashflow schedule for all bonds at once.
    """
    bonds = np.asarray(bonds, dtype=np.float64)
    if target_prices is None:
        target_prices = bond_values(bonds, max_periods)
    rates = np.full(len(bonds), 0.05)
    for _ in range(n_iterations):
        pv, dpv = _pv_and_duration(bonds, rates, max_periods)
        step = (pv - target_prices) / np.where(np.abs(dpv) < 1e-12,
                                               -1e-12, dpv)
        rates = np.clip(rates - step, 1e-4, 1.0)
    return rates
