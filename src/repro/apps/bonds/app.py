"""Bonds HPAC-ML integration.

Exercises multi-array outputs: the region produces both the dirty price
and the accrued interest, mapped through two ``from``-direction tensor
maps (the model emits 2 features per bond).  QoI is the accrued
interest (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...api import approx_ml
from ...runtime import EventLog
from ..base import BenchmarkInfo, register
from .kernel import (accrued_interest, bond_values, bond_yields,
                     generate_bonds)

__all__ = ["INFO", "Workload", "generate_workload", "run_accurate",
           "build_region", "DIRECTIVES"]

INFO = register(BenchmarkInfo(
    name="bonds",
    description="Calculates bond valuations and interest payments for "
                "fixed-rate bonds with a flat forward curve.",
    qoi="The accrued interest for each bond",
    metric="rmse",
    surrogate_family="mlp",
    module=__name__,
))

DIRECTIVES = """
#pragma approx tensor functor(bond_in: [b, 0:5] = ([b, 0:5]))
#pragma approx tensor functor(scalar_out: [b, 0:1] = ([b]))
#pragma approx tensor map(to: bond_in(bonds[0:NB]))
#pragma approx tensor map(from: scalar_out(values[0:NB]))
#pragma approx tensor map(from: scalar_out(accrued[0:NB]))
#pragma approx ml({mode}:use_model) in(bonds) out(values, accrued) \\
    db("{db}") model("{model}")
"""


@dataclass
class Workload:
    bonds: np.ndarray     # (N, 5)

    @property
    def n_bonds(self) -> int:
        return len(self.bonds)


def generate_workload(n_bonds: int = 4096, seed: int = 0) -> Workload:
    return Workload(bonds=generate_bonds(n_bonds, seed=seed))


def run_accurate(workload: Workload) -> np.ndarray:
    """QoI: accrued interest.

    The accurate path also performs the benchmark's iterative
    yield-to-maturity solve for every bond — the computationally
    dominant kernel of the original GPU implementation."""
    values = bond_values(workload.bonds)
    bond_yields(workload.bonds, values)
    return accrued_interest(workload.bonds)


def build_region(*, mode: str = "predicated",
                 db_path: str = "bonds.rh5", model_path: str = "bonds.rnm",
                 event_log: EventLog | None = None, engine=None,
                 auto_batch: bool = False, max_batch_rows: int = 256):
    # Bonds value independently: shadow validation may sub-sample rows
    # of an invocation (``QoSController(shadow_rows=...)``).
    @approx_ml(DIRECTIVES.format(mode=mode, db=db_path, model=model_path),
               name="bonds", event_log=event_log, engine=engine,
               auto_batch=auto_batch, max_batch_rows=max_batch_rows,
               row_subsample=True)
    def value_bonds(bonds, values, accrued, NB, use_model=False):
        values[:NB] = bond_values(bonds[:NB])
        bond_yields(bonds[:NB], values[:NB])   # iterative YTM solve
        accrued[:NB] = accrued_interest(bonds[:NB])

    return value_bonds
