"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's A3/A4 驱动 scripts without writing
code:

* ``list``       — show the benchmark suite (Table I).
* ``loc``        — print the Table II annotation accounting.
* ``collect``    — run a benchmark in data-collection mode.
* ``evaluate``   — collect, train a default surrogate, deploy, and
  report speedup/error (a one-benchmark Fig. 5 row).
* ``search``     — run the nested BO architecture search (§V-C) and
  print the Pareto front.
* ``serve``      — collect/train several benchmarks, then serve all of
  their regions from one ``RegionServer`` under a single
  ``QoSArbiter`` error budget and print the fleet roll-up.
* ``stats``      — render the observability dashboard: metrics
  registry, recent traces, and the decision stream, from a small
  in-process demo workload or an exported snapshot JSON.
"""

from __future__ import annotations

import argparse
import sys
import tempfile


def _cmd_list(_args) -> int:
    from .analysis import render_table
    from .apps import REGISTRY
    rows = [{"benchmark": i.name, "metric": i.metric.upper(),
             "family": i.surrogate_family.upper(),
             "qoi": i.qoi[:60]} for i in REGISTRY.values()]
    print(render_table(rows, title="HPAC-ML benchmark suite (Table I)"))
    return 0


def _cmd_loc(_args) -> int:
    from .analysis import render_table, table2_rows
    print(render_table(table2_rows(),
                       title="Annotation impact (Table II)"))
    return 0


def _workdir(args) -> str:
    return args.workdir or tempfile.mkdtemp(prefix="hpacml_cli_")


def _cmd_collect(args) -> int:
    from .apps.harness import harness_for
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    harness.collect()
    print(f"collected training data for {args.benchmark!r} into "
          f"{harness.db_path} ({harness.db_path.stat().st_size / 1e6:.2f} MB)")
    return 0


#: Mid-sized default architecture per benchmark for `evaluate`.
_DEFAULT_ARCH = {
    "minibude": {"num_hidden_layers": 3, "hidden1_size": 256,
                 "feature_multiplier": 0.8},
    "binomial": {"hidden1_features": 160, "hidden2_features": 96},
    "bonds": {"hidden1_features": 160, "hidden2_features": 96},
    "miniweather": {"conv1_kernel": 5, "conv1_channels": 8,
                    "conv2_kernel": 3},
    "particlefilter": {"conv_kernel": 4, "conv_stride": 2,
                       "maxpool_kernel": 2, "fc2_size": 64},
}


def _cmd_evaluate(args) -> int:
    from .apps.harness import harness_for
    from .nn import Trainer
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    print("collecting...")
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)
    model = build(_DEFAULT_ARCH[args.benchmark], seed=args.seed)
    print(f"training ({model.num_parameters()} parameters)...")
    result = Trainer(model, lr=2e-3, batch_size=64,
                     max_epochs=args.epochs,
                     patience=max(5, args.epochs // 4),
                     seed=args.seed).fit(xt, yt, xv, yv)
    metrics = harness.evaluate(model)
    print(f"validation loss : {result.best_val_loss:.5g}")
    print(f"speedup         : {metrics.speedup:.2f}x")
    print(f"QoI error       : {metrics.qoi_error:.5g} "
          f"({harness.info.metric.upper()})")
    return 0


def _cmd_search(args) -> int:
    from .apps.harness import harness_for
    from .search import NestedSearch, arch_space_for
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    print("collecting...")
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)
    search = NestedSearch(arch_space_for(args.benchmark), build,
                          xt, yt, xv, yv, n_inner=args.inner,
                          max_epochs=args.epochs, seed=args.seed)
    print(f"searching ({args.outer} outer x {args.inner} inner trials)...")
    result = search.run(n_outer=args.outer)
    print("Pareto front (latency s, validation error):")
    for t in sorted(result.pareto_trials(), key=lambda t: t.latency):
        print(f"  {t.latency:.5f}s  {t.val_error:.5g}  "
              f"params={t.n_params}  arch={t.arch}")
    return 0


#: Laptop-scale harness sizes for `serve` (keyed by --rows for the
#: row-batched apps; miniweather is step-bounded instead).
def _serve_params(name: str, rows: int) -> dict:
    return {
        "minibude": dict(n_train=1024, n_test=rows),
        "binomial": dict(n_train=1024, n_test=rows, n_steps=48),
        "bonds": dict(n_train=1024, n_test=rows),
        "particlefilter": dict(n_train_frames=192,
                               n_test_frames=min(rows, 64)),
        "miniweather": dict(nx=32, nz=16, train_steps=120, test_steps=30),
    }[name]


def _cmd_serve(args) -> int:
    from pathlib import Path

    from .apps.harness import harness_for
    from .nn import Trainer
    from .serving import (ProcessPoolBackend, QoSArbiter, RegionServer,
                          SerialBackend, ThreadPoolBackend)

    workdir = Path(_workdir(args))
    if args.backend == "process":
        backend = ProcessPoolBackend(workers=args.workers)
    elif args.backend == "thread":
        backend = ThreadPoolBackend()
    else:
        backend = SerialBackend()
    server = RegionServer(backend=backend)
    harnesses = []
    for name in args.benchmarks:
        print(f"[{name}] collecting + training...")
        harness = harness_for(name, workdir / name, seed=args.seed,
                              deploy_chunk=args.chunk, server=server,
                              **_serve_params(name, args.rows))
        harness.collect()
        (xt, yt), (xv, yv) = harness.training_arrays()
        model = harness.make_builder(xt, yt)(_DEFAULT_ARCH[name],
                                             seed=args.seed)
        Trainer(model, lr=2e-3, batch_size=128, max_epochs=args.epochs,
                patience=max(5, args.epochs // 4),
                seed=args.seed).fit(xt, yt, xv, yv)
        harness.install_model(model)
        harnesses.append(harness)

    precision = getattr(args, "precision", "float64")
    precision_policy = None
    if precision == "auto":
        from .qos import PrecisionPolicy
        precision_policy = PrecisionPolicy(seed=args.seed)
    arbiter = QoSArbiter(args.budget, shadow_rate=args.shadow_rate,
                         seed=args.seed, shadow_rows=args.shadow_rows,
                         precision_policy=precision_policy)
    server.attach_qos(arbiter)
    if precision != "float64":
        for name in server.names:
            server.region(name).config.precision = precision
    print(f"serving {len(harnesses)} region(s) on "
          f"{type(backend).__name__} under a global error budget "
          f"of {args.budget} (precision {precision})...")
    for harness in harnesses:
        harness.run_surrogate()
    server.drain()

    snap = arbiter.snapshot()
    for name, st in snap["arbitration"]["regions"].items():
        stats = snap["regions"].get(name, {})
        ewma = stats.get("ewma_mean")
        ewma = "n/a" if ewma is None else f"{ewma:.4g}"
        print(f"  {name:14s} decisions {st['decisions']:5d}  "
              f"inferred {st['inferred']:5d}  denied {st['denied']:5d}  "
              f"ewma err {ewma}")
    rollup = snap["rollup"]
    print(f"global mean charge {snap['arbitration']['global_mean_charge']:.4g}"
          f" (budget {args.budget}); infer fraction "
          f"{rollup['infer_fraction']:.2f}; "
          f"{rollup['shadow_invocations']} shadow validations")
    prec_snap = snap.get("precision")
    if prec_snap:
        for name, st in prec_snap["regions"].items():
            ewma = st.get("ewma")
            ewma = "n/a" if ewma is None else f"{ewma:.3g}"
            print(f"  {name:14s} fp32 divergence ewma {ewma}  "
                  f"samples {st['samples']}  demotions {st['demotions']}")
    server.detach_qos()
    server.backend.close()
    return 0


def _obs_demo(args) -> dict:
    """Serve two tiny regions in-process to populate the registry,
    tracer, and a decision stream; return the combined snapshot."""
    from pathlib import Path

    import numpy as np

    from . import obs
    from .api import approx_ml
    from .nn import Linear, Sequential, save_model
    from .runtime import EventLog
    from .serving import QoSArbiter, RegionServer

    obs.reset()           # drops prior collector registrations, so each
    workdir = Path(_workdir(args))   # region gets a fresh EventLog below
    server = RegionServer()

    def make_region(name, weight):
        model = Sequential(Linear(2, 1, rng=np.random.default_rng(0)))
        model[0].weight.data = np.array([[weight, weight]])
        model[0].bias.data = np.array([0.0])
        save_model(model, workdir / f"{name}.rnm")
        src = f"""
#pragma approx tensor functor(fi: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor functor(fo: [i, 0:1] = ([i]))
#pragma approx tensor map(to: fi(x[0:N]))
#pragma approx tensor map(from: fo(y[0:N]))
#pragma approx ml(infer:use_model) in(x) out(y) \\
    db("{workdir}/{name}.rh5") model("{workdir}/{name}.rnm")
"""

        @approx_ml(src, name=name, event_log=EventLog())
        def region(x, y, N, use_model=False):
            y[:N] = x[:N].sum(axis=1) * weight

        return region

    for name, weight in (("demo_a", 1.0), ("demo_b", 2.0)):
        server.register(make_region(name, weight))
    server.attach_qos(QoSArbiter(0.5, shadow_rate=0.5, seed=args.seed))
    server.attach_breakers()
    server.attach_stream(workdir / "decisions.rh5")

    rng = np.random.default_rng(args.seed)
    for _ in range(args.invocations):
        x = rng.random((8, 2))
        for name in server.names:
            y = np.empty(8)
            server.invoke(name, x, y, 8, use_model=True)
    server.drain()

    snap = obs.snapshot()
    snap["server"] = server.snapshot()
    server.close()
    return snap


def _cmd_stats(args) -> int:
    import json
    from pathlib import Path

    if args.snapshot_file:
        snap = json.loads(Path(args.snapshot_file).read_text())
    else:
        snap = _obs_demo(args)
    if args.out:
        from .ioutil import atomic_write_text
        atomic_write_text(args.out, json.dumps(snap, indent=2, default=str))
        print(f"wrote snapshot to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(snap, indent=2, default=str))
    else:
        from .obs import render_dashboard
        print(render_dashboard(snap, max_traces=args.traces), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HPAC-ML reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite")
    sub.add_parser("loc", help="Table II annotation accounting")

    def add_common(p):
        p.add_argument("benchmark", choices=sorted(_DEFAULT_ARCH))
        p.add_argument("--workdir", default=None)
        p.add_argument("--seed", type=int, default=0)

    p_collect = sub.add_parser("collect", help="run data collection")
    add_common(p_collect)

    p_eval = sub.add_parser("evaluate",
                            help="collect, train, deploy, measure")
    add_common(p_eval)
    p_eval.add_argument("--epochs", type=int, default=40)

    p_search = sub.add_parser("search", help="nested BO NAS (§V-C)")
    add_common(p_search)
    p_search.add_argument("--outer", type=int, default=6)
    p_search.add_argument("--inner", type=int, default=3)
    p_search.add_argument("--epochs", type=int, default=12)

    p_serve = sub.add_parser(
        "serve", help="multi-region RegionServer under one QoS arbiter")
    p_serve.add_argument("benchmarks", nargs="+",
                         choices=sorted(_DEFAULT_ARCH))
    p_serve.add_argument("--workdir", default=None)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--budget", type=float, default=0.05,
                         help="global error budget (shadow-metric units)")
    p_serve.add_argument("--shadow-rate", type=float, default=0.2)
    p_serve.add_argument("--shadow-rows", type=int, default=None,
                         help="validate at most N rows per shadowed "
                              "invocation (row-batched regions)")
    p_serve.add_argument("--backend",
                         choices=("serial", "thread", "process"),
                         default="serial")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="worker processes for --backend process")
    p_serve.add_argument("--epochs", type=int, default=20)
    p_serve.add_argument("--chunk", type=int, default=32)
    p_serve.add_argument("--rows", type=int, default=512,
                         help="test rows per row-batched benchmark")
    p_serve.add_argument("--precision",
                         choices=("float64", "float32", "auto"),
                         default="float64",
                         help="compiled-plan dtype: float64 (default, "
                              "bitwise-identical to historical serving), "
                              "float32 (narrowed plans, ~2x GEMM "
                              "bandwidth, ungoverned), or auto (float32 "
                              "governed by a PrecisionPolicy — fp32/fp64 "
                              "divergence is shadow-sampled, charged to "
                              "the error budget, and a drifting region "
                              "is demoted back to float64)")

    p_stats = sub.add_parser(
        "stats", help="observability dashboard (in-process demo, or "
                      "render an exported snapshot)")
    p_stats.add_argument("--from", dest="snapshot_file", default=None,
                         metavar="FILE",
                         help="render a previously exported snapshot JSON "
                              "instead of running the demo workload")
    p_stats.add_argument("--json", action="store_true",
                         help="dump the snapshot as JSON instead of the "
                              "text dashboard")
    p_stats.add_argument("--out", default=None, metavar="FILE",
                         help="also write the snapshot JSON to FILE "
                              "(crash-safe)")
    p_stats.add_argument("--traces", type=int, default=5,
                         help="recent traces to show in the dashboard")
    p_stats.add_argument("--invocations", type=int, default=24,
                         help="demo invocations per region")
    p_stats.add_argument("--workdir", default=None)
    p_stats.add_argument("--seed", type=int, default=0)
    return parser


_COMMANDS = {"list": _cmd_list, "loc": _cmd_loc, "collect": _cmd_collect,
             "evaluate": _cmd_evaluate, "search": _cmd_search,
             "serve": _cmd_serve, "stats": _cmd_stats}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
