"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's A3/A4 驱动 scripts without writing
code:

* ``list``       — show the benchmark suite (Table I).
* ``loc``        — print the Table II annotation accounting.
* ``collect``    — run a benchmark in data-collection mode.
* ``evaluate``   — collect, train a default surrogate, deploy, and
  report speedup/error (a one-benchmark Fig. 5 row).
* ``search``     — run the nested BO architecture search (§V-C) and
  print the Pareto front.
"""

from __future__ import annotations

import argparse
import sys
import tempfile


def _cmd_list(_args) -> int:
    from .analysis import render_table
    from .apps import REGISTRY
    rows = [{"benchmark": i.name, "metric": i.metric.upper(),
             "family": i.surrogate_family.upper(),
             "qoi": i.qoi[:60]} for i in REGISTRY.values()]
    print(render_table(rows, title="HPAC-ML benchmark suite (Table I)"))
    return 0


def _cmd_loc(_args) -> int:
    from .analysis import render_table, table2_rows
    print(render_table(table2_rows(),
                       title="Annotation impact (Table II)"))
    return 0


def _workdir(args) -> str:
    return args.workdir or tempfile.mkdtemp(prefix="hpacml_cli_")


def _cmd_collect(args) -> int:
    from .apps.harness import harness_for
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    harness.collect()
    print(f"collected training data for {args.benchmark!r} into "
          f"{harness.db_path} ({harness.db_path.stat().st_size / 1e6:.2f} MB)")
    return 0


#: Mid-sized default architecture per benchmark for `evaluate`.
_DEFAULT_ARCH = {
    "minibude": {"num_hidden_layers": 3, "hidden1_size": 256,
                 "feature_multiplier": 0.8},
    "binomial": {"hidden1_features": 160, "hidden2_features": 96},
    "bonds": {"hidden1_features": 160, "hidden2_features": 96},
    "miniweather": {"conv1_kernel": 5, "conv1_channels": 8,
                    "conv2_kernel": 3},
    "particlefilter": {"conv_kernel": 4, "conv_stride": 2,
                       "maxpool_kernel": 2, "fc2_size": 64},
}


def _cmd_evaluate(args) -> int:
    from .apps.harness import harness_for
    from .nn import Trainer
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    print("collecting...")
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)
    model = build(_DEFAULT_ARCH[args.benchmark], seed=args.seed)
    print(f"training ({model.num_parameters()} parameters)...")
    result = Trainer(model, lr=2e-3, batch_size=64,
                     max_epochs=args.epochs,
                     patience=max(5, args.epochs // 4),
                     seed=args.seed).fit(xt, yt, xv, yv)
    metrics = harness.evaluate(model)
    print(f"validation loss : {result.best_val_loss:.5g}")
    print(f"speedup         : {metrics.speedup:.2f}x")
    print(f"QoI error       : {metrics.qoi_error:.5g} "
          f"({harness.info.metric.upper()})")
    return 0


def _cmd_search(args) -> int:
    from .apps.harness import harness_for
    from .search import NestedSearch, arch_space_for
    harness = harness_for(args.benchmark, _workdir(args), seed=args.seed)
    print("collecting...")
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    build = harness.make_builder(xt, yt)
    search = NestedSearch(arch_space_for(args.benchmark), build,
                          xt, yt, xv, yv, n_inner=args.inner,
                          max_epochs=args.epochs, seed=args.seed)
    print(f"searching ({args.outer} outer x {args.inner} inner trials)...")
    result = search.run(n_outer=args.outer)
    print("Pareto front (latency s, validation error):")
    for t in sorted(result.pareto_trials(), key=lambda t: t.latency):
        print(f"  {t.latency:.5f}s  {t.val_error:.5g}  "
              f"params={t.n_params}  arch={t.arch}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HPAC-ML reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite")
    sub.add_parser("loc", help="Table II annotation accounting")

    def add_common(p):
        p.add_argument("benchmark", choices=sorted(_DEFAULT_ARCH))
        p.add_argument("--workdir", default=None)
        p.add_argument("--seed", type=int, default=0)

    p_collect = sub.add_parser("collect", help="run data collection")
    add_common(p_collect)

    p_eval = sub.add_parser("evaluate",
                            help="collect, train, deploy, measure")
    add_common(p_eval)
    p_eval.add_argument("--epochs", type=int, default=40)

    p_search = sub.add_parser("search", help="nested BO NAS (§V-C)")
    add_common(p_search)
    p_search.add_argument("--outer", type=int, default=6)
    p_search.add_argument("--inner", type=int, default=3)
    p_search.add_argument("--epochs", type=int, default=12)
    return parser


_COMMANDS = {"list": _cmd_list, "loc": _cmd_loc, "collect": _cmd_collect,
             "evaluate": _cmd_evaluate, "search": _cmd_search}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
