"""``repro.qos`` — online quality-of-service for deployed surrogates.

Closes the loop the paper leaves open: HPAC-ML decides infer-vs-collect
from static host expressions and measures QoI error only offline.  This
subsystem estimates error *online* via shadow validation (sampled
invocations also run the accurate kernel), maintains rolling per-region
statistics, and lets pluggable policies adapt the execution path —
tripping back to the accurate kernel, capping an error budget, or
answering detected drift with collection bursts that refresh the
training database.

Wiring: construct a :class:`QoSController` and hand it to a region via
``RegionConfig(qos=...)`` / ``approx_ml(..., qos=...)``, or use
``AppHarness.deploy_with_qos`` for measured deployments.  With no
controller attached the runtime hot path is untouched.
"""

from .monitor import (EwmaStats, P2Quantile, PageHinkley, PathDecision,
                      QoSController, RegionErrorStats, ShadowValidator)
from .policy import (BudgetArbitrationPolicy, CompositePolicy,
                     DriftBurstPolicy, ErrorBudgetPolicy,
                     PeriodicRecalibrationPolicy, PolicyAction, QoSPolicy,
                     ThresholdPolicy)
from .precision import PrecisionPolicy
from .telemetry import QoSTelemetry, phase_summary

__all__ = [
    "EwmaStats", "P2Quantile", "PageHinkley", "RegionErrorStats",
    "ShadowValidator", "PathDecision", "QoSController",
    "QoSPolicy", "PolicyAction", "ThresholdPolicy", "ErrorBudgetPolicy",
    "DriftBurstPolicy", "PeriodicRecalibrationPolicy",
    "BudgetArbitrationPolicy", "CompositePolicy", "PrecisionPolicy",
    "QoSTelemetry", "phase_summary",
]
