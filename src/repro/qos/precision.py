"""Precision governance: float32 plan execution under the error budget.

Numeric precision is the paper's approximation trade on a second axis:
a narrowed (float32) compiled plan halves memory traffic on the
GEMM-bound shapes, at the price of ~1e-7-relative divergence from the
float64 plan — usually negligible, but *assumed* nowhere.  A
:class:`PrecisionPolicy` makes the narrowing governed the same way the
surrogate itself is:

* **shadow sampling** — a seeded Bernoulli fraction of float32
  invocations also runs the float64 plan (the
  :class:`~repro.qos.ShadowValidator` machinery), turning each sample
  into a measured fp32-vs-fp64 divergence;
* **budget charging** — every observed divergence is charged to the
  region's error-budget ledger (``QoSController.charge_budget``), so
  precision loss and surrogate error spend the same global allowance;
* **breaker hysteresis** — when the divergence EWMA breaches ``high``
  the region is demoted to float64; while demoted, every
  ``probe_interval``-th invocation re-measures in float32, and the
  region is promoted back once the EWMA decays under ``low``
  (``high / 4`` by default), so a transient ill-conditioned batch does
  not pin a healthy region on the slow path forever.

Regions opt in via ``RegionConfig(precision="auto")``; the policy
rides the controller (``QoSController(precision_policy=...)``) or is
created per-region with these defaults.
"""

from __future__ import annotations

import math

from .monitor import ShadowValidator

__all__ = ["PrecisionPolicy"]


class PrecisionPolicy:
    """Per-region float32/float64 governor with breaker hysteresis."""

    def __init__(self, high: float = 1e-5, low: float | None = None,
                 sample_rate: float = 0.05, warmup: int = 3,
                 probe_interval: int = 32, seed: int = 0,
                 metric: str = "relative", alpha: float = 0.2):
        if high <= 0:
            raise ValueError(f"high threshold must be positive: {high}")
        if low is None:
            low = high / 4.0
        if not 0.0 < low <= high:
            raise ValueError(f"low must be in (0, high]: {low}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0: {warmup}")
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1: "
                             f"{probe_interval}")
        self.high = high
        self.low = low
        self.warmup = warmup
        self.probe_interval = probe_interval
        self.alpha = alpha
        self.validator = ShadowValidator(sample_rate, seed=seed,
                                         metric=metric)
        self._regions: dict[str, dict] = {}

    def _region(self, name: str) -> dict:
        st = self._regions.get(name)
        if st is None:
            st = self._regions[name] = {
                "count": 0,          # precision decisions taken
                "samples": 0,        # divergences observed
                "ewma": math.nan,    # EW divergence estimate
                "tripped": False,    # demoted to float64
                "since": 0,          # invocations since the demotion
                "demotions": 0,
                "promotions": 0,
            }
        return st

    # -- the per-invocation hooks ---------------------------------------
    def precision_for(self, region_name: str) -> str:
        """The dtype this invocation should execute: one decision."""
        st = self._region(region_name)
        st["count"] += 1
        if st["tripped"]:
            st["since"] += 1
            return "float64"
        return "float32"

    def should_sample(self, region_name: str) -> bool:
        """Whether this invocation must also run the other-dtype plan.

        Warmup invocations always sample (no region runs unmeasured);
        healthy regions sample at the validator's Bernoulli rate;
        demoted regions probe every ``probe_interval``-th invocation so
        the estimate keeps tracking and recovery stays possible.
        """
        st = self._region(region_name)
        if st["tripped"]:
            return st["since"] % self.probe_interval == 0
        if st["samples"] < self.warmup:
            return True
        return self.validator.should_sample()

    def observe(self, region_name: str, narrowed, accurate,
                qos=None) -> float:
        """Fold one fp32-vs-fp64 divergence into the region's state.

        ``narrowed``/``accurate`` are the float32 and float64 outputs
        of the same invocation.  When a ``qos`` controller is given the
        divergence is charged to its budget ledger
        (:meth:`~repro.qos.QoSController.charge_budget`), then the
        breaker updates: trip on EWMA > ``high``, recover on
        EWMA <= ``low``.  Returns the observed divergence.
        """
        err = self.validator.error(narrowed, accurate)
        st = self._region(region_name)
        st["samples"] += 1
        if math.isnan(st["ewma"]):
            st["ewma"] = err
        else:
            st["ewma"] += self.alpha * (err - st["ewma"])
        if qos is not None:
            charge = getattr(qos, "charge_budget", None)
            if charge is not None:
                charge(region_name, err)
        if not st["tripped"]:
            if st["samples"] >= self.warmup and st["ewma"] > self.high:
                st["tripped"] = True
                st["since"] = 0
                st["demotions"] += 1
        elif st["ewma"] <= self.low:
            st["tripped"] = False
            st["promotions"] += 1
        return err

    def tripped(self, region_name: str) -> bool:
        return self._region(region_name)["tripped"]

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "policy": "precision",
            "high": self.high,
            "low": self.low,
            "sample_rate": self.validator.rate,
            "metric": self.validator.metric,
            "probe_interval": self.probe_interval,
            "regions": {
                name: {k: (None if isinstance(v, float) and math.isnan(v)
                           else v)
                       for k, v in st.items()}
                for name, st in self._regions.items()
            },
        }

    def reset_region(self, region_name: str) -> None:
        """Forget one region's divergence state (hot-swap hook: new
        weights change the fp32 error surface, so re-measure through
        warmup instead of trusting the predecessor's EWMA)."""
        self._regions.pop(region_name, None)

    def reset(self) -> None:
        self.validator.reset()
        self._regions.clear()
