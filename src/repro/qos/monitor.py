"""Online error monitoring: shadow validation and rolling statistics.

HPAC-ML's ``predicated`` mode decides infer-vs-collect from a *static*
host expression (§III-B); the paper only measures QoI error offline,
after a run.  A deployed surrogate that drifts off its training
distribution therefore corrupts the QoI silently.  This module closes
that gap at runtime:

* :class:`ShadowValidator` samples a configurable fraction of
  infer-path invocations and — for the sampled ones — *also* runs the
  accurate kernel, turning each sample into a ground-truth error
  observation (an informative-example-selection problem: which
  invocations to validate is the budgeted choice).
* :class:`RegionErrorStats` folds those observations into rolling
  statistics per region: EWMA mean/variance and a P² quantile sketch,
  both O(1) memory and update cost so they can ride the hot path.
* :class:`PageHinkley` is the classic sequential drift test policies
  use to trigger collection bursts.
* :class:`QoSController` bundles validator + policy + telemetry into
  the single object a :class:`~repro.runtime.region.RegionConfig`
  carries; regions consult it per invocation (``decide``) and feed it
  shadow observations (``observe_shadow``).
"""

from __future__ import annotations

import math

import numpy as np

from ..runtime.control import ExecutionPath, apply_override
from .telemetry import QoSTelemetry

__all__ = ["EwmaStats", "P2Quantile", "PageHinkley", "RegionErrorStats",
           "ShadowValidator", "PathDecision", "QoSController"]


class EwmaStats:
    """Exponentially-weighted mean/variance of a scalar stream.

    Seeded by the first observation (no bias-correction bookkeeping);
    variance uses the standard EW recurrence
    ``var <- (1 - a) * (var + a * diff^2)``.
    """

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self.mean = math.nan
        self.var = 0.0
        self.count = 0

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self.count == 1:
            self.mean = value
            self.var = 0.0
            return
        diff = value - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)

    @property
    def std(self) -> float:
        return math.sqrt(self.var) if self.var > 0 else 0.0


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Tracks one quantile with five markers — O(1) memory, no sample
    buffer — which is what a serving runtime can afford per region.
    Until five observations arrive the estimate falls back to the
    empirical quantile of the seen values.
    """

    __slots__ = ("q", "_heights", "_pos", "_desired", "_incr", "_seed")

    def __init__(self, q: float = 0.95):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        self.q = q
        self._seed: list[float] = []
        self._heights: list[float] | None = None
        self._pos = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2 * q, 1.0 + 4 * q, 3.0 + 2 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def update(self, value: float) -> None:
        value = float(value)
        if self._heights is None:
            self._seed.append(value)
            if len(self._seed) == 5:
                self._heights = sorted(self._seed)
                self._seed = []
            return
        h = self._heights
        # Locate the cell and clamp the extreme markers.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1
        for i in range(5):
            self._desired[i] += self._incr[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            n, n_lo, n_hi = self._pos[i], self._pos[i - 1], self._pos[i + 1]
            if (d >= 1.0 and n_hi - n > 1) or (d <= -1.0 and n_lo - n < -1):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:                       # fall back to linear move
                    h[i] += step * (h[i + step] - h[i]) / (
                        self._pos[i + step] - n)
                self._pos[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    @property
    def value(self) -> float:
        if self._heights is not None:
            return self._heights[2]
        if not self._seed:
            return math.nan
        return float(np.quantile(np.array(self._seed), self.q))


class PageHinkley:
    """Page-Hinkley sequential test for an upward mean shift.

    ``update`` returns True when the cumulative positive deviation of
    the stream from its running mean (minus the tolerance ``delta``)
    exceeds ``threshold`` — the standard trigger for "the surrogate's
    error distribution has drifted".
    """

    __slots__ = ("delta", "threshold", "burn_in", "count", "_mean",
                 "_cum", "_cum_min")

    def __init__(self, delta: float = 0.005, threshold: float = 0.1,
                 burn_in: int = 5):
        self.delta = delta
        self.threshold = threshold
        self.burn_in = burn_in
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    def update(self, value: float) -> bool:
        value = float(value)
        self.count += 1
        self._mean += (value - self._mean) / self.count
        self._cum += value - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        return (self.count > self.burn_in and
                self._cum - self._cum_min > self.threshold)

    @property
    def statistic(self) -> float:
        return self._cum - self._cum_min


class RegionErrorStats:
    """Rolling per-region error statistics fed by shadow validation."""

    __slots__ = ("ewma", "sketch", "count", "last", "total", "worst")

    def __init__(self, alpha: float = 0.2, quantile: float = 0.95):
        self.ewma = EwmaStats(alpha)
        self.sketch = P2Quantile(quantile)
        self.count = 0
        self.last = math.nan
        self.total = 0.0
        self.worst = 0.0

    def update(self, error: float) -> None:
        error = float(error)
        self.ewma.update(error)
        self.sketch.update(error)
        self.count += 1
        self.last = error
        self.total += error
        self.worst = max(self.worst, error)

    @property
    def mean(self) -> float:
        return self.ewma.mean

    @property
    def std(self) -> float:
        return self.ewma.std

    @property
    def quantile(self) -> float:
        return self.sketch.value

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "ewma_mean": None if math.isnan(self.ewma.mean)
            else self.ewma.mean,
            "ewma_std": self.ewma.std,
            "quantile": None if math.isnan(self.quantile) else self.quantile,
            "quantile_p": self.sketch.q,
            "last": None if math.isnan(self.last) else self.last,
            "worst": self.worst,
            "lifetime_mean": self.total / self.count if self.count else None,
        }


def _error_metric(metric: str):
    eps = 1e-12
    if metric == "relative":
        def fn(pred, ref):
            pred = np.asarray(pred, dtype=np.float64).ravel()
            ref = np.asarray(ref, dtype=np.float64).ravel()
            return float(np.linalg.norm(pred - ref) /
                         (np.linalg.norm(ref) + eps))
    elif metric == "rmse":
        def fn(pred, ref):
            diff = np.asarray(pred, dtype=np.float64) - \
                np.asarray(ref, dtype=np.float64)
            return float(np.sqrt(np.mean(diff * diff)))
    elif metric == "mape":
        def fn(pred, ref):
            pred = np.asarray(pred, dtype=np.float64)
            ref = np.asarray(ref, dtype=np.float64)
            return float(np.mean(np.abs(pred - ref) /
                                 (np.abs(ref) + eps)) * 100.0)
    elif metric == "max_abs":
        def fn(pred, ref):
            return float(np.max(np.abs(np.asarray(pred, dtype=np.float64) -
                                       np.asarray(ref, dtype=np.float64))))
    else:
        raise ValueError(f"unknown shadow error metric {metric!r}")
    return fn


class ShadowValidator:
    """Samples infer invocations for ground-truth validation.

    Sampling is Bernoulli(``rate``) from a seeded generator, so a fixed
    seed reproduces the exact validation schedule — required both for
    debugging a deployment and for the determinism tests.
    """

    def __init__(self, rate: float = 0.1, seed: int = 0,
                 metric: str = "relative"):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"shadow rate must be in [0, 1]: {rate}")
        self.rate = rate
        self.seed = seed
        self.metric = metric
        self._rng = np.random.default_rng(seed)
        self._error_fn = _error_metric(metric)
        self.sampled = 0
        self.offered = 0

    def should_sample(self) -> bool:
        self.offered += 1
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        hit = bool(self._rng.random() < self.rate)
        if hit:
            self.sampled += 1
        return hit

    def row_subset(self, batch: int, rows: int) -> np.ndarray:
        """Seeded sorted row indices for within-invocation sub-sampling.

        Used by row-batched regions when the controller sets
        ``shadow_rows``: the accurate kernel runs on these rows only.
        Draws come from the validator's own generator, so a fixed seed
        still reproduces the full validation schedule.
        """
        if rows >= batch:
            return np.arange(batch)
        return np.sort(self._rng.choice(batch, size=rows, replace=False))

    def error(self, predicted, accurate) -> float:
        return self._error_fn(predicted, accurate)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.sampled = 0
        self.offered = 0


class PathDecision:
    """One invocation's resolved QoS decision, consumed by the region."""

    __slots__ = ("path", "shadow", "commit", "reason")

    def __init__(self, path: str, shadow: bool = False,
                 commit: str = "surrogate", reason: str | None = None):
        self.path = path
        self.shadow = shadow
        self.commit = commit
        self.reason = reason

    def __repr__(self):
        return (f"PathDecision({self.path!r}, shadow={self.shadow}, "
                f"commit={self.commit!r}, reason={self.reason!r})")


class QoSController:
    """The online QoS loop: shadow validation -> stats -> policy -> path.

    Attach one to a region via ``RegionConfig(qos=...)`` (or
    ``region.config.qos = ...`` on a live region).  Per invocation the
    region calls :meth:`decide` with the statically-decided path; on
    shadow-validated invocations it calls :meth:`observe_shadow` with
    the surrogate and accurate outputs.  ``commit`` selects which
    result a shadowed invocation leaves in application memory:
    ``"surrogate"`` keeps deployment behavior bit-identical to an
    unmonitored run; ``"accurate"`` additionally corrects the state on
    every validated invocation (the right choice for auto-regressive
    regions, where corrections also cut error compounding).

    ``shadow_rows`` caps how many rows of a shadowed invocation the
    accurate kernel validates: row-batched regions (see
    ``RegionConfig(row_subsample=...)``) run the kernel on a seeded
    ``shadow_rows``-row subset instead of the whole batch, cutting the
    dominant validation cost proportionally.  ``None`` validates full
    batches.
    """

    def __init__(self, policy=None, shadow_rate: float = 0.1, seed: int = 0,
                 commit: str = "surrogate", metric: str = "relative",
                 alpha: float = 0.2, quantile: float = 0.95,
                 telemetry: QoSTelemetry | None = None,
                 shadow_rows: int | None = None,
                 precision_policy=None):
        if commit not in ("surrogate", "accurate"):
            raise ValueError(f"commit must be 'surrogate' or 'accurate': "
                             f"{commit!r}")
        if shadow_rows is not None and shadow_rows < 1:
            raise ValueError(f"shadow_rows must be >= 1: {shadow_rows}")
        self.policy = policy
        #: Optional :class:`~repro.qos.PrecisionPolicy` governing
        #: float32 plan execution for regions with
        #: ``RegionConfig(precision="auto")``; regions sharing this
        #: controller share the governor (and its divergence ledgers).
        self.precision_policy = precision_policy
        self.validator = ShadowValidator(shadow_rate, seed=seed,
                                         metric=metric)
        self.commit = commit
        self.shadow_rows = shadow_rows
        self.telemetry = telemetry or QoSTelemetry()
        self._alpha = alpha
        self._quantile = quantile
        self._stats: dict[str, RegionErrorStats] = {}

    # -- stats -----------------------------------------------------------
    def stats_for(self, region_name: str) -> RegionErrorStats:
        stats = self._stats.get(region_name)
        if stats is None:
            stats = self._stats[region_name] = RegionErrorStats(
                alpha=self._alpha, quantile=self._quantile)
        return stats

    # -- the per-invocation hooks ---------------------------------------
    def decide(self, region_name: str, base_path: str) -> PathDecision:
        """Resolve the final path for an invocation.

        Policy overrides follow the rule of
        :func:`repro.runtime.control.apply_override`: they apply only
        when the directive's own decision is the infer path.
        """
        commit = self.commit
        shadow = False
        reason = None
        path = base_path
        if base_path == ExecutionPath.INFER:
            action = None
            if self.policy is not None:
                action = self.policy.decide(region_name,
                                            self.stats_for(region_name))
            if action is not None:
                path = apply_override(base_path, action.path)
                reason = action.reason
                if action.commit is not None:
                    commit = action.commit
            if path == ExecutionPath.INFER:
                shadow = bool(action is not None and action.force_shadow)
                if not shadow:
                    shadow = self.validator.should_sample()
        self.telemetry.record_decision(region_name, base_path, path,
                                       shadow=shadow, reason=reason)
        return PathDecision(path, shadow=shadow, commit=commit,
                            reason=reason)

    def row_subset(self, batch: int):
        """Seeded row indices for a sub-sampled shadow validation.

        Regions call this (not the validator directly) so shared
        controllers — :class:`repro.serving.QoSArbiter` — can serialize
        the draw with the rest of the validator's RNG usage.
        """
        return self.validator.row_subset(batch, self.shadow_rows)

    def budget_spend(self, region_name: str) -> float | None:
        """The policy's current spend ledger for a region, or ``None``.

        Telemetry accessor (no mutation): budget-style policies —
        :class:`~repro.qos.ErrorBudgetPolicy`,
        :class:`~repro.qos.BudgetArbitrationPolicy`, composites holding
        one — expose ``spend_for``; anything else has no ledger.  The
        decision stream persists the value per invocation so offline
        tuning can reconstruct budget trajectories.
        """
        if self.policy is None:
            return None
        fn = getattr(self.policy, "spend_for", None)
        return fn(region_name) if fn is not None else None

    def charge_budget(self, region_name: str, error: float) -> bool:
        """Charge an out-of-band error against the policy's budget.

        Duck-typed onto budget-keeping policies (``add_charge``): the
        precision governor spends observed fp32-vs-fp64 divergence from
        the same ledger surrogate error spends, so both approximation
        axes answer to one budget.  Returns whether a ledger accepted
        the charge (False for ledger-less policies / no policy).
        """
        if self.policy is None:
            return False
        fn = getattr(self.policy, "add_charge", None)
        if fn is None:
            return False
        fn(region_name, float(error))
        return True

    def observe_shadow(self, region_name: str, predicted,
                       accurate) -> float:
        """Fold one validated invocation's error into the rolling stats."""
        err = self.validator.error(predicted, accurate)
        stats = self.stats_for(region_name)
        stats.update(err)
        if self.policy is not None:
            self.policy.observe(region_name, err, stats)
        self.telemetry.record_shadow(region_name, err)
        return err

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        out = {
            "shadow_rate": self.validator.rate,
            "shadow_metric": self.validator.metric,
            "shadow_rows": self.shadow_rows,
            "commit": self.commit,
            "regions": {name: stats.snapshot()
                        for name, stats in self._stats.items()},
            "telemetry": self.telemetry.snapshot(),
        }
        if self.policy is not None:
            out["policy"] = self.policy.snapshot()
        if self.precision_policy is not None:
            out["precision"] = self.precision_policy.snapshot()
        return out

    def reset_region(self, region_name: str) -> None:
        """Forget one region's rolling stats (and policy state, for
        policies that track per-region ledgers).

        The model hot-swap hook: after a retrained surrogate replaces
        the file, the old error estimates describe weights that no
        longer serve, so the region re-enters through the policy's
        warmup instead of being judged on its predecessor.
        """
        self._stats.pop(region_name, None)
        if self.policy is not None:
            reset = getattr(self.policy, "reset_region", None)
            if reset is not None:
                reset(region_name)
        if self.precision_policy is not None:
            self.precision_policy.reset_region(region_name)

    def reset(self) -> None:
        self.validator.reset()
        self._stats.clear()
        self.telemetry.reset()
        if self.policy is not None:
            self.policy.reset()
        if self.precision_policy is not None:
            self.precision_policy.reset()
