"""Adaptive execution-path policies driven by online error estimates.

A :class:`QoSPolicy` closes the infer/collect/accurate loop: given the
rolling error statistics a :class:`~repro.qos.monitor.QoSController`
maintains from shadow validation, it returns a :class:`PolicyAction`
whose ``path`` is an :class:`~repro.runtime.control.ExecutionPath`
override (consumed by ``decide_path``/``ApproxRegion``), plus optional
shadow forcing (probes) and commit selection.

Policies included:

* :class:`ThresholdPolicy` — trip to the accurate path when the EWMA
  error crosses ``high``; recover to inference only below ``low``
  (hysteresis, so estimates oscillating inside the band cannot flap the
  path); while tripped, periodic *probe* invocations keep the error
  estimate alive.
* :class:`ErrorBudgetPolicy` — charge every inferred invocation its
  current error estimate and route to the accurate path whenever
  admitting another inference would push the mean charge over the
  budget: the deployed QoI error is capped by construction.
* :class:`DriftBurstPolicy` — a Page-Hinkley test on the error stream
  triggers a burst of ``collect`` invocations that runs the accurate
  kernel *and* appends fresh (input, output) rows to the training
  database, so the surrogate can be retrained on the drifted
  distribution.
* :class:`PeriodicRecalibrationPolicy` — the Fig. 9 interleave pattern
  as a policy: every ``period`` invocations, ``n_accurate`` run the
  accurate path (optionally collecting), bounding auto-regressive
  error compounding.
* :class:`CompositePolicy` — chains policies; the first override wins,
  every policy observes every error.
"""

from __future__ import annotations

from ..runtime.control import ExecutionPath
from .monitor import PageHinkley, RegionErrorStats

__all__ = ["PolicyAction", "QoSPolicy", "ThresholdPolicy",
           "ErrorBudgetPolicy", "DriftBurstPolicy",
           "PeriodicRecalibrationPolicy", "CompositePolicy"]


class PolicyAction:
    """What a policy wants for one invocation.

    ``path`` is an :class:`ExecutionPath` value or None (no override);
    ``force_shadow`` requests shadow validation regardless of the
    sampler; ``commit`` optionally overrides the controller's commit
    mode for this invocation (probes commit the accurate result — the
    estimate says the surrogate is untrustworthy).
    """

    __slots__ = ("path", "force_shadow", "commit", "reason")

    def __init__(self, path: str | None = None, force_shadow: bool = False,
                 commit: str | None = None, reason: str | None = None):
        self.path = path
        self.force_shadow = force_shadow
        self.commit = commit
        self.reason = reason

    def __repr__(self):
        return (f"PolicyAction(path={self.path!r}, "
                f"force_shadow={self.force_shadow}, commit={self.commit!r}, "
                f"reason={self.reason!r})")


class QoSPolicy:
    """Base class: stateless pass-through (monitor-only)."""

    def decide(self, region_name: str,
               stats: RegionErrorStats) -> PolicyAction | None:
        """Called before every statically-infer invocation."""
        return None

    def observe(self, region_name: str, error: float,
                stats: RegionErrorStats) -> None:
        """Called after every shadow-validated invocation."""

    def snapshot(self) -> dict:
        return {"policy": type(self).__name__}

    def reset(self) -> None:
        pass


class ThresholdPolicy(QoSPolicy):
    """Threshold with hysteresis plus probing.

    State machine per region: *inferring* until the EWMA error exceeds
    ``high``, then *tripped* (accurate path) until a probe-refreshed
    EWMA falls below ``low``.  ``low < high`` is the hysteresis band:
    an estimate wandering inside it never changes state, so the region
    cannot flap between paths.  While tripped, every
    ``probe_interval``-th invocation runs shadow-validated inference
    committing the accurate result — the QoI stays safe, but the error
    estimate keeps tracking the workload so recovery is possible.
    The first ``warmup`` invocations are probes too: nothing is
    admitted on trust before any error has been measured.
    """

    def __init__(self, high: float, low: float | None = None,
                 probe_interval: int = 8, warmup: int = 1):
        if low is None:
            low = high / 2.0
        if not 0.0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got low={low}, "
                             f"high={high}")
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1: {probe_interval}")
        self.high = high
        self.low = low
        self.probe_interval = probe_interval
        self.warmup = warmup
        self._state: dict[str, dict] = {}
        self.trips = 0
        self.recoveries = 0

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {"tripped": False, "since": 0}
        return st

    def observe(self, region_name, error, stats):
        st = self._region(region_name)
        if not st["tripped"]:
            if stats.mean > self.high:
                st["tripped"] = True
                st["since"] = 0
                self.trips += 1
        elif stats.mean < self.low:
            st["tripped"] = False
            self.recoveries += 1

    def decide(self, region_name, stats):
        st = self._region(region_name)
        if stats.count < self.warmup:
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="warmup")
        if not st["tripped"]:
            return None
        st["since"] += 1
        if st["since"] % self.probe_interval == 0:
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="probe")
        return PolicyAction(ExecutionPath.ACCURATE, reason="threshold")

    def snapshot(self):
        return {"policy": "threshold", "high": self.high, "low": self.low,
                "probe_interval": self.probe_interval, "trips": self.trips,
                "recoveries": self.recoveries,
                "tripped": {n: st["tripped"]
                            for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()
        self.trips = 0
        self.recoveries = 0


class ErrorBudgetPolicy(QoSPolicy):
    """Cap the mean deployed error at ``budget``.

    Every invocation routed to inference is charged the current error
    estimate (EWMA mean, or the sketch quantile with
    ``pessimistic=True``); accurate invocations are charged zero.  The
    policy admits an inference only if the post-admission mean charge
    stays within ``budget * headroom``.  The first ``warmup``
    invocations are forced shadow probes (committing the accurate
    result) so the estimate exists before anything is admitted on
    trust.
    """

    def __init__(self, budget: float, headroom: float = 0.9,
                 warmup: int = 3, pessimistic: bool = False):
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1]: {headroom}")
        self.budget = budget
        self.headroom = headroom
        self.warmup = warmup
        self.pessimistic = pessimistic
        self._state: dict[str, dict] = {}

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {"spent": 0.0, "decisions": 0,
                                      "inferred": 0, "denied": 0}
        return st

    def _estimate(self, stats: RegionErrorStats) -> float:
        est = stats.quantile if self.pessimistic else stats.mean
        return est if est == est else float("inf")     # NaN -> untrusted

    def decide(self, region_name, stats):
        st = self._region(region_name)
        st["decisions"] += 1
        if stats.count < self.warmup:
            # Probes measure but commit the accurate result: zero charge.
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="warmup")
        est = self._estimate(stats)
        admitted = (st["spent"] + est) / st["decisions"]
        if admitted > self.budget * self.headroom:
            st["denied"] += 1
            return PolicyAction(ExecutionPath.ACCURATE, reason="budget")
        st["spent"] += est
        st["inferred"] += 1
        return None

    def snapshot(self):
        return {"policy": "error_budget", "budget": self.budget,
                "headroom": self.headroom, "pessimistic": self.pessimistic,
                "regions": {n: dict(st) for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()


class DriftBurstPolicy(QoSPolicy):
    """Detect drift, answer with a collection burst that refreshes the DB.

    A per-region Page-Hinkley test watches the shadow error stream; when
    it fires, the next ``burst`` statically-infer invocations are
    overridden to the *collect* path — the accurate kernel runs and its
    (input, output) pairs are appended to the region's training
    database, giving the ML engineer fresh rows from the drifted
    distribution (the Fig. 9-style recalibration data).  The detector
    resets after each burst.
    """

    def __init__(self, burst: int = 32, threshold: float = 0.1,
                 delta: float = 0.005, burn_in: int = 5):
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst}")
        self.burst = burst
        self.threshold = threshold
        self.delta = delta
        self.burn_in = burn_in
        self._state: dict[str, dict] = {}
        self.drifts = 0

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {
                "detector": PageHinkley(delta=self.delta,
                                        threshold=self.threshold,
                                        burn_in=self.burn_in),
                "remaining": 0, "collected": 0}
        return st

    def observe(self, region_name, error, stats):
        st = self._region(region_name)
        if st["remaining"] == 0 and st["detector"].update(error):
            st["remaining"] = self.burst
            st["detector"].reset()
            self.drifts += 1

    def decide(self, region_name, stats):
        st = self._region(region_name)
        if st["remaining"] > 0:
            st["remaining"] -= 1
            st["collected"] += 1
            return PolicyAction(ExecutionPath.COLLECT, reason="drift-burst")
        return None

    def snapshot(self):
        return {"policy": "drift_burst", "burst": self.burst,
                "threshold": self.threshold, "drifts": self.drifts,
                "regions": {n: {"remaining": st["remaining"],
                                "collected": st["collected"],
                                "ph_statistic": st["detector"].statistic}
                            for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()
        self.drifts = 0


class PeriodicRecalibrationPolicy(QoSPolicy):
    """Fig. 9-style Original:Surrogate cycles as a runtime policy.

    Of every ``period`` statically-infer invocations, the first
    ``n_accurate`` run the accurate path (the collect path with
    ``collect=True``, which also refreshes the training DB).  Unlike
    the static ``if`` clause this needs no step variable threaded
    through the application.
    """

    def __init__(self, period: int = 8, n_accurate: int = 2,
                 collect: bool = False):
        if period < 1 or not 0 <= n_accurate <= period:
            raise ValueError(f"need 0 <= n_accurate <= period, got "
                             f"{n_accurate}/{period}")
        self.period = period
        self.n_accurate = n_accurate
        self.collect = collect
        self._counters: dict[str, int] = {}

    def decide(self, region_name, stats):
        i = self._counters.get(region_name, 0)
        self._counters[region_name] = i + 1
        if i % self.period < self.n_accurate:
            path = ExecutionPath.COLLECT if self.collect \
                else ExecutionPath.ACCURATE
            return PolicyAction(path, reason="recalibration")
        return None

    def snapshot(self):
        return {"policy": "periodic_recalibration", "period": self.period,
                "n_accurate": self.n_accurate, "collect": self.collect,
                "invocations": dict(self._counters)}

    def reset(self):
        self._counters.clear()


class CompositePolicy(QoSPolicy):
    """Chain policies: first non-None override wins; all observe."""

    def __init__(self, *policies: QoSPolicy):
        self.policies = list(policies)

    def decide(self, region_name, stats):
        for policy in self.policies:
            action = policy.decide(region_name, stats)
            if action is not None:
                return action
        return None

    def observe(self, region_name, error, stats):
        for policy in self.policies:
            policy.observe(region_name, error, stats)

    def snapshot(self):
        return {"policy": "composite",
                "members": [p.snapshot() for p in self.policies]}

    def reset(self):
        for policy in self.policies:
            policy.reset()
